// Planner ablation: the same conjunctive query evaluated in
// cost-planned order (what Database::Query does) versus the
// worst-case literal order, at growing scale. The gap is the value of
// anchoring evaluation at the smallest driver.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "eval/ref_eval.h"
#include "query/planner.h"
#include "semantics/structure.h"

namespace pathlog {
namespace {

// The manager query decomposed; the adversarial order puts the
// unselective age lookup first and the tiny manager extent last.
constexpr const char* kGoodToBad[] = {
    "X:manager",
    "X[vehicles->>{Y}]",
    "Y[color->red]",
};

size_t EvalInOrder(Database& db, const std::vector<Literal>& body) {
  SemanticStructure I(db.store());
  RefEvaluator eval(I);
  Bindings b;
  size_t count = 0;
  std::function<Result<bool>(size_t)> go = [&](size_t i) -> Result<bool> {
    if (i == body.size()) {
      ++count;
      return true;
    }
    return eval.Enumerate(*body[i].ref, &b, [&](Oid) { return go(i + 1); });
  };
  Result<bool> r = go(0);
  bench::Check(r.ok() ? Status::OK() : r.status(), "conjunction");
  return count;
}

std::vector<Literal> ParseLits(bool reversed) {
  std::vector<Literal> body;
  for (const char* src : kGoodToBad) {
    RefPtr ref = bench::CheckResult(ParseRef(src), "parse");
    body.push_back(Literal{ref, false});
  }
  if (reversed) std::reverse(body.begin(), body.end());
  return body;
}

void BM_Planner_PlannedOrder(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  std::vector<Literal> body = ParseLits(false);
  bench::Check(PlanConjunction(&body, db.store(), nullptr), "plan");
  size_t solutions = 0;
  for (auto _ : state) {
    solutions = EvalInOrder(db, body);
    benchmark::DoNotOptimize(solutions);
  }
  state.counters["solutions"] = static_cast<double>(solutions);
}
BENCHMARK(BM_Planner_PlannedOrder)->Arg(1000)->Arg(10000);

void BM_Planner_AdversarialOrder(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  std::vector<Literal> body = ParseLits(true);  // color scan first
  size_t solutions = 0;
  for (auto _ : state) {
    solutions = EvalInOrder(db, body);
    benchmark::DoNotOptimize(solutions);
  }
  state.counters["solutions"] = static_cast<double>(solutions);
}
BENCHMARK(BM_Planner_AdversarialOrder)->Arg(1000)->Arg(10000);

void BM_Planner_PlanningCost(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(1000));
  for (auto _ : state) {
    std::vector<Literal> body = ParseLits(true);
    bench::Check(PlanConjunction(&body, db.store(), nullptr), "plan");
    benchmark::DoNotOptimize(body);
  }
}
BENCHMARK(BM_Planner_PlanningCost);

}  // namespace
}  // namespace pathlog
