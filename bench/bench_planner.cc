// Planner ablation: the same conjunctive query evaluated in
// cost-planned order (what Database::Query does) versus the
// worst-case literal order, at growing scale. The gap is the value of
// anchoring evaluation at the smallest driver.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "eval/ref_eval.h"
#include "query/planner.h"
#include "semantics/structure.h"

namespace pathlog {
namespace {

// The manager query decomposed; the adversarial order puts the
// unselective age lookup first and the tiny manager extent last.
constexpr const char* kGoodToBad[] = {
    "X:manager",
    "X[vehicles->>{Y}]",
    "Y[color->red]",
};

size_t EvalInOrder(Database& db, const std::vector<Literal>& body) {
  SemanticStructure I(db.store());
  RefEvaluator eval(I);
  Bindings b;
  size_t count = 0;
  std::function<Result<bool>(size_t)> go = [&](size_t i) -> Result<bool> {
    if (i == body.size()) {
      ++count;
      return true;
    }
    return eval.Enumerate(*body[i].ref, &b, [&](Oid) { return go(i + 1); });
  };
  Result<bool> r = go(0);
  bench::Check(r.ok() ? Status::OK() : r.status(), "conjunction");
  return count;
}

std::vector<Literal> ParseLits(bool reversed) {
  std::vector<Literal> body;
  for (const char* src : kGoodToBad) {
    RefPtr ref = bench::CheckResult(ParseRef(src), "parse");
    body.push_back(Literal{ref, false});
  }
  if (reversed) std::reverse(body.begin(), body.end());
  return body;
}

void BM_Planner_PlannedOrder(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  std::vector<Literal> body = ParseLits(false);
  bench::Check(PlanConjunction(&body, db.store(), nullptr), "plan");
  size_t solutions = 0;
  for (auto _ : state) {
    solutions = EvalInOrder(db, body);
    benchmark::DoNotOptimize(solutions);
  }
  state.counters["solutions"] = static_cast<double>(solutions);
}
BENCHMARK(BM_Planner_PlannedOrder)->Arg(1000)->Arg(10000);

void BM_Planner_AdversarialOrder(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  std::vector<Literal> body = ParseLits(true);  // color scan first
  size_t solutions = 0;
  for (auto _ : state) {
    solutions = EvalInOrder(db, body);
    benchmark::DoNotOptimize(solutions);
  }
  state.counters["solutions"] = static_cast<double>(solutions);
}
BENCHMARK(BM_Planner_AdversarialOrder)->Arg(1000)->Arg(10000);

// Skewed-distribution twins: one city bucket holds `hot` objects while
// an equal number of singleton buckets drag the average down to ~1.
// The skew-blind estimator prices the runtime-bound Y[city->C] probe
// at that average and drives the whole hot bucket through a resident
// check; the skew-aware estimator reads the top-k heavy-hitter list,
// prices the probe at the hot-bucket size, and drives the resident
// extent (hot/100 objects) instead. Both orders must produce the same
// answers — the twins differ only in evaluation work.
void BuildSkewedCity(Database* db, int64_t hot) {
  std::string program = "hub[site->metro].\n";
  for (int64_t i = 0; i < hot; ++i) {
    program += "m" + std::to_string(i) + "[city->metro].\n";
    program += "u" + std::to_string(i) + "[city->only" + std::to_string(i) +
               "].\n";
  }
  for (int64_t i = 0; i < hot / 100; ++i) {
    program += "m" + std::to_string(i) + " : resident.\n";
  }
  bench::Check(db->Load(program), "load skewed fixture");
}

constexpr const char* kSkewQuery = "?- hub[site->C], Y[city->C], Y:resident.";

std::vector<Literal> PlanSkewQuery(Database& db, PlannerStatsMode mode) {
  std::vector<Literal> body =
      bench::CheckResult(ParseQuery(kSkewQuery), "parse skew query").body;
  bench::Check(
      PlanConjunction(&body, db.store(), nullptr, nullptr, nullptr, mode),
      "plan skew query");
  return body;
}

void RunSkewTwin(benchmark::State& state, PlannerStatsMode mode) {
  Database db;
  const int64_t hot = state.range(0);
  BuildSkewedCity(&db, hot);
  std::vector<Literal> body = PlanSkewQuery(db, mode);
  size_t solutions = 0;
  for (auto _ : state) {
    solutions = EvalInOrder(db, body);
    benchmark::DoNotOptimize(solutions);
  }
  if (solutions != static_cast<size_t>(hot / 100)) {
    fprintf(stderr, "FATAL: skew twin answer mismatch: got %zu want %lld\n",
            solutions, static_cast<long long>(hot / 100));
    std::abort();
  }
  state.counters["solutions"] = static_cast<double>(solutions);
}

void BM_Planner_SkewAware(benchmark::State& state) {
  RunSkewTwin(state, PlannerStatsMode::kSkewAware);
}
BENCHMARK(BM_Planner_SkewAware)->Arg(2000)->Arg(10000);

void BM_Planner_SkewBlind(benchmark::State& state) {
  RunSkewTwin(state, PlannerStatsMode::kAverageBucket);
}
BENCHMARK(BM_Planner_SkewBlind)->Arg(2000)->Arg(10000);

void BM_Planner_PlanningCost(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(1000));
  for (auto _ : state) {
    std::vector<Literal> body = ParseLits(true);
    bench::Check(PlanConjunction(&body, db.store(), nullptr), "plan");
    benchmark::DoNotOptimize(body);
  }
}
BENCHMARK(BM_Planner_PlanningCost);

}  // namespace
}  // namespace pathlog
