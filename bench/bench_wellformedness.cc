// Experiment E4.x: static analysis throughput — scalarity
// (Definition 2) and well-formedness (Definition 3) over the paper's
// reference inventory, plus rejection cost for ill-formed inputs.

#include <benchmark/benchmark.h>

#include "ast/analysis.h"
#include "bench_util.h"

namespace pathlog {
namespace {

const char* const kWellFormedRefs[] = {
    "p1.age",
    "p1..assistants",
    "p1..assistants[salary->1000]",
    "p2[friends->>{p3,p4}]",
    "p2[friends->>p1..assistants]",
    "p1..assistants.salary",
    "p1..assistants..projects",
    "p1.paidFor@(p1..vehicles)",
    "X:employee[age->30; city->newYork]"
    "..vehicles[Y]:automobile[cylinders->4].color[Z]",
    "X:manager..vehicles[color->red]"
    ".producedBy[city->detroit; president->X]",
};

void BM_WellFormed_CheckInventory(benchmark::State& state) {
  std::vector<RefPtr> refs;
  for (const char* src : kWellFormedRefs) {
    refs.push_back(bench::CheckResult(ParseRef(src), "parse"));
  }
  for (auto _ : state) {
    for (const RefPtr& r : refs) {
      bench::Check(CheckWellFormed(*r), "check");
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(refs.size()));
}
BENCHMARK(BM_WellFormed_CheckInventory);

void BM_WellFormed_Scalarity(benchmark::State& state) {
  std::vector<RefPtr> refs;
  for (const char* src : kWellFormedRefs) {
    refs.push_back(bench::CheckResult(ParseRef(src), "parse"));
  }
  for (auto _ : state) {
    int set_valued = 0;
    for (const RefPtr& r : refs) {
      set_valued += IsSetValued(*r) ? 1 : 0;
    }
    benchmark::DoNotOptimize(set_valued);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(refs.size()));
}
BENCHMARK(BM_WellFormed_Scalarity);

void BM_WellFormed_RejectFormula45(benchmark::State& state) {
  RefPtr bad =
      bench::CheckResult(ParseRef("p2[boss->p1..assistants]"), "parse");
  for (auto _ : state) {
    Status st = CheckWellFormed(*bad);
    if (st.code() != StatusCode::kIllFormed) {
      fprintf(stderr, "FATAL: (4.5) must be ill-formed\n");
      std::abort();
    }
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_WellFormed_RejectFormula45);

// Deeply nested reference: analysis must stay linear in size.
void BM_WellFormed_DeepNesting(benchmark::State& state) {
  std::string src = "x";
  for (int64_t i = 0; i < state.range(0); ++i) {
    src += (i % 2 == 0) ? ".m[a->1]" : "..s[b->>{c,d}]";
  }
  RefPtr ref = bench::CheckResult(ParseRef(src), "parse");
  for (auto _ : state) {
    bench::Check(CheckWellFormed(*ref), "check");
    benchmark::DoNotOptimize(IsSetValued(*ref));
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WellFormed_DeepNesting)->Arg(10)->Arg(100)->Arg(400);

}  // namespace
}  // namespace pathlog
