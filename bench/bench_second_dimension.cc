// Experiment E1.4/2.1/2.2: the second dimension of path expressions.
//
// Query: colors of the 4-cylinder automobiles of 30-year-old employees
// living in newYork. One-dimensional languages must break the path
// into a conjunction (paper 1.4); PathLog keeps every property test on
// the path (paper 2.1/2.2).
//
// Sweeps: database scale and filter selectivity (number of distinct
// ages — higher means the [age->30] filter prunes more). Expected
// shape: the earlier the second-dimension filters prune, the larger
// PathLog's advantage over the decomposed baselines; the join plan
// pays for full intermediate relations regardless of selectivity.

#include "bench_util.h"

namespace pathlog {
namespace {

// The [Y] selector keeps the answer variables identical to the
// decomposed form, so all formulations return the same rows.
constexpr const char* kTwoDimensional =
    "?- X:employee[age->30; city->newYork]"
    "..vehicles[Y]:automobile[cylinders->4].color[Z].";
constexpr const char* kConjunction =
    "?- X:employee[age->30], X[city->newYork], "
    "X[vehicles->>{Y:automobile}], Y[cylinders->4], Y.color[Z].";

CompanyConfig SelectivityConfig(int64_t employees, int64_t max_age) {
  CompanyConfig cfg = bench::ScaledCompany(employees);
  cfg.min_age = 30;
  cfg.max_age = static_cast<uint32_t>(max_age);
  return cfg;
}

void BM_SecondDim_PathLog_OnePath(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(),
                  SelectivityConfig(state.range(0), state.range(1)));
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunPathLog(db, kTwoDimensional);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_SecondDim_PathLog_OnePath)
    ->Args({1000, 31})   // ~half the employees are 30
    ->Args({1000, 70})   // ~1/41 of the employees are 30
    ->Args({10000, 31})
    ->Args({10000, 70});

void BM_SecondDim_PathLog_Conjunction(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(),
                  SelectivityConfig(state.range(0), state.range(1)));
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunPathLog(db, kConjunction);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_SecondDim_PathLog_Conjunction)
    ->Args({1000, 31})
    ->Args({1000, 70})
    ->Args({10000, 31})
    ->Args({10000, 70});

void BM_SecondDim_Baseline_JoinPlan(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(),
                  SelectivityConfig(state.range(0), state.range(1)));
  FlatQuery fq = bench::FlattenQuery(db, kTwoDimensional);
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunJoinPlan(db, fq);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_SecondDim_Baseline_JoinPlan)
    ->Args({1000, 31})
    ->Args({1000, 70})
    ->Args({10000, 31})
    ->Args({10000, 70});

void BM_SecondDim_Baseline_NestedLoop(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(),
                  SelectivityConfig(state.range(0), state.range(1)));
  FlatQuery fq = bench::FlattenQuery(db, kTwoDimensional);
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunNestedLoop(db, fq);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_SecondDim_Baseline_NestedLoop)
    ->Args({1000, 31})
    ->Args({1000, 70})
    ->Args({10000, 31})
    ->Args({10000, 70});

// Sanity: the two PathLog formulations agree (checked once per run).
void BM_SecondDim_AgreementCheck(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), SelectivityConfig(1000, 40));
  for (auto _ : state) {
    size_t a = bench::RunPathLog(db, kTwoDimensional);
    size_t b = bench::RunPathLog(db, kConjunction);
    if (a != b) {
      fprintf(stderr, "FATAL: formulations disagree: %zu vs %zu\n", a, b);
      std::abort();
    }
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_SecondDim_AgreementCheck)->Iterations(1);

}  // namespace
}  // namespace pathlog
