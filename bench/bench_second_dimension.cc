// Experiment E1.4/2.1/2.2: the second dimension of path expressions.
//
// Query: colors of the 4-cylinder automobiles of 30-year-old employees
// living in newYork. One-dimensional languages must break the path
// into a conjunction (paper 1.4); PathLog keeps every property test on
// the path (paper 2.1/2.2).
//
// Sweeps: database scale and filter selectivity (number of distinct
// ages — higher means the [age->30] filter prunes more). Expected
// shape: the earlier the second-dimension filters prune, the larger
// PathLog's advantage over the decomposed baselines; the join plan
// pays for full intermediate relations regardless of selectivity.

#include "bench_util.h"

namespace pathlog {
namespace {

// The [Y] selector keeps the answer variables identical to the
// decomposed form, so all formulations return the same rows.
constexpr const char* kTwoDimensional =
    "?- X:employee[age->30; city->newYork]"
    "..vehicles[Y]:automobile[cylinders->4].color[Z].";
constexpr const char* kConjunction =
    "?- X:employee[age->30], X[city->newYork], "
    "X[vehicles->>{Y:automobile}], Y[cylinders->4], Y.color[Z].";

CompanyConfig SelectivityConfig(int64_t employees, int64_t max_age) {
  CompanyConfig cfg = bench::ScaledCompany(employees);
  cfg.min_age = 30;
  cfg.max_age = static_cast<uint32_t>(max_age);
  return cfg;
}

void BM_SecondDim_PathLog_OnePath(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(),
                  SelectivityConfig(state.range(0), state.range(1)));
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunPathLog(db, kTwoDimensional);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_SecondDim_PathLog_OnePath)
    ->Args({1000, 31})   // ~half the employees are 30
    ->Args({1000, 70})   // ~1/41 of the employees are 30
    ->Args({10000, 31})
    ->Args({10000, 70});

void BM_SecondDim_PathLog_Conjunction(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(),
                  SelectivityConfig(state.range(0), state.range(1)));
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunPathLog(db, kConjunction);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_SecondDim_PathLog_Conjunction)
    ->Args({1000, 31})
    ->Args({1000, 70})
    ->Args({10000, 31})
    ->Args({10000, 70});

void BM_SecondDim_Baseline_JoinPlan(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(),
                  SelectivityConfig(state.range(0), state.range(1)));
  FlatQuery fq = bench::FlattenQuery(db, kTwoDimensional);
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunJoinPlan(db, fq);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_SecondDim_Baseline_JoinPlan)
    ->Args({1000, 31})
    ->Args({1000, 70})
    ->Args({10000, 31})
    ->Args({10000, 70});

void BM_SecondDim_Baseline_NestedLoop(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(),
                  SelectivityConfig(state.range(0), state.range(1)));
  FlatQuery fq = bench::FlattenQuery(db, kTwoDimensional);
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunNestedLoop(db, fq);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_SecondDim_Baseline_NestedLoop)
    ->Args({1000, 31})
    ->Args({1000, 70})
    ->Args({10000, 31})
    ->Args({10000, 70});

// Bound-target variant: "which newYork employees own a 4-cylinder red
// automobile". The first literal matches a path against the
// already-bound color object — the indexed evaluator starts from red's
// inverted value→receiver bucket, where the fallback enumerates every
// 4-cylinder automobile's color and compares it to red. The second
// literal then finds each owner through the inverted member index of
// `vehicles` (or a scan over every vehicle group without it).
constexpr const char* kBoundColor =
    "?- red[self->Y:automobile[cylinders->4].color], "
    "X:employee[city->newYork; vehicles->>{Y}].";

CompanyConfig ManyColorsConfig(int64_t employees) {
  CompanyConfig cfg = bench::ScaledCompany(employees);
  // 32 colors: color0 ("red") selects ~3% of vehicles, so the inverted
  // bucket probe skips the vast majority of color facts.
  cfg.num_colors = 32;
  return cfg;
}

void BM_SecondDim_BoundTarget(benchmark::State& state) {
  Database db = bench::MakeDatabase(true);
  GenerateCompany(&db.store(), ManyColorsConfig(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunPathLog(db, kBoundColor);
    benchmark::DoNotOptimize(answers);
  }
  bench::ReportThroughput(state, db, answers);
}
BENCHMARK(BM_SecondDim_BoundTarget)->Arg(1000)->Arg(10000);

void BM_SecondDim_BoundTarget_NoIndex(benchmark::State& state) {
  Database db = bench::MakeDatabase(false);
  GenerateCompany(&db.store(), ManyColorsConfig(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunPathLog(db, kBoundColor);
    benchmark::DoNotOptimize(answers);
  }
  bench::ReportThroughput(state, db, answers);
}
BENCHMARK(BM_SecondDim_BoundTarget_NoIndex)->Arg(1000)->Arg(10000);

// Sanity: indexed and enumerate-and-compare evaluation of the bound
// color query agree (checked once per run).
void BM_SecondDim_IndexAgreementCheck(benchmark::State& state) {
  Database indexed = bench::MakeDatabase(true);
  Database scanned = bench::MakeDatabase(false);
  GenerateCompany(&indexed.store(), ManyColorsConfig(1000));
  GenerateCompany(&scanned.store(), ManyColorsConfig(1000));
  for (auto _ : state) {
    size_t a = bench::RunPathLog(indexed, kBoundColor);
    size_t b = bench::RunPathLog(scanned, kBoundColor);
    if (a != b) {
      fprintf(stderr, "FATAL: index evaluations disagree: %zu vs %zu\n", a, b);
      std::abort();
    }
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_SecondDim_IndexAgreementCheck)->Iterations(1);

// Sanity: the two PathLog formulations agree (checked once per run).
void BM_SecondDim_AgreementCheck(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), SelectivityConfig(1000, 40));
  for (auto _ : state) {
    size_t a = bench::RunPathLog(db, kTwoDimensional);
    size_t b = bench::RunPathLog(db, kConjunction);
    if (a != b) {
      fprintf(stderr, "FATAL: formulations disagree: %zu vs %zu\n", a, b);
      std::abort();
    }
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_SecondDim_AgreementCheck)->Iterations(1);

}  // namespace
}  // namespace pathlog
