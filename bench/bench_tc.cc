// Experiment E6.4/tc: transitive closure (`desc` and the generic
// `kids.tc`).
//
// Ablations:
//   Naive vs SemiNaiveRules   evaluation strategy (DESIGN.md ablation);
//   Chain / Tree / RandomDag  closure density;
//   Specialized vs Generic    the paper's desc rules vs the
//                             higher-order-style (M.tc) rules.
//
// Expected shape: semi-naive (predicate-level change propagation)
// never loses; the generic program pays a constant factor over the
// specialised one for the same answers (method objects resolved per
// derivation); chain graphs are the worst case (Theta(n^2) closure).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/kinship.h"

namespace pathlog {
namespace {

constexpr const char* kDescRules = R"(
  X[desc->>{Y}] <- X[kids->>{Y}].
  X[desc->>{Y}] <- X..desc[kids->>{Y}].
)";
constexpr const char* kGenericTcRules = R"(
  X[(M.tc)->>{Y}] <- X[M->>{Y}].
  X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].
)";

enum class Shape { kChain, kTree, kDag };

void BuildGraph(ObjectStore* store, Shape shape, int64_t n) {
  switch (shape) {
    case Shape::kChain:
      GenerateChain(store, static_cast<uint32_t>(n));
      break;
    case Shape::kTree:
      GenerateTree(store, static_cast<uint32_t>(n), 3);
      break;
    case Shape::kDag:
      GenerateRandomDag(store, static_cast<uint32_t>(n), 2.0, 99);
      break;
  }
}

void RunTc(benchmark::State& state, Shape shape, EvalStrategy strategy,
           const char* rules) {
  for (auto _ : state) {
    state.PauseTiming();
    DatabaseOptions opts;
    opts.engine.strategy = strategy;
    Database db(opts);
    BuildGraph(&db.store(), shape, state.range(0));
    bench::Check(db.Load(rules), "load rules");
    state.ResumeTiming();
    bench::Check(db.Materialize(), "materialize");
    benchmark::DoNotOptimize(db.engine_stats().derivations);
    state.counters["derivations"] =
        static_cast<double>(db.engine_stats().derivations);
    state.counters["iterations"] =
        static_cast<double>(db.engine_stats().iterations);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Tc_Chain_Naive(benchmark::State& state) {
  RunTc(state, Shape::kChain, EvalStrategy::kNaive, kDescRules);
}
BENCHMARK(BM_Tc_Chain_Naive)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Chain_SemiNaive(benchmark::State& state) {
  RunTc(state, Shape::kChain, EvalStrategy::kSemiNaiveRules, kDescRules);
}
BENCHMARK(BM_Tc_Chain_SemiNaive)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Chain_DeltaSemiNaive(benchmark::State& state) {
  RunTc(state, Shape::kChain, EvalStrategy::kSemiNaiveDelta, kDescRules);
}
BENCHMARK(BM_Tc_Chain_DeltaSemiNaive)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Tree_Naive(benchmark::State& state) {
  RunTc(state, Shape::kTree, EvalStrategy::kNaive, kDescRules);
}
BENCHMARK(BM_Tc_Tree_Naive)->Arg(200)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Tree_SemiNaive(benchmark::State& state) {
  RunTc(state, Shape::kTree, EvalStrategy::kSemiNaiveRules, kDescRules);
}
BENCHMARK(BM_Tc_Tree_SemiNaive)->Arg(200)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Tree_DeltaSemiNaive(benchmark::State& state) {
  RunTc(state, Shape::kTree, EvalStrategy::kSemiNaiveDelta, kDescRules);
}
BENCHMARK(BM_Tc_Tree_DeltaSemiNaive)->Arg(200)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Dag_Naive(benchmark::State& state) {
  RunTc(state, Shape::kDag, EvalStrategy::kNaive, kDescRules);
}
BENCHMARK(BM_Tc_Dag_Naive)->Arg(100)->Arg(300)->Arg(600)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Dag_SemiNaive(benchmark::State& state) {
  RunTc(state, Shape::kDag, EvalStrategy::kSemiNaiveRules, kDescRules);
}
BENCHMARK(BM_Tc_Dag_SemiNaive)->Arg(100)->Arg(300)->Arg(600)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Dag_DeltaSemiNaive(benchmark::State& state) {
  RunTc(state, Shape::kDag, EvalStrategy::kSemiNaiveDelta, kDescRules);
}
BENCHMARK(BM_Tc_Dag_DeltaSemiNaive)->Arg(100)->Arg(300)->Arg(600)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Generic_Chain(benchmark::State& state) {
  RunTc(state, Shape::kChain, EvalStrategy::kSemiNaiveRules, kGenericTcRules);
}
BENCHMARK(BM_Tc_Generic_Chain)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Generic_Tree(benchmark::State& state) {
  RunTc(state, Shape::kTree, EvalStrategy::kSemiNaiveRules, kGenericTcRules);
}
BENCHMARK(BM_Tc_Generic_Tree)->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Observability overhead twins: the same workload with the metrics
// registry attached vs detached. ci/bench_smoke.sh gates on the
// ratio — the disabled path must stay within 5% of the enabled one
// (instrumentation is per-run, not per-tuple, so the true overhead
// is far below that; the gate catches obs accidentally moving into
// the hot loop).
void RunTcObs(benchmark::State& state, bool obs_enabled) {
  for (auto _ : state) {
    state.PauseTiming();
    DatabaseOptions opts;
    opts.engine.strategy = EvalStrategy::kSemiNaiveRules;
    Database db(opts);
    if (obs_enabled) {
      ObsSinks sinks;
      sinks.metrics = &bench::BenchMetrics();
      db.SetObsSinks(sinks);
    }
    BuildGraph(&db.store(), Shape::kTree, state.range(0));
    bench::Check(db.Load(kDescRules), "load rules");
    state.ResumeTiming();
    bench::Check(db.Materialize(), "materialize");
    benchmark::DoNotOptimize(db.engine_stats().derivations);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Tc_Tree_ObsOff(benchmark::State& state) { RunTcObs(state, false); }
BENCHMARK(BM_Tc_Tree_ObsOff)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_Tc_Tree_ObsOn(benchmark::State& state) { RunTcObs(state, true); }
BENCHMARK(BM_Tc_Tree_ObsOn)->Arg(1000)->Unit(benchmark::kMillisecond);

// Querying the closure after materialisation: the paper's answer
// lookup `peter..(kids.tc)` as a point query.
void BM_Tc_ClosureLookup(benchmark::State& state) {
  Database db;
  BuildGraph(&db.store(), Shape::kTree, state.range(0));
  bench::Check(db.Load(kDescRules), "load rules");
  bench::Check(db.Materialize(), "materialize");
  size_t n = 0;
  for (auto _ : state) {
    std::vector<Oid> descendants =
        bench::CheckResult(db.Eval("t0..desc"), "eval");
    n = descendants.size();
    benchmark::DoNotOptimize(descendants);
  }
  state.counters["descendants"] = static_cast<double>(n);
}
BENCHMARK(BM_Tc_ClosureLookup)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace pathlog
