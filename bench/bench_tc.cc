// Experiment E6.4/tc: transitive closure (`desc` and the generic
// `kids.tc`).
//
// Ablations:
//   Naive vs SemiNaiveRules   evaluation strategy (DESIGN.md ablation);
//   Chain / Tree / RandomDag  closure density;
//   Specialized vs Generic    the paper's desc rules vs the
//                             higher-order-style (M.tc) rules.
//
// Expected shape: semi-naive (predicate-level change propagation)
// never loses; the generic program pays a constant factor over the
// specialised one for the same answers (method objects resolved per
// derivation); chain graphs are the worst case (Theta(n^2) closure).

#include <benchmark/benchmark.h>

#include <ctime>

#include "base/budget.h"
#include "bench_util.h"
#include "obs/flight_recorder.h"
#include "obs/query_log.h"
#include "workload/kinship.h"

namespace pathlog {
namespace {

constexpr const char* kDescRules = R"(
  X[desc->>{Y}] <- X[kids->>{Y}].
  X[desc->>{Y}] <- X..desc[kids->>{Y}].
)";
constexpr const char* kGenericTcRules = R"(
  X[(M.tc)->>{Y}] <- X[M->>{Y}].
  X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].
)";

enum class Shape { kChain, kTree, kDag };

void BuildGraph(ObjectStore* store, Shape shape, int64_t n) {
  switch (shape) {
    case Shape::kChain:
      GenerateChain(store, static_cast<uint32_t>(n));
      break;
    case Shape::kTree:
      GenerateTree(store, static_cast<uint32_t>(n), 3);
      break;
    case Shape::kDag:
      GenerateRandomDag(store, static_cast<uint32_t>(n), 2.0, 99);
      break;
  }
}

void RunTc(benchmark::State& state, Shape shape, EvalStrategy strategy,
           const char* rules) {
  for (auto _ : state) {
    state.PauseTiming();
    DatabaseOptions opts;
    opts.engine.strategy = strategy;
    Database db(opts);
    BuildGraph(&db.store(), shape, state.range(0));
    bench::Check(db.Load(rules), "load rules");
    state.ResumeTiming();
    bench::Check(db.Materialize(), "materialize");
    benchmark::DoNotOptimize(db.engine_stats().derivations);
    state.counters["derivations"] =
        static_cast<double>(db.engine_stats().derivations);
    state.counters["iterations"] =
        static_cast<double>(db.engine_stats().iterations);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Tc_Chain_Naive(benchmark::State& state) {
  RunTc(state, Shape::kChain, EvalStrategy::kNaive, kDescRules);
}
BENCHMARK(BM_Tc_Chain_Naive)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Chain_SemiNaive(benchmark::State& state) {
  RunTc(state, Shape::kChain, EvalStrategy::kSemiNaiveRules, kDescRules);
}
BENCHMARK(BM_Tc_Chain_SemiNaive)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Chain_DeltaSemiNaive(benchmark::State& state) {
  RunTc(state, Shape::kChain, EvalStrategy::kSemiNaiveDelta, kDescRules);
}
BENCHMARK(BM_Tc_Chain_DeltaSemiNaive)->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Tree_Naive(benchmark::State& state) {
  RunTc(state, Shape::kTree, EvalStrategy::kNaive, kDescRules);
}
BENCHMARK(BM_Tc_Tree_Naive)->Arg(200)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Tree_SemiNaive(benchmark::State& state) {
  RunTc(state, Shape::kTree, EvalStrategy::kSemiNaiveRules, kDescRules);
}
BENCHMARK(BM_Tc_Tree_SemiNaive)->Arg(200)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Tree_DeltaSemiNaive(benchmark::State& state) {
  RunTc(state, Shape::kTree, EvalStrategy::kSemiNaiveDelta, kDescRules);
}
BENCHMARK(BM_Tc_Tree_DeltaSemiNaive)->Arg(200)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Dag_Naive(benchmark::State& state) {
  RunTc(state, Shape::kDag, EvalStrategy::kNaive, kDescRules);
}
BENCHMARK(BM_Tc_Dag_Naive)->Arg(100)->Arg(300)->Arg(600)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Dag_SemiNaive(benchmark::State& state) {
  RunTc(state, Shape::kDag, EvalStrategy::kSemiNaiveRules, kDescRules);
}
BENCHMARK(BM_Tc_Dag_SemiNaive)->Arg(100)->Arg(300)->Arg(600)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Dag_DeltaSemiNaive(benchmark::State& state) {
  RunTc(state, Shape::kDag, EvalStrategy::kSemiNaiveDelta, kDescRules);
}
BENCHMARK(BM_Tc_Dag_DeltaSemiNaive)->Arg(100)->Arg(300)->Arg(600)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Generic_Chain(benchmark::State& state) {
  RunTc(state, Shape::kChain, EvalStrategy::kSemiNaiveRules, kGenericTcRules);
}
BENCHMARK(BM_Tc_Generic_Chain)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Generic_Tree(benchmark::State& state) {
  RunTc(state, Shape::kTree, EvalStrategy::kSemiNaiveRules, kGenericTcRules);
}
BENCHMARK(BM_Tc_Generic_Tree)->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Observability overhead twins: the same workload with the metrics
// registry attached vs detached. ci/bench_smoke.sh gates on the
// ratio — the disabled path must stay within 5% of the enabled one
// (instrumentation is per-run, not per-tuple, so the true overhead
// is far below that; the gate catches obs accidentally moving into
// the hot loop).
void RunTcObs(benchmark::State& state, bool obs_enabled) {
  for (auto _ : state) {
    state.PauseTiming();
    DatabaseOptions opts;
    opts.engine.strategy = EvalStrategy::kSemiNaiveRules;
    Database db(opts);
    if (obs_enabled) {
      ObsSinks sinks;
      sinks.metrics = &bench::BenchMetrics();
      db.SetObsSinks(sinks);
    }
    BuildGraph(&db.store(), Shape::kTree, state.range(0));
    bench::Check(db.Load(kDescRules), "load rules");
    state.ResumeTiming();
    bench::Check(db.Materialize(), "materialize");
    benchmark::DoNotOptimize(db.engine_stats().derivations);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Tc_Tree_ObsOff(benchmark::State& state) { RunTcObs(state, false); }
BENCHMARK(BM_Tc_Tree_ObsOff)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_Tc_Tree_ObsOn(benchmark::State& state) { RunTcObs(state, true); }
BENCHMARK(BM_Tc_Tree_ObsOn)->Arg(1000)->Unit(benchmark::kMillisecond);

// Resource-budget overhead twins: the same materialisation with a
// never-tripping ResourceBudget attached vs none. The budget is
// polled per rule evaluation and every ~1k enumeration steps, never
// per tuple, so ci/bench_smoke.sh holds the twins to the same 5%
// agreement the obs twins get.
void RunTcBudget(benchmark::State& state, bool budget_enabled) {
  ResourceBudget budget(ResourceLimits{/*max_store_bytes=*/1ull << 40,
                                       /*max_derivations=*/1ull << 40,
                                       /*max_wall_ms=*/600'000});
  for (auto _ : state) {
    state.PauseTiming();
    DatabaseOptions opts;
    opts.engine.strategy = EvalStrategy::kSemiNaiveRules;
    if (budget_enabled) opts.engine.budget = &budget;
    Database db(opts);
    BuildGraph(&db.store(), Shape::kTree, state.range(0));
    bench::Check(db.Load(kDescRules), "load rules");
    state.ResumeTiming();
    bench::Check(db.Materialize(), "materialize");
    benchmark::DoNotOptimize(db.engine_stats().derivations);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Engine_BudgetChecksOff(benchmark::State& state) {
  RunTcBudget(state, false);
}
BENCHMARK(BM_Engine_BudgetChecksOff)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_Engine_BudgetChecksOn(benchmark::State& state) {
  RunTcBudget(state, true);
}
BENCHMARK(BM_Engine_BudgetChecksOn)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Paired overhead rows: the twins above report absolute times, but on
// a shared CI core the machine's speed drifts faster than the twins
// run, so two separately-timed blocks cannot resolve a 5% difference.
// Each iteration here times the enabled and disabled variants
// back-to-back in ABBA order (cancels linear drift) on the thread CPU
// clock (ignores preemption), and exports the on/off ratio as a
// counter — ci/bench_smoke.sh gates on the median ratio across
// repetitions.
double ThreadCpuMs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

double TimedMaterializeMs(bool budget_on, ResourceBudget* budget,
                          bool obs_on, int64_t n) {
  DatabaseOptions opts;
  opts.engine.strategy = EvalStrategy::kSemiNaiveRules;
  if (budget_on) opts.engine.budget = budget;
  Database db(opts);
  if (obs_on) {
    ObsSinks sinks;
    sinks.metrics = &bench::BenchMetrics();
    db.SetObsSinks(sinks);
  }
  BuildGraph(&db.store(), Shape::kTree, n);
  bench::Check(db.Load(kDescRules), "load rules");
  const double t0 = ThreadCpuMs();
  bench::Check(db.Materialize(), "materialize");
  const double ms = ThreadCpuMs() - t0;
  benchmark::DoNotOptimize(db.engine_stats().derivations);
  return ms;
}

// Full serving-diagnostics twin: metrics + flight recorder + an
// in-memory query log — the sinks `\stats_server` wires up — timing a
// materialisation plus one closure lookup so the query-log append path
// is exercised, not just the engine spans.
double TimedDiagMs(bool diag_on, int64_t n) {
  DatabaseOptions opts;
  opts.engine.strategy = EvalStrategy::kSemiNaiveRules;
  Database db(opts);
  FlightRecorder flight(256);
  QueryLog query_log(QueryLogOptions{});
  if (diag_on) {
    ObsSinks sinks;
    sinks.metrics = &bench::BenchMetrics();
    sinks.flight = &flight;
    sinks.query_log = &query_log;
    db.SetObsSinks(sinks);
  }
  BuildGraph(&db.store(), Shape::kTree, n);
  bench::Check(db.Load(kDescRules), "load rules");
  const double t0 = ThreadCpuMs();
  bench::Check(db.Materialize(), "materialize");
  std::vector<Oid> descendants =
      bench::CheckResult(db.Eval("t0..desc"), "eval");
  const double ms = ThreadCpuMs() - t0;
  benchmark::DoNotOptimize(descendants);
  return ms;
}

enum class PairKind { kBudget, kObs, kDiag };

void RunPaired(benchmark::State& state, PairKind kind) {
  ResourceBudget budget(ResourceLimits{/*max_store_bytes=*/1ull << 40,
                                       /*max_derivations=*/1ull << 40,
                                       /*max_wall_ms=*/600'000});
  const int64_t n = state.range(0);
  auto run = [&](bool on) {
    switch (kind) {
      case PairKind::kBudget:
        return TimedMaterializeMs(on, &budget, false, n);
      case PairKind::kObs:
        return TimedMaterializeMs(false, nullptr, on, n);
      case PairKind::kDiag:
        return TimedDiagMs(on, n);
    }
    return 0.0;
  };
  double off_ms = 0, on_ms = 0;
  for (auto _ : state) {
    off_ms += run(false);
    on_ms += run(true);
    on_ms += run(true);
    off_ms += run(false);
  }
  const double sides = 2.0 * static_cast<double>(state.iterations());
  state.counters["off_cpu_ms"] = off_ms / sides;
  state.counters["on_cpu_ms"] = on_ms / sides;
  state.counters["on_off_ratio"] = off_ms > 0 ? on_ms / off_ms : 0;
}

// Iterations are pinned (min_time would pick 1): a single ~20ms
// materialisation still carries ~10% cache/TLB noise on a shared
// core, so each repetition's ratio must average several pairs to be
// worth gating on.
void BM_Engine_BudgetChecksPaired(benchmark::State& state) {
  RunPaired(state, PairKind::kBudget);
}
BENCHMARK(BM_Engine_BudgetChecksPaired)->Arg(1000)->Iterations(6)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Tree_ObsPaired(benchmark::State& state) {
  RunPaired(state, PairKind::kObs);
}
BENCHMARK(BM_Tc_Tree_ObsPaired)->Arg(1000)->Iterations(6)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_Tree_DiagPaired(benchmark::State& state) {
  RunPaired(state, PairKind::kDiag);
}
BENCHMARK(BM_Tc_Tree_DiagPaired)->Arg(1000)->Iterations(6)
    ->Unit(benchmark::kMillisecond);

// Querying the closure after materialisation: the paper's answer
// lookup `peter..(kids.tc)` as a point query.
void BM_Tc_ClosureLookup(benchmark::State& state) {
  Database db;
  BuildGraph(&db.store(), Shape::kTree, state.range(0));
  bench::Check(db.Load(kDescRules), "load rules");
  bench::Check(db.Materialize(), "materialize");
  size_t n = 0;
  for (auto _ : state) {
    std::vector<Oid> descendants =
        bench::CheckResult(db.Eval("t0..desc"), "eval");
    n = descendants.size();
    benchmark::DoNotOptimize(descendants);
  }
  state.counters["descendants"] = static_cast<double>(n);
}
BENCHMARK(BM_Tc_ClosureLookup)->Arg(1000)->Arg(5000);

// Concurrency-guard paired twin: the same ABBA protocol as the obs
// twins, timing the read path (closure lookups on a materialised
// store) with the Database snapshot guard on vs off. The off side is
// the pre-guard single-threaded configuration, so on_off_ratio is
// exactly what the shared_mutex costs an uncontended reader —
// ci/bench_smoke.sh gates its median at 1.05.
double TimedLockMs(bool guard_on, int64_t n) {
  DatabaseOptions opts;
  opts.engine.strategy = EvalStrategy::kSemiNaiveRules;
  opts.concurrency_guard = guard_on;
  Database db(opts);
  BuildGraph(&db.store(), Shape::kTree, n);
  bench::Check(db.Load(kDescRules), "load rules");
  bench::Check(db.Materialize(), "materialize");
  // Warm one lookup so both sides time steady-state reads.
  benchmark::DoNotOptimize(bench::CheckResult(db.Eval("t0..desc"), "eval"));
  const double t0 = ThreadCpuMs();
  for (int i = 0; i < 8; ++i) {
    std::vector<Oid> descendants =
        bench::CheckResult(db.Eval("t0..desc"), "eval");
    benchmark::DoNotOptimize(descendants);
  }
  return ThreadCpuMs() - t0;
}

void BM_Db_LockPaired(benchmark::State& state) {
  const int64_t n = state.range(0);
  double off_ms = 0, on_ms = 0;
  for (auto _ : state) {
    off_ms += TimedLockMs(false, n);
    on_ms += TimedLockMs(true, n);
    on_ms += TimedLockMs(true, n);
    off_ms += TimedLockMs(false, n);
  }
  const double sides = 2.0 * static_cast<double>(state.iterations());
  state.counters["off_cpu_ms"] = off_ms / sides;
  state.counters["on_cpu_ms"] = on_ms / sides;
  state.counters["on_off_ratio"] = off_ms > 0 ? on_ms / off_ms : 0;
}
BENCHMARK(BM_Db_LockPaired)->Arg(1000)->Iterations(6)
    ->Unit(benchmark::kMillisecond);

// Concurrent readers on one shared Database: every thread runs the
// same closure lookup under the shared snapshot guard. Thread 0 owns
// setup/teardown (the documented google-benchmark idiom — the state
// loop's start barrier publishes the store to the other threads).
// Real time, not CPU time, is the honest scaling measure here.
Database* g_readers_db = nullptr;

void BM_Db_ConcurrentReaders(benchmark::State& state) {
  if (state.thread_index() == 0) {
    DatabaseOptions opts;
    opts.engine.strategy = EvalStrategy::kSemiNaiveRules;
    Database* db = new Database(opts);
    BuildGraph(&db->store(), Shape::kTree, state.range(0));
    bench::Check(db->Load(kDescRules), "load rules");
    bench::Check(db->Materialize(), "materialize");
    // Prime the lookup so every reader iteration stays on the
    // shared-lock fast path (names interned, nothing pending).
    bench::CheckResult(db->Eval("t0..desc"), "eval");
    g_readers_db = db;
  }
  for (auto _ : state) {
    std::vector<Oid> descendants =
        bench::CheckResult(g_readers_db->Eval("t0..desc"), "eval");
    benchmark::DoNotOptimize(descendants);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete g_readers_db;
    g_readers_db = nullptr;
  }
}
BENCHMARK(BM_Db_ConcurrentReaders)->Arg(1000)
    ->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pathlog
