// Experiment E6.strat: stratification. Measures (a) the cost of the
// dependency/stratification analysis itself as rule count grows, and
// (b) end-to-end evaluation of a two-stratum program (derived set,
// then a needs-complete consumer) versus the equivalent single-stratum
// program that copies memberships one at a time.

#include <benchmark/benchmark.h>

#include "base/strings.h"
#include "bench_util.h"
#include "eval/dependency.h"
#include "eval/stratify.h"

namespace pathlog {
namespace {

// A layered program: methods m0..m{k-1}, each defined from the
// complete extent of the previous one — k strata.
std::string LayeredProgram(int64_t layers) {
  std::string text = "seed[m0->>{a,b,c}].\n";
  for (int64_t i = 1; i < layers; ++i) {
    text += StrCat("X[m", i, "->>seed..m", i - 1, "] <- X[self->seed].\n");
  }
  return text;
}

void BM_Strat_AnalysisCost(benchmark::State& state) {
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Result<Program> prog = ParseProgram(LayeredProgram(state.range(0)));
  bench::Check(prog.status(), "parse");
  std::vector<Rule> rules;
  for (const Rule& r : prog->rules) {
    if (!r.IsFact()) rules.push_back(r);
  }
  for (auto _ : state) {
    DependencyGraph graph = bench::CheckResult(
        DependencyGraph::Build(rules, &store, HeadValueMode::kRequireDefined),
        "build graph");
    Stratification strata =
        bench::CheckResult(Stratify(graph, rules.size()), "stratify");
    benchmark::DoNotOptimize(strata.num_strata);
    state.counters["strata"] = static_cast<double>(strata.num_strata);
  }
}
BENCHMARK(BM_Strat_AnalysisCost)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_Strat_LayeredEvaluation(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    bench::Check(db.Load(LayeredProgram(state.range(0))), "load");
    state.ResumeTiming();
    bench::Check(db.Materialize(), "materialize");
    state.counters["strata"] =
        static_cast<double>(db.engine_stats().num_strata);
  }
}
BENCHMARK(BM_Strat_LayeredEvaluation)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// The same copy expressed member-at-a-time needs no stratification.
std::string MemberAtATimeProgram(int64_t layers) {
  std::string text = "seed[m0->>{a,b,c}].\n";
  for (int64_t i = 1; i < layers; ++i) {
    text += StrCat("X[m", i, "->>{Y}] <- X[m", i - 1, "->>{Y}].\n");
  }
  return text;
}

void BM_Strat_MemberAtATimeEquivalent(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    bench::Check(db.Load(MemberAtATimeProgram(state.range(0))), "load");
    state.ResumeTiming();
    bench::Check(db.Materialize(), "materialize");
    state.counters["strata"] =
        static_cast<double>(db.engine_stats().num_strata);
  }
}
BENCHMARK(BM_Strat_MemberAtATimeEquivalent)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Detecting unstratifiability must be fast (rejected before any
// fixpoint work).
void BM_Strat_RejectionCost(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    bench::Check(db.Load(R"(
      p[assistants->>{a}].
      p : person.
      X[assistants->>p..assistants] <- X : person.
    )"), "load");
    state.ResumeTiming();
    Status st = db.Materialize();
    if (st.code() != StatusCode::kNotStratifiable) {
      fprintf(stderr, "FATAL: expected kNotStratifiable, got %s\n",
              st.ToString().c_str());
      std::abort();
    }
  }
}
BENCHMARK(BM_Strat_RejectionCost)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pathlog
