// Active-rule throughput: events processed per second, cascade costs,
// and the trigger-vs-deductive comparison for incremental derivation
// (the paper's section-7 claim made quantitative: the same reference
// machinery under two evaluation paradigms).

#include <benchmark/benchmark.h>

#include "base/strings.h"
#include "bench_util.h"

namespace pathlog {
namespace {

// N new vehicles arrive; one trigger classifies the red ones.
void BM_Triggers_EventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    bench::Check(db.Load(
        "hot[is->>{V}] <~ V:automobile[color->red]."), "load trigger");
    std::string facts;
    for (int64_t i = 0; i < state.range(0); ++i) {
      facts += StrCat("v", i, " : automobile[color->",
                      i % 3 == 0 ? "red" : "blue", "].\n");
    }
    bench::Check(db.Load(facts), "load facts");
    state.ResumeTiming();
    bench::Check(db.FireTriggers(), "fire");
    state.counters["firings"] =
        static_cast<double>(db.trigger_stats().firings);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Triggers_EventThroughput)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Cascade depth: a chain of k triggers, each consuming the previous
// one's action.
void BM_Triggers_CascadeDepth(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    std::string triggers;
    for (int64_t i = 1; i <= state.range(0); ++i) {
      triggers += StrCat("X[step", i, "->1] <~ X[step", i - 1, "->1].\n");
    }
    bench::Check(db.Load(triggers), "load triggers");
    bench::Check(db.Load("seed[step0->1]."), "seed");
    state.ResumeTiming();
    bench::Check(db.FireTriggers(), "fire");
    state.counters["rounds"] =
        static_cast<double>(db.trigger_stats().rounds);
  }
}
BENCHMARK(BM_Triggers_CascadeDepth)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Incremental derivation: after a batch of new facts, fire triggers
// (delta-driven) versus re-materialise the equivalent deductive rule.
void BM_Triggers_IncrementalTrigger(benchmark::State& state) {
  Database db;
  bench::Check(db.Load(
      "hot[is->>{V}] <~ V:automobile[color->red]."), "load trigger");
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  bench::Check(db.FireTriggers(), "initial fire");
  int64_t batch = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string facts = StrCat("nv", batch++,
                               " : automobile[color->red].\n");
    bench::Check(db.Load(facts), "new fact");
    state.ResumeTiming();
    bench::Check(db.FireTriggers(), "fire");
  }
}
BENCHMARK(BM_Triggers_IncrementalTrigger)->Arg(1000)->Arg(10000);

void BM_Triggers_IncrementalDeductive(benchmark::State& state) {
  Database db;
  bench::Check(db.Load(
      "hot[is->>{V}] <- V:automobile[color->red]."), "load rule");
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  bench::Check(db.Materialize(), "initial materialize");
  int64_t batch = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string facts = StrCat("nv", batch++,
                               " : automobile[color->red].\n");
    bench::Check(db.Load(facts), "new fact");
    state.ResumeTiming();
    bench::Check(db.Materialize(), "re-materialize");
  }
}
BENCHMARK(BM_Triggers_IncrementalDeductive)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace pathlog
