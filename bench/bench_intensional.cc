// Experiment E6.pow: intensional methods on existing objects — the
// paper's `power` rule deriving a method from a sub-object. Measures
// materialisation throughput and the cost of querying intensional vs
// extensional methods afterwards.

#include <benchmark/benchmark.h>

#include "base/strings.h"
#include "bench_util.h"

namespace pathlog {
namespace {

/// Builds n automobiles each with an engine object carrying power.
void BuildEngines(ObjectStore* store, int64_t n) {
  Oid automobile = store->InternSymbol("automobile");
  Oid engine = store->InternSymbol("engine");
  Oid power = store->InternSymbol("power");
  for (int64_t i = 0; i < n; ++i) {
    Oid car = store->InternSymbol(StrCat("car", i));
    Oid eng = store->InternSymbol(StrCat("eng", i));
    bench::Check(store->AddIsa(car, automobile), "isa");
    bench::Check(store->SetScalar(engine, car, {}, eng), "engine");
    bench::Check(
        store->SetScalar(power, eng, {}, store->InternInt(100 + i % 200)),
        "power");
  }
}

void BM_Intensional_PowerMaterialize(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    BuildEngines(&db.store(), state.range(0));
    bench::Check(
        db.Load("X[power->Y] <- X:automobile.engine[power->Y]."), "load");
    state.ResumeTiming();
    bench::Check(db.Materialize(), "materialize");
    state.counters["derivations"] =
        static_cast<double>(db.engine_stats().derivations);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Intensional_PowerMaterialize)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// After materialisation, the derived method is as cheap as a stored one.
void BM_Intensional_QueryDerived(benchmark::State& state) {
  Database db;
  BuildEngines(&db.store(), state.range(0));
  bench::Check(db.Load("X[power->Y] <- X:automobile.engine[power->Y]."),
               "load");
  bench::Check(db.Materialize(), "materialize");
  for (auto _ : state) {
    std::vector<Oid> v = bench::CheckResult(db.Eval("car42.power"), "eval");
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Intensional_QueryDerived)->Arg(1000)->Arg(10000);

// The same information through navigation (no materialisation).
void BM_Intensional_QueryNavigational(benchmark::State& state) {
  Database db;
  BuildEngines(&db.store(), state.range(0));
  bench::Check(db.Materialize(), "materialize");
  for (auto _ : state) {
    std::vector<Oid> v =
        bench::CheckResult(db.Eval("car42.engine.power"), "eval");
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Intensional_QueryNavigational)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace pathlog
