// Experiment Estore: object-store substrate throughput — interning,
// hierarchy closure maintenance, scalar/set method facts and lookups,
// and the durability layer (WAL append and recovery replay).

#include <benchmark/benchmark.h>

#include "base/strings.h"
#include "bench_util.h"
#include "store/file_ops.h"
#include "store/wal.h"

namespace pathlog {
namespace {

void BM_Store_InternSymbols(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ObjectStore store;
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(store.InternSymbol(StrCat("sym", i)));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Store_InternSymbols)->Arg(10000)->Arg(100000);

void BM_Store_InternHit(benchmark::State& state) {
  ObjectStore store;
  for (int64_t i = 0; i < 10000; ++i) store.InternSymbol(StrCat("sym", i));
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.InternSymbol(StrCat("sym", i % 10000)));
    ++i;
  }
}
BENCHMARK(BM_Store_InternHit);

void BM_Store_IsaFlatClass(benchmark::State& state) {
  // n members directly under one class: the common shape.
  for (auto _ : state) {
    state.PauseTiming();
    ObjectStore store;
    Oid c = store.InternSymbol("c");
    std::vector<Oid> members;
    for (int64_t i = 0; i < state.range(0); ++i) {
      members.push_back(store.InternSymbol(StrCat("o", i)));
    }
    state.ResumeTiming();
    for (Oid o : members) {
      bench::Check(store.AddIsa(o, c), "isa");
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Store_IsaFlatClass)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Store_IsaDeepChain(benchmark::State& state) {
  // A subclass chain of depth n: the closure-maintenance worst case.
  for (auto _ : state) {
    state.PauseTiming();
    ObjectStore store;
    std::vector<Oid> classes;
    for (int64_t i = 0; i < state.range(0); ++i) {
      classes.push_back(store.InternSymbol(StrCat("c", i)));
    }
    state.ResumeTiming();
    for (size_t i = 0; i + 1 < classes.size(); ++i) {
      bench::Check(store.AddIsa(classes[i + 1], classes[i]), "isa");
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Store_IsaDeepChain)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_Store_ScalarInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ObjectStore store;
    Oid m = store.InternSymbol("m");
    std::vector<Oid> objs;
    for (int64_t i = 0; i < state.range(0); ++i) {
      objs.push_back(store.InternSymbol(StrCat("o", i)));
    }
    state.ResumeTiming();
    for (size_t i = 0; i + 1 < objs.size(); ++i) {
      bench::Check(store.SetScalar(m, objs[i], {}, objs[i + 1]), "set");
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Store_ScalarInsert)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Store_ScalarLookup(benchmark::State& state) {
  ObjectStore store;
  Oid m = store.InternSymbol("m");
  std::vector<Oid> objs;
  for (int64_t i = 0; i < 100000; ++i) {
    objs.push_back(store.InternSymbol(StrCat("o", i)));
  }
  for (size_t i = 0; i + 1 < objs.size(); ++i) {
    bench::Check(store.SetScalar(m, objs[i], {}, objs[i + 1]), "set");
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.GetScalar(m, objs[i % 99999], {}));
    ++i;
  }
}
BENCHMARK(BM_Store_ScalarLookup);

void BM_Store_SetMemberInsert(benchmark::State& state) {
  // One receiver with a growing member set plus many small groups.
  for (auto _ : state) {
    state.PauseTiming();
    ObjectStore store;
    Oid m = store.InternSymbol("m");
    Oid hub = store.InternSymbol("hub");
    std::vector<Oid> objs;
    for (int64_t i = 0; i < state.range(0); ++i) {
      objs.push_back(store.InternSymbol(StrCat("o", i)));
    }
    state.ResumeTiming();
    for (Oid o : objs) {
      benchmark::DoNotOptimize(store.AddSetMember(m, hub, {}, o));
      benchmark::DoNotOptimize(store.AddSetMember(m, o, {}, hub));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_Store_SetMemberInsert)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/// A store of n objects chained by scalar facts, plus the WAL image
/// that CommitDurable would write for it (interns then facts).
struct WalFixture {
  ObjectStore store;
  std::string wal;

  explicit WalFixture(int64_t n) {
    Oid m = store.InternSymbol("m");
    std::vector<Oid> objs;
    for (int64_t i = 0; i < n; ++i) {
      objs.push_back(store.InternSymbol(StrCat("o", i)));
    }
    for (size_t i = 0; i + 1 < objs.size(); ++i) {
      bench::Check(store.SetScalar(m, objs[i], {}, objs[i + 1]), "set");
    }
    wal.assign(kWalMagic, kWalMagicLen);
    for (Oid o = 0; o < store.UniverseSize(); ++o) {
      AppendWalFrame(&wal, EncodeWalIntern(o, store.kind(o), 0,
                                           store.DisplayName(o)));
    }
    for (uint64_t g = 0; g < store.generation(); ++g) {
      AppendWalFrame(&wal, EncodeWalFact(g, store.FactAt(g)));
    }
  }

  uint64_t records() const {
    return store.UniverseSize() + store.generation();
  }
};

void BM_Store_WalAppend(benchmark::State& state) {
  // Encode + frame + append one commit's worth of records through the
  // in-memory file system: the logging path with the disk factored out.
  WalFixture fx(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    FaultInjectingFileOps fs;
    auto file = fs.OpenForWrite("/wal", /*truncate=*/true);
    bench::Check(file.status(), "open");
    (void)(*file)->Append(std::string_view(kWalMagic, kWalMagicLen));
    WalAppender appender(std::move(*file));
    state.ResumeTiming();
    for (Oid o = 0; o < fx.store.UniverseSize(); ++o) {
      bench::Check(appender.Append(EncodeWalIntern(
                       o, fx.store.kind(o), 0, fx.store.DisplayName(o))),
                   "append");
    }
    for (uint64_t g = 0; g < fx.store.generation(); ++g) {
      bench::Check(appender.Append(EncodeWalFact(g, fx.store.FactAt(g))),
                   "append");
    }
    bench::Check(appender.Sync(), "sync");
  }
  state.SetItemsProcessed(state.iterations() * fx.records());
}
BENCHMARK(BM_Store_WalAppend)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Store_WalRecovery(benchmark::State& state) {
  // Scan (CRC every frame) and replay a WAL into an empty store: the
  // startup cost a durable database pays per un-checkpointed record.
  WalFixture fx(state.range(0));
  for (auto _ : state) {
    ObjectStore recovered;
    Result<WalScan> scan = ScanWal(fx.wal);
    bench::Check(scan.status(), "scan");
    for (const WalRecord& rec : scan->records) {
      bench::Check(ApplyWalRecordToStore(rec, &recovered), "replay");
    }
    benchmark::DoNotOptimize(recovered.generation());
  }
  state.SetItemsProcessed(state.iterations() * fx.records());
}
BENCHMARK(BM_Store_WalRecovery)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Store_WalScanOnly(benchmark::State& state) {
  // The pure integrity pass: frame walk + CRC32, no store mutation.
  WalFixture fx(state.range(0));
  for (auto _ : state) {
    Result<WalScan> scan = ScanWal(fx.wal);
    bench::Check(scan.status(), "scan");
    benchmark::DoNotOptimize(scan->records.size());
  }
  state.SetItemsProcessed(state.iterations() * fx.records());
  state.SetBytesProcessed(state.iterations() * fx.wal.size());
}
BENCHMARK(BM_Store_WalScanOnly)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Store_MembersScan(benchmark::State& state) {
  ObjectStore store;
  CompanyData data =
      GenerateCompany(&store, bench::ScaledCompany(state.range(0)));
  for (auto _ : state) {
    size_t total = 0;
    for (Oid o : store.Members(data.employee_class)) {
      total += o;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Store_MembersScan)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace pathlog
