// Shared helpers for the benchmark binaries.
//
// Each benchmark reproduces one experiment row of DESIGN.md /
// EXPERIMENTS.md: it builds the paper's scenario at the requested
// scale, runs the PathLog formulation and the baseline formulations of
// the same query, and reports answers/sec so the relative shape
// (who wins, where crossovers fall) is visible directly in the output.

#ifndef PATHLOG_BENCH_BENCH_UTIL_H_
#define PATHLOG_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "baseline/conjunctive.h"
#include "baseline/translate.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "query/database.h"
#include "store/file_ops.h"
#include "workload/company.h"

namespace pathlog {
namespace bench {

/// Aborts the benchmark binary on error — benchmarks must not silently
/// measure failure paths.
inline void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    fprintf(stderr, "FATAL in %s: %s\n", what, st.ToString().c_str());
    std::abort();
  }
}

template <typename T>
inline T CheckResult(Result<T> r, const char* what) {
  if (!r.ok()) {
    fprintf(stderr, "FATAL in %s: %s\n", what, r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

/// Writes the process-wide bench metrics registry as JSON to the path
/// in $PATHLOG_METRICS_OUT, if set. Registered atexit by
/// BenchMetrics() so a metrics JSON lands next to the BENCH_*.json
/// whenever ci/bench_smoke.sh asks for one.
inline void WriteBenchMetricsAtExit();

/// Process-wide metrics registry for benchmarks that measure the
/// observability-enabled path (the *_ObsOn twins). One registry per
/// binary: counters accumulate across all benchmark runs, which is
/// exactly what the exported JSON should show.
inline MetricsRegistry& BenchMetrics() {
  static MetricsRegistry* registry = [] {
    static MetricsRegistry r;
    std::atexit(WriteBenchMetricsAtExit);
    return &r;
  }();
  return *registry;
}

inline void WriteBenchMetricsAtExit() {
  const char* path = std::getenv("PATHLOG_METRICS_OUT");
  if (path == nullptr || *path == '\0') return;
  Status st = WriteFileAtomic(DefaultFileOps(), path, BenchMetrics().ToJson());
  if (!st.ok()) {
    fprintf(stderr, "PATHLOG_METRICS_OUT: %s\n", st.ToString().c_str());
  }
}

/// A database with inverted-index evaluation toggled explicitly —
/// benchmarks pair an indexed run with a NoIndex twin to measure the
/// bound-target path-matching win.
inline Database MakeDatabase(bool use_inverted_indexes) {
  DatabaseOptions opts;
  opts.engine.use_inverted_indexes = use_inverted_indexes;
  return Database(opts);
}

/// Attaches the machine-readable counters every benchmark JSON row
/// carries (ci/bench_smoke.sh archives them): answer count, stored
/// fact count, and facts handled per second of wall time.
inline void ReportThroughput(benchmark::State& state, const Database& db,
                             size_t answers) {
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["facts"] = static_cast<double>(db.store().FactCount());
  state.counters["facts_per_sec"] = benchmark::Counter(
      static_cast<double>(db.store().FactCount()),
      benchmark::Counter::kIsIterationInvariantRate);
}

/// A company database at scale `num_employees` (other knobs default).
inline CompanyConfig ScaledCompany(int64_t num_employees) {
  CompanyConfig cfg;
  cfg.num_employees = static_cast<uint32_t>(num_employees);
  cfg.num_companies = std::max<uint32_t>(2, cfg.num_employees / 50);
  return cfg;
}

/// Runs a PathLog query and returns the answer count.
inline size_t RunPathLog(Database& db, const std::string& query) {
  ResultSet rs = CheckResult(db.Query(query), "PathLog query");
  return rs.size();
}

/// Flattens a query once (setup) for the baseline evaluators.
inline FlatQuery FlattenQuery(Database& db, const std::string& query) {
  Query q = CheckResult(ParseQuery(query), "parse query");
  return CheckResult(FlattenLiterals(q.body, &db.store()), "flatten");
}

inline size_t RunJoinPlan(Database& db, const FlatQuery& fq) {
  Relation rel = CheckResult(EvalJoinPlan(db.store(), fq), "join plan");
  return rel.NumRows();
}

inline size_t RunNestedLoop(Database& db, const FlatQuery& fq) {
  Relation rel = CheckResult(EvalNestedLoop(db.store(), fq), "nested loop");
  return rel.NumRows();
}

}  // namespace bench
}  // namespace pathlog

#endif  // PATHLOG_BENCH_BENCH_UTIL_H_
