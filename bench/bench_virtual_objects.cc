// Experiments E2.4 / E6.1 / E6.2: virtual objects.
//
//   AddressViews      rule (2.4): one virtual address per person —
//                     materialisation throughput as persons grow.
//   VirtualBoss       rule (6.1): virtual objects created per employee.
//   ExistingBoss      rule (6.2): the contrast rule that creates none.
//   HeadValueModes    ablation: kRequireDefined skips street-less
//                     persons; kSkolemize invents street objects too.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/people.h"

namespace pathlog {
namespace {

constexpr const char* kAddressRule =
    "X.address[street->X.street; city->X.city] <- X : person.";

void BM_Virtual_AddressViews(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    PeopleConfig cfg;
    cfg.num_persons = static_cast<uint32_t>(state.range(0));
    GeneratePeople(&db.store(), cfg);
    bench::Check(db.Load(kAddressRule), "load rule");
    state.ResumeTiming();
    bench::Check(db.Materialize(), "materialize");
    benchmark::DoNotOptimize(db.engine_stats().skolems_created);
    state.counters["virtual_objects"] =
        static_cast<double>(db.engine_stats().skolems_created);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Virtual_AddressViews)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Virtual_Boss61(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    CompanyConfig cfg = bench::ScaledCompany(state.range(0));
    GenerateCompany(&db.store(), cfg);
    bench::Check(
        db.Load("X.boss2[worksFor->D] <- X : employee[worksFor->D]."),
        "load rule");
    state.ResumeTiming();
    bench::Check(db.Materialize(), "materialize");
    state.counters["virtual_objects"] =
        static_cast<double>(db.engine_stats().skolems_created);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Virtual_Boss61)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Virtual_ExistingBoss62(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    CompanyConfig cfg = bench::ScaledCompany(state.range(0));
    GenerateCompany(&db.store(), cfg);
    // Set-valued on purpose: a boss may have subordinates in several
    // departments, and scalar methods are partial functions.
    bench::Check(
        db.Load(
            "Z[depts->>{D}] <- X : employee[worksFor->D].boss[Z]."),
        "load rule");
    state.ResumeTiming();
    bench::Check(db.Materialize(), "materialize");
    state.counters["virtual_objects"] =
        static_cast<double>(db.engine_stats().skolems_created);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Virtual_ExistingBoss62)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Ablation: head-value semantics on a population where only half the
// persons have a street attribute.
void RunHeadValueMode(benchmark::State& state, HeadValueMode mode) {
  for (auto _ : state) {
    state.PauseTiming();
    DatabaseOptions opts;
    opts.engine.head_value_mode = mode;
    Database db(opts);
    PeopleConfig cfg;
    cfg.num_persons = static_cast<uint32_t>(state.range(0));
    cfg.has_street_fraction = 0.5;
    GeneratePeople(&db.store(), cfg);
    bench::Check(db.Load(kAddressRule), "load rule");
    state.ResumeTiming();
    bench::Check(db.Materialize(), "materialize");
    state.counters["virtual_objects"] =
        static_cast<double>(db.engine_stats().skolems_created);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Virtual_Mode_RequireDefined(benchmark::State& state) {
  RunHeadValueMode(state, HeadValueMode::kRequireDefined);
}
BENCHMARK(BM_Virtual_Mode_RequireDefined)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Virtual_Mode_Skolemize(benchmark::State& state) {
  RunHeadValueMode(state, HeadValueMode::kSkolemize);
}
BENCHMARK(BM_Virtual_Mode_Skolemize)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Re-materialisation is idempotent: the second run derives nothing new
// and must be much cheaper (the skolem cache is the store).
void BM_Virtual_Rederivation(benchmark::State& state) {
  Database db;
  PeopleConfig cfg;
  cfg.num_persons = static_cast<uint32_t>(state.range(0));
  GeneratePeople(&db.store(), cfg);
  bench::Check(db.Load(kAddressRule), "load rule");
  bench::Check(db.Materialize(), "first materialize");
  for (auto _ : state) {
    bench::Check(db.Materialize(), "re-materialize");
  }
  state.counters["virtual_objects"] =
      static_cast<double>(db.engine_stats().skolems_created);
}
BENCHMARK(BM_Virtual_Rederivation)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pathlog
