// Experiment E5.set: the direct semantics in action — throughput of
// the Definition-4 valuation function and of the binding-enumeration
// evaluator on the paper's section-5 reference shapes.

#include <benchmark/benchmark.h>

#include "ast/analysis.h"
#include "base/strings.h"
#include "bench_util.h"
#include "eval/ref_eval.h"
#include "semantics/structure.h"
#include "semantics/valuation.h"

namespace pathlog {
namespace {

struct Fixture {
  Database db;
  RefPtr ref;

  Fixture(int64_t employees, const std::string& ref_text) {
    GenerateCompany(&db.store(), bench::ScaledCompany(employees));
    ref = bench::CheckResult(ParseRef(ref_text), "parse");
    bench::Check(CheckWellFormed(*ref), "well-formed");
  }

  /// An employee that actually owns an automobile (vehicle ownership is
  /// random; an arbitrary name could denote a carless employee and the
  /// benchmark would measure an empty traversal).
  static std::string CarOwner(int64_t employees) {
    ObjectStore probe;
    CompanyData data =
        GenerateCompany(&probe, bench::ScaledCompany(employees));
    Oid vehicles = *probe.FindSymbol("vehicles");
    Oid automobile = *probe.FindSymbol("automobile");
    for (const SetGroup& g : probe.SetGroups(vehicles)) {
      for (Oid v : g.members) {
        if (probe.IsA(v, automobile)) return probe.DisplayName(g.recv);
      }
    }
    return "emp0";
  }
};

// Ground valuation (Definition 4) of a two-dimensional path anchored
// at one employee.
void BM_Valuation_Definition4(benchmark::State& state) {
  Fixture f(state.range(0),
            Fixture::CarOwner(state.range(0)) +
                "..vehicles:automobile.color");
  SemanticStructure I(f.db.store());
  size_t n = 0;
  for (auto _ : state) {
    std::vector<Oid> v =
        bench::CheckResult(Valuate(I, *f.ref, {}), "valuate");
    n = v.size();
    benchmark::DoNotOptimize(v);
  }
  state.counters["denoted"] = static_cast<double>(n);
}
BENCHMARK(BM_Valuation_Definition4)->Arg(1000)->Arg(10000);

// The same reference through the enumeration evaluator.
void BM_Valuation_Enumerator(benchmark::State& state) {
  Fixture f(state.range(0),
            Fixture::CarOwner(state.range(0)) +
                "..vehicles:automobile.color");
  SemanticStructure I(f.db.store());
  RefEvaluator eval(I);
  size_t n = 0;
  for (auto _ : state) {
    Bindings b;
    n = bench::CheckResult(eval.EvalGround(*f.ref, &b), "eval").size();
  }
  state.counters["denoted"] = static_cast<double>(n);
}
BENCHMARK(BM_Valuation_Enumerator)->Arg(1000)->Arg(10000);

// Entailment of a scalar chain (the last employee is never a manager,
// so it always has a boss).
void BM_Valuation_ScalarChain(benchmark::State& state) {
  std::string ref_text =
      StrCat("emp", state.range(0) - 1, ".boss.worksFor");
  Fixture f(state.range(0), ref_text.c_str());
  SemanticStructure I(f.db.store());
  for (auto _ : state) {
    bool holds = bench::CheckResult(Entails(I, *f.ref, {}), "entails");
    benchmark::DoNotOptimize(holds);
  }
}
BENCHMARK(BM_Valuation_ScalarChain)->Arg(1000)->Arg(10000);

// Flattened set-of-sets (no nested sets, section 5): salaries of all
// assistants of all managers.
void BM_Valuation_SetFlattening(benchmark::State& state) {
  Fixture f(state.range(0), "(X:manager)..assistants.salary");
  SemanticStructure I(f.db.store());
  RefEvaluator eval(I);
  size_t n = 0;
  for (auto _ : state) {
    Bindings b;
    std::vector<Oid> out;
    Result<bool> r = eval.Enumerate(*f.ref, &b, [&](Oid o) -> Result<bool> {
      out.push_back(o);
      return true;
    });
    bench::Check(r.ok() ? Status::OK() : r.status(), "enumerate");
    n = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["emitted"] = static_cast<double>(n);
}
BENCHMARK(BM_Valuation_SetFlattening)->Arg(1000)->Arg(10000);

// Subset filters (cases 7/8 of Definition 4).
void BM_Valuation_SubsetFilter(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  bench::Check(db.Load("club[fans->>emp0..vehicles]."), "load");
  bench::Check(db.Materialize(), "materialize");
  RefPtr ref =
      bench::CheckResult(ParseRef("club[fans->>emp0..vehicles]"), "parse");
  SemanticStructure I(db.store());
  RefEvaluator eval(I);
  for (auto _ : state) {
    Bindings b;
    bool holds = bench::CheckResult(eval.Satisfiable(*ref, &b), "sat");
    benchmark::DoNotOptimize(holds);
  }
}
BENCHMARK(BM_Valuation_SubsetFilter)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace pathlog
