// Experiment E2.3: paths nested inside filters — "a path may be used
// wherever we expect an object". Query: employees living in the same
// city as their boss, written with a nested path [city->X.boss.city]
// versus the decomposed conjunction with an explicit join variable.

#include "bench_util.h"

namespace pathlog {
namespace {

constexpr const char* kNested = "?- X:employee[city->X.boss.city].";
constexpr const char* kDecomposed =
    "?- X:employee[boss->B], B[city->C], X[city->C].";

void BM_NestedRef_PathLog(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunPathLog(db, kNested);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_NestedRef_PathLog)->Arg(100)->Arg(1000)->Arg(10000);

void BM_NestedRef_Decomposed(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    // The decomposed form binds B and C explicitly; project to X for a
    // comparable answer count.
    ResultSet rs = bench::CheckResult(db.Query(kDecomposed), "query");
    answers = rs.Column("X", db.store()).size();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_NestedRef_Decomposed)->Arg(100)->Arg(1000)->Arg(10000);

// Bound-target path matching: "who reports to manager B", written with
// the target on the receiver side — B[self->X.boss] forces the path
// X.boss to be matched against the already-bound B. With the inverted
// value→receiver index each manager costs one bucket probe; without
// it, every manager pays a scan of boss's whole extent.
constexpr const char* kBoundTarget = "?- B:manager[self->X.boss].";

void BM_NestedRef_BoundTarget(benchmark::State& state) {
  Database db = bench::MakeDatabase(true);
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunPathLog(db, kBoundTarget);
    benchmark::DoNotOptimize(answers);
  }
  bench::ReportThroughput(state, db, answers);
}
BENCHMARK(BM_NestedRef_BoundTarget)->Arg(100)->Arg(1000)->Arg(10000);

void BM_NestedRef_BoundTarget_NoIndex(benchmark::State& state) {
  Database db = bench::MakeDatabase(false);
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunPathLog(db, kBoundTarget);
    benchmark::DoNotOptimize(answers);
  }
  bench::ReportThroughput(state, db, answers);
}
BENCHMARK(BM_NestedRef_BoundTarget_NoIndex)->Arg(100)->Arg(1000)->Arg(10000);

// Sanity: the indexed and enumerate-and-compare evaluations agree
// (checked once per run).
void BM_NestedRef_IndexAgreementCheck(benchmark::State& state) {
  Database indexed = bench::MakeDatabase(true);
  Database scanned = bench::MakeDatabase(false);
  GenerateCompany(&indexed.store(), bench::ScaledCompany(500));
  GenerateCompany(&scanned.store(), bench::ScaledCompany(500));
  for (auto _ : state) {
    size_t a = bench::RunPathLog(indexed, kBoundTarget);
    size_t b = bench::RunPathLog(scanned, kBoundTarget);
    if (a != b) {
      fprintf(stderr, "FATAL: index evaluations disagree: %zu vs %zu\n", a, b);
      std::abort();
    }
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_NestedRef_IndexAgreementCheck)->Iterations(1);

void BM_NestedRef_Baseline_JoinPlan(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  FlatQuery fq = bench::FlattenQuery(db, kDecomposed);
  fq.select = {"X"};
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunJoinPlan(db, fq);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_NestedRef_Baseline_JoinPlan)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace pathlog
