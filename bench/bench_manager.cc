// Experiment E2.man: the section-2 manager query — managers with a red
// vehicle produced by a Detroit company whose president they are. In
// O2SQL this takes two FROM- and three WHERE-clauses; in PathLog one
// reference. The benchmark compares the single-reference evaluation
// with the decomposed conjunction and the flat baselines.

#include "bench_util.h"

namespace pathlog {
namespace {

constexpr const char* kSingleReference =
    "?- X:manager..vehicles[color->red]"
    ".producedBy[city->detroit; president->X].";
constexpr const char* kDecomposed =
    "?- X:manager, X[vehicles->>{Y}], Y[color->red], Y[producedBy->P], "
    "P[city->detroit], P[president->X].";

void BM_Manager_PathLog_SingleRef(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    ResultSet rs = bench::CheckResult(db.Query(kSingleReference), "query");
    answers = rs.Column("X", db.store()).size();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Manager_PathLog_SingleRef)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Manager_PathLog_Decomposed(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    ResultSet rs = bench::CheckResult(db.Query(kDecomposed), "query");
    answers = rs.Column("X", db.store()).size();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Manager_PathLog_Decomposed)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Manager_Baseline_JoinPlan(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  FlatQuery fq = bench::FlattenQuery(db, kDecomposed);
  fq.select = {"X"};
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunJoinPlan(db, fq);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Manager_Baseline_JoinPlan)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Manager_Baseline_NestedLoop(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  FlatQuery fq = bench::FlattenQuery(db, kDecomposed);
  fq.select = {"X"};
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunNestedLoop(db, fq);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Manager_Baseline_NestedLoop)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace pathlog
