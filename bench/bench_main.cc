// Shared main for every bench binary, replacing the stock
// benchmark_main. The distro's libbenchmark is compiled without NDEBUG
// and therefore reports `"library_build_type": "debug"` in every JSON
// context — that key describes the *benchmark library*, not the code
// under test, so trend tooling reading it would discard perfectly good
// Release numbers. Stamp the build type of the pathlog translation
// units themselves instead; ci/bench_smoke.sh fails the run unless it
// says "release".

#include <benchmark/benchmark.h>

int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("pathlog_build_type", "release");
#else
  benchmark::AddCustomContext("pathlog_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
