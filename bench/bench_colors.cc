// Experiment E1.1-1.3 (paper queries 1.1, 1.2, 1.3): "the colors of
// the automobiles belonging to employees".
//
// Formulations compared, at growing database scale:
//   PathLog/path       the single navigational reference (1.2/1.3 style)
//   PathLog/conj       the decomposed O2SQL-style conjunction (1.1)
//   Baseline/join      set-at-a-time hash joins over flat scans
//   Baseline/loop      tuple-at-a-time nested loop over flat atoms
//
// Expected shape: all four return the same answers; the navigational
// evaluation avoids materialising employee x vehicle intermediates and
// wins at every scale; the join baseline pays scan+build costs.

#include "bench_util.h"

namespace pathlog {
namespace {

constexpr const char* kPathQuery =
    "?- X:employee..vehicles[Y]:automobile.color[Z].";
constexpr const char* kConjQuery =
    "?- X:employee, X[vehicles->>{Y:automobile}], Y.color[Z].";

void BM_Colors_PathLog_Path(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunPathLog(db, kPathQuery);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["employees"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Colors_PathLog_Path)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Colors_PathLog_Conjunction(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunPathLog(db, kConjQuery);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Colors_PathLog_Conjunction)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Colors_Baseline_JoinPlan(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  FlatQuery fq = bench::FlattenQuery(db, kPathQuery);
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunJoinPlan(db, fq);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Colors_Baseline_JoinPlan)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Colors_Baseline_NestedLoop(benchmark::State& state) {
  Database db;
  GenerateCompany(&db.store(), bench::ScaledCompany(state.range(0)));
  FlatQuery fq = bench::FlattenQuery(db, kPathQuery);
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::RunNestedLoop(db, fq);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Colors_Baseline_NestedLoop)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace pathlog
