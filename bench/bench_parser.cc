// Experiment Eparse: front-end throughput — lexing and parsing of
// generated fact programs and of the paper's densest reference shapes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "parser/lexer.h"
#include "store/fact.h"

namespace pathlog {
namespace {

std::string ProgramText(int64_t employees) {
  ObjectStore store;
  GenerateCompany(&store, bench::ScaledCompany(employees));
  return StoreToProgramText(store);
}

void BM_Parser_Tokenize(benchmark::State& state) {
  std::string text = ProgramText(state.range(0));
  for (auto _ : state) {
    std::vector<Token> toks =
        bench::CheckResult(Tokenize(text), "tokenize");
    benchmark::DoNotOptimize(toks);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_Parser_Tokenize)->Arg(100)->Arg(1000);

void BM_Parser_ParseProgram(benchmark::State& state) {
  std::string text = ProgramText(state.range(0));
  size_t clauses = 0;
  for (auto _ : state) {
    Program p = bench::CheckResult(ParseProgram(text), "parse");
    clauses = p.rules.size();
    benchmark::DoNotOptimize(p);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
  state.counters["clauses"] = static_cast<double>(clauses);
}
BENCHMARK(BM_Parser_ParseProgram)->Arg(100)->Arg(1000);

void BM_Parser_DenseReference(benchmark::State& state) {
  // The flagship two-dimensional reference of section 2.
  const std::string ref =
      "X:employee[age->30; city->newYork]"
      "..vehicles[Y]:automobile[cylinders->4]"
      ".producedBy[city->detroit; president->X].color[Z]";
  for (auto _ : state) {
    RefPtr r = bench::CheckResult(ParseRef(ref), "parse ref");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Parser_DenseReference);

void BM_Parser_GenericTcProgram(benchmark::State& state) {
  const std::string prog = R"(
    peter[kids->>{tim,mary}].
    tim[kids->>{sally}].
    mary[kids->>{tom,paul}].
    X[(M.tc)->>{Y}] <- X[M->>{Y}].
    X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].
    ?- peter[(kids.tc)->>{Z}].
  )";
  for (auto _ : state) {
    Program p = bench::CheckResult(ParseProgram(prog), "parse");
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Parser_GenericTcProgram);

// End-to-end load: parse + intern + assert facts.
void BM_Parser_DatabaseLoad(benchmark::State& state) {
  std::string text = ProgramText(state.range(0));
  for (auto _ : state) {
    Database db;
    bench::Check(db.Load(text), "load");
    benchmark::DoNotOptimize(db.store().FactCount());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_Parser_DatabaseLoad)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pathlog
