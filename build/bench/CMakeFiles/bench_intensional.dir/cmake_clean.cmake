file(REMOVE_RECURSE
  "CMakeFiles/bench_intensional.dir/bench_intensional.cc.o"
  "CMakeFiles/bench_intensional.dir/bench_intensional.cc.o.d"
  "bench_intensional"
  "bench_intensional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intensional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
