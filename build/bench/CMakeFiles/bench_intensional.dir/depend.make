# Empty dependencies file for bench_intensional.
# This may be replaced when dependencies are built.
