file(REMOVE_RECURSE
  "CMakeFiles/bench_nested_refs.dir/bench_nested_refs.cc.o"
  "CMakeFiles/bench_nested_refs.dir/bench_nested_refs.cc.o.d"
  "bench_nested_refs"
  "bench_nested_refs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nested_refs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
