# Empty compiler generated dependencies file for bench_nested_refs.
# This may be replaced when dependencies are built.
