file(REMOVE_RECURSE
  "CMakeFiles/bench_second_dimension.dir/bench_second_dimension.cc.o"
  "CMakeFiles/bench_second_dimension.dir/bench_second_dimension.cc.o.d"
  "bench_second_dimension"
  "bench_second_dimension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_second_dimension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
