# Empty compiler generated dependencies file for bench_second_dimension.
# This may be replaced when dependencies are built.
