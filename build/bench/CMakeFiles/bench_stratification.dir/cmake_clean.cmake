file(REMOVE_RECURSE
  "CMakeFiles/bench_stratification.dir/bench_stratification.cc.o"
  "CMakeFiles/bench_stratification.dir/bench_stratification.cc.o.d"
  "bench_stratification"
  "bench_stratification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stratification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
