# Empty dependencies file for bench_virtual_objects.
# This may be replaced when dependencies are built.
