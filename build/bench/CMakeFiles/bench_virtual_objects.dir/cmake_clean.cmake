file(REMOVE_RECURSE
  "CMakeFiles/bench_virtual_objects.dir/bench_virtual_objects.cc.o"
  "CMakeFiles/bench_virtual_objects.dir/bench_virtual_objects.cc.o.d"
  "bench_virtual_objects"
  "bench_virtual_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virtual_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
