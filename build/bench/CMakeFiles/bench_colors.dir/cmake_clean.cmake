file(REMOVE_RECURSE
  "CMakeFiles/bench_colors.dir/bench_colors.cc.o"
  "CMakeFiles/bench_colors.dir/bench_colors.cc.o.d"
  "bench_colors"
  "bench_colors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_colors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
