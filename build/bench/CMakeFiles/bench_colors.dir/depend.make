# Empty dependencies file for bench_colors.
# This may be replaced when dependencies are built.
