# Empty dependencies file for bench_planner.
# This may be replaced when dependencies are built.
