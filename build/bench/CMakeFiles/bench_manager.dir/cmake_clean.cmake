file(REMOVE_RECURSE
  "CMakeFiles/bench_manager.dir/bench_manager.cc.o"
  "CMakeFiles/bench_manager.dir/bench_manager.cc.o.d"
  "bench_manager"
  "bench_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
