# Empty dependencies file for bench_manager.
# This may be replaced when dependencies are built.
