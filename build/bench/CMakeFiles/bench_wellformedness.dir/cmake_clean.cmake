file(REMOVE_RECURSE
  "CMakeFiles/bench_wellformedness.dir/bench_wellformedness.cc.o"
  "CMakeFiles/bench_wellformedness.dir/bench_wellformedness.cc.o.d"
  "bench_wellformedness"
  "bench_wellformedness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wellformedness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
