# Empty compiler generated dependencies file for bench_wellformedness.
# This may be replaced when dependencies are built.
