file(REMOVE_RECURSE
  "CMakeFiles/bench_valuation.dir/bench_valuation.cc.o"
  "CMakeFiles/bench_valuation.dir/bench_valuation.cc.o.d"
  "bench_valuation"
  "bench_valuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_valuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
