file(REMOVE_RECURSE
  "libpathlog.a"
)
