
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/active/trigger_engine.cc" "src/CMakeFiles/pathlog.dir/active/trigger_engine.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/active/trigger_engine.cc.o.d"
  "/root/repo/src/ast/analysis.cc" "src/CMakeFiles/pathlog.dir/ast/analysis.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/ast/analysis.cc.o.d"
  "/root/repo/src/ast/printer.cc" "src/CMakeFiles/pathlog.dir/ast/printer.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/ast/printer.cc.o.d"
  "/root/repo/src/ast/program.cc" "src/CMakeFiles/pathlog.dir/ast/program.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/ast/program.cc.o.d"
  "/root/repo/src/ast/ref.cc" "src/CMakeFiles/pathlog.dir/ast/ref.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/ast/ref.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/pathlog.dir/base/status.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/base/status.cc.o.d"
  "/root/repo/src/base/strings.cc" "src/CMakeFiles/pathlog.dir/base/strings.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/base/strings.cc.o.d"
  "/root/repo/src/baseline/conjunctive.cc" "src/CMakeFiles/pathlog.dir/baseline/conjunctive.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/baseline/conjunctive.cc.o.d"
  "/root/repo/src/baseline/operators.cc" "src/CMakeFiles/pathlog.dir/baseline/operators.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/baseline/operators.cc.o.d"
  "/root/repo/src/baseline/relation.cc" "src/CMakeFiles/pathlog.dir/baseline/relation.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/baseline/relation.cc.o.d"
  "/root/repo/src/baseline/translate.cc" "src/CMakeFiles/pathlog.dir/baseline/translate.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/baseline/translate.cc.o.d"
  "/root/repo/src/eval/dependency.cc" "src/CMakeFiles/pathlog.dir/eval/dependency.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/eval/dependency.cc.o.d"
  "/root/repo/src/eval/engine.cc" "src/CMakeFiles/pathlog.dir/eval/engine.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/eval/engine.cc.o.d"
  "/root/repo/src/eval/head_assert.cc" "src/CMakeFiles/pathlog.dir/eval/head_assert.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/eval/head_assert.cc.o.d"
  "/root/repo/src/eval/ref_eval.cc" "src/CMakeFiles/pathlog.dir/eval/ref_eval.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/eval/ref_eval.cc.o.d"
  "/root/repo/src/eval/stratify.cc" "src/CMakeFiles/pathlog.dir/eval/stratify.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/eval/stratify.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/pathlog.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/pathlog.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/parser/parser.cc.o.d"
  "/root/repo/src/query/database.cc" "src/CMakeFiles/pathlog.dir/query/database.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/query/database.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/CMakeFiles/pathlog.dir/query/planner.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/query/planner.cc.o.d"
  "/root/repo/src/query/result_set.cc" "src/CMakeFiles/pathlog.dir/query/result_set.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/query/result_set.cc.o.d"
  "/root/repo/src/semantics/structure.cc" "src/CMakeFiles/pathlog.dir/semantics/structure.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/semantics/structure.cc.o.d"
  "/root/repo/src/semantics/valuation.cc" "src/CMakeFiles/pathlog.dir/semantics/valuation.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/semantics/valuation.cc.o.d"
  "/root/repo/src/store/fact.cc" "src/CMakeFiles/pathlog.dir/store/fact.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/store/fact.cc.o.d"
  "/root/repo/src/store/object_store.cc" "src/CMakeFiles/pathlog.dir/store/object_store.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/store/object_store.cc.o.d"
  "/root/repo/src/store/snapshot.cc" "src/CMakeFiles/pathlog.dir/store/snapshot.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/store/snapshot.cc.o.d"
  "/root/repo/src/types/signature.cc" "src/CMakeFiles/pathlog.dir/types/signature.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/types/signature.cc.o.d"
  "/root/repo/src/types/type_check.cc" "src/CMakeFiles/pathlog.dir/types/type_check.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/types/type_check.cc.o.d"
  "/root/repo/src/workload/company.cc" "src/CMakeFiles/pathlog.dir/workload/company.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/workload/company.cc.o.d"
  "/root/repo/src/workload/kinship.cc" "src/CMakeFiles/pathlog.dir/workload/kinship.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/workload/kinship.cc.o.d"
  "/root/repo/src/workload/people.cc" "src/CMakeFiles/pathlog.dir/workload/people.cc.o" "gcc" "src/CMakeFiles/pathlog.dir/workload/people.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
