# Empty dependencies file for pathlog.
# This may be replaced when dependencies are built.
