# Empty compiler generated dependencies file for pathlog_shell.
# This may be replaced when dependencies are built.
