file(REMOVE_RECURSE
  "CMakeFiles/pathlog_shell.dir/pathlog_shell.cc.o"
  "CMakeFiles/pathlog_shell.dir/pathlog_shell.cc.o.d"
  "pathlog"
  "pathlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathlog_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
