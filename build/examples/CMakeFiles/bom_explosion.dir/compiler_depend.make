# Empty compiler generated dependencies file for bom_explosion.
# This may be replaced when dependencies are built.
