file(REMOVE_RECURSE
  "CMakeFiles/bom_explosion.dir/bom_explosion.cc.o"
  "CMakeFiles/bom_explosion.dir/bom_explosion.cc.o.d"
  "bom_explosion"
  "bom_explosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bom_explosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
