# Empty dependencies file for genealogy_tc.
# This may be replaced when dependencies are built.
