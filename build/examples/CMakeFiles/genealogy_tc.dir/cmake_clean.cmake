file(REMOVE_RECURSE
  "CMakeFiles/genealogy_tc.dir/genealogy_tc.cc.o"
  "CMakeFiles/genealogy_tc.dir/genealogy_tc.cc.o.d"
  "genealogy_tc"
  "genealogy_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genealogy_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
