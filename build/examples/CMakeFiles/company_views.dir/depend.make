# Empty dependencies file for company_views.
# This may be replaced when dependencies are built.
