file(REMOVE_RECURSE
  "CMakeFiles/fleet_analytics.dir/fleet_analytics.cc.o"
  "CMakeFiles/fleet_analytics.dir/fleet_analytics.cc.o.d"
  "fleet_analytics"
  "fleet_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
