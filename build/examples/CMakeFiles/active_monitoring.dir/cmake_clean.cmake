file(REMOVE_RECURSE
  "CMakeFiles/active_monitoring.dir/active_monitoring.cc.o"
  "CMakeFiles/active_monitoring.dir/active_monitoring.cc.o.d"
  "active_monitoring"
  "active_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
