# Empty compiler generated dependencies file for active_monitoring.
# This may be replaced when dependencies are built.
