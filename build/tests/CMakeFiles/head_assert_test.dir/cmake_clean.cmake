file(REMOVE_RECURSE
  "CMakeFiles/head_assert_test.dir/head_assert_test.cc.o"
  "CMakeFiles/head_assert_test.dir/head_assert_test.cc.o.d"
  "head_assert_test"
  "head_assert_test.pdb"
  "head_assert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_assert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
