# Empty compiler generated dependencies file for head_assert_test.
# This may be replaced when dependencies are built.
