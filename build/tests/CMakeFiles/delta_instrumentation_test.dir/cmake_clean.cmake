file(REMOVE_RECURSE
  "CMakeFiles/delta_instrumentation_test.dir/delta_instrumentation_test.cc.o"
  "CMakeFiles/delta_instrumentation_test.dir/delta_instrumentation_test.cc.o.d"
  "delta_instrumentation_test"
  "delta_instrumentation_test.pdb"
  "delta_instrumentation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_instrumentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
