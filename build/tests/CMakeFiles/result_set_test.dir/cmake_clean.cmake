file(REMOVE_RECURSE
  "CMakeFiles/result_set_test.dir/result_set_test.cc.o"
  "CMakeFiles/result_set_test.dir/result_set_test.cc.o.d"
  "result_set_test"
  "result_set_test.pdb"
  "result_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
