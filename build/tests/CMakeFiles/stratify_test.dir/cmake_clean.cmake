file(REMOVE_RECURSE
  "CMakeFiles/stratify_test.dir/stratify_test.cc.o"
  "CMakeFiles/stratify_test.dir/stratify_test.cc.o.d"
  "stratify_test"
  "stratify_test.pdb"
  "stratify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stratify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
