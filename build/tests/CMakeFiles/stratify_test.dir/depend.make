# Empty dependencies file for stratify_test.
# This may be replaced when dependencies are built.
