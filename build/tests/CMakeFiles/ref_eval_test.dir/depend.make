# Empty dependencies file for ref_eval_test.
# This may be replaced when dependencies are built.
