file(REMOVE_RECURSE
  "CMakeFiles/ref_eval_test.dir/ref_eval_test.cc.o"
  "CMakeFiles/ref_eval_test.dir/ref_eval_test.cc.o.d"
  "ref_eval_test"
  "ref_eval_test.pdb"
  "ref_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
