file(REMOVE_RECURSE
  "CMakeFiles/shell_integration_test.dir/shell_integration_test.cc.o"
  "CMakeFiles/shell_integration_test.dir/shell_integration_test.cc.o.d"
  "shell_integration_test"
  "shell_integration_test.pdb"
  "shell_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shell_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
