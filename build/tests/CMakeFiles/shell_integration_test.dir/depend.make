# Empty dependencies file for shell_integration_test.
# This may be replaced when dependencies are built.
