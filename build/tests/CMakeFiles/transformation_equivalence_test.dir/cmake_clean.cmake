file(REMOVE_RECURSE
  "CMakeFiles/transformation_equivalence_test.dir/transformation_equivalence_test.cc.o"
  "CMakeFiles/transformation_equivalence_test.dir/transformation_equivalence_test.cc.o.d"
  "transformation_equivalence_test"
  "transformation_equivalence_test.pdb"
  "transformation_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transformation_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
