# Empty dependencies file for transformation_equivalence_test.
# This may be replaced when dependencies are built.
