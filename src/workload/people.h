// Synthetic person database for the virtual-object experiments
// (paper example 2.4: restructuring street/city attributes into
// virtual address objects, after [AB91]).

#ifndef PATHLOG_WORKLOAD_PEOPLE_H_
#define PATHLOG_WORKLOAD_PEOPLE_H_

#include <cstdint>
#include <vector>

#include "store/object_store.h"

namespace pathlog {

struct PeopleConfig {
  uint32_t num_persons = 1000;
  uint32_t num_cities = 20;
  uint32_t num_streets = 200;
  /// Fraction of persons with a spouse (spouse is symmetric).
  double married_fraction = 0.4;
  /// Fraction of persons with a street attribute (the rest exercise
  /// kRequireDefined vs kSkolemize head-value semantics).
  double has_street_fraction = 1.0;
  uint64_t seed = 7;
};

struct PeopleData {
  Oid person_class = kNilOid;
  std::vector<Oid> persons;
  std::vector<Oid> cities;
  std::vector<Oid> streets;
};

/// Methods used: street, city, spouse (scalar on persons).
PeopleData GeneratePeople(ObjectStore* store, const PeopleConfig& config);

}  // namespace pathlog

#endif  // PATHLOG_WORKLOAD_PEOPLE_H_
