#include "workload/kinship.h"

#include <random>

#include "base/strings.h"

namespace pathlog {

namespace {
std::vector<Oid> MakePeople(ObjectStore* store, uint32_t n,
                            const char* prefix) {
  std::vector<Oid> people;
  people.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    people.push_back(store->InternSymbol(StrCat(prefix, i)));
  }
  return people;
}
}  // namespace

KinshipData GenerateChain(ObjectStore* store, uint32_t n, const char* prefix) {
  KinshipData data;
  data.people = MakePeople(store, n, prefix);
  const Oid kids = store->InternSymbol("kids");
  for (uint32_t i = 0; i + 1 < n; ++i) {
    store->AddSetMember(kids, data.people[i], {}, data.people[i + 1]);
    ++data.num_edges;
  }
  return data;
}

KinshipData GenerateTree(ObjectStore* store, uint32_t n, uint32_t branching,
                         const char* prefix) {
  KinshipData data;
  data.people = MakePeople(store, n, prefix);
  const Oid kids = store->InternSymbol("kids");
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t k = 1; k <= branching; ++k) {
      uint64_t child = static_cast<uint64_t>(i) * branching + k;
      if (child >= n) break;
      store->AddSetMember(kids, data.people[i], {},
                          data.people[static_cast<uint32_t>(child)]);
      ++data.num_edges;
    }
  }
  return data;
}

KinshipData GenerateRandomDag(ObjectStore* store, uint32_t n, double avg_kids,
                              uint64_t seed, const char* prefix) {
  KinshipData data;
  data.people = MakePeople(store, n, prefix);
  const Oid kids = store->InternSymbol("kids");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (uint32_t i = 0; i + 1 < n; ++i) {
    // Expected avg_kids edges to strictly later nodes.
    uint32_t attempts = static_cast<uint32_t>(avg_kids) +
                        (unit(rng) < (avg_kids - static_cast<uint32_t>(avg_kids))
                             ? 1u
                             : 0u);
    for (uint32_t k = 0; k < attempts; ++k) {
      uint32_t j = i + 1 + static_cast<uint32_t>(rng() % (n - i - 1));
      if (store->AddSetMember(kids, data.people[i], {}, data.people[j])) {
        ++data.num_edges;
      }
    }
  }
  return data;
}

}  // namespace pathlog
