#include "workload/company.h"

#include <random>

#include "base/strings.h"

namespace pathlog {

CompanyData GenerateCompany(ObjectStore* store, const CompanyConfig& cfg) {
  std::mt19937_64 rng(cfg.seed);
  auto pick = [&](size_t n) { return static_cast<size_t>(rng() % n); };
  auto chance = [&](double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
  };

  CompanyData data;
  data.employee_class = store->InternSymbol("employee");
  data.manager_class = store->InternSymbol("manager");
  data.vehicle_class = store->InternSymbol("vehicle");
  data.automobile_class = store->InternSymbol("automobile");
  data.company_class = store->InternSymbol("company");
  (void)store->AddIsa(data.manager_class, data.employee_class);
  (void)store->AddIsa(data.automobile_class, data.vehicle_class);

  const Oid m_age = store->InternSymbol("age");
  const Oid m_city = store->InternSymbol("city");
  const Oid m_salary = store->InternSymbol("salary");
  const Oid m_boss = store->InternSymbol("boss");
  const Oid m_works_for = store->InternSymbol("worksFor");
  const Oid m_vehicles = store->InternSymbol("vehicles");
  const Oid m_assistants = store->InternSymbol("assistants");
  const Oid m_cylinders = store->InternSymbol("cylinders");
  const Oid m_color = store->InternSymbol("color");
  const Oid m_produced_by = store->InternSymbol("producedBy");
  const Oid m_president = store->InternSymbol("president");

  // Cities: the first two are the paper's named cities.
  for (uint32_t i = 0; i < std::max<uint32_t>(cfg.num_cities, 2); ++i) {
    std::string name = i == 0 ? "newYork"
                     : i == 1 ? "detroit"
                              : StrCat("city", i);
    data.cities.push_back(store->InternSymbol(name));
  }
  for (uint32_t i = 0; i < std::max<uint32_t>(cfg.num_colors, 1); ++i) {
    std::string name = i == 0 ? "red" : StrCat("color", i);
    data.colors.push_back(store->InternSymbol(name));
  }
  for (uint32_t i = 0; i < cfg.num_departments; ++i) {
    data.departments.push_back(store->InternSymbol(StrCat("dept", i)));
  }
  for (uint32_t i = 0; i < cfg.num_companies; ++i) {
    Oid c = store->InternSymbol(StrCat("comp", i));
    data.companies.push_back(c);
    (void)store->AddIsa(c, data.company_class);
    (void)store->SetScalar(m_city, c, {}, data.cities[pick(data.cities.size())]);
  }

  // Employees (a prefix of which are managers).
  const uint32_t num_managers = std::max<uint32_t>(
      1, static_cast<uint32_t>(cfg.num_employees * cfg.manager_fraction));
  for (uint32_t i = 0; i < cfg.num_employees; ++i) {
    Oid e = store->InternSymbol(StrCat("emp", i));
    data.employees.push_back(e);
    if (i < num_managers) {
      data.managers.push_back(e);
      (void)store->AddIsa(e, data.manager_class);
    } else {
      (void)store->AddIsa(e, data.employee_class);
    }
    int64_t age = static_cast<int64_t>(
        cfg.min_age + rng() % (cfg.max_age - cfg.min_age + 1));
    (void)store->SetScalar(m_age, e, {}, store->InternInt(age));
    (void)store->SetScalar(m_city, e, {},
                           data.cities[pick(data.cities.size())]);
    (void)store->SetScalar(
        m_salary, e, {},
        store->InternInt(static_cast<int64_t>(1000 + 100 * (rng() % 50))));
    (void)store->SetScalar(m_works_for, e, {},
                           data.departments[pick(data.departments.size())]);
  }
  // Bosses and assistants.
  for (uint32_t i = num_managers; i < cfg.num_employees; ++i) {
    Oid boss = data.managers[pick(data.managers.size())];
    (void)store->SetScalar(m_boss, data.employees[i], {}, boss);
  }
  for (Oid m : data.managers) {
    for (uint32_t k = 0; k < cfg.assistants_per_manager; ++k) {
      Oid a = data.employees[pick(data.employees.size())];
      if (a != m) store->AddSetMember(m_assistants, m, {}, a);
    }
  }

  // Vehicles.
  uint32_t vid = 0;
  for (Oid e : data.employees) {
    const uint32_t n =
        cfg.max_vehicles_per_employee == 0
            ? 0
            : static_cast<uint32_t>(rng() % (cfg.max_vehicles_per_employee + 1));
    for (uint32_t k = 0; k < n; ++k) {
      Oid v = store->InternSymbol(StrCat("veh", vid++));
      data.vehicles.push_back(v);
      store->AddSetMember(m_vehicles, e, {}, v);
      (void)store->SetScalar(m_color, v, {},
                             data.colors[pick(data.colors.size())]);
      (void)store->SetScalar(m_produced_by, v, {},
                             data.companies[pick(data.companies.size())]);
      if (chance(cfg.automobile_fraction)) {
        data.automobiles.push_back(v);
        (void)store->AddIsa(v, data.automobile_class);
        int64_t cyl =
            cfg.cylinder_choices[pick(cfg.cylinder_choices.size())];
        (void)store->SetScalar(m_cylinders, v, {}, store->InternInt(cyl));
      } else {
        (void)store->AddIsa(v, data.vehicle_class);
      }
    }
  }
  // Presidents: each company is led by some manager. Some presidents
  // own a red automobile built by their own company, so the section-2
  // manager query has answers at every scale.
  for (Oid c : data.companies) {
    Oid president = data.managers[pick(data.managers.size())];
    (void)store->SetScalar(m_president, c, {}, president);
    if (chance(cfg.president_owns_company_car_fraction)) {
      Oid v = store->InternSymbol(StrCat("veh", vid++));
      data.vehicles.push_back(v);
      data.automobiles.push_back(v);
      store->AddSetMember(m_vehicles, president, {}, v);
      (void)store->AddIsa(v, data.automobile_class);
      (void)store->SetScalar(m_color, v, {}, data.colors[0]);  // red
      (void)store->SetScalar(m_produced_by, v, {}, c);
      int64_t cyl = cfg.cylinder_choices[pick(cfg.cylinder_choices.size())];
      (void)store->SetScalar(m_cylinders, v, {}, store->InternInt(cyl));
    }
  }
  return data;
}

}  // namespace pathlog
