// Kinship graphs for the transitive-closure experiments (paper
// section 6: `desc` and the generic `kids.tc`). Three shapes with
// different closure densities:
//   Chain     — closure size Theta(n^2): the naive-vs-semi-naive
//               worst case;
//   Tree      — closure size Theta(n log n) for fixed branching;
//   RandomDag — layered random DAG, tunable average out-degree.

#ifndef PATHLOG_WORKLOAD_KINSHIP_H_
#define PATHLOG_WORKLOAD_KINSHIP_H_

#include <cstdint>
#include <vector>

#include "store/object_store.h"

namespace pathlog {

struct KinshipData {
  std::vector<Oid> people;
  size_t num_edges = 0;
};

/// kids(p_i) = {p_{i+1}} for i in [0, n-1).
KinshipData GenerateChain(ObjectStore* store, uint32_t n,
                          const char* prefix = "p");

/// Complete `branching`-ary tree with n nodes, kids = children.
KinshipData GenerateTree(ObjectStore* store, uint32_t n, uint32_t branching,
                         const char* prefix = "t");

/// Layered DAG: each node gets ~avg_kids edges to strictly later nodes.
KinshipData GenerateRandomDag(ObjectStore* store, uint32_t n, double avg_kids,
                              uint64_t seed, const char* prefix = "d");

}  // namespace pathlog

#endif  // PATHLOG_WORKLOAD_KINSHIP_H_
