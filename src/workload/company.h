// Synthetic company database: the universe of the paper's running
// examples (employees, managers, vehicles, automobiles, companies,
// cities, colors), sized by a scale parameter. All generation is
// deterministic in the seed.
//
// The substitution note (DESIGN.md): the paper reports no data sets —
// every claim is about expressiveness and evaluation strategy — so
// these generators provide the scalable stand-in the benchmarks sweep.

#ifndef PATHLOG_WORKLOAD_COMPANY_H_
#define PATHLOG_WORKLOAD_COMPANY_H_

#include <cstdint>
#include <vector>

#include "store/object_store.h"

namespace pathlog {

struct CompanyConfig {
  uint32_t num_employees = 1000;
  uint32_t num_companies = 20;
  uint32_t num_cities = 10;       ///< city0 is "newYork", city1 "detroit"
  uint32_t num_departments = 15;
  uint32_t max_vehicles_per_employee = 3;
  /// Fraction of vehicles that are automobiles (the rest stay plain
  /// vehicles — bicycles, say).
  double automobile_fraction = 0.7;
  double manager_fraction = 0.1;
  uint32_t num_colors = 8;        ///< color0 is "red"
  std::vector<int64_t> cylinder_choices = {4, 6, 8};
  uint32_t min_age = 20;
  uint32_t max_age = 65;
  uint32_t assistants_per_manager = 3;
  /// Fraction of companies whose president also owns a red automobile
  /// produced by that company — guarantees the section-2 manager query
  /// has answers that scale with the database.
  double president_owns_company_car_fraction = 0.5;
  uint64_t seed = 42;
};

struct CompanyData {
  Oid employee_class = kNilOid;
  Oid manager_class = kNilOid;
  Oid vehicle_class = kNilOid;
  Oid automobile_class = kNilOid;
  Oid company_class = kNilOid;
  std::vector<Oid> employees;
  std::vector<Oid> managers;
  std::vector<Oid> vehicles;
  std::vector<Oid> automobiles;
  std::vector<Oid> companies;
  std::vector<Oid> cities;
  std::vector<Oid> colors;
  std::vector<Oid> departments;
};

/// Populates `store` with the company universe. Methods used:
/// age, city, salary (scalar on employees); boss (employee->manager);
/// worksFor (employee->department); vehicles, assistants (set-valued);
/// cylinders, color, producedBy (scalar on vehicles); president, city
/// (scalar on companies). Hierarchy: manager :: employee,
/// automobile :: vehicle; every entity is a member of its class.
CompanyData GenerateCompany(ObjectStore* store, const CompanyConfig& config);

}  // namespace pathlog

#endif  // PATHLOG_WORKLOAD_COMPANY_H_
