#include "workload/people.h"

#include <random>

#include "base/strings.h"

namespace pathlog {

PeopleData GeneratePeople(ObjectStore* store, const PeopleConfig& cfg) {
  std::mt19937_64 rng(cfg.seed);
  auto pick = [&](size_t n) { return static_cast<size_t>(rng() % n); };
  auto chance = [&](double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
  };

  PeopleData data;
  data.person_class = store->InternSymbol("person");
  const Oid m_street = store->InternSymbol("street");
  const Oid m_city = store->InternSymbol("city");
  const Oid m_spouse = store->InternSymbol("spouse");

  for (uint32_t i = 0; i < cfg.num_cities; ++i) {
    data.cities.push_back(store->InternSymbol(StrCat("pcity", i)));
  }
  for (uint32_t i = 0; i < cfg.num_streets; ++i) {
    data.streets.push_back(store->InternSymbol(StrCat("street", i)));
  }
  for (uint32_t i = 0; i < cfg.num_persons; ++i) {
    Oid p = store->InternSymbol(StrCat("person", i));
    data.persons.push_back(p);
    (void)store->AddIsa(p, data.person_class);
    if (chance(cfg.has_street_fraction)) {
      (void)store->SetScalar(m_street, p, {},
                             data.streets[pick(data.streets.size())]);
    }
    (void)store->SetScalar(m_city, p, {},
                           data.cities[pick(data.cities.size())]);
  }
  // Pair up spouses among consecutive persons.
  for (uint32_t i = 0; i + 1 < cfg.num_persons; i += 2) {
    if (!chance(cfg.married_fraction)) continue;
    Oid a = data.persons[i];
    Oid b = data.persons[i + 1];
    (void)store->SetScalar(m_spouse, a, {}, b);
    (void)store->SetScalar(m_spouse, b, {}, a);
  }
  return data;
}

}  // namespace pathlog
