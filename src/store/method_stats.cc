#include "store/method_stats.h"

#include <algorithm>

namespace pathlog {

namespace {

/// Ordering of the heavy list: count descending, then oid ascending.
/// The list invariant is "the k maximal buckets under this order",
/// which makes the retained set a pure function of the bucket sizes.
bool HeavierThan(const HeavyBucket& a, const HeavyBucket& b) {
  if (a.count != b.count) return a.count > b.count;
  return a.value < b.value;
}

}  // namespace

void MethodStats::Update(Oid value, uint64_t new_count, bool is_new_value,
                         uint64_t gen) {
  ++total;
  if (is_new_value) ++distinct;
  last_gen = gen;

  for (HeavyBucket& h : heavy) {
    if (h.value == value) {
      h.count = new_count;
      std::sort(heavy.begin(), heavy.end(), HeavierThan);
      return;
    }
  }
  HeavyBucket cand{value, new_count};
  if (heavy.size() < kStatsTopK) {
    heavy.push_back(cand);
    std::sort(heavy.begin(), heavy.end(), HeavierThan);
    return;
  }
  // Full: admit only past the current minimum (heavy is sorted, so the
  // minimum under the order is the last element). Because new_count is
  // the value's *true* bucket size, an evicted value re-enters intact
  // the moment it outgrows the floor, keeping the top-k exact.
  if (HeavierThan(cand, heavy.back())) {
    heavy.back() = cand;
    std::sort(heavy.begin(), heavy.end(), HeavierThan);
  }
}

uint64_t MethodStats::HeavyMass() const {
  uint64_t mass = 0;
  for (const HeavyBucket& h : heavy) mass += h.count;
  return mass;
}

double AverageBucketEstimate(const MethodStats& s) {
  if (s.distinct == 0) return 0.0;
  return static_cast<double>(s.total) / static_cast<double>(s.distinct);
}

double SkewAwareBucketEstimate(const MethodStats& s) {
  if (s.distinct == 0) return 0.0;
  if (s.heavy.empty()) return AverageBucketEstimate(s);
  // Upper quantile by index over the (small, sorted-descending) heavy
  // list: with n retained buckets, index ceil(0.9 * (n - 1)) from the
  // *smallest* — for n <= 10 that is the largest bucket, i.e. a probe
  // is costed at the hot bucket it might hit.
  const size_t n = s.heavy.size();
  const size_t from_smallest = (9 * (n - 1) + 9) / 10;  // ceil(0.9*(n-1))
  const double quantile =
      static_cast<double>(s.heavy[n - 1 - from_smallest].count);
  // Residual mass: everything the sketch does not explain, averaged.
  // This is the floor, not the headline — with the whole distribution
  // inside the sketch it is zero.
  const uint64_t residual_buckets = s.distinct - n;
  const double residual_avg =
      residual_buckets == 0
          ? 0.0
          : static_cast<double>(s.total - s.HeavyMass()) /
                static_cast<double>(residual_buckets);
  return std::max(quantile, residual_avg);
}

}  // namespace pathlog
