// Uniform fact representation: the extensional (and derived) content of
// a PathLog database is a set of facts of three kinds, mirroring the
// components of a semantic structure I = (U, <=_U, I_N, I_->, I_->>):
//
//   kIsa        u  <=_U  c                 (class hierarchy / membership)
//   kScalar     I_->(m)(recv, args...)  = value
//   kSetMember  value in I_->>(m)(recv, args...)
//
// Facts are logged in insertion order; the log position is the fact's
// *generation*, which the semi-naive engine uses to iterate deltas.

#ifndef PATHLOG_STORE_FACT_H_
#define PATHLOG_STORE_FACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "store/oid.h"

namespace pathlog {

class ObjectStore;

enum class FactKind : uint8_t {
  kIsa = 0,
  kScalar = 1,
  kSetMember = 2,
};

/// One atomic piece of database state.
struct Fact {
  FactKind kind;
  /// The method object (kScalar, kSetMember) or the class (kIsa).
  Oid method;
  /// The receiver u_0 (kScalar, kSetMember) or the instance/subclass (kIsa).
  Oid recv;
  /// Method arguments u_1..u_k; always empty for kIsa.
  std::vector<Oid> args;
  /// The scalar result, the set member, or kNilOid for kIsa.
  Oid value = kNilOid;

  friend bool operator==(const Fact& a, const Fact& b) = default;
};

/// Renders a fact in PathLog surface syntax, e.g.
/// "p1[salary@(1994)->1000]", "tim[kids->>{sally}]", "e1 : employee".
std::string FactToString(const Fact& fact, const ObjectStore& store);

/// Dumps the whole store as a loadable PathLog program (one fact
/// clause per line) — used to round-trip generated workloads through
/// the parser and by the parser benchmarks.
std::string StoreToProgramText(const ObjectStore& store);

}  // namespace pathlog

#endif  // PATHLOG_STORE_FACT_H_
