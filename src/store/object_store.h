// The object store: PathLog's OODB substrate.
//
// Realises the semantic structure I = (U, <=_U, I_N, I_->, I_->>) of
// the paper (section 3) as a mutable, indexed store:
//
//   U      the universe: every interned name, value, and anonymous
//          (virtual) object gets a dense Oid;
//   I_N    name interpretation: interning is injective, so names map
//          one-to-one onto their objects; integers and strings are
//          names too ("we don't distinguish between objects and
//          values");
//   <=_U   the class hierarchy: a DAG of isa edges whose reachability
//          relation is the partial order; classes and methods are
//          ordinary objects, so any object may appear on either side;
//   I_->   scalar methods: per method, a partial function from
//          (receiver, args...) to one object;
//   I_->>  set-valued methods: per method, a function from
//          (receiver, args...) to a set of objects.
//
// Every mutation appends to a fact log; the log index is the
// *generation*, which the deductive engine uses for semi-naive deltas
// and which snapshots/rollback use as a watermark.
//
// Deviation note (documented in DESIGN.md): the paper calls <=_U a
// partial order, hence reflexive. We expose reachability through
// explicit edges only (irreflexive unless an explicit self-edge is
// added), because reflexive membership would make every class a member
// of itself and pollute every class-extent query in the paper's
// examples.

#ifndef PATHLOG_STORE_OBJECT_STORE_H_
#define PATHLOG_STORE_OBJECT_STORE_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "store/fact.h"
#include "store/method_stats.h"
#include "store/oid.h"

namespace pathlog {

class Counter;
class MetricsRegistry;

/// What kind of denotation an object carries.
enum class ObjectKind : uint8_t {
  /// A symbolic name from N (e.g. `mary`, `employee`, `color`).
  kSymbol,
  /// An integer value (integers are names too, paper section 3).
  kInt,
  /// A string literal value.
  kString,
  /// An anonymous object created for a virtual-object definition; it
  /// has a synthetic display name such as `_boss(p1)` but no entry in
  /// the user-visible name space N.
  kAnonymous,
};

/// One scalar-method fact: I_->(m)(recv, args...) = value.
struct ScalarEntry {
  Oid recv;
  std::vector<Oid> args;
  Oid value;
  /// Generation at which this fact was asserted.
  uint64_t gen;
};

/// One set-valued group: I_->>(m)(recv, args...) = {members...}.
struct SetGroup {
  Oid recv;
  std::vector<Oid> args;
  /// Members in insertion order; `member_gens[i]` stamps `members[i]`.
  std::vector<Oid> members;
  std::vector<uint64_t> member_gens;
  /// member -> generation of its membership fact.
  std::unordered_map<Oid, uint64_t> member_set;

  bool Contains(Oid o) const { return member_set.count(o) > 0; }
  /// Generation of o's membership fact; UINT64_MAX if not a member.
  uint64_t MemberGen(Oid o) const {
    auto it = member_set.find(o);
    return it == member_set.end() ? UINT64_MAX : it->second;
  }
};

/// Address of one membership fact inside a method's group list: the
/// group's index in SetGroups(m) and the member's position within that
/// group (indexes members and member_gens alike).
struct SetMemberRef {
  uint32_t group;
  uint32_t pos;
};

/// The mutable object store. Copyable: a copy is an independent
/// snapshot (used by the engine to run naive/semi-naive as oracles
/// against each other and by tests for rollback).
class ObjectStore {
 public:
  ObjectStore();

  // --- Universe and names (I_N) -------------------------------------

  /// Interns a symbolic name, returning its (stable) object.
  Oid InternSymbol(std::string_view name);
  /// Interns an integer value.
  Oid InternInt(int64_t value);
  /// Interns a string literal (distinct from the symbol of same text).
  Oid InternString(std::string_view text);
  /// Creates a fresh anonymous object with a synthetic display name.
  Oid NewAnonymous(std::string display_name);

  /// Finds an existing symbol without creating it.
  std::optional<Oid> FindSymbol(std::string_view name) const;
  std::optional<Oid> FindInt(int64_t value) const;
  std::optional<Oid> FindString(std::string_view text) const;

  ObjectKind kind(Oid o) const {
    assert(Valid(o) && "kind: oid out of range");
    return objects_[o].kind;
  }
  /// The display form: symbol text, decimal digits, quoted string, or
  /// the synthetic `_m(recv)` name of an anonymous object.
  const std::string& DisplayName(Oid o) const {
    assert(Valid(o) && "DisplayName: oid out of range");
    return objects_[o].name;
  }
  /// Integer value of a kInt object. The value field is meaningless for
  /// any other kind, so reading it through a wrong-kind Oid is a bug.
  int64_t IntValue(Oid o) const {
    assert(ValidAs(o, ObjectKind::kInt) && "IntValue: not an integer oid");
    return objects_[o].int_value;
  }

  /// Number of objects in the universe.
  size_t UniverseSize() const { return objects_.size(); }
  bool Valid(Oid o) const { return o < objects_.size(); }
  /// Valid() plus a kind check — use before kind-specific reads such as
  /// IntValue().
  bool ValidAs(Oid o, ObjectKind k) const {
    return Valid(o) && objects_[o].kind == k;
  }

  // --- Class hierarchy (<=_U) ---------------------------------------

  /// Adds sub <=_U super. Rejects cycles (the hierarchy must remain a
  /// partial order). Idempotent for existing edges.
  Status AddIsa(Oid sub, Oid super);

  /// True iff sub <=_U super via one or more explicit edges.
  bool IsA(Oid sub, Oid super) const;

  /// Generation of the explicit isa fact that established sub <=_U
  /// super (for closure pairs: the fact whose edge completed the
  /// path); UINT64_MAX when the pair does not hold. Used by the
  /// delta-restricted evaluator.
  uint64_t IsaGen(Oid sub, Oid super) const;

  /// All objects u with u <=_U c (the extent of c), insertion order.
  const std::vector<Oid>& Members(Oid c) const;

  /// Generations parallel to Members(c).
  const std::vector<uint64_t>& MemberGens(Oid c) const;

  /// All direct and transitive superclasses of o.
  const std::vector<Oid>& Ancestors(Oid o) const;

  /// Generations parallel to Ancestors(o).
  const std::vector<uint64_t>& AncestorGens(Oid o) const;

  /// All classes that have at least one member.
  std::vector<Oid> ClassesWithMembers() const;

  // --- Scalar methods (I_->) ----------------------------------------

  /// Asserts I_->(m)(recv, args...) = value. Returns OK and records a
  /// fact if new; OK without a record if identical; kScalarConflict if
  /// a *different* value is already recorded (scalar methods are
  /// partial functions).
  Status SetScalar(Oid m, Oid recv, const std::vector<Oid>& args, Oid value);

  /// Looks up I_->(m)(recv, args...); nullopt where undefined.
  std::optional<Oid> GetScalar(Oid m, Oid recv,
                               const std::vector<Oid>& args) const;

  /// All facts of scalar method m (empty if m has none).
  const std::vector<ScalarEntry>& ScalarEntries(Oid m) const;

  /// Indexes of entries in ScalarEntries(m) whose receiver is recv.
  const std::vector<uint32_t>& ScalarEntriesByRecv(Oid m, Oid recv) const;

  /// Indexes of entries in ScalarEntries(m) whose *value* is value —
  /// the inverted value→receiver index. Maintained incrementally by
  /// SetScalar, so entry order (and thus generation order) is
  /// preserved within each bucket.
  const std::vector<uint32_t>& ScalarEntriesByValue(Oid m, Oid value) const;

  /// Number of distinct values among the facts of scalar method m (the
  /// inverted index's bucket count). The planner's runtime-bound
  /// estimate is skew-aware (ScalarValueStats + SkewAwareBucketEstimate:
  /// upper quantile of the exact top-k heavy hitters, floored by the
  /// residual-mass average); this raw count backs the legacy
  /// average-bucket fallback kept for differential testing
  /// (PlannerStatsMode::kAverageBucket).
  size_t ScalarDistinctValues(Oid m) const;

  /// Incrementally-maintained statistics over m's inverted value
  /// index: total/distinct counters, exact top-k heavy-hitter buckets,
  /// and the generation of the last updating fact. Rebuilt on
  /// snapshot/WAL replay exactly like the index itself (replay re-runs
  /// SetScalar).
  const MethodStats& ScalarValueStats(Oid m) const;

  /// All methods with at least one scalar fact.
  std::vector<Oid> ScalarMethods() const;

  // --- Set-valued methods (I_->>) -----------------------------------

  /// Asserts value in I_->>(m)(recv, args...). Returns true if the
  /// membership is new.
  bool AddSetMember(Oid m, Oid recv, const std::vector<Oid>& args, Oid value);

  /// The group for (m, recv, args), or nullptr where the set is empty.
  const SetGroup* GetSetGroup(Oid m, Oid recv,
                              const std::vector<Oid>& args) const;

  /// All groups of set-valued method m.
  const std::vector<SetGroup>& SetGroups(Oid m) const;

  /// Indexes of groups in SetGroups(m) whose receiver is recv.
  const std::vector<uint32_t>& SetGroupsByRecv(Oid m, Oid recv) const;

  /// Positions of membership facts of m whose member is `member` —
  /// the inverted member→receiver index. Each SetMemberRef addresses
  /// one membership fact: `SetGroups(m)[r.group]` is the group and
  /// `r.pos` indexes its members/member_gens arrays.
  const std::vector<SetMemberRef>& SetGroupsByMember(Oid m, Oid member) const;

  /// Number of distinct members among the facts of set method m (the
  /// inverted index's bucket count).
  size_t SetDistinctMembers(Oid m) const;

  /// Incrementally-maintained statistics over m's inverted member
  /// index; the set-valued twin of ScalarValueStats.
  const MethodStats& SetMemberStats(Oid m) const;

  /// All methods with at least one set-valued fact.
  std::vector<Oid> SetMethods() const;

  // --- Fact log / generations ---------------------------------------

  /// Number of facts ever asserted; also the next generation stamp.
  uint64_t generation() const { return log_.size(); }

  /// The fact with generation g (0 <= g < generation()).
  const Fact& FactAt(uint64_t g) const { return log_[g]; }

  /// Total number of stored facts (== generation()).
  size_t FactCount() const { return log_.size(); }

  /// Statistics used by benchmarks and the README examples.
  struct Stats {
    size_t objects = 0;
    size_t isa_facts = 0;
    size_t scalar_facts = 0;
    size_t set_facts = 0;
  };
  Stats ComputeStats() const;

  /// Approximate heap bytes retained by the store: object table +
  /// intern maps, hierarchy closure pairs, method tables with their
  /// inverted-index buckets, and the fact log. Maintained
  /// incrementally by every mutator (flat per-slot estimates plus
  /// string payloads), so reads are free and snapshot/WAL replay
  /// rebuilds the figure exactly (replay re-runs the mutators). This
  /// is the quantity ResourceBudget's byte dimension governs.
  uint64_t ApproxBytes() const { return approx_bytes_; }

  // --- Observability -------------------------------------------------

  /// Attaches a metrics registry (nullptr detaches). From this point
  /// on, every new object and every asserted fact bumps the
  /// pathlog_store_* counters. Disabled cost per mutation is one
  /// branch. A copy of the store inherits the attachment — mutations
  /// to the copy are real mutations and count too; callers that copy
  /// for oracle runs should detach on the copy.
  void set_metrics(MetricsRegistry* metrics);

 private:
  struct ObjectInfo {
    ObjectKind kind;
    std::string name;
    int64_t int_value = 0;
  };

  struct ScalarTable {
    std::unordered_map<InvocationKey, uint32_t, InvocationKeyHash> index;
    std::vector<ScalarEntry> entries;
    std::unordered_map<Oid, std::vector<uint32_t>> by_recv;
    /// Inverted index: value -> entry indexes, in insertion order.
    std::unordered_map<Oid, std::vector<uint32_t>> by_value;
    /// Counters + exact top-k heavy hitters over by_value.
    MethodStats stats;
  };

  struct SetTable {
    std::unordered_map<InvocationKey, uint32_t, InvocationKeyHash> index;
    std::vector<SetGroup> groups;
    std::unordered_map<Oid, std::vector<uint32_t>> by_recv;
    /// Inverted index: member -> membership facts, in insertion order.
    std::unordered_map<Oid, std::vector<SetMemberRef>> by_member;
    /// Counters + exact top-k heavy hitters over by_member.
    MethodStats stats;
  };

  Oid AddObject(ObjectInfo info);

  /// Cached metric handles (borrowed from the attached registry; all
  /// null when metrics are detached).
  struct MetricsHooks {
    Counter* objects = nullptr;
    Counter* isa_facts = nullptr;
    Counter* scalar_facts = nullptr;
    Counter* set_facts = nullptr;
  };
  MetricsHooks metrics_;

  std::vector<ObjectInfo> objects_;
  std::unordered_map<std::string, Oid> symbols_;
  std::unordered_map<int64_t, Oid> ints_;
  std::unordered_map<std::string, Oid> strings_;

  // Hierarchy: direct edges plus eagerly-maintained reachability, with
  // the generation of the establishing fact per closure pair.
  std::unordered_map<Oid, std::vector<Oid>> up_edges_;
  std::unordered_map<Oid, std::vector<Oid>> ancestors_;  // closure
  std::unordered_map<Oid, std::vector<uint64_t>> ancestor_gens_;
  std::unordered_map<Oid, std::unordered_map<Oid, uint64_t>> anc_set_;
  std::unordered_map<Oid, std::vector<Oid>> members_;  // extent
  std::unordered_map<Oid, std::vector<uint64_t>> member_gens_;
  std::unordered_map<Oid, std::unordered_set<Oid>> member_set_;

  std::unordered_map<Oid, ScalarTable> scalar_;
  std::unordered_map<Oid, SetTable> setval_;

  std::vector<Fact> log_;

  uint64_t approx_bytes_ = 0;
};

}  // namespace pathlog

#endif  // PATHLOG_STORE_OBJECT_STORE_H_
