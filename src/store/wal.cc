#include "store/wal.h"

#include <chrono>
#include <cstring>

#include "base/coding.h"
#include "base/crc32.h"
#include "base/strings.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pathlog {

std::string EncodeWalIntern(Oid oid, ObjectKind kind, int64_t int_value,
                            std::string_view text) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(WalRecordType::kIntern));
  PutU32(&out, oid);
  PutU8(&out, static_cast<uint8_t>(kind));
  if (kind == ObjectKind::kInt) {
    PutU64(&out, static_cast<uint64_t>(int_value));
  } else {
    PutU32(&out, static_cast<uint32_t>(text.size()));
    out.append(text);
  }
  return out;
}

std::string EncodeWalFact(uint64_t gen, const Fact& fact) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(WalRecordType::kFact));
  PutU64(&out, gen);
  PutU8(&out, static_cast<uint8_t>(fact.kind));
  PutU32(&out, fact.method);
  PutU32(&out, fact.recv);
  PutU32(&out, static_cast<uint32_t>(fact.args.size()));
  for (Oid a : fact.args) PutU32(&out, a);
  PutU32(&out, fact.value);
  return out;
}

std::string EncodeWalProgram(std::string_view program_text) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(WalRecordType::kProgram));
  PutU32(&out, static_cast<uint32_t>(program_text.size()));
  out.append(program_text);
  return out;
}

std::string EncodeWalTriggerWatermark(uint64_t watermark) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(WalRecordType::kTriggerWatermark));
  PutU64(&out, watermark);
  return out;
}

void AppendWalFrame(std::string* out, std::string_view payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload));
  out->append(payload);
}

namespace {

/// Decodes one payload. nullopt-style failure via Status: a payload
/// that passed its CRC but does not decode is corruption, not a torn
/// tail.
Result<WalRecord> DecodePayload(std::string_view payload) {
  ByteReader r(payload);
  WalRecord rec;
  const uint8_t type = r.U8();
  switch (type) {
    case static_cast<uint8_t>(WalRecordType::kIntern): {
      rec.type = WalRecordType::kIntern;
      rec.oid = r.U32();
      const uint8_t kind = r.U8();
      if (kind > static_cast<uint8_t>(ObjectKind::kAnonymous)) {
        return Status(InvalidArgument("wal corrupt: unknown object kind"));
      }
      rec.obj_kind = static_cast<ObjectKind>(kind);
      if (rec.obj_kind == ObjectKind::kInt) {
        rec.int_value = r.I64();
      } else {
        const uint32_t len = r.U32();
        rec.text = std::string(r.Bytes(len));
      }
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kFact): {
      rec.type = WalRecordType::kFact;
      rec.gen = r.U64();
      const uint8_t kind = r.U8();
      if (kind > static_cast<uint8_t>(FactKind::kSetMember)) {
        return Status(InvalidArgument("wal corrupt: unknown fact kind"));
      }
      rec.fact.kind = static_cast<FactKind>(kind);
      rec.fact.method = r.U32();
      rec.fact.recv = r.U32();
      const uint32_t argc = r.U32();
      // An argc that implies more bytes than the payload holds is
      // rejected before the vector is sized (a flipped length byte
      // must not turn into a giant allocation).
      if (!r.Ok() || argc * 4ull > r.remaining()) {
        return Status(InvalidArgument("wal corrupt: fact argc overruns"));
      }
      rec.fact.args.resize(argc);
      for (uint32_t i = 0; i < argc; ++i) rec.fact.args[i] = r.U32();
      rec.fact.value = r.U32();
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kProgram): {
      rec.type = WalRecordType::kProgram;
      const uint32_t len = r.U32();
      rec.text = std::string(r.Bytes(len));
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kTriggerWatermark): {
      rec.type = WalRecordType::kTriggerWatermark;
      rec.watermark = r.U64();
      break;
    }
    default:
      return Status(InvalidArgument(
          StrCat("wal corrupt: unknown record type ", type)));
  }
  if (!r.Ok()) {
    return Status(InvalidArgument("wal corrupt: payload truncated"));
  }
  if (r.remaining() != 0) {
    return Status(InvalidArgument("wal corrupt: payload has trailing bytes"));
  }
  return rec;
}

}  // namespace

Result<WalScan> ScanWal(std::string_view bytes) {
  WalScan scan;
  if (bytes.size() < kWalMagicLen) {
    // Crash during log creation: only part of the header landed.
    scan.torn = true;
    scan.valid_bytes = 0;
    return scan;
  }
  if (std::memcmp(bytes.data(), kWalMagic, kWalMagicLen) != 0) {
    return Status(InvalidArgument("not a PathLog WAL (bad magic)"));
  }
  size_t pos = kWalMagicLen;
  while (pos < bytes.size()) {
    // Frame header: u32 len + u32 crc.
    if (bytes.size() - pos < 8) break;  // torn
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + i]))
             << (8 * i);
      crc |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + 4 + i]))
             << (8 * i);
    }
    if (bytes.size() - pos - 8 < len) break;  // torn payload
    std::string_view payload = bytes.substr(pos + 8, len);
    if (Crc32(payload) != crc) break;  // torn or flipped: drop the tail
    Result<WalRecord> rec = DecodePayload(payload);
    if (!rec.ok()) return rec.status();  // intact CRC, bad content
    scan.records.push_back(std::move(*rec));
    pos += 8 + len;
  }
  scan.valid_bytes = pos;
  scan.torn = pos != bytes.size();
  return scan;
}

Status ApplyWalRecordToStore(const WalRecord& record, ObjectStore* store) {
  switch (record.type) {
    case WalRecordType::kIntern: {
      if (record.oid < store->UniverseSize()) {
        // Overlap with the snapshot (crash between checkpoint rename
        // and log reset): verify, don't re-create.
        if (store->kind(record.oid) != record.obj_kind) {
          return InvalidArgument(StrCat(
              "wal corrupt: intern ", record.oid, " kind mismatch"));
        }
        return Status::OK();
      }
      if (record.oid != store->UniverseSize()) {
        return InvalidArgument(StrCat(
            "wal corrupt: intern skips to oid ", record.oid, " (universe is ",
            store->UniverseSize(), ")"));
      }
      Oid o = kNilOid;
      switch (record.obj_kind) {
        case ObjectKind::kInt:
          o = store->InternInt(record.int_value);
          break;
        case ObjectKind::kSymbol:
          o = store->InternSymbol(record.text);
          break;
        case ObjectKind::kString:
          o = store->InternString(record.text);
          break;
        case ObjectKind::kAnonymous:
          o = store->NewAnonymous(record.text);
          break;
      }
      if (o != record.oid) {
        return InvalidArgument(StrCat(
            "wal corrupt: intern record for oid ", record.oid,
            " reconstructed as ", o, " (duplicate name?)"));
      }
      return Status::OK();
    }
    case WalRecordType::kFact: {
      const Fact& f = record.fact;
      bool oids_ok = store->Valid(f.method) && store->Valid(f.recv) &&
                     (f.kind == FactKind::kIsa || store->Valid(f.value));
      for (Oid a : f.args) oids_ok = oids_ok && store->Valid(a);
      if (!oids_ok) {
        return InvalidArgument(StrCat(
            "wal corrupt: fact at gen ", record.gen,
            " references an oid outside the object table"));
      }
      if (record.gen < store->generation()) {
        if (!(store->FactAt(record.gen) == f)) {
          return InvalidArgument(StrCat(
              "wal corrupt: fact at gen ", record.gen,
              " disagrees with the snapshot"));
        }
        return Status::OK();
      }
      if (record.gen != store->generation()) {
        return InvalidArgument(StrCat(
            "wal corrupt: fact log skips to gen ", record.gen,
            " (store is at ", store->generation(), ")"));
      }
      switch (f.kind) {
        case FactKind::kIsa:
          return store->AddIsa(f.recv, f.method);
        case FactKind::kScalar:
          return store->SetScalar(f.method, f.recv, f.args, f.value);
        case FactKind::kSetMember:
          store->AddSetMember(f.method, f.recv, f.args, f.value);
          return Status::OK();
      }
      return Internal("unreachable fact kind");
    }
    case WalRecordType::kProgram:
    case WalRecordType::kTriggerWatermark:
      return Status::OK();  // database-level; handled by the caller
  }
  return Internal("unreachable wal record type");
}

namespace {

/// Records a failing WAL operation as a flight instant with the error
/// message attached. No-op on null recorder.
void RecordWalFailure(FlightRecorder* flight, std::string_view op,
                      const Status& st) {
  if (flight == nullptr) return;
  std::string args = "{\"error\":";
  AppendJsonString(&args, st.ToString());
  args += "}";
  flight->Record(op, "wal", /*dur_us=*/0, args);
}

}  // namespace

void WalAppender::set_obs(MetricsRegistry* metrics, Tracer* tracer,
                          FlightRecorder* flight) {
  tracer_ = tracer;
  flight_ = flight;
  if (metrics == nullptr) {
    appends_ = nullptr;
    append_bytes_ = nullptr;
    fsyncs_ = nullptr;
    fsync_ms_ = nullptr;
    return;
  }
  appends_ = metrics->GetCounter("pathlog_wal_appends_total",
                                 "records appended to the WAL");
  append_bytes_ = metrics->GetCounter("pathlog_wal_append_bytes_total",
                                      "framed bytes appended to the WAL");
  fsyncs_ = metrics->GetCounter("pathlog_wal_fsyncs_total",
                                "fsyncs issued on the WAL");
  fsync_ms_ = metrics->GetHistogram("pathlog_wal_fsync_ms",
                                    DefaultLatencyBoundsMs(),
                                    "WAL fsync latency in milliseconds");
}

Status WalAppender::Append(std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 8);
  AppendWalFrame(&frame, payload);
  if (appends_ != nullptr) appends_->Inc();
  if (append_bytes_ != nullptr) append_bytes_->Inc(frame.size());
  Status st = file_->Append(frame);
  if (st.ok()) {
    appended_bytes_ += frame.size();
  } else {
    RecordWalFailure(flight_, "wal.append", st);
  }
  return st;
}

Status WalAppender::Sync() {
  TraceSpan span(tracer_, "wal.fsync", "wal");
  const auto t0 = std::chrono::steady_clock::now();
  Status st = file_->Sync();
  if (fsyncs_ != nullptr) fsyncs_->Inc();
  if (fsync_ms_ != nullptr) {
    fsync_ms_->Observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  if (!st.ok()) RecordWalFailure(flight_, "wal.fsync", st);
  return st;
}

}  // namespace pathlog
