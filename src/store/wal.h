// The write-ahead log: PathLog's unit of crash-safe durability.
//
// The fact log is already the canonical replayable event stream —
// snapshots replay it, triggers consume it — so durability logs
// exactly that stream: object interns (universe growth) and facts, in
// commit order, plus the program text of installed rules/signatures
// and the trigger watermark. Recovery = newest valid snapshot + the
// WAL's valid prefix.
//
// File format (little-endian):
//   magic "PLGWAL01" (8 bytes)
//   zero or more frames: u32 payload_len, u32 crc32(payload), payload
//
// Payloads (first byte is the record type):
//   kIntern            u8 type, u32 oid, u8 object_kind,
//                      kInt: i64 value; else: u32 len + bytes
//   kFact              u8 type, u64 gen, u8 fact_kind, u32 method,
//                      u32 recv, u32 argc, u32 args[argc], u32 value
//   kProgram           u8 type, u32 len + program text (rules,
//                      triggers and signatures as loadable PathLog)
//   kTriggerWatermark  u8 type, u64 watermark
//
// Torn-tail rule: a frame whose length field, payload bytes, or CRC
// cannot be completed is the torn tail of an interrupted append. The
// scan stops there and reports the valid prefix; the caller truncates
// the file and carries on. Corruption *inside* the valid region (a
// CRC that matches but a payload that decodes to nonsense, or oids
// outside the object table at replay time) is a typed error instead —
// that is damage, not a crash artefact.

#ifndef PATHLOG_STORE_WAL_H_
#define PATHLOG_STORE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "store/fact.h"
#include "store/file_ops.h"
#include "store/object_store.h"

namespace pathlog {

inline constexpr char kWalMagic[] = "PLGWAL01";
inline constexpr size_t kWalMagicLen = 8;

enum class WalRecordType : uint8_t {
  kIntern = 0,
  kFact = 1,
  kProgram = 2,
  kTriggerWatermark = 3,
};

/// One decoded WAL record. Only the fields of its type are meaningful.
struct WalRecord {
  WalRecordType type;
  // kIntern
  Oid oid = kNilOid;
  ObjectKind obj_kind = ObjectKind::kSymbol;
  int64_t int_value = 0;
  std::string text;  ///< symbol/string/anonymous name, or program text
  // kFact
  uint64_t gen = 0;
  Fact fact;
  // kTriggerWatermark
  uint64_t watermark = 0;
};

/// Encoders produce the *payload* (no frame); frame with AppendWalFrame.
std::string EncodeWalIntern(Oid oid, ObjectKind kind, int64_t int_value,
                            std::string_view text);
std::string EncodeWalFact(uint64_t gen, const Fact& fact);
std::string EncodeWalProgram(std::string_view program_text);
std::string EncodeWalTriggerWatermark(uint64_t watermark);

/// Appends one framed record (length + CRC + payload) to `out`.
void AppendWalFrame(std::string* out, std::string_view payload);

struct WalScan {
  std::vector<WalRecord> records;
  /// Bytes of the valid prefix (header + intact frames). When `torn`,
  /// the caller should truncate the file to this length.
  uint64_t valid_bytes = 0;
  bool torn = false;
};

/// Scans a WAL image. A file shorter than the magic is treated as the
/// torn remains of log creation (recovered empty); a full-length but
/// wrong magic is kInvalidArgument (not a WAL at all); a frame that
/// decodes under a matching CRC into an unknown type or malformed
/// fields is kInvalidArgument (real corruption).
Result<WalScan> ScanWal(std::string_view bytes);

/// Replays one intern/fact record into the store, idempotently: a
/// record the store already contains (same oid/name, same generation
/// and fact) is skipped, so a WAL that overlaps its snapshot — the
/// window between checkpoint rename and log reset — replays cleanly.
/// Mismatches and out-of-table oids are kInvalidArgument.
/// kProgram/kTriggerWatermark records are database-level; this
/// function ignores them.
Status ApplyWalRecordToStore(const WalRecord& record, ObjectStore* store);

class Counter;
class FlightRecorder;
class Histogram;
class MetricsRegistry;
class Tracer;

/// Thin framing wrapper over an open WAL file.
///
/// Concurrency: deliberately unsynchronised. A WalAppender is owned by
/// exactly one Database and every call — Append, Sync, set_obs,
/// appended_bytes — happens under that Database's exclusive state lock
/// (the std::shared_mutex snapshot guard in query/database.h), which
/// both serialises the byte stream and publishes appended_bytes_ to
/// the next writer. Do not share an appender outside that lock; WAL
/// framing is a strict sequence, so an internal mutex here would only
/// hide interleaving bugs the outer lock must prevent anyway.
class WalAppender {
 public:
  explicit WalAppender(std::unique_ptr<FileOps::WritableFile> file)
      : file_(std::move(file)) {}

  /// Attaches observability sinks (any may be null). Appends count
  /// records and bytes; Sync records an fsync latency sample and a
  /// "wal.fsync" trace span. The flight recorder sees every *failing*
  /// append/fsync as an instant event with the error attached, so a
  /// ring dumped on degraded-mode entry names the exact WAL operation
  /// that broke.
  void set_obs(MetricsRegistry* metrics, Tracer* tracer,
               FlightRecorder* flight = nullptr);

  /// Appends one framed payload (buffered by the OS until Sync).
  Status Append(std::string_view payload);
  Status Sync();

  /// Framed bytes successfully appended through this appender (frame
  /// header + payload). The database adds this to the recovered log
  /// size to decide when to rotate the segment.
  uint64_t appended_bytes() const { return appended_bytes_; }

 private:
  std::unique_ptr<FileOps::WritableFile> file_;
  uint64_t appended_bytes_ = 0;
  Counter* appends_ = nullptr;
  Counter* append_bytes_ = nullptr;
  Counter* fsyncs_ = nullptr;
  Histogram* fsync_ms_ = nullptr;
  Tracer* tracer_ = nullptr;
  FlightRecorder* flight_ = nullptr;
};

}  // namespace pathlog

#endif  // PATHLOG_STORE_WAL_H_
