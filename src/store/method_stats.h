// Per-method inverted-index statistics for the cost planner.
//
// The inverted value→receiver / member→group indexes (object_store.h)
// give the planner exact bucket sizes when a filter target is a
// constant, but a target bound only at *runtime* used to be estimated
// with the average bucket (entries / distinct values) — blind to skew,
// so one hot value misranked whole plans (the old PlannerSkewTest
// pinned exactly that). MethodStats closes the gap: alongside each
// inverted index the store maintains total/distinct counters plus the
// exact top-k heavy-hitter buckets (value → count), incrementally on
// every mutation and therefore rebuilt for free when snapshot/WAL
// replay re-runs the mutators.
//
// The heavy-hitter set is *exact* top-k, not a probabilistic sketch:
// every update passes the value's true bucket size (the inverted index
// has it in O(1)), so a value re-enters with its real count whenever
// it grows past the current minimum. The retained set is the k maximal
// buckets by (count desc, oid asc) — a pure function of the bucket-size
// multiset, independent of insertion order (ties keep the smaller oid).

#ifndef PATHLOG_STORE_METHOD_STATS_H_
#define PATHLOG_STORE_METHOD_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "store/oid.h"

namespace pathlog {

/// Which estimator the query planner uses for a filter target that is
/// bound only at runtime (a variable an earlier literal will bind).
/// The choice never changes answers — only literal order and the
/// printed estimates (tests/differential_test.cc proves it per
/// strategy). Defined here rather than in query/planner.h so
/// EngineOptions can carry the toggle without a header cycle.
enum class PlannerStatsMode : uint8_t {
  /// Skew-blind: the historical planner, byte for byte. Scalar probes
  /// cost the average bucket (entries / distinct values); set-member
  /// probes have no runtime-bound estimate at all. Kept for
  /// differential testing and as the baseline in bench_planner's
  /// skew twins.
  kAverageBucket,
  /// Skew-aware: upper quantile of the exact top-k heavy-hitter
  /// buckets, floored by the residual-mass average
  /// (SkewAwareBucketEstimate below). The default.
  kSkewAware,
};

/// How many heavy-hitter buckets each method's stats retain. Eight
/// covers any realistic skew head while keeping the per-update scan
/// trivially cheap (the sketch is a tiny unsorted array).
inline constexpr size_t kStatsTopK = 8;

/// One heavy-hitter bucket: `count` facts share this value/member.
struct HeavyBucket {
  Oid value;
  uint64_t count;

  friend bool operator==(const HeavyBucket& a, const HeavyBucket& b) {
    return a.value == b.value && a.count == b.count;
  }
};

/// Incrementally-maintained statistics over one method's inverted
/// index: exact totals plus the exact top-k heavy hitters.
struct MethodStats {
  /// Total facts indexed (scalar entries / set membership facts).
  uint64_t total = 0;
  /// Distinct values (the inverted index's bucket count).
  uint64_t distinct = 0;
  /// Generation of the last fact that updated these stats; UINT64_MAX
  /// until the first update. Snapshot/WAL replay re-runs the mutators,
  /// so a rebuilt store reproduces the same stamp.
  uint64_t last_gen = UINT64_MAX;
  /// The k largest buckets, count descending (ties: smaller oid
  /// first). Exact: see the file comment.
  std::vector<HeavyBucket> heavy;

  /// Records that `value`'s bucket grew to `new_count` (its exact size
  /// after the insert) by the fact with generation `gen`. `is_new_value`
  /// is true when this is the bucket's first entry.
  void Update(Oid value, uint64_t new_count, bool is_new_value, uint64_t gen);

  /// Sum of the heavy-hitter counts (the mass the sketch explains).
  uint64_t HeavyMass() const;

  friend bool operator==(const MethodStats& a, const MethodStats& b) {
    return a.total == b.total && a.distinct == b.distinct &&
           a.last_gen == b.last_gen && a.heavy == b.heavy;
  }
};

/// The skew-blind estimator the planner used before these stats: the
/// average bucket, entries / distinct values. Kept callable so the two
/// estimators stay differentially testable side by side.
double AverageBucketEstimate(const MethodStats& s);

/// The skew-aware estimate for a probe whose value is bound only at
/// runtime: the upper (90th-index) quantile of the top-k heavy-hitter
/// counts, floored by the average of the residual (non-heavy) mass.
/// With every bucket in the sketch this is simply the hot bucket; with
/// no stats at all it degrades to AverageBucketEstimate. Deliberately
/// pessimistic: the planner ranks access paths by worst plausible
/// enumeration, so a path through a possibly-hot bucket must not
/// undercut a smaller guaranteed extent.
double SkewAwareBucketEstimate(const MethodStats& s);

}  // namespace pathlog

#endif  // PATHLOG_STORE_METHOD_STATS_H_
