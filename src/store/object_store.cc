#include "store/object_store.h"

#include <algorithm>
#include <deque>

#include "base/strings.h"
#include "obs/metrics.h"

namespace pathlog {

namespace {
const std::vector<Oid> kEmptyOids;
const std::vector<uint32_t> kEmptyIdx;
const std::vector<ScalarEntry> kEmptyScalar;
const std::vector<SetGroup> kEmptySet;

// ApproxBytes() charges a flat overhead per container slot (hash node,
// vector slack, bookkeeping) instead of walking containers — the
// estimate must be monotone and O(1) per mutation, not exact.
constexpr uint64_t kSlotOverhead = 48;

uint64_t FactBytes(const Fact& f) {
  return sizeof(Fact) + f.args.size() * sizeof(Oid);
}
}  // namespace

ObjectStore::ObjectStore() = default;

Oid ObjectStore::AddObject(ObjectInfo info) {
  // ObjectInfo in the table plus the intern-map node most objects get.
  approx_bytes_ += sizeof(ObjectInfo) + info.name.size() + kSlotOverhead;
  objects_.push_back(std::move(info));
  if (metrics_.objects != nullptr) metrics_.objects->Inc();
  return static_cast<Oid>(objects_.size() - 1);
}

void ObjectStore::set_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metrics_ = MetricsHooks{};
    return;
  }
  metrics_.objects = metrics->GetCounter(
      "pathlog_store_objects_total", "objects added to the universe");
  metrics_.isa_facts = metrics->GetCounter("pathlog_store_isa_facts_total",
                                           "isa facts asserted");
  metrics_.scalar_facts = metrics->GetCounter(
      "pathlog_store_scalar_facts_total", "scalar method facts asserted");
  metrics_.set_facts = metrics->GetCounter(
      "pathlog_store_set_facts_total", "set membership facts asserted");
}

Oid ObjectStore::InternSymbol(std::string_view name) {
  auto it = symbols_.find(std::string(name));
  if (it != symbols_.end()) return it->second;
  Oid o = AddObject({ObjectKind::kSymbol, std::string(name), 0});
  symbols_.emplace(std::string(name), o);
  return o;
}

Oid ObjectStore::InternInt(int64_t value) {
  auto it = ints_.find(value);
  if (it != ints_.end()) return it->second;
  Oid o = AddObject({ObjectKind::kInt, std::to_string(value), value});
  ints_.emplace(value, o);
  return o;
}

Oid ObjectStore::InternString(std::string_view text) {
  auto it = strings_.find(std::string(text));
  if (it != strings_.end()) return it->second;
  Oid o = AddObject(
      {ObjectKind::kString, StrCat("\"", text, "\""), 0});
  strings_.emplace(std::string(text), o);
  return o;
}

Oid ObjectStore::NewAnonymous(std::string display_name) {
  return AddObject({ObjectKind::kAnonymous, std::move(display_name), 0});
}

std::optional<Oid> ObjectStore::FindSymbol(std::string_view name) const {
  auto it = symbols_.find(std::string(name));
  if (it == symbols_.end()) return std::nullopt;
  return it->second;
}

std::optional<Oid> ObjectStore::FindInt(int64_t value) const {
  auto it = ints_.find(value);
  if (it == ints_.end()) return std::nullopt;
  return it->second;
}

std::optional<Oid> ObjectStore::FindString(std::string_view text) const {
  auto it = strings_.find(std::string(text));
  if (it == strings_.end()) return std::nullopt;
  return it->second;
}

Status ObjectStore::AddIsa(Oid sub, Oid super) {
  if (!Valid(sub) || !Valid(super)) {
    return InvalidArgument("AddIsa: invalid oid");
  }
  if (sub == super || IsA(super, sub)) {
    return InvalidArgument(
        StrCat("AddIsa: edge ", DisplayName(sub), " <= ", DisplayName(super),
               " would create a cycle; the hierarchy must stay a partial "
               "order"));
  }
  if (IsA(sub, super)) {
    // Already reachable. Record a direct edge only if absent, without a
    // new fact (closure unchanged).
    auto& ups = up_edges_[sub];
    if (std::find(ups.begin(), ups.end(), super) == ups.end()) {
      ups.push_back(super);
    }
    return Status::OK();
  }

  up_edges_[sub].push_back(super);
  approx_bytes_ += sizeof(Oid) + kSlotOverhead;

  // Incrementally extend the reachability closure: every x <= sub
  // (including sub) now reaches every y >= super (including super).
  std::vector<Oid> below;
  below.push_back(sub);
  if (auto mit = members_.find(sub); mit != members_.end()) {
    below.insert(below.end(), mit->second.begin(), mit->second.end());
  }
  std::vector<Oid> above;
  above.push_back(super);
  if (auto ait = ancestors_.find(super); ait != ancestors_.end()) {
    above.insert(above.end(), ait->second.begin(), ait->second.end());
  }
  const uint64_t gen = log_.size();
  for (Oid x : below) {
    auto& xs = anc_set_[x];
    for (Oid y : above) {
      if (xs.emplace(y, gen).second) {
        ancestors_[x].push_back(y);
        ancestor_gens_[x].push_back(gen);
        // Closure pair: anc_set node + ancestors/gens slots, mirrored
        // on the member side below.
        approx_bytes_ += kSlotOverhead + sizeof(Oid) + sizeof(uint64_t);
        if (member_set_[y].insert(x).second) {
          members_[y].push_back(x);
          member_gens_[y].push_back(gen);
          approx_bytes_ += kSlotOverhead + sizeof(Oid) + sizeof(uint64_t);
        }
      }
    }
  }

  log_.push_back(Fact{FactKind::kIsa, super, sub, {}, kNilOid});
  approx_bytes_ += FactBytes(log_.back());
  if (metrics_.isa_facts != nullptr) metrics_.isa_facts->Inc();
  return Status::OK();
}

bool ObjectStore::IsA(Oid sub, Oid super) const {
  auto it = anc_set_.find(sub);
  return it != anc_set_.end() && it->second.count(super) > 0;
}

uint64_t ObjectStore::IsaGen(Oid sub, Oid super) const {
  auto it = anc_set_.find(sub);
  if (it == anc_set_.end()) return UINT64_MAX;
  auto jt = it->second.find(super);
  return jt == it->second.end() ? UINT64_MAX : jt->second;
}

const std::vector<Oid>& ObjectStore::Members(Oid c) const {
  auto it = members_.find(c);
  return it == members_.end() ? kEmptyOids : it->second;
}

const std::vector<uint64_t>& ObjectStore::MemberGens(Oid c) const {
  static const std::vector<uint64_t> kEmptyGens;
  auto it = member_gens_.find(c);
  return it == member_gens_.end() ? kEmptyGens : it->second;
}

const std::vector<Oid>& ObjectStore::Ancestors(Oid o) const {
  auto it = ancestors_.find(o);
  return it == ancestors_.end() ? kEmptyOids : it->second;
}

const std::vector<uint64_t>& ObjectStore::AncestorGens(Oid o) const {
  static const std::vector<uint64_t> kEmptyGens;
  auto it = ancestor_gens_.find(o);
  return it == ancestor_gens_.end() ? kEmptyGens : it->second;
}

std::vector<Oid> ObjectStore::ClassesWithMembers() const {
  std::vector<Oid> out;
  out.reserve(members_.size());
  for (const auto& [c, ms] : members_) {
    if (!ms.empty()) out.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status ObjectStore::SetScalar(Oid m, Oid recv, const std::vector<Oid>& args,
                              Oid value) {
  if (!Valid(m) || !Valid(recv) || !Valid(value)) {
    return InvalidArgument("SetScalar: invalid oid");
  }
  ScalarTable& t = scalar_[m];
  InvocationKey key{recv, args};
  auto it = t.index.find(key);
  if (it != t.index.end()) {
    Oid existing = t.entries[it->second].value;
    if (existing == value) return Status::OK();
    std::string call = DisplayName(recv);
    return ScalarConflict(StrCat(
        "scalar method ", DisplayName(m), " on ", call,
        " already yields ", DisplayName(existing), "; cannot also yield ",
        DisplayName(value)));
  }
  uint32_t idx = static_cast<uint32_t>(t.entries.size());
  t.entries.push_back(ScalarEntry{recv, args, value, log_.size()});
  t.index.emplace(std::move(key), idx);
  t.by_recv[recv].push_back(idx);
  std::vector<uint32_t>& bucket = t.by_value[value];
  bucket.push_back(idx);
  t.stats.Update(value, bucket.size(), /*is_new_value=*/bucket.size() == 1,
                 log_.size());
  log_.push_back(Fact{FactKind::kScalar, m, recv, args, value});
  // Entry + key copy of the args, plus index/by_recv/by_value slots.
  approx_bytes_ += sizeof(ScalarEntry) +
                   2 * args.size() * sizeof(Oid) + 3 * kSlotOverhead +
                   FactBytes(log_.back());
  if (metrics_.scalar_facts != nullptr) metrics_.scalar_facts->Inc();
  return Status::OK();
}

std::optional<Oid> ObjectStore::GetScalar(
    Oid m, Oid recv, const std::vector<Oid>& args) const {
  auto mt = scalar_.find(m);
  if (mt == scalar_.end()) return std::nullopt;
  auto it = mt->second.index.find(InvocationKey{recv, args});
  if (it == mt->second.index.end()) return std::nullopt;
  return mt->second.entries[it->second].value;
}

const std::vector<ScalarEntry>& ObjectStore::ScalarEntries(Oid m) const {
  auto mt = scalar_.find(m);
  return mt == scalar_.end() ? kEmptyScalar : mt->second.entries;
}

const std::vector<uint32_t>& ObjectStore::ScalarEntriesByRecv(Oid m,
                                                              Oid recv) const {
  auto mt = scalar_.find(m);
  if (mt == scalar_.end()) return kEmptyIdx;
  auto it = mt->second.by_recv.find(recv);
  return it == mt->second.by_recv.end() ? kEmptyIdx : it->second;
}

const std::vector<uint32_t>& ObjectStore::ScalarEntriesByValue(
    Oid m, Oid value) const {
  auto mt = scalar_.find(m);
  if (mt == scalar_.end()) return kEmptyIdx;
  auto it = mt->second.by_value.find(value);
  return it == mt->second.by_value.end() ? kEmptyIdx : it->second;
}

size_t ObjectStore::ScalarDistinctValues(Oid m) const {
  auto mt = scalar_.find(m);
  return mt == scalar_.end() ? 0 : mt->second.by_value.size();
}

const MethodStats& ObjectStore::ScalarValueStats(Oid m) const {
  static const MethodStats kEmptyStats;
  auto mt = scalar_.find(m);
  return mt == scalar_.end() ? kEmptyStats : mt->second.stats;
}

std::vector<Oid> ObjectStore::ScalarMethods() const {
  std::vector<Oid> out;
  out.reserve(scalar_.size());
  for (const auto& [m, t] : scalar_) {
    if (!t.entries.empty()) out.push_back(m);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool ObjectStore::AddSetMember(Oid m, Oid recv, const std::vector<Oid>& args,
                               Oid value) {
  assert(Valid(m) && Valid(recv) && Valid(value) &&
         "AddSetMember: invalid oid");
  SetTable& t = setval_[m];
  InvocationKey key{recv, args};
  auto it = t.index.find(key);
  uint32_t gi;
  if (it == t.index.end()) {
    gi = static_cast<uint32_t>(t.groups.size());
    SetGroup g;
    g.recv = recv;
    g.args = args;
    t.groups.push_back(std::move(g));
    t.index.emplace(std::move(key), gi);
    t.by_recv[recv].push_back(gi);
    // Group + key copy of the args, plus index/by_recv slots.
    approx_bytes_ += sizeof(SetGroup) + 2 * args.size() * sizeof(Oid) +
                     2 * kSlotOverhead;
  } else {
    gi = it->second;
  }
  SetGroup& g = t.groups[gi];
  if (!g.member_set.emplace(value, log_.size()).second) return false;
  std::vector<SetMemberRef>& bucket = t.by_member[value];
  bucket.push_back(SetMemberRef{gi, static_cast<uint32_t>(g.members.size())});
  t.stats.Update(value, bucket.size(), /*is_new_value=*/bucket.size() == 1,
                 log_.size());
  g.members.push_back(value);
  g.member_gens.push_back(log_.size());
  log_.push_back(Fact{FactKind::kSetMember, m, recv, args, value});
  // Membership: member_set node + members/gens slots + by_member ref.
  approx_bytes_ += kSlotOverhead + sizeof(Oid) + sizeof(uint64_t) +
                   sizeof(SetMemberRef) + kSlotOverhead +
                   FactBytes(log_.back());
  if (metrics_.set_facts != nullptr) metrics_.set_facts->Inc();
  return true;
}

const SetGroup* ObjectStore::GetSetGroup(Oid m, Oid recv,
                                         const std::vector<Oid>& args) const {
  auto mt = setval_.find(m);
  if (mt == setval_.end()) return nullptr;
  auto it = mt->second.index.find(InvocationKey{recv, args});
  if (it == mt->second.index.end()) return nullptr;
  return &mt->second.groups[it->second];
}

const std::vector<SetGroup>& ObjectStore::SetGroups(Oid m) const {
  auto mt = setval_.find(m);
  return mt == setval_.end() ? kEmptySet : mt->second.groups;
}

const std::vector<uint32_t>& ObjectStore::SetGroupsByRecv(Oid m,
                                                          Oid recv) const {
  auto mt = setval_.find(m);
  if (mt == setval_.end()) return kEmptyIdx;
  auto it = mt->second.by_recv.find(recv);
  return it == mt->second.by_recv.end() ? kEmptyIdx : it->second;
}

const std::vector<SetMemberRef>& ObjectStore::SetGroupsByMember(
    Oid m, Oid member) const {
  static const std::vector<SetMemberRef> kEmptyRefs;
  auto mt = setval_.find(m);
  if (mt == setval_.end()) return kEmptyRefs;
  auto it = mt->second.by_member.find(member);
  return it == mt->second.by_member.end() ? kEmptyRefs : it->second;
}

size_t ObjectStore::SetDistinctMembers(Oid m) const {
  auto mt = setval_.find(m);
  return mt == setval_.end() ? 0 : mt->second.by_member.size();
}

const MethodStats& ObjectStore::SetMemberStats(Oid m) const {
  static const MethodStats kEmptyStats;
  auto mt = setval_.find(m);
  return mt == setval_.end() ? kEmptyStats : mt->second.stats;
}

std::vector<Oid> ObjectStore::SetMethods() const {
  std::vector<Oid> out;
  out.reserve(setval_.size());
  for (const auto& [m, t] : setval_) {
    if (!t.groups.empty()) out.push_back(m);
  }
  std::sort(out.begin(), out.end());
  return out;
}

ObjectStore::Stats ObjectStore::ComputeStats() const {
  Stats s;
  s.objects = objects_.size();
  for (const Fact& f : log_) {
    switch (f.kind) {
      case FactKind::kIsa:
        ++s.isa_facts;
        break;
      case FactKind::kScalar:
        ++s.scalar_facts;
        break;
      case FactKind::kSetMember:
        ++s.set_facts;
        break;
    }
  }
  return s;
}

}  // namespace pathlog
