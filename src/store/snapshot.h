// Binary snapshots of an object store.
//
// The PathLog-text dump (StoreToProgramText) is human-readable but
// cannot round-trip *anonymous* objects — a materialised database full
// of virtual objects like `_boss(p1)` needs a faithful format.
// Snapshots serialise the object table and the fact log; loading
// replays the log, so oids, display names, generations and all derived
// indexes are reproduced exactly.
//
// Format (little-endian, fixed-width):
//   magic "PLGSNAP1"
//   u64 object_count
//     per object: u8 kind; kInt: i64 value; else: u32 len + bytes
//   u64 fact_count
//     per fact: u8 kind, u32 method, u32 recv,
//               u16 argc, u32 args[argc], u32 value

#ifndef PATHLOG_STORE_SNAPSHOT_H_
#define PATHLOG_STORE_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "base/result.h"
#include "store/object_store.h"

namespace pathlog {

/// Serialises the store into a byte string.
std::string SerializeSnapshot(const ObjectStore& store);

/// Reconstructs a store from SerializeSnapshot output. The result is
/// bit-for-bit equivalent: same oids, names, facts and generations.
Result<ObjectStore> DeserializeSnapshot(std::string_view bytes);

/// File convenience wrappers.
Status WriteSnapshotFile(const ObjectStore& store, const std::string& path);
Result<ObjectStore> ReadSnapshotFile(const std::string& path);

}  // namespace pathlog

#endif  // PATHLOG_STORE_SNAPSHOT_H_
