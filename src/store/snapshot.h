// Binary snapshots of an object store.
//
// The PathLog-text dump (StoreToProgramText) is human-readable but
// cannot round-trip *anonymous* objects — a materialised database full
// of virtual objects like `_boss(p1)` needs a faithful format.
// Snapshots serialise the object table and the fact log; loading
// replays the log, so oids, display names, generations and all derived
// indexes are reproduced exactly.
//
// Format v2 (little-endian, fixed-width):
//   magic "PLGSNAP2"
//   u32 crc32(body)
//   u64 body_len
//   body:
//     u64 object_count
//       per object: u8 kind; kInt: i64 value; else: u32 len + bytes
//     u64 fact_count
//       per fact: u8 kind, u32 method, u32 recv,
//                 u16 argc, u32 args[argc], u32 value
//
// v1 ("PLGSNAP1") is the same body with no checksum; it remains
// readable but is no longer written. A flipped bit anywhere in a v2
// body fails the CRC before any content reaches the store.

#ifndef PATHLOG_STORE_SNAPSHOT_H_
#define PATHLOG_STORE_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "base/result.h"
#include "store/file_ops.h"
#include "store/object_store.h"

namespace pathlog {

/// Serialises the store into a (v2, checksummed) byte string.
/// kInvalidArgument if any fact has more than 65535 arguments — the
/// wire format's u16 argc cannot represent it, and silently truncating
/// would corrupt the snapshot.
Result<std::string> SerializeSnapshot(const ObjectStore& store);

/// Reconstructs a store from SerializeSnapshot output (v2) or a legacy
/// v1 image. The result is bit-for-bit equivalent: same oids, names,
/// facts and generations.
Result<ObjectStore> DeserializeSnapshot(std::string_view bytes);

/// File convenience wrappers. Writing is atomic (temp + fsync +
/// rename): a crash never leaves a partial file visible at `path`.
/// `ops` defaults to the real file system; tests inject faults.
Status WriteSnapshotFile(const ObjectStore& store, const std::string& path,
                         FileOps* ops = nullptr);
Result<ObjectStore> ReadSnapshotFile(const std::string& path,
                                     FileOps* ops = nullptr);

}  // namespace pathlog

#endif  // PATHLOG_STORE_SNAPSHOT_H_
