// Injectable file-system operations for the durability layer.
//
// Everything the WAL and the snapshot writers do to disk goes through
// a FileOps, so tests can substitute an in-memory implementation that
// injects faults at any syscall boundary. Two implementations ship:
//
//   PosixFileOps           the real thing — open/write/fsync/rename,
//                          with directory fsync after renames so the
//                          new name itself is durable;
//   FaultInjectingFileOps  an in-memory file system that models the
//                          durable/volatile split: appended bytes live
//                          in an unsynced tail until Sync() promotes
//                          them, and a simulated crash drops a suffix
//                          of every unsynced tail (a "torn write").
//                          A fault plan fires at the Nth write-side
//                          operation: fail it, short-write it, or
//                          crash the process model.
//
// The contract WriteSnapshotFile and the WAL rely on:
//   - Append may persist any prefix of its data on crash;
//   - data is durable only after a successful Sync;
//   - Rename is atomic (the target is either the old or the new file,
//     never a mixture) and durable once it returns.

#ifndef PATHLOG_STORE_FILE_OPS_H_
#define PATHLOG_STORE_FILE_OPS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace pathlog {

class FileOps {
 public:
  /// An open file being written. Close() without Sync() leaves the
  /// unsynced tail at the mercy of a crash.
  class WritableFile {
   public:
    virtual ~WritableFile() = default;
    virtual Status Append(std::string_view data) = 0;
    virtual Status Sync() = 0;
    virtual Status Close() = 0;
  };

  virtual ~FileOps() = default;

  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;
  /// Opens for writing: truncate=true starts empty, false appends.
  virtual Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path, bool truncate) = 0;
  virtual Status Remove(const std::string& path) = 0;
  /// Atomic replace; durable on return (directory synced).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  /// Shrinks the file to `size` bytes (used to drop a torn WAL tail).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;
  /// Creates the directory (and parents); OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;
  /// Names (not paths) of the regular files directly inside `path`.
  /// Used by recovery to sweep stale `*.tmp` files.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;
};

/// True when `st` reports a transient I/O condition (kUnavailable —
/// ENOSPC, EIO and friends): worth retrying with backoff rather than
/// treating the device as permanently broken.
bool IsTransientIoError(const Status& st);

/// The process-wide POSIX implementation.
FileOps* DefaultFileOps();

/// Writes `bytes` to `path` atomically: temp file, fsync, rename.
/// A crash at any point leaves either the old file or the new one at
/// `path` — never a partial write. The temp file (`path` + ".tmp") is
/// removed on failure, best-effort.
Status WriteFileAtomic(FileOps* ops, const std::string& path,
                       std::string_view bytes);

/// In-memory file system with fault injection, for tests and benches.
class FaultInjectingFileOps : public FileOps {
 public:
  enum class FaultKind : uint8_t {
    kNone,
    /// The chosen operation returns an error; later ops succeed.
    kFail,
    /// The chosen Append persists only half its bytes, then errors.
    kShortWrite,
    /// The chosen operation does not happen; every later operation
    /// fails. Unsynced tails are torn down to `keep` bytes each.
    kCrash,
  };

  /// Which write-side operation a scheduled fault targets. kAny counts
  /// every write-side op; the typed values count only their own kind,
  /// so "the 2nd fsync" is expressible regardless of interleaved
  /// appends.
  enum class FaultOp : uint8_t {
    kAny = 0,
    kAppend,
    kSync,
    kOpen,
    kRename,
    kRemove,
    kTruncate,
  };

  /// One scripted fault: ops number `at` .. `at`+`count`-1 (1-based,
  /// counted per `op` kind since SetSchedule) fail with `kind`, and —
  /// unlike the legacy ArmFault path, which always reports kInternal —
  /// the injected error carries `code`, so tests can model transient
  /// conditions (kUnavailable: EIO that clears, an ENOSPC window) as
  /// distinct from persistent ones (kInternal: a dead device).
  struct FaultEvent {
    FaultOp op = FaultOp::kAny;
    uint64_t at = 1;
    uint64_t count = 1;
    FaultKind kind = FaultKind::kFail;
    StatusCode code = StatusCode::kUnavailable;
  };

  /// A deterministic per-op fault script, evaluated front to back: the
  /// first event matching the current op decides its fate.
  struct FaultSchedule {
    std::vector<FaultEvent> events;
  };

  FaultInjectingFileOps() = default;

  /// Arms the fault: the `nth` write-side operation from now (1-based)
  /// triggers `kind`. Read-side operations are never counted.
  void ArmFault(FaultKind kind, uint64_t nth);

  /// Installs a fault script and resets the per-op counters it is
  /// matched against. An empty schedule clears scripting. The legacy
  /// ArmFault, when armed, takes precedence over the schedule.
  void SetSchedule(FaultSchedule schedule);

  /// Write-side operations performed since construction — run a
  /// workload once un-faulted to learn the boundary count, then rerun
  /// with ArmFault(kCrash, i) for every i in [1, WriteOpCount()].
  uint64_t WriteOpCount() const { return op_count_; }
  bool crashed() const { return crashed_; }

  /// Ends the simulated crash: unsynced tails are torn (each keeps an
  /// arbitrary prefix — here half, rounded down), open handles are
  /// invalidated, and the "disk" becomes readable again, as if the
  /// process restarted.
  void RecoverAfterCrash();

  // FileOps:
  Result<std::string> ReadFile(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path, bool truncate) override;
  Status Remove(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;

 private:
  friend class FaultInjectingWritableFile;

  struct FileState {
    /// Bytes guaranteed to survive a crash.
    std::string durable;
    /// Appended but not yet fsynced; a crash tears this tail.
    std::string unsynced;

    std::string View() const { return durable + unsynced; }
  };

  /// The fault a write-side op must honour, and the status code the
  /// injected error should carry (legacy ArmFault faults are always
  /// kInternal; scheduled ones carry their event's code).
  struct FaultDecision {
    FaultKind kind = FaultKind::kNone;
    StatusCode code = StatusCode::kInternal;
  };

  /// Counts one write-side op of kind `op`; returns the fault to apply
  /// to it (the op itself must honour kFail/kShortWrite/kCrash).
  FaultDecision TickWriteOp(FaultOp op);

  /// Builds the injected-error status for `decision` at `what`.
  static Status FaultStatus(const FaultDecision& decision, const char* what);

  std::map<std::string, FileState> files_;
  std::map<std::string, bool> dirs_;
  FaultKind armed_ = FaultKind::kNone;
  uint64_t fault_at_ = 0;   // op index that triggers, 1-based; 0 = off
  uint64_t op_count_ = 0;
  bool crashed_ = false;
  FaultSchedule schedule_;
  /// Per-FaultOp counters the schedule is matched against (index 0 =
  /// kAny = all write-side ops); reset by SetSchedule.
  uint64_t sched_counts_[7] = {0, 0, 0, 0, 0, 0, 0};
};

}  // namespace pathlog

#endif  // PATHLOG_STORE_FILE_OPS_H_
