// Injectable file-system operations for the durability layer.
//
// Everything the WAL and the snapshot writers do to disk goes through
// a FileOps, so tests can substitute an in-memory implementation that
// injects faults at any syscall boundary. Two implementations ship:
//
//   PosixFileOps           the real thing — open/write/fsync/rename,
//                          with directory fsync after renames so the
//                          new name itself is durable;
//   FaultInjectingFileOps  an in-memory file system that models the
//                          durable/volatile split: appended bytes live
//                          in an unsynced tail until Sync() promotes
//                          them, and a simulated crash drops a suffix
//                          of every unsynced tail (a "torn write").
//                          A fault plan fires at the Nth write-side
//                          operation: fail it, short-write it, or
//                          crash the process model.
//
// The contract WriteSnapshotFile and the WAL rely on:
//   - Append may persist any prefix of its data on crash;
//   - data is durable only after a successful Sync;
//   - Rename is atomic (the target is either the old or the new file,
//     never a mixture) and durable once it returns.

#ifndef PATHLOG_STORE_FILE_OPS_H_
#define PATHLOG_STORE_FILE_OPS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace pathlog {

class FileOps {
 public:
  /// An open file being written. Close() without Sync() leaves the
  /// unsynced tail at the mercy of a crash.
  class WritableFile {
   public:
    virtual ~WritableFile() = default;
    virtual Status Append(std::string_view data) = 0;
    virtual Status Sync() = 0;
    virtual Status Close() = 0;
  };

  virtual ~FileOps() = default;

  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;
  /// Opens for writing: truncate=true starts empty, false appends.
  virtual Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path, bool truncate) = 0;
  virtual Status Remove(const std::string& path) = 0;
  /// Atomic replace; durable on return (directory synced).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  /// Shrinks the file to `size` bytes (used to drop a torn WAL tail).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;
  /// Creates the directory (and parents); OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;
};

/// The process-wide POSIX implementation.
FileOps* DefaultFileOps();

/// Writes `bytes` to `path` atomically: temp file, fsync, rename.
/// A crash at any point leaves either the old file or the new one at
/// `path` — never a partial write. The temp file (`path` + ".tmp") is
/// removed on failure, best-effort.
Status WriteFileAtomic(FileOps* ops, const std::string& path,
                       std::string_view bytes);

/// In-memory file system with fault injection, for tests and benches.
class FaultInjectingFileOps : public FileOps {
 public:
  enum class FaultKind : uint8_t {
    kNone,
    /// The chosen operation returns an error; later ops succeed.
    kFail,
    /// The chosen Append persists only half its bytes, then errors.
    kShortWrite,
    /// The chosen operation does not happen; every later operation
    /// fails. Unsynced tails are torn down to `keep` bytes each.
    kCrash,
  };

  FaultInjectingFileOps() = default;

  /// Arms the fault: the `nth` write-side operation from now (1-based)
  /// triggers `kind`. Read-side operations are never counted.
  void ArmFault(FaultKind kind, uint64_t nth);

  /// Write-side operations performed since construction — run a
  /// workload once un-faulted to learn the boundary count, then rerun
  /// with ArmFault(kCrash, i) for every i in [1, WriteOpCount()].
  uint64_t WriteOpCount() const { return op_count_; }
  bool crashed() const { return crashed_; }

  /// Ends the simulated crash: unsynced tails are torn (each keeps an
  /// arbitrary prefix — here half, rounded down), open handles are
  /// invalidated, and the "disk" becomes readable again, as if the
  /// process restarted.
  void RecoverAfterCrash();

  // FileOps:
  Result<std::string> ReadFile(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path, bool truncate) override;
  Status Remove(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status CreateDir(const std::string& path) override;

 private:
  friend class FaultInjectingWritableFile;

  struct FileState {
    /// Bytes guaranteed to survive a crash.
    std::string durable;
    /// Appended but not yet fsynced; a crash tears this tail.
    std::string unsynced;

    std::string View() const { return durable + unsynced; }
  };

  /// Counts one write-side op; returns the fault to apply to it (the
  /// op itself must honour kFail/kShortWrite/kCrash), or kNone.
  FaultKind TickWriteOp();

  std::map<std::string, FileState> files_;
  std::map<std::string, bool> dirs_;
  FaultKind armed_ = FaultKind::kNone;
  uint64_t fault_at_ = 0;   // op index that triggers, 1-based; 0 = off
  uint64_t op_count_ = 0;
  bool crashed_ = false;
};

}  // namespace pathlog

#endif  // PATHLOG_STORE_FILE_OPS_H_
