#include "store/file_ops.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "base/strings.h"

namespace pathlog {

namespace {

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Errnos that describe a condition of the moment — a full disk, a bad
/// block, a busy device — rather than a caller mistake. These map to
/// kUnavailable so the durability layer knows a retry may succeed.
bool ErrnoIsTransient(int err) {
  switch (err) {
    case EIO:
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
    case EAGAIN:
    case EBUSY:
    case ETIMEDOUT:
      return true;
    default:
      return false;
  }
}

Status ErrnoStatus(const std::string& op, const std::string& path) {
  std::string message = StrCat(op, " ", path, ": ", std::strerror(errno));
  if (ErrnoIsTransient(errno)) return Unavailable(std::move(message));
  return InvalidArgument(std::move(message));
}

class PosixWritableFile : public FileOps::WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return ErrnoStatus("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileOps : public FileOps {
 public:
  Result<std::string> ReadFile(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status(NotFound(StrCat("cannot open ", path)));
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad()) return Status(ErrnoStatus("read", path));
    return bytes;
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<std::unique_ptr<WritableFile>> OpenForWrite(const std::string& path,
                                                     bool truncate) override {
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Status(ErrnoStatus("open", path));
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(fd, path));
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink", path);
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from);
    }
    // The rename itself is metadata; fsync the directory so the new
    // name survives a crash (otherwise recovery could see the old
    // file even though the caller was told the replace succeeded).
    return SyncDir(ParentDir(to));
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    // mkdir -p: create each component, tolerating existing ones.
    std::string prefix;
    size_t pos = 0;
    while (pos <= path.size()) {
      size_t slash = path.find('/', pos);
      if (slash == std::string::npos) slash = path.size();
      prefix = path.substr(0, slash);
      pos = slash + 1;
      if (prefix.empty()) continue;
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        return ErrnoStatus("mkdir", prefix);
      }
    }
    // EEXIST above also tolerates a plain file squatting on the name;
    // callers are about to create files *inside* the path, so fail
    // loudly here instead of with a confusing ENOTDIR later.
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat", path);
    if (!S_ISDIR(st.st_mode)) {
      return InvalidArgument(StrCat(path, " exists and is not a directory"));
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* d = ::opendir(path.c_str());
    if (d == nullptr) return Status(ErrnoStatus("opendir", path));
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      struct stat st;
      if (::stat(StrCat(path, "/", name).c_str(), &st) == 0 &&
          S_ISREG(st.st_mode)) {
        names.push_back(std::move(name));
      }
    }
    ::closedir(d);
    return names;
  }

 private:
  static Status SyncDir(const std::string& dir) {
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open dir", dir);
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync dir", dir);
    return Status::OK();
  }
};

Status SimulatedCrash() {
  return Internal("simulated crash: file system is down");
}

}  // namespace

FileOps* DefaultFileOps() {
  static PosixFileOps* ops = new PosixFileOps();
  return ops;
}

bool IsTransientIoError(const Status& st) {
  return st.code() == StatusCode::kUnavailable;
}

Status WriteFileAtomic(FileOps* ops, const std::string& path,
                       std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  Result<std::unique_ptr<FileOps::WritableFile>> file =
      ops->OpenForWrite(tmp, /*truncate=*/true);
  if (!file.ok()) return file.status();
  Status st = (*file)->Append(bytes);
  if (st.ok()) st = (*file)->Sync();
  if (st.ok()) st = (*file)->Close();
  if (st.ok()) st = ops->Rename(tmp, path);
  if (!st.ok()) (void)ops->Remove(tmp);
  return st;
}

// --- FaultInjectingFileOps ------------------------------------------

/// Handle into the in-memory FS. All state lives in the parent so a
/// simulated crash invalidates every handle at once. Named (not in the
/// anonymous namespace) so the friend declaration in the header binds.
class FaultInjectingWritableFile : public FileOps::WritableFile {
 public:
  FaultInjectingWritableFile(FaultInjectingFileOps* fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override { return Status::OK(); }

 private:
  FaultInjectingFileOps* fs_;
  std::string path_;
};

void FaultInjectingFileOps::ArmFault(FaultKind kind, uint64_t nth) {
  armed_ = kind;
  fault_at_ = op_count_ + nth;
}

void FaultInjectingFileOps::SetSchedule(FaultSchedule schedule) {
  schedule_ = std::move(schedule);
  for (uint64_t& c : sched_counts_) c = 0;
}

void FaultInjectingFileOps::RecoverAfterCrash() {
  for (auto& [path, state] : files_) {
    // Tear every unsynced tail: an arbitrary prefix survives. Half
    // exercises both "some bytes landed" and "some were lost".
    state.durable += state.unsynced.substr(0, state.unsynced.size() / 2);
    state.unsynced.clear();
  }
  crashed_ = false;
  armed_ = FaultKind::kNone;
  fault_at_ = 0;
}

FaultInjectingFileOps::FaultDecision FaultInjectingFileOps::TickWriteOp(
    FaultOp op) {
  ++op_count_;
  ++sched_counts_[static_cast<size_t>(FaultOp::kAny)];
  ++sched_counts_[static_cast<size_t>(op)];
  if (armed_ != FaultKind::kNone && op_count_ == fault_at_) {
    FaultKind k = armed_;
    if (k == FaultKind::kCrash) crashed_ = true;
    armed_ = FaultKind::kNone;
    return {k, StatusCode::kInternal};
  }
  for (const FaultEvent& e : schedule_.events) {
    if (e.op != FaultOp::kAny && e.op != op) continue;
    const uint64_t n = sched_counts_[static_cast<size_t>(e.op)];
    if (n < e.at || n >= e.at + e.count) continue;
    if (e.kind == FaultKind::kCrash) crashed_ = true;
    return {e.kind, e.code};
  }
  return {FaultKind::kNone, StatusCode::kInternal};
}

Status FaultInjectingFileOps::FaultStatus(const FaultDecision& decision,
                                          const char* what) {
  return Status(decision.code, StrCat("injected fault: ", what));
}

Result<std::string> FaultInjectingFileOps::ReadFile(const std::string& path) {
  if (crashed_) return Status(SimulatedCrash());
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status(NotFound(StrCat("cannot open ", path)));
  }
  return it->second.View();
}

bool FaultInjectingFileOps::Exists(const std::string& path) {
  return !crashed_ && (files_.count(path) > 0 || dirs_.count(path) > 0);
}

Result<std::unique_ptr<FileOps::WritableFile>>
FaultInjectingFileOps::OpenForWrite(const std::string& path, bool truncate) {
  if (crashed_) return Status(SimulatedCrash());
  FaultDecision d = TickWriteOp(FaultOp::kOpen);
  if (d.kind == FaultKind::kCrash) return Status(SimulatedCrash());
  if (d.kind != FaultKind::kNone) return Status(FaultStatus(d, "open"));
  FileState& state = files_[path];
  if (truncate) {
    // Truncation of an existing file is itself a write: the old
    // durable content is gone immediately (as with O_TRUNC).
    state.durable.clear();
    state.unsynced.clear();
  }
  return std::unique_ptr<WritableFile>(
      new FaultInjectingWritableFile(this, path));
}

Status FaultInjectingFileOps::Remove(const std::string& path) {
  if (crashed_) return SimulatedCrash();
  FaultDecision d = TickWriteOp(FaultOp::kRemove);
  if (d.kind == FaultKind::kCrash) return SimulatedCrash();
  if (d.kind != FaultKind::kNone) return FaultStatus(d, "remove");
  files_.erase(path);
  return Status::OK();
}

Status FaultInjectingFileOps::Rename(const std::string& from,
                                     const std::string& to) {
  if (crashed_) return SimulatedCrash();
  FaultDecision d = TickWriteOp(FaultOp::kRename);
  if (d.kind == FaultKind::kCrash) return SimulatedCrash();
  if (d.kind != FaultKind::kNone) return FaultStatus(d, "rename");
  auto it = files_.find(from);
  if (it == files_.end()) return NotFound(StrCat("rename: no ", from));
  // Atomic and durable: whatever of `from` was durable stays durable
  // under the new name; its unsynced tail remains unsynced.
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

Status FaultInjectingFileOps::Truncate(const std::string& path,
                                       uint64_t size) {
  if (crashed_) return SimulatedCrash();
  FaultDecision d = TickWriteOp(FaultOp::kTruncate);
  if (d.kind == FaultKind::kCrash) return SimulatedCrash();
  if (d.kind != FaultKind::kNone) return FaultStatus(d, "truncate");
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound(StrCat("truncate: no ", path));
  std::string all = it->second.View();
  if (size < all.size()) all.resize(size);
  // Truncation is applied in place and treated as durable (the torture
  // test only truncates during recovery, before new appends).
  it->second.durable = std::move(all);
  it->second.unsynced.clear();
  return Status::OK();
}

Status FaultInjectingFileOps::CreateDir(const std::string& path) {
  if (crashed_) return SimulatedCrash();
  dirs_[path] = true;
  return Status::OK();
}

Result<std::vector<std::string>> FaultInjectingFileOps::ListDir(
    const std::string& path) {
  if (crashed_) return Status(SimulatedCrash());
  // Read-side: never ticks the fault counters.
  std::vector<std::string> names;
  const std::string prefix = path + "/";
  for (const auto& [p, state] : files_) {
    if (p.size() <= prefix.size() || p.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string rest = p.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(std::move(rest));
  }
  return names;
}

Status FaultInjectingWritableFile::Append(std::string_view data) {
  if (fs_->crashed_) return SimulatedCrash();
  FaultInjectingFileOps::FaultDecision d =
      fs_->TickWriteOp(FaultInjectingFileOps::FaultOp::kAppend);
  auto it = fs_->files_.find(path_);
  if (it == fs_->files_.end()) {
    return NotFound(StrCat("append: no ", path_));
  }
  switch (d.kind) {
    case FaultInjectingFileOps::FaultKind::kNone:
      it->second.unsynced.append(data);
      return Status::OK();
    case FaultInjectingFileOps::FaultKind::kShortWrite:
      it->second.unsynced.append(data.substr(0, data.size() / 2));
      return FaultInjectingFileOps::FaultStatus(d, "short write");
    case FaultInjectingFileOps::FaultKind::kCrash:
      // The crash lands mid-write: a prefix may have reached the
      // page cache before the process died.
      it->second.unsynced.append(data.substr(0, data.size() / 2));
      return SimulatedCrash();
    case FaultInjectingFileOps::FaultKind::kFail:
    default:
      return FaultInjectingFileOps::FaultStatus(d, "write");
  }
}

Status FaultInjectingWritableFile::Sync() {
  if (fs_->crashed_) return SimulatedCrash();
  FaultInjectingFileOps::FaultDecision d =
      fs_->TickWriteOp(FaultInjectingFileOps::FaultOp::kSync);
  if (d.kind == FaultInjectingFileOps::FaultKind::kCrash) {
    return SimulatedCrash();
  }
  if (d.kind != FaultInjectingFileOps::FaultKind::kNone) {
    return FaultInjectingFileOps::FaultStatus(d, "fsync");
  }
  auto it = fs_->files_.find(path_);
  if (it == fs_->files_.end()) return NotFound(StrCat("fsync: no ", path_));
  it->second.durable += it->second.unsynced;
  it->second.unsynced.clear();
  return Status::OK();
}

}  // namespace pathlog
