// Object identifiers and related small types.

#ifndef PATHLOG_STORE_OID_H_
#define PATHLOG_STORE_OID_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace pathlog {

/// A system-wide unique object identifier (paper section 1: "each
/// object has a systemwide unique identifier, typically called oid").
/// Oids are dense indexes into the store's object table; they are a
/// storage-level concept and never surface in query syntax.
using Oid = uint32_t;

/// Sentinel: no object.
inline constexpr Oid kNilOid = static_cast<Oid>(-1);

/// FNV-1a accumulation, used by the store's composite keys.
inline size_t HashCombine(size_t seed, size_t v) {
  // 64-bit FNV-1a step over the 8 bytes of v.
  size_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

inline size_t HashOidSpan(const Oid* data, size_t n, size_t seed) {
  size_t h = seed;
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, data[i]);
  return h;
}

/// Key of one method invocation: receiver u_0 plus arguments u_1..u_k.
struct InvocationKey {
  Oid recv;
  std::vector<Oid> args;

  friend bool operator==(const InvocationKey& a,
                         const InvocationKey& b) = default;
};

struct InvocationKeyHash {
  size_t operator()(const InvocationKey& k) const {
    size_t h = HashCombine(14695981039346656037ull, k.recv);
    return HashOidSpan(k.args.data(), k.args.size(), h);
  }
};

}  // namespace pathlog

#endif  // PATHLOG_STORE_OID_H_
