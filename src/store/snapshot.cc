#include "store/snapshot.h"

#include <cstring>

#include "base/coding.h"
#include "base/crc32.h"
#include "base/strings.h"

namespace pathlog {

namespace {

constexpr char kMagicV1[] = "PLGSNAP1";
constexpr char kMagicV2[] = "PLGSNAP2";
constexpr size_t kMagicLen = 8;

/// Serialises the object table + fact log (the shared v1/v2 body).
Result<std::string> SerializeBody(const ObjectStore& store) {
  std::string out;
  const size_t n = store.UniverseSize();
  PutU64(&out, n);
  for (Oid o = 0; o < n; ++o) {
    ObjectKind kind = store.kind(o);
    PutU8(&out, static_cast<uint8_t>(kind));
    if (kind == ObjectKind::kInt) {
      PutU64(&out, static_cast<uint64_t>(store.IntValue(o)));
      continue;
    }
    // Strings display quoted; strip the quotes to store the raw value.
    std::string name = store.DisplayName(o);
    if (kind == ObjectKind::kString) {
      name = name.substr(1, name.size() - 2);
    }
    PutU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
  }

  const uint64_t facts = store.generation();
  PutU64(&out, facts);
  for (uint64_t g = 0; g < facts; ++g) {
    const Fact& f = store.FactAt(g);
    if (f.args.size() > 65535) {
      return Status(InvalidArgument(StrCat(
          "cannot snapshot fact ", g, ": ", f.args.size(),
          " arguments exceed the format's u16 argc limit (65535)")));
    }
    PutU8(&out, static_cast<uint8_t>(f.kind));
    PutU32(&out, f.method);
    PutU32(&out, f.recv);
    PutU16(&out, static_cast<uint16_t>(f.args.size()));
    for (Oid a : f.args) PutU32(&out, a);
    PutU32(&out, f.value);
  }
  return out;
}

Result<ObjectStore> DeserializeBody(std::string_view body) {
  ByteReader r(body);

  ObjectStore store;
  const uint64_t n = r.U64();
  for (uint64_t i = 0; i < n && r.Ok(); ++i) {
    ObjectKind kind = static_cast<ObjectKind>(r.U8());
    Oid o = kNilOid;
    switch (kind) {
      case ObjectKind::kInt:
        o = store.InternInt(r.I64());
        break;
      case ObjectKind::kSymbol: {
        uint32_t len = r.U32();
        o = store.InternSymbol(r.Bytes(len));
        break;
      }
      case ObjectKind::kString: {
        uint32_t len = r.U32();
        o = store.InternString(r.Bytes(len));
        break;
      }
      case ObjectKind::kAnonymous: {
        uint32_t len = r.U32();
        o = store.NewAnonymous(std::string(r.Bytes(len)));
        break;
      }
      default:
        return Status(
            InvalidArgument("snapshot corrupt: unknown object kind"));
    }
    if (!r.Ok()) break;
    if (o != static_cast<Oid>(i)) {
      return Status(Internal(StrCat(
          "snapshot corrupt: object ", i, " reconstructed with oid ", o,
          " (duplicate table entry?)")));
    }
  }

  const uint64_t facts = r.Ok() ? r.U64() : 0;
  for (uint64_t g = 0; g < facts && r.Ok(); ++g) {
    FactKind kind = static_cast<FactKind>(r.U8());
    Oid method = r.U32();
    Oid recv = r.U32();
    uint16_t argc = r.U16();
    std::vector<Oid> args(argc);
    for (uint16_t i = 0; i < argc; ++i) args[i] = r.U32();
    Oid value = r.U32();
    if (!r.Ok()) break;
    // Every fact oid must refer to an object declared above; without
    // this check a corrupt file would plant out-of-range oids in the
    // tables (AddSetMember trusts its caller) and later reads would be
    // out of bounds. Replay through the public mutators below then
    // rebuilds every derived index — forward, inverted, and hierarchy
    // closure — so none of them are serialized.
    bool oids_ok = store.Valid(method) && store.Valid(recv) &&
                   (kind == FactKind::kIsa || store.Valid(value));
    for (Oid a : args) oids_ok = oids_ok && store.Valid(a);
    if (!oids_ok) {
      return Status(InvalidArgument(
          StrCat("snapshot corrupt: fact ", g, " references an oid outside "
                 "the object table")));
    }
    switch (kind) {
      case FactKind::kIsa:
        PATHLOG_RETURN_IF_ERROR(store.AddIsa(recv, method));
        break;
      case FactKind::kScalar:
        PATHLOG_RETURN_IF_ERROR(store.SetScalar(method, recv, args, value));
        break;
      case FactKind::kSetMember:
        store.AddSetMember(method, recv, args, value);
        break;
      default:
        return Status(InvalidArgument("snapshot corrupt: unknown fact kind"));
    }
  }
  if (!r.Ok()) {
    return Status(InvalidArgument("snapshot corrupt: truncated input"));
  }
  if (r.remaining() != 0) {
    return Status(InvalidArgument("snapshot corrupt: trailing bytes"));
  }
  if (store.generation() != facts) {
    return Status(Internal("snapshot replay produced a different log"));
  }
  return store;
}

}  // namespace

Result<std::string> SerializeSnapshot(const ObjectStore& store) {
  Result<std::string> body = SerializeBody(store);
  if (!body.ok()) return body.status();
  std::string out;
  out.reserve(kMagicLen + 12 + body->size());
  out.append(kMagicV2, kMagicLen);
  PutU32(&out, Crc32(*body));
  PutU64(&out, body->size());
  out.append(*body);
  return out;
}

Result<ObjectStore> DeserializeSnapshot(std::string_view bytes) {
  if (bytes.size() >= kMagicLen &&
      std::memcmp(bytes.data(), kMagicV1, kMagicLen) == 0) {
    // Legacy v1: bare body, no checksum.
    return DeserializeBody(bytes.substr(kMagicLen));
  }
  if (bytes.size() < kMagicLen ||
      std::memcmp(bytes.data(), kMagicV2, kMagicLen) != 0) {
    return Status(InvalidArgument("not a PathLog snapshot (bad magic)"));
  }
  ByteReader header(bytes.substr(kMagicLen));
  const uint32_t crc = header.U32();
  const uint64_t body_len = header.U64();
  if (!header.Ok()) {
    return Status(InvalidArgument("snapshot corrupt: truncated header"));
  }
  std::string_view body = bytes.substr(kMagicLen + 12);
  if (body.size() != body_len) {
    return Status(InvalidArgument(StrCat(
        "snapshot corrupt: body is ", body.size(), " bytes, header says ",
        body_len)));
  }
  if (Crc32(body) != crc) {
    return Status(InvalidArgument(
        "snapshot corrupt: body checksum mismatch"));
  }
  return DeserializeBody(body);
}

Status WriteSnapshotFile(const ObjectStore& store, const std::string& path,
                         FileOps* ops) {
  if (ops == nullptr) ops = DefaultFileOps();
  Result<std::string> bytes = SerializeSnapshot(store);
  if (!bytes.ok()) return bytes.status();
  return WriteFileAtomic(ops, path, *bytes);
}

Result<ObjectStore> ReadSnapshotFile(const std::string& path, FileOps* ops) {
  if (ops == nullptr) ops = DefaultFileOps();
  Result<std::string> bytes = ops->ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return DeserializeSnapshot(*bytes);
}

}  // namespace pathlog
