#include "store/snapshot.h"

#include <cstring>
#include <fstream>

#include "base/strings.h"

namespace pathlog {

namespace {

constexpr char kMagic[] = "PLGSNAP1";
constexpr size_t kMagicLen = 8;

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool Ok() const { return ok_; }
  size_t remaining() const { return bytes_.size() - pos_; }

  uint8_t U8() { return Fixed<uint8_t>(1); }
  uint16_t U16() { return Fixed<uint16_t>(2); }
  uint32_t U32() { return Fixed<uint32_t>(4); }
  uint64_t U64() { return Fixed<uint64_t>(8); }
  int64_t I64() { return static_cast<int64_t>(U64()); }

  std::string_view Bytes(size_t n) { return Take(n); }

 private:
  template <typename T>
  T Fixed(size_t n) {
    std::string_view s = Take(n);
    T v = 0;
    for (size_t i = 0; i < s.size(); ++i) {
      v |= static_cast<T>(static_cast<uint8_t>(s[i])) << (8 * i);
    }
    return v;
  }

  std::string_view Take(size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return std::string_view();
    }
    std::string_view s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::string SerializeSnapshot(const ObjectStore& store) {
  std::string out;
  out.append(kMagic, kMagicLen);

  const size_t n = store.UniverseSize();
  PutU64(&out, n);
  for (Oid o = 0; o < n; ++o) {
    ObjectKind kind = store.kind(o);
    PutU8(&out, static_cast<uint8_t>(kind));
    if (kind == ObjectKind::kInt) {
      PutU64(&out, static_cast<uint64_t>(store.IntValue(o)));
      continue;
    }
    // Strings display quoted; strip the quotes to store the raw value.
    std::string name = store.DisplayName(o);
    if (kind == ObjectKind::kString) {
      name = name.substr(1, name.size() - 2);
    }
    PutU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
  }

  const uint64_t facts = store.generation();
  PutU64(&out, facts);
  for (uint64_t g = 0; g < facts; ++g) {
    const Fact& f = store.FactAt(g);
    PutU8(&out, static_cast<uint8_t>(f.kind));
    PutU32(&out, f.method);
    PutU32(&out, f.recv);
    PutU16(&out, static_cast<uint16_t>(f.args.size()));
    for (Oid a : f.args) PutU32(&out, a);
    PutU32(&out, f.value);
  }
  return out;
}

Result<ObjectStore> DeserializeSnapshot(std::string_view bytes) {
  if (bytes.size() < kMagicLen ||
      std::memcmp(bytes.data(), kMagic, kMagicLen) != 0) {
    return Status(InvalidArgument("not a PathLog snapshot (bad magic)"));
  }
  Reader r(bytes.substr(kMagicLen));

  ObjectStore store;
  const uint64_t n = r.U64();
  for (uint64_t i = 0; i < n && r.Ok(); ++i) {
    ObjectKind kind = static_cast<ObjectKind>(r.U8());
    Oid o = kNilOid;
    switch (kind) {
      case ObjectKind::kInt:
        o = store.InternInt(r.I64());
        break;
      case ObjectKind::kSymbol: {
        uint32_t len = r.U32();
        o = store.InternSymbol(r.Bytes(len));
        break;
      }
      case ObjectKind::kString: {
        uint32_t len = r.U32();
        o = store.InternString(r.Bytes(len));
        break;
      }
      case ObjectKind::kAnonymous: {
        uint32_t len = r.U32();
        o = store.NewAnonymous(std::string(r.Bytes(len)));
        break;
      }
      default:
        return Status(
            InvalidArgument("snapshot corrupt: unknown object kind"));
    }
    if (!r.Ok()) break;
    if (o != static_cast<Oid>(i)) {
      return Status(Internal(StrCat(
          "snapshot corrupt: object ", i, " reconstructed with oid ", o,
          " (duplicate table entry?)")));
    }
  }

  const uint64_t facts = r.Ok() ? r.U64() : 0;
  for (uint64_t g = 0; g < facts && r.Ok(); ++g) {
    FactKind kind = static_cast<FactKind>(r.U8());
    Oid method = r.U32();
    Oid recv = r.U32();
    uint16_t argc = r.U16();
    std::vector<Oid> args(argc);
    for (uint16_t i = 0; i < argc; ++i) args[i] = r.U32();
    Oid value = r.U32();
    if (!r.Ok()) break;
    // Every fact oid must refer to an object declared above; without
    // this check a corrupt file would plant out-of-range oids in the
    // tables (AddSetMember trusts its caller) and later reads would be
    // out of bounds. Replay through the public mutators below then
    // rebuilds every derived index — forward, inverted, and hierarchy
    // closure — so none of them are serialized.
    bool oids_ok = store.Valid(method) && store.Valid(recv) &&
                   (kind == FactKind::kIsa || store.Valid(value));
    for (Oid a : args) oids_ok = oids_ok && store.Valid(a);
    if (!oids_ok) {
      return Status(InvalidArgument(
          StrCat("snapshot corrupt: fact ", g, " references an oid outside "
                 "the object table")));
    }
    switch (kind) {
      case FactKind::kIsa:
        PATHLOG_RETURN_IF_ERROR(store.AddIsa(recv, method));
        break;
      case FactKind::kScalar:
        PATHLOG_RETURN_IF_ERROR(store.SetScalar(method, recv, args, value));
        break;
      case FactKind::kSetMember:
        store.AddSetMember(method, recv, args, value);
        break;
      default:
        return Status(InvalidArgument("snapshot corrupt: unknown fact kind"));
    }
  }
  if (!r.Ok()) {
    return Status(InvalidArgument("snapshot corrupt: truncated input"));
  }
  if (r.remaining() != 0) {
    return Status(InvalidArgument("snapshot corrupt: trailing bytes"));
  }
  if (store.generation() != facts) {
    return Status(Internal("snapshot replay produced a different log"));
  }
  return store;
}

Status WriteSnapshotFile(const ObjectStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return InvalidArgument(StrCat("cannot open ", path, " for writing"));
  }
  std::string bytes = SerializeSnapshot(store);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    return InvalidArgument(StrCat("failed writing snapshot to ", path));
  }
  return Status::OK();
}

Result<ObjectStore> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(NotFound(StrCat("cannot open snapshot file ", path)));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return DeserializeSnapshot(bytes);
}

}  // namespace pathlog
