#include "store/fact.h"

#include "base/strings.h"
#include "store/object_store.h"

namespace pathlog {

namespace {
std::string ArgsToString(const std::vector<Oid>& args,
                         const ObjectStore& store) {
  if (args.empty()) return "";
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (Oid a : args) parts.push_back(store.DisplayName(a));
  return StrCat("@(", StrJoin(parts, ","), ")");
}
}  // namespace

std::string FactToString(const Fact& fact, const ObjectStore& store) {
  switch (fact.kind) {
    case FactKind::kIsa:
      return StrCat(store.DisplayName(fact.recv), " : ",
                    store.DisplayName(fact.method));
    case FactKind::kScalar:
      return StrCat(store.DisplayName(fact.recv), "[",
                    store.DisplayName(fact.method),
                    ArgsToString(fact.args, store), "->",
                    store.DisplayName(fact.value), "]");
    case FactKind::kSetMember:
      return StrCat(store.DisplayName(fact.recv), "[",
                    store.DisplayName(fact.method),
                    ArgsToString(fact.args, store), "->>{",
                    store.DisplayName(fact.value), "}]");
  }
  return "<invalid fact>";
}

std::string StoreToProgramText(const ObjectStore& store) {
  std::string out;
  const uint64_t n = store.generation();
  for (uint64_t g = 0; g < n; ++g) {
    out += FactToString(store.FactAt(g), store);
    out += ".\n";
  }
  return out;
}

}  // namespace pathlog
