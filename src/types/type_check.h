// Hierarchy-aware type checking of stored (and derived) facts against
// declared signatures.
//
// A scalar fact m(recv, a1..ak) = v violates a signature
// c[m@(t1..tk) => r] iff recv conforms to c, every ai conforms to ti
// (the signature *applies*), and v does not conform to r. Set-valued
// facts are checked per member. Because virtual objects are defined by
// ordinary methods, the same check covers them — the type story the
// paper claims over XSQL's function-symbol views.
//
// Flavour mismatches are also reported: a scalar fact for a method
// that only has set-valued signatures (and vice versa).

#ifndef PATHLOG_TYPES_TYPE_CHECK_H_
#define PATHLOG_TYPES_TYPE_CHECK_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "store/fact.h"
#include "store/object_store.h"
#include "types/signature.h"

namespace pathlog {

struct TypeViolation {
  Fact fact;
  std::string message;
};

class TypeChecker {
 public:
  TypeChecker(const ObjectStore& store, const SignatureTable& sigs)
      : store_(store), sigs_(sigs) {}

  /// Checks every fact with generation in [from, store.generation());
  /// appends violations. Never fails; inspect the vector.
  void CheckSince(uint64_t from, std::vector<TypeViolation>* out) const;

  /// Checks the whole store.
  void CheckAll(std::vector<TypeViolation>* out) const {
    CheckSince(0, out);
  }

  /// Convenience: OK iff the whole store conforms, else kTypeError
  /// describing the first violation (and how many more there are).
  Status CheckAllStrict() const;

 private:
  void CheckFact(const Fact& fact, std::vector<TypeViolation>* out) const;

  const ObjectStore& store_;
  const SignatureTable& sigs_;
};

}  // namespace pathlog

#endif  // PATHLOG_TYPES_TYPE_CHECK_H_
