#include "types/signature.h"

#include "ast/printer.h"
#include "base/strings.h"

namespace pathlog {

namespace {

Result<Oid> InternGroundName(const RefPtr& r, ObjectStore* store,
                             const char* role) {
  const Ref* d = r.get();
  while (d->kind == RefKind::kParen) d = d->base.get();
  if (d->kind != RefKind::kName) {
    return Status(IllFormed(StrCat("signature ", role,
                                   " must be a ground name, got: ",
                                   ToString(*r))));
  }
  switch (d->name_kind) {
    case NameKind::kSymbol:
      return store->InternSymbol(d->text);
    case NameKind::kInt:
      return store->InternInt(d->int_value);
    case NameKind::kString:
      return store->InternString(d->text);
  }
  return Status(Internal("InternGroundName: unknown name kind"));
}

}  // namespace

Status SignatureTable::Declare(const SignatureDecl& decl, ObjectStore* store) {
  Signature sig;
  PATHLOG_ASSIGN_OR_RETURN(sig.klass,
                           InternGroundName(decl.klass, store, "class"));
  PATHLOG_ASSIGN_OR_RETURN(sig.method,
                           InternGroundName(decl.method, store, "method"));
  for (const RefPtr& a : decl.arg_types) {
    PATHLOG_ASSIGN_OR_RETURN(Oid t,
                             InternGroundName(a, store, "argument type"));
    sig.arg_types.push_back(t);
  }
  PATHLOG_ASSIGN_OR_RETURN(
      sig.result_type, InternGroundName(decl.result_type, store, "result type"));
  sig.set_valued = decl.set_valued;
  by_method_[sig.method].push_back(std::move(sig));
  ++count_;
  return Status::OK();
}

const std::vector<Signature>& SignatureTable::ForMethod(Oid method) const {
  static const std::vector<Signature> kEmpty;
  auto it = by_method_.find(method);
  return it == by_method_.end() ? kEmpty : it->second;
}

bool SignatureTable::Conforms(const ObjectStore& store, Oid x, Oid type) {
  const std::string& tn = store.DisplayName(type);
  if (store.kind(type) == ObjectKind::kSymbol) {
    if (tn == kAnyTypeName) return true;
    if (tn == kIntTypeName) return store.kind(x) == ObjectKind::kInt;
    if (tn == kStringTypeName) return store.kind(x) == ObjectKind::kString;
  }
  return x == type || store.IsA(x, type);
}

}  // namespace pathlog
