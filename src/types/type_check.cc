#include "types/type_check.h"

#include "base/strings.h"

namespace pathlog {

void TypeChecker::CheckFact(const Fact& fact,
                            std::vector<TypeViolation>* out) const {
  if (fact.kind == FactKind::kIsa) return;  // hierarchy facts are untyped
  const std::vector<Signature>& sigs = sigs_.ForMethod(fact.method);
  if (sigs.empty()) return;  // undeclared methods are unchecked

  const bool is_set = fact.kind == FactKind::kSetMember;
  bool any_flavor_applicable = false;
  for (const Signature& sig : sigs) {
    if (sig.set_valued != is_set) continue;
    if (sig.arg_types.size() != fact.args.size()) continue;
    if (!SignatureTable::Conforms(store_, fact.recv, sig.klass)) continue;
    bool args_ok = true;
    for (size_t i = 0; i < fact.args.size(); ++i) {
      if (!SignatureTable::Conforms(store_, fact.args[i], sig.arg_types[i])) {
        args_ok = false;
        break;
      }
    }
    if (!args_ok) continue;
    any_flavor_applicable = true;
    if (!SignatureTable::Conforms(store_, fact.value, sig.result_type)) {
      out->push_back(TypeViolation{
          fact,
          StrCat("result ", store_.DisplayName(fact.value), " of ",
                 FactToString(fact, store_), " does not conform to ",
                 store_.DisplayName(sig.result_type), " (signature on class ",
                 store_.DisplayName(sig.klass), ")")});
    }
  }

  if (!any_flavor_applicable) {
    // Signatures constrain per class: a receiver outside every declared
    // class is unchecked (liberal, as in [KLW93]). But if the method IS
    // declared for this receiver — just with the other flavour or a
    // different arity — the use is a flavour/arity mismatch.
    bool declared_for_receiver = false;
    for (const Signature& sig : sigs) {
      if (SignatureTable::Conforms(store_, fact.recv, sig.klass)) {
        declared_for_receiver = true;
        break;
      }
    }
    if (!declared_for_receiver) return;
    out->push_back(TypeViolation{
        fact, StrCat(FactToString(fact, store_), ": method ",
                     store_.DisplayName(fact.method),
                     " has signatures, but none of this flavour/arity "
                     "applies to receiver ",
                     store_.DisplayName(fact.recv))});
  }
}

void TypeChecker::CheckSince(uint64_t from,
                             std::vector<TypeViolation>* out) const {
  const uint64_t end = store_.generation();
  for (uint64_t g = from; g < end; ++g) {
    CheckFact(store_.FactAt(g), out);
  }
}

Status TypeChecker::CheckAllStrict() const {
  std::vector<TypeViolation> violations;
  CheckAll(&violations);
  if (violations.empty()) return Status::OK();
  return TypeError(StrCat(violations[0].message, violations.size() > 1
                              ? StrCat(" (and ", violations.size() - 1,
                                       " more violations)")
                              : ""));
}

}  // namespace pathlog
