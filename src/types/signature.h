// Method signatures (paper section 2: "the usage of methods can be
// controlled by signatures in the same way as in [KLW93], which makes
// type checking techniques applicable" — the paper's argument for
// defining virtual objects by methods rather than function symbols).
//
// A declaration `c[m @(a1..ak) => r]` (scalar) or `=>> r` (set-valued)
// promises: whenever m is invoked on a receiver of class c with
// arguments of classes a1..ak, every result is of class r. Signatures
// are inherited downward through the hierarchy, so a virtual object's
// type is checkable exactly like a stored object's.

#ifndef PATHLOG_TYPES_SIGNATURE_H_
#define PATHLOG_TYPES_SIGNATURE_H_

#include <unordered_map>
#include <vector>

#include "ast/program.h"
#include "base/result.h"
#include "store/object_store.h"

namespace pathlog {

struct Signature {
  Oid klass;
  Oid method;
  std::vector<Oid> arg_types;
  Oid result_type;
  bool set_valued;
};

/// Built-in type names with structural meaning for conformance:
/// `object` matches everything; `integer` and `string` match by value
/// kind (integers and strings are names, not class members).
inline constexpr std::string_view kAnyTypeName = "object";
inline constexpr std::string_view kIntTypeName = "integer";
inline constexpr std::string_view kStringTypeName = "string";

class SignatureTable {
 public:
  /// Declares a parsed signature. Class, method and types must be
  /// ground simple names; they are interned through `store`.
  Status Declare(const SignatureDecl& decl, ObjectStore* store);

  /// All declared signatures of a method (both flavours).
  const std::vector<Signature>& ForMethod(Oid method) const;

  bool empty() const { return by_method_.empty(); }
  size_t size() const { return count_; }

  /// Type conformance: `x` conforms to `type` iff type is `object`,
  /// type matches x's value kind (`integer`/`string`), x == type, or
  /// x <=_U type.
  static bool Conforms(const ObjectStore& store, Oid x, Oid type);

 private:
  std::unordered_map<Oid, std::vector<Signature>> by_method_;
  size_t count_ = 0;
};

}  // namespace pathlog

#endif  // PATHLOG_TYPES_SIGNATURE_H_
