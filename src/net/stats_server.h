// StatsServer: an embedded HTTP diagnostics server.
//
// A minimal, dependency-free HTTP/1.0 server on one background
// thread: bind 127.0.0.1:<port> (port 0 = kernel-assigned ephemeral,
// read back with port()), blocking accept with a poll() timeout so
// Stop() is honoured promptly, one request per connection. It serves
// the process's observability surfaces:
//
//   /metrics    Prometheus text exposition (MetricsRegistry)
//   /varz       the same registry as one JSON object
//   /healthz    200 "ok" or 503 with the cause (health callback, or
//               the pathlog_db_degraded gauge when no callback is set)
//   /statusz    human HTML: build type, uptime, health, histogram
//               quantiles, top rules by wall time, budget rejections
//   /tracez     the flight recorder's ring as Chrome trace JSON
//   /querylogz  recent query-log records as a JSON array
//
// The server borrows its sinks (same discipline as ObsSinks) and
// never writes to them; every sink is independently optional. Request
// handling is pure — HandleRequest(path) maps a path to a response
// with no socket involved — so endpoint tests don't need networking,
// and the wire tests that do use HttpGet() below.
//
// Deliberately loopback-only and unauthenticated: this is an
// operator's window into one process, not a public API.

#ifndef PATHLOG_NET_STATS_SERVER_H_
#define PATHLOG_NET_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "base/mutex.h"
#include "base/result.h"
#include "base/thread_annotations.h"
#include "obs/obs.h"

namespace pathlog {

class Profiler;

/// What /healthz reports: serving or not, and why not.
struct ServingHealth {
  bool ok = true;
  std::string detail;  ///< cause when !ok (e.g. the latched WAL error)
};

struct StatsServerOptions {
  /// TCP port on 127.0.0.1; 0 asks the kernel for an ephemeral port.
  uint16_t port = 0;
  /// Borrowed sinks; each endpoint degrades gracefully when its sink
  /// is null (404-free — it reports "not attached" instead).
  MetricsRegistry* metrics = nullptr;
  Profiler* profiler = nullptr;
  FlightRecorder* flight = nullptr;
  QueryLog* query_log = nullptr;
  /// Authoritative health answer (e.g. Database::Health()); called on
  /// the server thread, so it must be thread-safe. When unset,
  /// /healthz falls back to the pathlog_db_degraded gauge.
  std::function<ServingHealth()> health;
  /// Extra plain-text lines for /statusz (store generation, durable
  /// dir, ...). Called on the server thread; must be thread-safe.
  std::function<std::string()> statusz_info;
};

/// One HTTP response, before serialisation.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class StatsServer {
 public:
  explicit StatsServer(StatsServerOptions options);
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;
  ~StatsServer();  ///< stops the server if still running

  /// Binds, listens, and starts the accept thread. kUnavailable when
  /// the bind fails (port taken, no loopback). Thread-safe: concurrent
  /// Start/Stop calls serialise on the lifecycle mutex.
  Status Start() EXCLUDES(lifecycle_mu_);

  /// Stops accepting, joins the accept thread, closes the socket.
  /// Idempotent and thread-safe. When Stop() returns, the server
  /// thread is gone — only then may the borrowed sinks in
  /// StatsServerOptions be destroyed (the destructor relies on this
  /// ordering too, so a StatsServer member declared after its sinks
  /// is destroyed — and therefore stopped — before them).
  void Stop() EXCLUDES(lifecycle_mu_);

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (the real one when options.port was 0); 0 before
  /// Start() succeeds.
  uint16_t port() const { return port_.load(std::memory_order_acquire); }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Maps a request path to its response — the whole routing table,
  /// usable without a socket. Unknown paths get 404.
  HttpResponse HandleRequest(const std::string& path) const;

 private:
  /// Accept loop (server thread). Takes the listen fd as a parameter —
  /// captured at spawn time — so the thread never reads lifecycle
  /// state, and therefore never needs lifecycle_mu_ (Stop() joins the
  /// thread while holding it; the thread acquiring it would deadlock).
  void Serve(int listen_fd);
  void HandleConnection(int fd) const;

  HttpResponse HandleMetrics() const;
  HttpResponse HandleVarz() const;
  HttpResponse HandleHealthz() const;
  HttpResponse HandleStatusz() const;
  HttpResponse HandleTracez() const;
  HttpResponse HandleQuerylogz() const;
  HttpResponse HandleIndex() const;

  StatsServerOptions options_;  ///< immutable after construction

  /// Serialises Start/Stop/destruction. The server thread NEVER takes
  /// this lock (see Serve()); everything it reads is either immutable
  /// (options_), an atomic below, or a value captured at spawn.
  Mutex lifecycle_mu_;
  int listen_fd_ GUARDED_BY(lifecycle_mu_) = -1;
  std::thread thread_ GUARDED_BY(lifecycle_mu_);

  // lock-free: the flags below cross the lifecycle/server-thread
  // boundary without the lifecycle lock. running_ and port_ are
  // written in Start()/Stop() (release) and read anywhere (acquire);
  // stop_ is the shutdown signal the accept loop polls; requests_ and
  // started_us_ are plain monotonic stats.
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint16_t> port_{0};
  /// mutable: bumped from the const connection handler.
  mutable std::atomic<uint64_t> requests_{0};
  /// Start time as steady-clock microseconds (atomic: /statusz reads
  /// it from the server thread while a restart could rewrite it).
  std::atomic<int64_t> started_us_{0};
};

/// Blocking HTTP/1.0 GET against 127.0.0.1:port — the test client for
/// wire-level assertions. Returns the parsed status code and body.
Result<HttpResponse> HttpGet(uint16_t port, const std::string& path);

}  // namespace pathlog

#endif  // PATHLOG_NET_STATS_SERVER_H_
