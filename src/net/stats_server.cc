#include "net/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "base/strings.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/query_log.h"

namespace pathlog {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string EscapeHtml(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Writes the whole buffer, tolerating short writes and EINTR.
void WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; nothing to salvage
    }
    off += static_cast<size_t>(n);
  }
}

/// Reads until the end of the request headers ("\r\n\r\n"), a size
/// cap, a timeout, or EOF. GET requests carry no body, so the request
/// line is all we need.
std::string ReadRequest(int fd) {
  std::string buf;
  char chunk[1024];
  for (int rounds = 0; rounds < 50 && buf.size() < 8192; ++rounds) {
    struct pollfd pfd = {fd, POLLIN, 0};
    int pr = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (pr <= 0) {
      if (pr < 0 && errno == EINTR) continue;
      break;
    }
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buf.append(chunk, static_cast<size_t>(n));
    if (buf.find("\r\n\r\n") != std::string::npos) break;
  }
  return buf;
}

/// Extracts the path from "GET /path HTTP/1.x", dropping any query
/// string. Empty on anything that is not a GET.
std::string ParseRequestPath(const std::string& request) {
  if (request.compare(0, 4, "GET ") != 0) return "";
  size_t start = 4;
  size_t end = request.find(' ', start);
  if (end == std::string::npos) return "";
  std::string path = request.substr(start, end - start);
  size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);
  return path.empty() ? "/" : path;
}

std::string SerializeResponse(const HttpResponse& r) {
  return StrCat("HTTP/1.0 ", r.status, " ", ReasonPhrase(r.status),
                "\r\nContent-Type: ", r.content_type,
                "\r\nContent-Length: ", r.body.size(),
                "\r\nConnection: close\r\n\r\n", r.body);
}

}  // namespace

StatsServer::StatsServer(StatsServerOptions options)
    : options_(std::move(options)) {}

StatsServer::~StatsServer() { Stop(); }

Status StatsServer::Start() {
  MutexLock lock(&lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Unavailable(StrCat("socket(): ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Unavailable(StrCat("bind(127.0.0.1:", options_.port,
                                   "): ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) < 0) {
    Status st = Unavailable(StrCat("listen(): ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    Status st = Unavailable(StrCat("getsockname(): ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  listen_fd_ = fd;
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  started_us_.store(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  // The fd rides in the capture: the server thread must not read
  // listen_fd_ (guarded by lifecycle_mu_, which it may never take).
  thread_ = std::thread([this, fd] { Serve(fd); });
  return Status::OK();
}

void StatsServer::Stop() {
  MutexLock lock(&lifecycle_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  // Joining under the lifecycle lock is safe because the server
  // thread never acquires it; once join returns, no thread can touch
  // the borrowed sinks in options_ again — the guarantee the
  // destruction-order contract in the header rests on.
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void StatsServer::Serve(int listen_fd) {
  // poll() with a timeout rather than a bare blocking accept: closing
  // the listen fd from another thread does not reliably wake accept()
  // on Linux, but the 100ms poll tick notices stop_ promptly.
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {listen_fd, POLLIN, 0};
    int pr = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (pr <= 0) continue;  // timeout or EINTR: re-check stop_
    int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) continue;
    HandleConnection(client);
    ::close(client);
  }
}

void StatsServer::HandleConnection(int fd) const {
  std::string request = ReadRequest(fd);
  std::string path = ParseRequestPath(request);
  HttpResponse resp;
  if (path.empty()) {
    resp.status = 404;
    resp.body = "only GET is served here\n";
  } else {
    resp = HandleRequest(path);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  WriteAll(fd, SerializeResponse(resp));
}

HttpResponse StatsServer::HandleRequest(const std::string& path) const {
  if (path == "/metrics") return HandleMetrics();
  if (path == "/varz") return HandleVarz();
  if (path == "/healthz") return HandleHealthz();
  if (path == "/statusz") return HandleStatusz();
  if (path == "/tracez") return HandleTracez();
  if (path == "/querylogz") return HandleQuerylogz();
  if (path == "/") return HandleIndex();
  HttpResponse resp;
  resp.status = 404;
  resp.body = StrCat("no handler for ", path, "\n");
  return resp;
}

HttpResponse StatsServer::HandleMetrics() const {
  HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  resp.body = options_.metrics != nullptr
                  ? options_.metrics->ToPrometheusText()
                  : "# no metrics registry attached\n";
  return resp;
}

HttpResponse StatsServer::HandleVarz() const {
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body =
      options_.metrics != nullptr
          ? options_.metrics->ToJson()
          : "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
  return resp;
}

HttpResponse StatsServer::HandleHealthz() const {
  HttpResponse resp;
  ServingHealth health;
  if (options_.health) {
    health = options_.health();
  } else if (options_.metrics != nullptr) {
    Gauge* degraded = options_.metrics->GetGauge(
        "pathlog_db_degraded", "1 while the database is degraded");
    if (degraded != nullptr && degraded->value() != 0) {
      health.ok = false;
      health.detail = "pathlog_db_degraded gauge is set";
    }
  }
  if (health.ok) {
    resp.body = "ok\n";
  } else {
    resp.status = 503;
    resp.body = StrCat("unhealthy: ", health.detail, "\n");
  }
  return resp;
}

HttpResponse StatsServer::HandleStatusz() const {
  const int64_t now_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const double uptime_s =
      static_cast<double>(now_us -
                          started_us_.load(std::memory_order_relaxed)) /
      1e6;
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  ServingHealth health;
  if (options_.health) health = options_.health();

  std::string body =
      "<!doctype html><html><head><title>pathlog statusz</title></head>"
      "<body><h1>pathlog</h1><pre>\n";
  body += StrCat("build_type:       ", build_type, "\n");
  body += StrCat("uptime_seconds:   ", static_cast<uint64_t>(uptime_s),
                 "\n");
  body += StrCat("requests_served:  ",
                 requests_.load(std::memory_order_relaxed), "\n");
  body += StrCat("health:           ",
                 health.ok ? "ok" : StrCat("UNHEALTHY (",
                                           EscapeHtml(health.detail), ")"),
                 "\n");
  if (options_.metrics != nullptr) {
    Counter* rejections = options_.metrics->GetCounter(
        "pathlog_budget_rejections_total",
        "operations rejected by a resource budget");
    if (rejections != nullptr) {
      body += StrCat("budget_rejections: ", rejections->value(), "\n");
    }
  }
  if (options_.statusz_info) {
    body += EscapeHtml(options_.statusz_info());
  }
  body += "</pre>\n";

  if (options_.metrics != nullptr) {
    auto hists = options_.metrics->HistogramEntries();
    if (!hists.empty()) {
      body +=
          "<h2>latency quantiles</h2><table border=1 cellpadding=4>"
          "<tr><th>histogram</th><th>count</th><th>p50</th><th>p95</th>"
          "<th>p99</th></tr>\n";
      for (const auto& [name, h] : hists) {
        std::string p50, p95, p99;
        AppendJsonNumber(&p50, h->Quantile(0.50));
        AppendJsonNumber(&p95, h->Quantile(0.95));
        AppendJsonNumber(&p99, h->Quantile(0.99));
        body += StrCat("<tr><td>", EscapeHtml(name), "</td><td>",
                       h->total_count(), "</td><td>", p50, "</td><td>",
                       p95, "</td><td>", p99, "</td></tr>\n");
      }
      body += "</table>\n";
    }
  }

  if (options_.profiler != nullptr) {
    auto rules = options_.profiler->RuleProfiles();
    if (!rules.empty()) {
      body +=
          "<h2>top rules by wall time</h2><table border=1 cellpadding=4>"
          "<tr><th>rule</th><th>evaluations</th><th>derivations</th>"
          "<th>wall_ms</th></tr>\n";
      size_t shown = 0;
      for (const auto& r : rules) {
        if (++shown > 10) break;
        std::string wall_ms;
        AppendJsonNumber(&wall_ms, static_cast<double>(r.wall_ns) / 1e6);
        body += StrCat("<tr><td>", EscapeHtml(r.rule), "</td><td>",
                       r.evaluations, "</td><td>", r.derivations,
                       "</td><td>", wall_ms, "</td></tr>\n");
      }
      body += "</table>\n";
    }
  }
  body += "</body></html>\n";

  HttpResponse resp;
  resp.content_type = "text/html; charset=utf-8";
  resp.body = std::move(body);
  return resp;
}

HttpResponse StatsServer::HandleTracez() const {
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = options_.flight != nullptr
                  ? options_.flight->ToTraceJson()
                  : "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}";
  return resp;
}

HttpResponse StatsServer::HandleQuerylogz() const {
  HttpResponse resp;
  resp.content_type = "application/json";
  if (options_.query_log == nullptr) {
    resp.body = "{\"records_written\":0,\"records\":[]}";
    return resp;
  }
  std::string body = StrCat("{\"records_written\":",
                            options_.query_log->records_written(),
                            ",\"records\":[");
  bool first = true;
  for (const std::string& line : options_.query_log->Recent()) {
    if (!first) body += ",";
    first = false;
    body += line;  // each line is already one JSON object
  }
  body += "]}";
  resp.body = std::move(body);
  return resp;
}

HttpResponse StatsServer::HandleIndex() const {
  HttpResponse resp;
  resp.content_type = "text/html; charset=utf-8";
  resp.body =
      "<!doctype html><html><body><h1>pathlog diagnostics</h1><ul>"
      "<li><a href=\"/metrics\">/metrics</a> Prometheus text</li>"
      "<li><a href=\"/varz\">/varz</a> metrics JSON</li>"
      "<li><a href=\"/healthz\">/healthz</a> serving health</li>"
      "<li><a href=\"/statusz\">/statusz</a> human status</li>"
      "<li><a href=\"/tracez\">/tracez</a> flight recorder</li>"
      "<li><a href=\"/querylogz\">/querylogz</a> recent queries</li>"
      "</ul></body></html>\n";
  return resp;
}

Result<HttpResponse> HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(Unavailable(StrCat("socket(): ", std::strerror(errno))));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    Status st = Unavailable(StrCat("connect(127.0.0.1:", port,
                                   "): ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  WriteAll(fd, StrCat("GET ", path, " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n"));
  std::string raw;
  char chunk[4096];
  while (true) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.0 200 OK\r\n...headers...\r\n\r\nbody"
  size_t line_end = raw.find("\r\n");
  if (raw.compare(0, 5, "HTTP/") != 0 || line_end == std::string::npos) {
    return Status(
        InvalidArgument(StrCat("malformed HTTP response: ",
                               raw.substr(0, std::min<size_t>(64, raw.size())))));
  }
  size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    return Status(InvalidArgument("malformed HTTP status line"));
  }
  HttpResponse resp;
  resp.status = std::atoi(raw.c_str() + sp + 1);
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status(InvalidArgument("HTTP response missing header break"));
  }
  std::string headers = raw.substr(0, header_end);
  size_t ct = headers.find("Content-Type: ");
  if (ct != std::string::npos) {
    size_t ct_end = headers.find("\r\n", ct);
    resp.content_type = headers.substr(
        ct + 14, (ct_end == std::string::npos ? headers.size() : ct_end) -
                     (ct + 14));
  }
  resp.body = raw.substr(header_end + 4);
  return resp;
}

}  // namespace pathlog
