#include "active/trigger_engine.h"

#include <functional>

#include "ast/analysis.h"
#include "ast/printer.h"
#include "base/strings.h"
#include "eval/bindings.h"
#include "eval/engine.h"
#include "eval/ref_eval.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "semantics/structure.h"

namespace pathlog {

Status TriggerEngine::AddTrigger(const TriggerRule& trigger) {
  PATHLOG_RETURN_IF_ERROR(CheckTriggerWellFormed(trigger));

  PlannedTrigger pt;
  pt.rule = trigger.rule;
  pt.head_vars = VarsOf(*pt.rule.head);

  // The event literal is pinned first; order the conditions for safety
  // treating the event's variables as already bound. (Trick: reuse the
  // shared planner on the whole body and verify the event stayed in
  // front — as the first admissible literal it is picked first unless
  // its own `->>` results need foreign variables, which is unsafe for
  // an event anyway.)
  std::vector<Literal> body = pt.rule.body;
  PATHLOG_RETURN_IF_ERROR(OrderLiteralsForSafety(&body, nullptr));
  if (!RefEquals(*body.front().ref, *pt.rule.body.front().ref) ||
      body.front().negated) {
    return UnsafeRule(StrCat(
        "the event literal of trigger `", ToString(trigger),
        "` cannot be evaluated first (its `->>` filter results need "
        "variables bound elsewhere)"));
  }
  pt.rule.body = std::move(body);

  // Range restriction for the head.
  std::set<std::string> bound;
  for (const Literal& lit : pt.rule.body) {
    if (!lit.negated) {
      for (const std::string& v : VarsOf(*lit.ref)) bound.insert(v);
    }
  }
  for (const std::string& v : pt.head_vars) {
    if (!bound.count(v)) {
      return UnsafeRule(StrCat("head variable ", v, " of trigger `",
                               ToString(trigger),
                               "` is not bound by the event or conditions"));
    }
  }
  planned_.push_back(std::move(pt));
  return Status::OK();
}

Status TriggerEngine::RunRound(uint64_t from, HeadAsserter* asserter,
                               ResourceBudget* budget) {
  // Names the cascade round in budget/deadline errors — the generic
  // budget message alone does not say the trip happened in a trigger.
  auto with_round = [&](Status st) -> Status {
    if (st.ok()) return st;
    return Status(st.code(), StrCat(st.message(), " during trigger round ",
                                    stats_.rounds));
  };
  if (budget != nullptr) {
    PATHLOG_RETURN_IF_ERROR(with_round(budget->CheckControl()));
  }

  SemanticStructure I(*store_);
  RefEvaluator eval(I);
  eval.set_budget(budget);

  // All firings of the round are collected first (the store must not
  // change under enumeration), deduplicated per (trigger, head
  // bindings), then asserted.
  std::set<std::pair<size_t, VarValuation>> pending;

  for (size_t ti = 0; ti < planned_.size(); ++ti) {
    const PlannedTrigger& pt = planned_[ti];
    Bindings b;
    const std::vector<Literal>& body = pt.rule.body;
    std::function<Result<bool>(size_t)> go = [&](size_t i) -> Result<bool> {
      if (i == body.size()) {
        VarValuation v;
        for (const std::string& hv : pt.head_vars) v.emplace(hv, *b.Get(hv));
        pending.insert({ti, std::move(v)});
        return true;
      }
      const Literal& lit = body[i];
      if (lit.negated) {
        Result<bool> sat = eval.Satisfiable(*lit.ref, &b);
        if (!sat.ok()) return sat.status();
        if (*sat) return true;
        return go(i + 1);
      }
      if (i != 0) {
        return eval.Enumerate(*lit.ref, &b, [&](Oid) { return go(i + 1); });
      }
      // The event literal: only solutions that consumed a fresh fact.
      eval.EnterDelta(from);
      Result<bool> res = eval.Enumerate(*lit.ref, &b,
                                        [&](Oid) -> Result<bool> {
        if (!eval.DeltaSeen()) return true;
        bool saved = eval.SuspendDelta();
        Result<bool> r = go(i + 1);
        eval.ResumeDelta(saved);
        return r;
      });
      eval.ExitDelta();
      return res;
    };
    Result<bool> r = go(0);
    // Budget trips surface here too (the evaluator polls while
    // enumerating), so condition-evaluation errors need the round
    // context as much as the explicit gates do.
    if (!r.ok()) return with_round(r.status());
  }

  // Enumeration is done; the budget gate sits *before* the assert loop
  // so an over-budget round aborts with zero of its assertions applied.
  if (budget != nullptr) {
    PATHLOG_RETURN_IF_ERROR(with_round(budget->Check(store_->ApproxBytes())));
  }
  for (const auto& [ti, bindings] : pending) {
    Bindings hb;
    for (const auto& [var, oid] : bindings) hb.Bind(var, oid);
    PATHLOG_RETURN_IF_ERROR(asserter->Assert(*planned_[ti].rule.head, &hb));
    ++stats_.firings;
    if (budget != nullptr) budget->ChargeDerivations();
  }
  return Status::OK();
}

Status TriggerEngine::Fire() {
  TraceSpan fire_span(options_.obs.tracer, "triggers.fire", "triggers");
  const TriggerStats before = stats_;
  const uint64_t start_facts = store_->generation();

  // The governing budget: the caller's shared one, or a cascade-local
  // deadline-only budget when just max_wall_ms is set.
  ResourceBudget deadline_budget;
  ResourceBudget* budget = options_.budget;
  if (budget == nullptr && options_.max_wall_ms > 0) {
    deadline_budget.set_limits(ResourceLimits{0, 0, options_.max_wall_ms});
    if (options_.wall_clock) deadline_budget.set_clock(options_.wall_clock);
    deadline_budget.Arm();
    budget = &deadline_budget;
  }
  const uint64_t rejections_before =
      budget != nullptr ? budget->rejections() : 0;

  Status st = [&]() -> Status {
    HeadAsserter asserter(store_, options_.head_value_mode);
    for (;;) {
      const uint64_t from = watermark_;
      const uint64_t end = store_->generation();
      if (from == end) break;  // quiescent
      if (++stats_.rounds > options_.max_cascade_rounds) {
        return ResourceExhausted(StrCat("trigger cascade exceeded ",
                                        options_.max_cascade_rounds,
                                        " rounds"));
      }
      TraceSpan round_span(options_.obs.tracer, "triggers.round", "triggers",
                           StrCat("{\"from\":", from, "}"));
      PATHLOG_RETURN_IF_ERROR(RunRound(from, &asserter, budget));
      // The round's events are consumed only after every one of its
      // assertions landed: an aborted round (deadline, budget, assert
      // error) leaves the watermark at `from`, so a later Fire()
      // replays the same events — assertion is idempotent — instead of
      // silently dropping a half-processed round.
      watermark_ = end;
      if (store_->FactCount() > options_.max_facts) {
        return ResourceExhausted(
            StrCat("trigger actions exceeded the fact budget (",
                   options_.max_facts, ")"));
      }
    }
    return Status::OK();
  }();
  stats_.facts_added += store_->generation() - start_facts;
  if (budget != nullptr) {
    CountBudgetRejections(options_.obs.metrics,
                          budget->rejections() - rejections_before);
  }
  if (MetricsRegistry* m = options_.obs.metrics; m != nullptr) {
    auto bump = [&](const char* name, const char* help, uint64_t now_v,
                    uint64_t before_v) {
      Counter* c = m->GetCounter(name, help);
      if (c != nullptr && now_v > before_v) c->Inc(now_v - before_v);
    };
    bump("pathlog_trigger_rounds_total", "trigger cascade rounds",
         stats_.rounds, before.rounds);
    bump("pathlog_trigger_firings_total", "trigger firings", stats_.firings,
         before.firings);
    bump("pathlog_trigger_facts_total", "facts asserted by triggers",
         stats_.facts_added, before.facts_added);
  }
  return st;
}

}  // namespace pathlog
