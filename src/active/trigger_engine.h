// Active rules (event-condition-action), the production/active flavour
// of paper sections 1 and 7: "the techniques we shall propose are
// applicable for different kinds of rule languages, e.g. deductive,
// production or active rules ... the way in which a set of rules is
// being evaluated is an orthogonal issue."
//
// A trigger `head <~ event, conditions.` fires once per *new fact*
// matching the event literal (the fact log is the event stream —
// extensional and derived facts alike): the event literal is matched
// delta-restricted to the facts of the current round, the condition
// literals are evaluated against the current state, and the head is
// asserted per solution. Actions append facts, which become events of
// the next cascade round; firing runs to quiescence or the cascade
// budget.
//
// Contrast with the deductive engine: no fixpoint re-evaluation (each
// event is consumed exactly once), no stratification (conditions see
// whatever state exists at firing time), and cascades may legitimately
// loop — the budget turns runaways into kResourceExhausted.

#ifndef PATHLOG_ACTIVE_TRIGGER_ENGINE_H_
#define PATHLOG_ACTIVE_TRIGGER_ENGINE_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "ast/program.h"
#include "base/budget.h"
#include "base/result.h"
#include "eval/head_assert.h"
#include "obs/obs.h"
#include "store/object_store.h"

namespace pathlog {

struct TriggerOptions {
  HeadValueMode head_value_mode = HeadValueMode::kRequireDefined;
  /// A cascade round processes the facts appended by the previous one;
  /// exceeding the budget aborts with kResourceExhausted.
  uint64_t max_cascade_rounds = 10'000;
  uint64_t max_facts = 20'000'000;
  /// Wall-clock ceiling for one Fire() cascade, in milliseconds;
  /// 0 = unlimited. Database::FireTriggers propagates
  /// EngineOptions::max_wall_ms here so the engine's deadline also
  /// governs trigger cascades. Expiry mid-round returns
  /// kDeadlineExceeded *before* any of that round's assertions land
  /// and without consuming the round's events, so the store is never
  /// left partially mutated past the last consumed watermark.
  uint64_t max_wall_ms = 0;
  /// Clock backing max_wall_ms (milliseconds, monotone); null = the
  /// real steady clock. Tests inject a fake to trip the deadline
  /// deterministically, with no real sleeps.
  std::function<uint64_t()> wall_clock;
  /// Shared resource budget (base/budget.h; borrowed, may be null).
  /// When set it governs the cascade — bytes, derivations, wall,
  /// cancellation — and takes precedence over max_wall_ms (the
  /// budget's own wall dimension applies instead).
  ResourceBudget* budget = nullptr;
  /// Observability sinks (all null by default; borrowed).
  ObsSinks obs;
};

struct TriggerStats {
  uint64_t rounds = 0;       ///< cascade rounds executed
  uint64_t firings = 0;      ///< (event, condition-solution) matches
  uint64_t facts_added = 0;  ///< store growth caused by Fire()
};

class TriggerEngine {
 public:
  /// Facts with generation >= `watermark` count as fresh events for
  /// the first Fire() round (pass 0 to replay history).
  TriggerEngine(ObjectStore* store, uint64_t watermark,
                TriggerOptions options = {})
      : store_(store), watermark_(watermark), options_(options) {}

  /// Validates and installs a trigger. The event literal stays first;
  /// condition literals are reordered for safety given the event's
  /// variables.
  Status AddTrigger(const TriggerRule& trigger);

  /// Processes all pending events to quiescence.
  Status Fire();

  uint64_t watermark() const { return watermark_; }
  const TriggerStats& stats() const { return stats_; }
  size_t num_triggers() const { return planned_.size(); }

 private:
  struct PlannedTrigger {
    Rule rule;  // body[0] = event, rest in safe evaluation order
    std::set<std::string> head_vars;
  };

  Status RunRound(uint64_t from, HeadAsserter* asserter,
                  ResourceBudget* budget);

  ObjectStore* store_;
  uint64_t watermark_;
  TriggerOptions options_;
  std::vector<PlannedTrigger> planned_;
  TriggerStats stats_;
};

}  // namespace pathlog

#endif  // PATHLOG_ACTIVE_TRIGGER_ENGINE_H_
