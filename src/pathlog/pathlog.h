// Umbrella header: the PathLog public API.
//
// PathLog — "Access to Objects by Path Expressions and Rules"
// (J. Frohn, G. Lausen, H. Uphoff; VLDB 1994) — is a deductive rule
// language for object-oriented databases whose building blocks are
// paths (p1..assistants.salary) and molecules (X:employee[age->30]),
// mutually nestable, usable both as references to objects and as
// formulas, including references to *virtual* objects defined by rules.
//
// Typical use:
//
//   #include "pathlog/pathlog.h"
//
//   pathlog::Database db;
//   auto st = db.Load(R"(
//     mary : employee[age->30; city->newYork].
//     mary[vehicles->>{car1}].
//     car1 : automobile[cylinders->4; color->red].
//     X[desc->>{Y}] <- X[kids->>{Y}].
//     X[desc->>{Y}] <- X..desc[kids->>{Y}].
//   )");
//   auto colors = db.Eval("mary..vehicles:automobile[cylinders->4].color");
//   auto rs = db.Query("?- X:employee[age->30]..vehicles.color[Z].");

#ifndef PATHLOG_PATHLOG_H_
#define PATHLOG_PATHLOG_H_

#include "ast/analysis.h"       // IWYU pragma: export
#include "ast/printer.h"        // IWYU pragma: export
#include "ast/program.h"        // IWYU pragma: export
#include "ast/ref.h"            // IWYU pragma: export
#include "base/result.h"        // IWYU pragma: export
#include "base/status.h"        // IWYU pragma: export
#include "eval/engine.h"        // IWYU pragma: export
#include "lint/diagnostic.h"    // IWYU pragma: export
#include "lint/lint.h"          // IWYU pragma: export
#include "net/stats_server.h"   // IWYU pragma: export
#include "obs/flight_recorder.h"  // IWYU pragma: export
#include "obs/metrics.h"        // IWYU pragma: export
#include "obs/obs.h"            // IWYU pragma: export
#include "obs/profile.h"        // IWYU pragma: export
#include "obs/query_log.h"      // IWYU pragma: export
#include "obs/trace.h"          // IWYU pragma: export
#include "parser/parser.h"      // IWYU pragma: export
#include "query/database.h"     // IWYU pragma: export
#include "query/result_set.h"   // IWYU pragma: export
#include "semantics/valuation.h"  // IWYU pragma: export
#include "store/object_store.h"   // IWYU pragma: export
#include "types/type_check.h"     // IWYU pragma: export

#endif  // PATHLOG_PATHLOG_H_
