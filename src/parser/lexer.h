// Lexer for PathLog surface syntax.
//
// Token inventory and the dot rule:
//   `..`            set-valued path separator
//   `.` + ident/(/" path separator (scalar)
//   `.` otherwise   clause terminator
// i.e. references must be written without internal whitespace and the
// clause-terminating dot must be followed by whitespace, a comment, or
// end of input — the same convention Flora-2 adopted for F-logic.
//
// `:` and `::` both denote the hierarchy relation <=_U (the paper uses
// a single partial order for membership and subclassing); `::` is
// conventional for class-to-class edges.

#ifndef PATHLOG_PARSER_LEXER_H_
#define PATHLOG_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace pathlog {

enum class TokenKind : uint8_t {
  kName,     ///< lowercase-initial identifier
  kVar,      ///< uppercase- or underscore-initial identifier
  kInt,      ///< integer literal (possibly negative)
  kString,   ///< double-quoted string literal
  kPathDot,  ///< `.` introducing a scalar method application
  kDotDot,   ///< `..` introducing a set-valued method application
  kTermDot,  ///< `.` terminating a clause
  kColon,    ///< `:` or `::`
  kArrow,    ///< `->`
  kDArrow,   ///< `->>`
  kSigArrow,   ///< `=>`
  kSigDArrow,  ///< `=>>`
  kIf,       ///< `<-` or `:-`
  kOn,       ///< `<~` (trigger: head <~ event, conditions.)
  kQuery,    ///< `?-`
  kAt,       ///< `@`
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kNot,  ///< keyword `not`
  kEof,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind;
  std::string text;  ///< identifier/string content; digits for kInt
  int64_t int_value = 0;
  int line = 1;
  int column = 1;
};

/// Tokenises `source` completely (ending with a kEof token), or returns
/// a ParseError naming the offending line and column.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace pathlog

#endif  // PATHLOG_PARSER_LEXER_H_
