// Recursive-descent parser for PathLog programs, clauses, and
// references. Grammar (after lexing, cf. lexer.h for the dot rule):
//
//   program   := clause*
//   clause    := sigclause | rule | query
//   sigclause := simple '[' sig (';' sig)* ']' '.'
//   sig       := simple args? ('=>' | '=>>') simple
//   rule      := ref ('<-' literals)? '.'
//   query     := '?-' literals '.'
//   literals  := literal (',' literal)*
//   literal   := 'not'? ref
//   ref       := primary postfix*
//   postfix   := '.' simple args? | '..' simple args?
//              | '[' filter (';' filter)* ']' | ':' simple
//   primary   := name | int | string | var | '(' ref ')'
//   simple    := name | var | '(' ref ')'
//   args      := '@(' ref (',' ref)* ')'
//   filter    := ref args? ('->' ref | '->>' setOrRef)?   // no arrow: selector
//   setOrRef  := '{' ref (',' ref)* '}' | ref
//
// The selector form `[t]` abbreviates `[self->t]` (XSQL-style selectors,
// paper section 4.1).

#ifndef PATHLOG_PARSER_PARSER_H_
#define PATHLOG_PARSER_PARSER_H_

#include <string_view>

#include "ast/program.h"
#include "ast/ref.h"
#include "base/result.h"

namespace pathlog {

/// Parses a whole program (facts, rules, queries, signatures).
Result<Program> ParseProgram(std::string_view source);

/// Parses a single reference; the input must contain nothing else.
Result<RefPtr> ParseRef(std::string_view source);

/// Parses a single rule or fact clause ("head <- body." or "head.").
Result<Rule> ParseRule(std::string_view source);

/// Parses a single query clause ("?- body." — the "?-" may be omitted).
Result<Query> ParseQuery(std::string_view source);

}  // namespace pathlog

#endif  // PATHLOG_PARSER_PARSER_H_
