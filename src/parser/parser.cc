#include "parser/parser.h"

#include <utility>

#include "ast/analysis.h"
#include "base/strings.h"
#include "parser/lexer.h"

namespace pathlog {

namespace {

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program prog;
    while (!Check(TokenKind::kEof)) {
      PATHLOG_RETURN_IF_ERROR(ParseClause(&prog));
    }
    return prog;
  }

  Result<RefPtr> ParseSingleRef() {
    PATHLOG_ASSIGN_OR_RETURN(RefPtr r, ParseRef());
    // A trailing terminator dot is tolerated.
    Match(TokenKind::kTermDot);
    if (!Check(TokenKind::kEof)) {
      return Error(StrCat("unexpected ", TokenKindName(Peek().kind),
                          " after reference"));
    }
    return r;
  }

  Result<Rule> ParseSingleRule() {
    Program prog;
    PATHLOG_RETURN_IF_ERROR(ParseClause(&prog));
    if (!Check(TokenKind::kEof) || prog.rules.size() != 1 ||
        !prog.queries.empty() || !prog.signatures.empty()) {
      return Status(ParseError("expected exactly one rule clause"));
    }
    return std::move(prog.rules[0]);
  }

  Result<Query> ParseSingleQuery() {
    Query q;
    Match(TokenKind::kQuery);  // optional
    PATHLOG_RETURN_IF_ERROR(ParseLiterals(&q.body));
    Match(TokenKind::kTermDot);  // optional for queries
    if (!Check(TokenKind::kEof)) {
      return Status(
          Error(StrCat("unexpected ", TokenKindName(Peek().kind),
                       " after query")));
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }
  Status Expect(TokenKind kind, std::string_view context) {
    if (Match(kind)) return Status::OK();
    return Error(StrCat("expected ", TokenKindName(kind), " ", context,
                        ", got ", TokenKindName(Peek().kind)));
  }
  Status Error(std::string_view what) const {
    const Token& t = Peek();
    return ParseError(
        StrCat("line ", t.line, ", column ", t.column, ": ", what));
  }

  /// Stamps a freshly constructed (and therefore parser-owned, not yet
  /// shared) reference with a source position.
  static RefPtr At(RefPtr r, int line, int column) {
    Ref* node = const_cast<Ref*>(r.get());
    node->line = line;
    node->column = column;
    return r;
  }

  // --- clauses --------------------------------------------------------

  Status ParseClause(Program* prog) {
    const int clause_line = Peek().line;
    const int clause_column = Peek().column;
    if (Match(TokenKind::kQuery)) {
      Query q;
      q.line = clause_line;
      q.column = clause_column;
      PATHLOG_RETURN_IF_ERROR(ParseLiterals(&q.body));
      PATHLOG_RETURN_IF_ERROR(
          Expect(TokenKind::kTermDot, "at end of query"));
      prog->queries.push_back(std::move(q));
      return Status::OK();
    }
    if (IsSignatureClauseAhead()) {
      return ParseSignatureClause(prog);
    }
    Rule rule;
    rule.line = clause_line;
    rule.column = clause_column;
    {
      Result<RefPtr> head = ParseRef();
      if (!head.ok()) return head.status();
      rule.head = std::move(*head);
    }
    bool is_trigger = false;
    if (Match(TokenKind::kIf)) {
      PATHLOG_RETURN_IF_ERROR(ParseLiterals(&rule.body));
    } else if (Match(TokenKind::kOn)) {
      is_trigger = true;
      PATHLOG_RETURN_IF_ERROR(ParseLiterals(&rule.body));
    }
    PATHLOG_RETURN_IF_ERROR(Expect(TokenKind::kTermDot, "at end of clause"));
    if (is_trigger) {
      prog->triggers.push_back(TriggerRule{std::move(rule)});
    } else {
      prog->rules.push_back(std::move(rule));
    }
    return Status::OK();
  }

  Status ParseLiterals(std::vector<Literal>* out) {
    do {
      Literal lit;
      lit.line = Peek().line;
      lit.column = Peek().column;
      lit.negated = Match(TokenKind::kNot);
      Result<RefPtr> r = ParseRef();
      if (!r.ok()) return r.status();
      lit.ref = std::move(*r);
      out->push_back(std::move(lit));
    } while (Match(TokenKind::kComma));
    return Status::OK();
  }

  /// Lookahead: simple ref followed by a bracket group containing a
  /// signature arrow at depth 1.
  bool IsSignatureClauseAhead() const {
    size_t i = pos_;
    // simple: name/var, or balanced parens.
    if (tokens_[i].kind == TokenKind::kName ||
        tokens_[i].kind == TokenKind::kVar) {
      ++i;
    } else if (tokens_[i].kind == TokenKind::kLParen) {
      int depth = 0;
      while (i < tokens_.size() && tokens_[i].kind != TokenKind::kEof) {
        if (tokens_[i].kind == TokenKind::kLParen) ++depth;
        if (tokens_[i].kind == TokenKind::kRParen && --depth == 0) {
          ++i;
          break;
        }
        ++i;
      }
    } else {
      return false;
    }
    if (i >= tokens_.size() || tokens_[i].kind != TokenKind::kLBracket) {
      return false;
    }
    int depth = 0;
    for (; i < tokens_.size() && tokens_[i].kind != TokenKind::kEof; ++i) {
      switch (tokens_[i].kind) {
        case TokenKind::kLBracket:
          ++depth;
          break;
        case TokenKind::kRBracket:
          if (--depth == 0) return false;
          break;
        case TokenKind::kSigArrow:
        case TokenKind::kSigDArrow:
          if (depth == 1) return true;
          break;
        case TokenKind::kTermDot:
          return false;
        default:
          break;
      }
    }
    return false;
  }

  Status ParseSignatureClause(Program* prog) {
    PATHLOG_ASSIGN_OR_RETURN(RefPtr klass, ParseSimple("signature class"));
    PATHLOG_RETURN_IF_ERROR(
        Expect(TokenKind::kLBracket, "in signature declaration"));
    do {
      SignatureDecl sig;
      sig.klass = klass;
      sig.line = Peek().line;
      sig.column = Peek().column;
      PATHLOG_ASSIGN_OR_RETURN(sig.method, ParseSimple("signature method"));
      if (Check(TokenKind::kAt)) {
        PATHLOG_RETURN_IF_ERROR(ParseArgs(&sig.arg_types));
      }
      if (Match(TokenKind::kSigDArrow)) {
        sig.set_valued = true;
      } else {
        PATHLOG_RETURN_IF_ERROR(
            Expect(TokenKind::kSigArrow, "in signature declaration"));
      }
      PATHLOG_ASSIGN_OR_RETURN(sig.result_type,
                               ParseSimple("signature result type"));
      prog->signatures.push_back(std::move(sig));
    } while (Match(TokenKind::kSemicolon));
    PATHLOG_RETURN_IF_ERROR(
        Expect(TokenKind::kRBracket, "after signature declarations"));
    return Expect(TokenKind::kTermDot, "at end of signature clause");
  }

  // --- references -----------------------------------------------------

  /// Recursion guards: references nest through (), [], {} and @(), and
  /// chain through postfix steps; both are bounded so that no later
  /// recursive pass (analysis, printing, evaluation) can overflow the
  /// stack on hostile input. Far above anything a real program writes.
  static constexpr int kMaxNestingDepth = 500;
  static constexpr int kMaxPostfixSteps = 1000;

  class DepthGuard {
   public:
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    bool ok() const { return *depth_ <= kMaxNestingDepth; }

   private:
    int* depth_;
  };

  Result<RefPtr> ParseRef() {
    DepthGuard guard(&depth_);
    if (!guard.ok()) {
      return Status(Error(StrCat("references nested deeper than ",
                                 kMaxNestingDepth, " levels")));
    }
    const int start_line = Peek().line;
    const int start_column = Peek().column;
    PATHLOG_ASSIGN_OR_RETURN(RefPtr r, ParsePrimary());
    // Consecutive filter postfixes (`[...]`, `:c`) accumulate into one
    // molecule node — `t[f1][f2]`, `t[f1; f2]` and `t[f1]:c` are the
    // same molecule (paper section 4.1), and the flat form makes the
    // printer/parser round-trip canonical.
    bool molecule_chain = false;
    int steps = 0;
    auto append_filters = [&r, start_line, start_column](
                              std::vector<Filter> filters, bool chained) {
      if (chained) {
        std::vector<Filter> combined = r->filters;
        for (Filter& f : filters) combined.push_back(std::move(f));
        r = At(Ref::Molecule(r->base, std::move(combined)), start_line,
               start_column);
      } else {
        r = At(Ref::Molecule(std::move(r), std::move(filters)), start_line,
               start_column);
      }
    };
    for (;;) {
      if (++steps > kMaxPostfixSteps) {
        return Status(Error(StrCat("reference chains more than ",
                                   kMaxPostfixSteps, " postfix steps")));
      }
      if (Match(TokenKind::kPathDot)) {
        PATHLOG_ASSIGN_OR_RETURN(RefPtr m, ParseSimple("path method"));
        std::vector<RefPtr> args;
        if (Check(TokenKind::kAt)) {
          PATHLOG_RETURN_IF_ERROR(ParseArgs(&args));
        }
        r = At(Ref::ScalarPath(std::move(r), std::move(m), std::move(args)),
               start_line, start_column);
        molecule_chain = false;
      } else if (Match(TokenKind::kDotDot)) {
        PATHLOG_ASSIGN_OR_RETURN(RefPtr m, ParseSimple("path method"));
        std::vector<RefPtr> args;
        if (Check(TokenKind::kAt)) {
          PATHLOG_RETURN_IF_ERROR(ParseArgs(&args));
        }
        r = At(Ref::SetPath(std::move(r), std::move(m), std::move(args)),
               start_line, start_column);
        molecule_chain = false;
      } else if (Match(TokenKind::kLBracket)) {
        std::vector<Filter> filters;
        do {
          PATHLOG_ASSIGN_OR_RETURN(Filter f, ParseFilter());
          filters.push_back(std::move(f));
        } while (Match(TokenKind::kSemicolon));
        PATHLOG_RETURN_IF_ERROR(
            Expect(TokenKind::kRBracket, "after filter list"));
        append_filters(std::move(filters), molecule_chain);
        molecule_chain = true;
      } else if (Match(TokenKind::kColon)) {
        PATHLOG_ASSIGN_OR_RETURN(RefPtr c, ParseSimple("class"));
        append_filters({Ref::ClassFilter(std::move(c))}, molecule_chain);
        molecule_chain = true;
      } else {
        return r;
      }
    }
  }

  Result<RefPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kName:
        Advance();
        return At(Ref::Name(t.text), t.line, t.column);
      case TokenKind::kInt:
        Advance();
        return At(Ref::Int(t.int_value), t.line, t.column);
      case TokenKind::kString:
        Advance();
        return At(Ref::Str(t.text), t.line, t.column);
      case TokenKind::kVar:
        Advance();
        return At(Ref::Var(t.text), t.line, t.column);
      case TokenKind::kLParen: {
        Advance();
        PATHLOG_ASSIGN_OR_RETURN(RefPtr inner, ParseRef());
        PATHLOG_RETURN_IF_ERROR(
            Expect(TokenKind::kRParen, "after bracketed reference"));
        return At(Ref::Paren(std::move(inner)), t.line, t.column);
      }
      default:
        return Status(Error(StrCat("expected a reference, got ",
                                   TokenKindName(t.kind))));
    }
  }

  Result<RefPtr> ParseSimple(std::string_view context) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kName:
        Advance();
        return At(Ref::Name(t.text), t.line, t.column);
      case TokenKind::kVar:
        Advance();
        return At(Ref::Var(t.text), t.line, t.column);
      case TokenKind::kInt:
        Advance();
        return At(Ref::Int(t.int_value), t.line, t.column);
      case TokenKind::kString:
        Advance();
        return At(Ref::Str(t.text), t.line, t.column);
      case TokenKind::kLParen: {
        Advance();
        PATHLOG_ASSIGN_OR_RETURN(RefPtr inner, ParseRef());
        PATHLOG_RETURN_IF_ERROR(
            Expect(TokenKind::kRParen, "after bracketed reference"));
        return At(Ref::Paren(std::move(inner)), t.line, t.column);
      }
      default:
        return Status(Error(StrCat("expected a simple reference as ", context,
                                   ", got ", TokenKindName(t.kind))));
    }
  }

  Status ParseArgs(std::vector<RefPtr>* out) {
    PATHLOG_RETURN_IF_ERROR(Expect(TokenKind::kAt, "before argument list"));
    PATHLOG_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after '@'"));
    do {
      PATHLOG_ASSIGN_OR_RETURN(RefPtr a, ParseRef());
      out->push_back(std::move(a));
    } while (Match(TokenKind::kComma));
    return Expect(TokenKind::kRParen, "after argument list");
  }

  Result<Filter> ParseFilter() {
    PATHLOG_ASSIGN_OR_RETURN(RefPtr head, ParseRef());
    std::vector<RefPtr> args;
    if (Check(TokenKind::kAt)) {
      PATHLOG_RETURN_IF_ERROR(ParseArgs(&args));
    }
    if (Match(TokenKind::kArrow)) {
      PATHLOG_ASSIGN_OR_RETURN(RefPtr value, ParseRef());
      return Ref::ScalarFilter(std::move(head), std::move(value),
                               std::move(args));
    }
    if (Match(TokenKind::kDArrow)) {
      if (Match(TokenKind::kLBrace)) {
        std::vector<RefPtr> elems;
        do {
          PATHLOG_ASSIGN_OR_RETURN(RefPtr e, ParseRef());
          elems.push_back(std::move(e));
        } while (Match(TokenKind::kComma));
        PATHLOG_RETURN_IF_ERROR(
            Expect(TokenKind::kRBrace, "after explicit set"));
        return Ref::SetEnumFilter(std::move(head), std::move(elems),
                                  std::move(args));
      }
      PATHLOG_ASSIGN_OR_RETURN(RefPtr value, ParseRef());
      return Ref::SetRefFilter(std::move(head), std::move(value),
                               std::move(args));
    }
    if (Check(TokenKind::kSigArrow) || Check(TokenKind::kSigDArrow)) {
      return Status(Error(
          "signature arrows are only allowed in top-level signature "
          "declarations (class[m => type].)"));
    }
    // Selector: `[t]` abbreviates `[self->t]`.
    if (!args.empty()) {
      return Status(
          Error("selector filter cannot take '@(...)' arguments"));
    }
    RefPtr self = At(Ref::Name(kSelfMethodName), head->line, head->column);
    return Ref::ScalarFilter(std::move(self), std::move(head));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

Result<ParserImpl> MakeParser(std::string_view source) {
  Result<std::vector<Token>> toks = Tokenize(source);
  if (!toks.ok()) return toks.status();
  return ParserImpl(std::move(*toks));
}

}  // namespace

Result<Program> ParseProgram(std::string_view source) {
  PATHLOG_ASSIGN_OR_RETURN(ParserImpl parser, MakeParser(source));
  return parser.ParseProgram();
}

Result<RefPtr> ParseRef(std::string_view source) {
  PATHLOG_ASSIGN_OR_RETURN(ParserImpl parser, MakeParser(source));
  return parser.ParseSingleRef();
}

Result<Rule> ParseRule(std::string_view source) {
  PATHLOG_ASSIGN_OR_RETURN(ParserImpl parser, MakeParser(source));
  return parser.ParseSingleRule();
}

Result<Query> ParseQuery(std::string_view source) {
  PATHLOG_ASSIGN_OR_RETURN(ParserImpl parser, MakeParser(source));
  return parser.ParseSingleQuery();
}

}  // namespace pathlog
