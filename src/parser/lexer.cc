#include "parser/lexer.h"

#include <cctype>

#include "base/strings.h"

namespace pathlog {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kName: return "name";
    case TokenKind::kVar: return "variable";
    case TokenKind::kInt: return "integer";
    case TokenKind::kString: return "string";
    case TokenKind::kPathDot: return "'.'";
    case TokenKind::kDotDot: return "'..'";
    case TokenKind::kTermDot: return "clause-terminating '.'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kDArrow: return "'->>'";
    case TokenKind::kSigArrow: return "'=>'";
    case TokenKind::kSigDArrow: return "'=>>'";
    case TokenKind::kIf: return "'<-'";
    case TokenKind::kOn: return "'<~'";
    case TokenKind::kQuery: return "'?-'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kNot: return "'not'";
    case TokenKind::kEof: return "end of input";
  }
  return "token";
}

namespace {

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    for (;;) {
      SkipSpaceAndComments();
      if (AtEnd()) {
        out.push_back(Make(TokenKind::kEof));
        return out;
      }
      Result<Token> tok = Next();
      if (!tok.ok()) return tok.status();
      out.push_back(std::move(*tok));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  Token Make(TokenKind kind, std::string text = {}) const {
    return Token{kind, std::move(text), 0, line_, column_};
  }

  Status Error(std::string_view what) const {
    return ParseError(
        StrCat("line ", line_, ", column ", column_, ": ", what));
  }

  void SkipSpaceAndComments() {
    for (;;) {
      while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (Peek() == '%' || (Peek() == '/' && Peek(1) == '/')) {
        while (!AtEnd() && Peek() != '\n') Advance();
        continue;
      }
      if (Peek() == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
        if (!AtEnd()) {
          Advance();
          Advance();
        }
        continue;
      }
      return;
    }
  }

  static bool IsIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  Result<Token> LexIdent() {
    int line = line_, col = column_;
    std::string text;
    while (!AtEnd() && IsIdentChar(Peek())) text.push_back(Advance());
    TokenKind kind;
    if (text == "not") {
      kind = TokenKind::kNot;
    } else if (std::isupper(static_cast<unsigned char>(text[0])) ||
               text[0] == '_') {
      kind = TokenKind::kVar;
    } else {
      kind = TokenKind::kName;
    }
    Token t{kind, std::move(text), 0, line, col};
    return t;
  }

  Result<Token> LexInt(bool negative) {
    int line = line_, col = column_;
    std::string digits;
    if (negative) digits.push_back('-');
    // Accumulate with overflow detection (std::stoll would throw).
    uint64_t magnitude = 0;
    bool overflow = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      char c = Advance();
      digits.push_back(c);
      if (magnitude > (UINT64_MAX - 9) / 10) {
        overflow = true;
      } else {
        magnitude = magnitude * 10 + static_cast<uint64_t>(c - '0');
      }
    }
    const uint64_t limit = negative
                               ? static_cast<uint64_t>(INT64_MAX) + 1
                               : static_cast<uint64_t>(INT64_MAX);
    if (overflow || magnitude > limit) {
      return Status(ParseError(StrCat("line ", line, ", column ", col,
                                      ": integer literal out of range: ",
                                      digits)));
    }
    Token t{TokenKind::kInt, digits, 0, line, col};
    if (negative && magnitude == static_cast<uint64_t>(INT64_MAX) + 1) {
      t.int_value = INT64_MIN;
    } else {
      t.int_value = negative ? -static_cast<int64_t>(magnitude)
                             : static_cast<int64_t>(magnitude);
    }
    return t;
  }

  Result<Token> LexString() {
    int line = line_, col = column_;
    Advance();  // opening quote
    std::string text;
    while (!AtEnd() && Peek() != '"') {
      char c = Advance();
      if (c == '\\') {
        if (AtEnd()) return Error("unterminated escape in string literal");
        char e = Advance();
        switch (e) {
          case 'n': text.push_back('\n'); break;
          case 't': text.push_back('\t'); break;
          case '\\': text.push_back('\\'); break;
          case '"': text.push_back('"'); break;
          default:
            return Error(StrCat("unknown escape '\\", e, "' in string"));
        }
      } else {
        text.push_back(c);
      }
    }
    if (AtEnd()) return Error("unterminated string literal");
    Advance();  // closing quote
    return Token{TokenKind::kString, std::move(text), 0, line, col};
  }

  Result<Token> Next() {
    char c = Peek();
    if (IsIdentStart(c)) return LexIdent();
    if (std::isdigit(static_cast<unsigned char>(c))) return LexInt(false);
    if (c == '"') return LexString();

    int line = line_, col = column_;
    auto tok = [&](TokenKind kind) {
      return Token{kind, {}, 0, line, col};
    };

    switch (c) {
      case '.': {
        Advance();
        if (Peek() == '.') {
          Advance();
          return tok(TokenKind::kDotDot);
        }
        char n = Peek();
        if (IsIdentStart(n) || std::isdigit(static_cast<unsigned char>(n)) ||
            n == '(' || n == '"') {
          return tok(TokenKind::kPathDot);
        }
        return tok(TokenKind::kTermDot);
      }
      case ':':
        Advance();
        if (Peek() == ':') {
          Advance();
          return tok(TokenKind::kColon);
        }
        if (Peek() == '-') {
          Advance();
          return tok(TokenKind::kIf);
        }
        return tok(TokenKind::kColon);
      case '-':
        Advance();
        if (Peek() == '>') {
          Advance();
          if (Peek() == '>') {
            Advance();
            return tok(TokenKind::kDArrow);
          }
          return tok(TokenKind::kArrow);
        }
        if (std::isdigit(static_cast<unsigned char>(Peek()))) {
          return LexInt(true);
        }
        return Error("expected '->', '->>' or a digit after '-'");
      case '=':
        Advance();
        if (Peek() == '>') {
          Advance();
          if (Peek() == '>') {
            Advance();
            return tok(TokenKind::kSigDArrow);
          }
          return tok(TokenKind::kSigArrow);
        }
        return Error("expected '=>' or '=>>' after '='");
      case '<':
        Advance();
        if (Peek() == '-') {
          Advance();
          return tok(TokenKind::kIf);
        }
        if (Peek() == '~') {
          Advance();
          return tok(TokenKind::kOn);
        }
        return Error("expected '<-' or '<~' after '<'");
      case '?':
        Advance();
        if (Peek() == '-') {
          Advance();
          return tok(TokenKind::kQuery);
        }
        return Error("expected '?-' after '?'");
      case '@': Advance(); return tok(TokenKind::kAt);
      case '(': Advance(); return tok(TokenKind::kLParen);
      case ')': Advance(); return tok(TokenKind::kRParen);
      case '[': Advance(); return tok(TokenKind::kLBracket);
      case ']': Advance(); return tok(TokenKind::kRBracket);
      case '{': Advance(); return tok(TokenKind::kLBrace);
      case '}': Advance(); return tok(TokenKind::kRBrace);
      case ',': Advance(); return tok(TokenKind::kComma);
      case ';': Advance(); return tok(TokenKind::kSemicolon);
      default:
        return Error(StrCat("unexpected character '", c, "'"));
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  return LexerImpl(source).Run();
}

}  // namespace pathlog
