#include "semantics/structure.h"

namespace pathlog {

bool IsBuiltinMethodName(std::string_view name) {
  return name == kSelfMethodName || name == kLtName || name == kLeqName ||
         name == kGtName || name == kGeqName || name == kIntEqName ||
         name == kIntNeqName || name == kBetweenName;
}

}  // namespace pathlog
