// Direct semantics of PathLog (paper section 5).
//
// Definition 4: given a semantic structure I and a *total* variable
// valuation nu : V -> U, the extended valuation rho_I maps every
// well-formed reference to a set of objects (singleton-or-empty for
// scalar references). Definition 5: I |=_nu t iff rho_I(t) != {}.
//
// This module implements the definition *literally*, including its
// vacuous corner: a `->>` filter whose specified set evaluates to {}
// is satisfied trivially (the empty set is a subset of everything).
// The query evaluator in eval/ uses the stricter active-domain variant
// (every sub-reference must denote) — tests/semantics_test.cc pins the
// difference down explicitly.

#ifndef PATHLOG_SEMANTICS_VALUATION_H_
#define PATHLOG_SEMANTICS_VALUATION_H_

#include <map>
#include <string>
#include <vector>

#include "ast/ref.h"
#include "base/result.h"
#include "semantics/structure.h"

namespace pathlog {

/// A total assignment of objects to the variables of interest.
using VarValuation = std::map<std::string, Oid>;

/// rho_I(t): the set of objects denoted by `t` under `nu`, sorted and
/// deduplicated. Fails with kInvalidArgument if `t` mentions a variable
/// missing from `nu` (Definition 4 requires a total valuation) and
/// kNotFound if `t` mentions a name the store has never interned.
Result<std::vector<Oid>> Valuate(const SemanticStructure& I, const Ref& t,
                                 const VarValuation& nu);

/// Definition 5: I |=_nu t iff rho_I(t) is non-empty.
Result<bool> Entails(const SemanticStructure& I, const Ref& t,
                     const VarValuation& nu);

}  // namespace pathlog

#endif  // PATHLOG_SEMANTICS_VALUATION_H_
