#include "semantics/valuation.h"

#include <algorithm>
#include <unordered_set>

#include "base/strings.h"

namespace pathlog {

namespace {

using OidVec = std::vector<Oid>;

void SortUnique(OidVec* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

class Valuator {
 public:
  Valuator(const SemanticStructure& I, const VarValuation& nu)
      : I_(I), nu_(nu) {}

  Result<OidVec> Eval(const Ref& t) {
    switch (t.kind) {
      case RefKind::kName:
        return EvalName(t);
      case RefKind::kVar: {
        auto it = nu_.find(t.text);
        if (it == nu_.end()) {
          return Status(InvalidArgument(
              StrCat("Definition 4 requires a total valuation; variable ",
                     t.text, " is unassigned")));
        }
        return OidVec{it->second};
      }
      case RefKind::kParen:
        return Eval(*t.base);
      case RefKind::kPath:
        return EvalPath(t);
      case RefKind::kMolecule:
        return EvalMolecule(t);
    }
    return Status(Internal("Valuate: unknown reference kind"));
  }

 private:
  Result<OidVec> EvalName(const Ref& t) {
    std::optional<Oid> o;
    switch (t.name_kind) {
      case NameKind::kSymbol:
        o = I_.store().FindSymbol(t.text);
        break;
      case NameKind::kInt:
        o = I_.store().FindInt(t.int_value);
        break;
      case NameKind::kString:
        o = I_.store().FindString(t.text);
        break;
    }
    if (!o) {
      return Status(NotFound(
          StrCat("name '", t.text, "' has never been interned in this store "
                 "(load it via Database to intern query names)")));
    }
    return OidVec{*o};
  }

  /// Evaluates each argument reference and invokes `fn` once per element
  /// of the cartesian product of their valuations.
  Status ForEachArgCombo(const std::vector<RefPtr>& args,
                         const std::function<Status(const OidVec&)>& fn) {
    std::vector<OidVec> vals;
    vals.reserve(args.size());
    for (const RefPtr& a : args) {
      Result<OidVec> v = Eval(*a);
      if (!v.ok()) return v.status();
      if (v->empty()) return Status::OK();  // product is empty
      vals.push_back(std::move(*v));
    }
    OidVec combo(args.size());
    std::vector<size_t> idx(args.size(), 0);
    for (;;) {
      for (size_t i = 0; i < args.size(); ++i) combo[i] = vals[i][idx[i]];
      PATHLOG_RETURN_IF_ERROR(fn(combo));
      size_t i = 0;
      for (; i < args.size(); ++i) {
        if (++idx[i] < vals[i].size()) break;
        idx[i] = 0;
      }
      if (i == args.size()) return Status::OK();
      if (args.empty()) return Status::OK();
    }
  }

  Result<OidVec> EvalPath(const Ref& t) {
    PATHLOG_ASSIGN_OR_RETURN(OidVec methods, Eval(*t.method));
    PATHLOG_ASSIGN_OR_RETURN(OidVec bases, Eval(*t.base));
    OidVec out;
    Status st = ForEachArgCombo(t.args, [&](const OidVec& argv) -> Status {
      for (Oid um : methods) {
        for (Oid u0 : bases) {
          if (!t.set_valued_path) {
            if (std::optional<Oid> r = I_.Scalar(um, u0, argv)) {
              out.push_back(*r);
            }
          } else if (const SetGroup* g = I_.SetVal(um, u0, argv)) {
            out.insert(out.end(), g->members.begin(), g->members.end());
          }
        }
      }
      return Status::OK();
    });
    if (!st.ok()) return st;
    SortUnique(&out);
    return out;
  }

  /// True iff some (method, arg-combo) invocation on u0 satisfies the
  /// filter's condition.
  Result<bool> FilterHolds(const Filter& f, Oid u0) {
    if (f.kind == FilterKind::kClass) {
      PATHLOG_ASSIGN_OR_RETURN(OidVec classes, Eval(*f.value));
      for (Oid uc : classes) {
        if (I_.IsA(u0, uc)) return true;
      }
      return false;
    }
    PATHLOG_ASSIGN_OR_RETURN(OidVec methods, Eval(*f.method));

    OidVec spec;  // kSetRef / kSetEnum: the specified set
    if (f.kind == FilterKind::kSetRef) {
      PATHLOG_ASSIGN_OR_RETURN(spec, Eval(*f.value));
    } else if (f.kind == FilterKind::kSetEnum) {
      for (const RefPtr& e : f.elems) {
        PATHLOG_ASSIGN_OR_RETURN(OidVec ev, Eval(*e));
        spec.insert(spec.end(), ev.begin(), ev.end());
      }
      SortUnique(&spec);
    }
    OidVec results;  // kScalar: admissible results
    if (f.kind == FilterKind::kScalar) {
      PATHLOG_ASSIGN_OR_RETURN(results, Eval(*f.value));
    }

    bool holds = false;
    Status st = ForEachArgCombo(f.args, [&](const OidVec& argv) -> Status {
      if (holds) return Status::OK();
      for (Oid um : methods) {
        switch (f.kind) {
          case FilterKind::kScalar: {
            std::optional<Oid> r = I_.Scalar(um, u0, argv);
            if (r && std::binary_search(results.begin(), results.end(), *r)) {
              holds = true;
            }
            break;
          }
          case FilterKind::kSetRef:
          case FilterKind::kSetEnum: {
            // Definition 4, cases 7/8: the specified set must be
            // contained in the method's result set. An empty specified
            // set is trivially contained (the documented vacuous
            // corner of the literal definition).
            const SetGroup* g = I_.SetVal(um, u0, argv);
            bool subset = true;
            for (Oid s : spec) {
              if (!g || !g->Contains(s)) {
                subset = false;
                break;
              }
            }
            if (subset) holds = true;
            break;
          }
          case FilterKind::kClass:
            break;  // unreachable
        }
        if (holds) break;
      }
      return Status::OK();
    });
    if (!st.ok()) return st;
    return holds;
  }

  Result<OidVec> EvalMolecule(const Ref& t) {
    PATHLOG_ASSIGN_OR_RETURN(OidVec candidates, Eval(*t.base));
    for (const Filter& f : t.filters) {
      OidVec kept;
      for (Oid u0 : candidates) {
        PATHLOG_ASSIGN_OR_RETURN(bool ok, FilterHolds(f, u0));
        if (ok) kept.push_back(u0);
      }
      candidates = std::move(kept);
      if (candidates.empty()) break;
    }
    return candidates;
  }

  const SemanticStructure& I_;
  const VarValuation& nu_;
};

}  // namespace

Result<std::vector<Oid>> Valuate(const SemanticStructure& I, const Ref& t,
                                 const VarValuation& nu) {
  return Valuator(I, nu).Eval(t);
}

Result<bool> Entails(const SemanticStructure& I, const Ref& t,
                     const VarValuation& nu) {
  PATHLOG_ASSIGN_OR_RETURN(std::vector<Oid> v, Valuate(I, t, nu));
  return !v.empty();
}

}  // namespace pathlog
