// The semantic structure I = (U, <=_U, I_N, I_->, I_->>) of paper
// section 3, as a thin read-only view over an ObjectStore plus the
// built-in methods:
//
//   self : for every object u, I_->(self)(u) = u  (paper section 4.1;
//          the XSQL-style selector `[X]` expands to `[self->X]`);
//
// and — an extension beyond the paper, in the same "everything is a
// method" spirit — *comparison guards* on integers: partial identity
// methods defined exactly when the comparison holds, e.g.
//
//   I_->(lt)(x, y)          = x   iff x, y integers and x <  y
//   I_->(geq)(x, y)         = x   iff x, y integers and x >= y
//   I_->(between)(x, lo, hi)= x   iff lo <= x <= hi
//
// A guard used as a path is a filter: `S.lt@(1000)` denotes S when
// S < 1000 and nothing otherwise, so `X[salary->S], S.lt@(1000)` reads
// "X's salary S is below 1000". Because guards are identity-preserving
// partial functions over existing objects, they need no new objects
// and fit Definition 4 unchanged (which is why arithmetic — whose
// results may be objects outside the store — is deliberately absent).

#ifndef PATHLOG_SEMANTICS_STRUCTURE_H_
#define PATHLOG_SEMANTICS_STRUCTURE_H_

#include <optional>
#include <string_view>
#include <vector>

#include "ast/ref.h"  // kSelfMethodName
#include "store/object_store.h"

namespace pathlog {

/// Built-in comparison guard names (all take integer receivers).
inline constexpr std::string_view kLtName = "lt";        ///< @(y): recv <  y
inline constexpr std::string_view kLeqName = "leq";      ///< @(y): recv <= y
inline constexpr std::string_view kGtName = "gt";        ///< @(y): recv >  y
inline constexpr std::string_view kGeqName = "geq";      ///< @(y): recv >= y
inline constexpr std::string_view kIntEqName = "intEq";  ///< @(y): recv == y
inline constexpr std::string_view kIntNeqName = "intNeq";
inline constexpr std::string_view kBetweenName = "between";  ///< @(lo,hi)

/// True iff `name` is reserved for a built-in method (`self` or a
/// comparison guard); built-ins cannot be (re)defined by rules.
bool IsBuiltinMethodName(std::string_view name);

class SemanticStructure {
 public:
  /// The store must outlive the structure. Built-in method names are
  /// resolved if the store has interned them (the Database front end
  /// always interns `self`; guard names are interned on first use in
  /// a loaded program or query).
  explicit SemanticStructure(const ObjectStore& store)
      : store_(store),
        self_(store.FindSymbol(kSelfMethodName)),
        lt_(store.FindSymbol(kLtName)),
        leq_(store.FindSymbol(kLeqName)),
        gt_(store.FindSymbol(kGtName)),
        geq_(store.FindSymbol(kGeqName)),
        int_eq_(store.FindSymbol(kIntEqName)),
        int_neq_(store.FindSymbol(kIntNeqName)),
        between_(store.FindSymbol(kBetweenName)) {}

  const ObjectStore& store() const { return store_; }

  /// The oid of the built-in `self` method, if interned.
  std::optional<Oid> self_oid() const { return self_; }
  bool IsSelf(Oid m) const { return self_ && *self_ == m; }

  /// True iff m is any built-in scalar method (self or a guard).
  bool IsBuiltinScalar(Oid m) const {
    return IsSelf(m) || IsGuard(m);
  }
  bool IsGuard(Oid m) const {
    return Is(m, lt_) || Is(m, leq_) || Is(m, gt_) || Is(m, geq_) ||
           Is(m, int_eq_) || Is(m, int_neq_) || Is(m, between_);
  }

  /// I_->(m)(recv, args...): stored facts, `self`, and guards.
  std::optional<Oid> Scalar(Oid m, Oid recv,
                            const std::vector<Oid>& args) const {
    if (IsSelf(m) && args.empty()) return recv;
    if (IsGuard(m)) return Guard(m, recv, args);
    return store_.GetScalar(m, recv, args);
  }

  /// I_->>(m)(recv, args...): nullptr when the set is empty.
  const SetGroup* SetVal(Oid m, Oid recv,
                         const std::vector<Oid>& args) const {
    return store_.GetSetGroup(m, recv, args);
  }

  bool IsA(Oid sub, Oid super) const { return store_.IsA(sub, super); }

 private:
  static bool Is(Oid m, std::optional<Oid> o) { return o && *o == m; }

  std::optional<Oid> Guard(Oid m, Oid recv,
                           const std::vector<Oid>& args) const {
    if (store_.kind(recv) != ObjectKind::kInt) return std::nullopt;
    const int64_t x = store_.IntValue(recv);
    if (Is(m, between_)) {
      if (args.size() != 2 || store_.kind(args[0]) != ObjectKind::kInt ||
          store_.kind(args[1]) != ObjectKind::kInt) {
        return std::nullopt;
      }
      return (store_.IntValue(args[0]) <= x && x <= store_.IntValue(args[1]))
                 ? std::optional<Oid>(recv)
                 : std::nullopt;
    }
    if (args.size() != 1 || store_.kind(args[0]) != ObjectKind::kInt) {
      return std::nullopt;
    }
    const int64_t y = store_.IntValue(args[0]);
    bool holds = false;
    if (Is(m, lt_)) holds = x < y;
    else if (Is(m, leq_)) holds = x <= y;
    else if (Is(m, gt_)) holds = x > y;
    else if (Is(m, geq_)) holds = x >= y;
    else if (Is(m, int_eq_)) holds = x == y;
    else if (Is(m, int_neq_)) holds = x != y;
    return holds ? std::optional<Oid>(recv) : std::nullopt;
  }

  const ObjectStore& store_;
  std::optional<Oid> self_;
  std::optional<Oid> lt_, leq_, gt_, geq_, int_eq_, int_neq_, between_;
};

}  // namespace pathlog

#endif  // PATHLOG_SEMANTICS_STRUCTURE_H_
