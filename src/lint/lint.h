// Whole-program static analysis for PathLog: the ProgramLinter runs a
// battery of checks over a parsed Program *before* evaluation and
// reports coded, source-located diagnostics (lint/diagnostic.h).
//
// The checks and their codes:
//   PL001 (error)   source text does not parse (LintSource only)
//   PL002 (error)   ill-formed reference: Definition 3 / scalarity
//                   flavour misuse, located at the smallest offending
//                   sub-reference
//   PL003 (error)   set-valued reference as a rule head (section 6)
//   PL004 (error)   head is a bare name or variable (asserts nothing)
//   PL005 (error)   safety / range restriction: a head variable not
//                   bound by any positive body literal, a non-ground
//                   fact, or an unorderable conjunction
//   PL006 (warning) variable occurs only under negation
//   PL007 (error)   not stratifiable: needs-complete cycle, explained
//                   as the offending rule chain plus the closing
//                   `->>`/negation edge (section 6, [NT89])
//   PL008 (warning) method used in a body has no declared signature
//                   (only when the program declares signatures)
//   PL009 (warning) scalar use of a method whose signatures are all
//                   set-valued, or vice versa ([KLW93]-style check)
//   PL010 (warning) singleton variable (occurs exactly once in its
//                   rule; prefix with '_' to silence)
//   PL011 (warning) rule can never fire: a positive body literal reads
//                   a method that no fact, rule head, or signature in
//                   scope defines
//   PL012 (warning) a head path defines a virtual object through a
//                   method no signature types (section 6 recommends
//                   signature-typed virtual objects)
//   PL013 (error)   trigger without an event literal, or with a
//                   negated event
//
// With LintOptions::analyze, the dataflow analyses
// (lint/dataflow/analyses.h) add:
//   PL014 (warning) method derives results of conflicting sorts, or a
//                   comparison guard applies to a provably non-integer
//   PL015 (warning) contradictory in-body constraints (guard intervals
//                   meet to nothing, or one scalar method pinned to two
//                   ground values for the same receiver)
//   PL016 (warning) rule transitively unreachable: every body method is
//                   defined somewhere, but only by rules that can
//                   themselves never fire (deeper than PL011)
//   PL017 (error)   materialisation provably cannot terminate:
//                   recursive object invention re-derives its own
//                   premise for each invented object
//   PL018 (warning) recursive object invention possibly unbounded
//                   through a rule cycle
//   PL019 (warning) rule always evaluates a literal with an unbound
//                   target (no index probe possible) although an
//                   admissible reordering avoids it
//
// Entry points: ProgramLinter::Lint for a parsed Program,
// ProgramLinter::LintSource for raw text (parse failures become
// PL001), Database::Lint() for an installed database, the
// `pathlog_lint` CLI, and `\lint` in the shell.

#ifndef PATHLOG_LINT_LINT_H_
#define PATHLOG_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <string_view>

#include "ast/program.h"
#include "base/status.h"
#include "eval/head_assert.h"
#include "lint/dataflow/domains.h"
#include "lint/diagnostic.h"

namespace pathlog {

struct LintOptions {
  /// Mirrors the engine option: in kSkolemize mode head value paths
  /// define virtual objects, which changes the dependency graph.
  HeadValueMode head_value_mode = HeadValueMode::kRequireDefined;

  /// Methods to treat as defined even though no fact or rule head in
  /// the linted program defines them — e.g. methods with extensional
  /// facts already in a Database's store. Affects PL011 only.
  std::set<std::string> assume_defined;

  /// Skip warning-severity checks (PL006, PL008-PL012); errors only.
  /// The analyze pass still runs when requested — PL017 is an error —
  /// but drops its warning-severity findings.
  bool errors_only = false;

  /// Run the semantic dataflow analyses (lint/dataflow/analyses.h):
  /// PL014-PL019. Off by default; enabled by `pathlog_lint --analyze`,
  /// the shell's `\lint`, and Database::Lint().
  bool analyze = false;

  /// Observed value sorts of the assume_defined methods (a Database's
  /// store contents), seeding the analyze pass's type-flow fixpoint.
  std::map<std::string, SortSet> extensional_sorts;
};

class ProgramLinter {
 public:
  ProgramLinter() = default;
  explicit ProgramLinter(LintOptions options) : options_(std::move(options)) {}

  /// Lints a parsed program: rules, facts, triggers, queries, and
  /// signature declarations.
  LintReport Lint(const Program& program) const;

  /// Parses and lints `source`; parse failures yield a single PL001
  /// diagnostic instead of a Status.
  LintReport LintSource(std::string_view source) const;

 private:
  LintOptions options_;
};

/// Status form of a report, for callers that gate on lint: OK when the
/// report has no errors, otherwise a Status whose code reflects the
/// first error diagnostic (kUnsafeRule for PL005, kNotStratifiable for
/// PL007, kParseError for PL001, kIllFormed otherwise).
Status ReportToStatus(const LintReport& report);

}  // namespace pathlog

#endif  // PATHLOG_LINT_LINT_H_
