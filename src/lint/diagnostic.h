// Diagnostics for PathLog programs: stable error codes, severities,
// and source spans, rendered either human-readable
// (`file:line:col: severity[PLxxx]: message`) or as JSON for tooling.
//
// The catalogue of codes lives in docs/LANGUAGE.md ("Diagnostics
// catalogue"); tests/lint_test.cc pins one golden program per code.

#ifndef PATHLOG_LINT_DIAGNOSTIC_H_
#define PATHLOG_LINT_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace pathlog {

/// Stable diagnostic codes. The numeric value is part of the code
/// string ("PL001"); never renumber, only append.
enum class LintCode {
  kParseError = 1,        ///< PL001: source text does not parse
  kIllFormed = 2,         ///< PL002: reference violates Definition 3
  kSetValuedHead = 3,     ///< PL003: rule head is a set-valued reference
  kTrivialHead = 4,       ///< PL004: head is a bare name or variable
  kUnsafeRule = 5,        ///< PL005: range restriction / safety violation
  kNegationOnlyVar = 6,   ///< PL006: variable occurs only under negation
  kNotStratifiable = 7,   ///< PL007: needs-complete cycle (section 6)
  kUndeclaredMethod = 8,  ///< PL008: method has no signature
  kFlavourMismatch = 9,   ///< PL009: scalar/set use contradicts signatures
  kSingletonVar = 10,     ///< PL010: variable occurs exactly once
  kRuleNeverFires = 11,   ///< PL011: body reads a never-defined method
  kUnsignedHeadPath = 12, ///< PL012: head path method lacks a signature
  kIllFormedTrigger = 13, ///< PL013: trigger event missing or negated
  // Semantic analyses (lint/dataflow/analyses.h), behind
  // LintOptions::analyze.
  kSortConflict = 14,       ///< PL014: method derives conflicting sorts
  kContradiction = 15,      ///< PL015: body constraints unsatisfiable
  kDeadRule = 16,           ///< PL016: rule transitively unreachable
  kNonTermination = 17,     ///< PL017: recursive invention cannot stop
  kUnboundedInvention = 18, ///< PL018: invention possibly unbounded
  kUnboundTarget = 19,      ///< PL019: always-unbound target, avoidable
};

/// "PL001", "PL002", ... (always three digits).
std::string LintCodeName(LintCode code);

enum class Severity { kError, kWarning, kNote };

/// "error", "warning", "note".
const char* SeverityName(Severity severity);

/// One finding: a coded, located message plus free-form explanation
/// lines (e.g. the rule chain of an unstratifiable cycle).
struct Diagnostic {
  LintCode code;
  Severity severity;
  /// 1-based source position; 0/0 when the offending clause was built
  /// programmatically and carries no span.
  int line = 0;
  int column = 0;
  std::string message;
  std::vector<std::string> notes;
};

/// The outcome of linting one program.
class LintReport {
 public:
  void Add(Diagnostic diagnostic) {
    diagnostics_.push_back(std::move(diagnostic));
  }
  void Add(LintCode code, Severity severity, int line, int column,
           std::string message, std::vector<std::string> notes = {});

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  size_t errors() const;
  size_t warnings() const;
  bool empty() const { return diagnostics_.empty(); }
  /// True iff the program may be evaluated: no error-severity findings.
  bool ok() const { return errors() == 0; }

  /// True iff any diagnostic carries `code`.
  bool Has(LintCode code) const;

  /// Human rendering, one "file:line:col: severity[PLxxx]: message"
  /// line per diagnostic, notes indented below. `file` prefixes every
  /// line; pass "<input>" or similar for non-file sources.
  std::string ToString(std::string_view file) const;

  /// JSON rendering:
  /// {"file":...,"errors":N,"warnings":N,"diagnostics":[
  ///   {"code":"PL005","severity":"error","line":3,"column":1,
  ///    "message":"...","notes":["..."]}, ...]}
  std::string ToJson(std::string_view file) const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Escapes `s` for inclusion in a JSON string literal (quotes not
/// included).
std::string JsonEscape(std::string_view s);

}  // namespace pathlog

#endif  // PATHLOG_LINT_DIAGNOSTIC_H_
