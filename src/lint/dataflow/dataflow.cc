#include "lint/dataflow/dataflow.h"

namespace pathlog {

std::vector<uint32_t> StronglyConnectedComponents(
    size_t num_nodes,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  // Adjacency lists.
  std::vector<std::vector<uint32_t>> adj(num_nodes);
  for (const auto& [from, to] : edges) {
    if (from < num_nodes && to < num_nodes) adj[from].push_back(to);
  }

  constexpr uint32_t kUnvisited = 0xffffffffu;
  std::vector<uint32_t> index(num_nodes, kUnvisited);
  std::vector<uint32_t> lowlink(num_nodes, 0);
  std::vector<char> on_stack(num_nodes, 0);
  std::vector<uint32_t> stack;
  std::vector<uint32_t> component(num_nodes, 0);
  uint32_t next_index = 0;
  uint32_t next_component = 0;

  // Explicit DFS frames: node + position in its adjacency list.
  struct Frame {
    uint32_t node;
    size_t edge;
  };
  std::vector<Frame> frames;

  for (uint32_t root = 0; root < num_nodes; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      uint32_t v = f.node;
      if (f.edge == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      bool descended = false;
      while (f.edge < adj[v].size()) {
        uint32_t w = adj[v][f.edge++];
        if (index[w] == kUnvisited) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w] && index[w] < lowlink[v]) lowlink[v] = index[w];
      }
      if (descended) continue;
      // v is finished: pop a component if v is a root.
      if (lowlink[v] == index[v]) {
        uint32_t w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          component[w] = next_component;
        } while (w != v);
        ++next_component;
      }
      frames.pop_back();
      if (!frames.empty()) {
        uint32_t parent = frames.back().node;
        if (lowlink[v] < lowlink[parent]) lowlink[parent] = lowlink[v];
      }
    }
  }
  return component;
}

}  // namespace pathlog
