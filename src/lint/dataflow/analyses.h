// The four semantic analyses built on the fixpoint engine
// (lint/dataflow/dataflow.h) and the abstract domains
// (lint/dataflow/domains.h). Each is an abstract interpretation of the
// program over the method dependency structure; together they produce
// the PL014-PL019 diagnostics and the planner hints
// (query/planner.h: PlannerHints).
//
//   type-flow     — least fixpoint of result sorts per method, seeded
//                   from fact values, signature result types and (for
//                   a Database) the store's extensional values, and
//                   propagated through rule heads. Two concrete sorts
//                   meeting on one method is PL014; so is a comparison
//                   guard whose receiver or argument can never be an
//                   integer. Per-rule interval meets over the guards
//                   (plus repeated scalar filters on one receiver)
//                   detect unsatisfiable bodies as PL015.
//
//   reachability  — least fixpoint of "can this method ever hold a
//                   tuple", seeded from facts, signatures and
//                   assume_defined; a rule fires only when every
//                   positive body method is live. Rules that can never
//                   fire *transitively* (every body method is defined
//                   somewhere, but only by other dead rules — deeper
//                   than PL011's syntactic check) are PL016. Methods
//                   proven empty feed PlannerHints.
//
//   termination   — object invention through head spine paths
//                   (eval/head_assert.h) combined with recursion can
//                   mint a fresh OID per iteration. When the head
//                   provably grants the invented object everything the
//                   body requires of the anchor variable, every round
//                   re-derives its own premise on a fresh object:
//                   guaranteed non-termination, PL017 (error). When the
//                   missing requirements are themselves derivable by
//                   rules coupled into the same dependency cycle, the
//                   invention is possibly unbounded: PL018 (warning).
//
//   adornment     — simulates the engine's body order
//                   (OrderLiteralsForSafety) and computes bound/free
//                   modes per literal. A positive literal that always
//                   runs with an unbound anchor and no ground or
//                   already-bound filter value falls off the inverted
//                   value->receiver indexes (PR 2) onto extent or
//                   universe scans; when an alternative admissible
//                   order avoids that, PL019 suggests it.

#ifndef PATHLOG_LINT_DATAFLOW_ANALYSES_H_
#define PATHLOG_LINT_DATAFLOW_ANALYSES_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/program.h"
#include "eval/head_assert.h"
#include "lint/dataflow/domains.h"
#include "lint/diagnostic.h"

namespace pathlog {

struct AnalysisOptions {
  /// Mirrors the engine option; kSkolemize turns head value paths into
  /// definitions (more invention sites, more object sorts).
  HeadValueMode head_value_mode = HeadValueMode::kRequireDefined;

  /// Methods with extensional facts outside the analysed program (a
  /// Database's store). They seed the reachability fixpoint live.
  std::set<std::string> assume_defined;

  /// Observed value sorts of those extensional methods; a method in
  /// assume_defined but absent here contributes no sort information.
  std::map<std::string, SortSet> extensional_sorts;

  /// Drop warning-severity findings (keeps PL017, the only error).
  bool errors_only = false;
};

/// Binding modes of one body literal at its position in the engine's
/// evaluation order.
struct LiteralMode {
  std::string literal;  ///< printed form
  bool negated = false;
  /// The literal's anchor (innermost base) is a name or an
  /// already-bound variable when the literal runs.
  bool anchor_bound = false;
  /// Some filter of the literal probes an index: a ground class, or a
  /// scalar/set value that is ground or already bound. anchor_bound
  /// implies driven (receiver-side probe).
  bool index_driven = false;
};

struct RuleAdornment {
  size_t rule_index = 0;  ///< into Program::rules (facts skipped)
  std::vector<LiteralMode> literals;  ///< in evaluation order
};

/// Everything the analyses computed, beyond the diagnostics: the
/// planner hook and the `--analyze` summary consume this.
struct AnalysisSummary {
  /// Least-fixpoint result sorts per method (methods never assigned a
  /// value are absent or kSortBottom).
  std::map<std::string, SortSet> method_sorts;
  /// Methods that can hold at least one tuple.
  std::set<std::string> live_methods;
  /// Methods mentioned by the program that provably never hold a
  /// tuple. Sound under any of the three evaluation strategies, so the
  /// planner may cost literals reading them as empty.
  std::set<std::string> empty_methods;
  /// Per-rule binding modes, engine order.
  std::vector<RuleAdornment> adornments;

  // Convergence counters (asserted on in tests/dataflow_test.cc).
  size_t sort_applications = 0;
  size_t live_applications = 0;
};

/// Runs all four analyses over `program`. Appends PL014-PL019 findings
/// to `report` (pass nullptr when only the summary is wanted).
AnalysisSummary AnalyzeProgram(const Program& program,
                               const AnalysisOptions& options,
                               LintReport* report);

}  // namespace pathlog

#endif  // PATHLOG_LINT_DATAFLOW_ANALYSES_H_
