// A generic monotone-fixpoint dataflow engine over the rule/method
// dependency structure of a PathLog program.
//
// The graph is bipartite in spirit: *nodes* are method symbols (the
// same node space as eval/dependency.h — index 0 is the wildcard,
// index 1 the hierarchy), *transfers* are rules. A transfer reads the
// abstract values of the nodes its rule reads and joins new
// information into the nodes its rule defines. The solver runs a
// worklist to the least fixpoint: a transfer is re-run whenever a node
// it reads changed.
//
// Domains are pluggable: any type with
//
//   struct Domain {
//     using Value = ...;                 // one abstract value per node
//     static Value Bottom();             // least element
//     static bool Join(Value* into, const Value& from);
//                                        // *into ⊔= from; true if grew
//   };
//
// Monotonicity is the domain's obligation (Join only ever grows a
// value); termination follows when the lattice has finite height. The
// solver additionally caps the total number of transfer applications
// at `kMaxApplications` so a buggy (non-monotone) domain degrades into
// a truncated — still sound for the analyses here, which only consume
// reached values — result instead of a hang.

#ifndef PATHLOG_LINT_DATAFLOW_DATAFLOW_H_
#define PATHLOG_LINT_DATAFLOW_DATAFLOW_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace pathlog {

/// Which nodes one transfer (rule) reads and defines. Node indexes are
/// caller-chosen; the solver only needs them dense-ish (it sizes its
/// value vector to the max index + 1).
struct TransferIO {
  std::vector<uint32_t> reads;
  std::vector<uint32_t> defines;
};

template <typename Domain>
class FixpointSolver {
 public:
  using Value = typename Domain::Value;

  FixpointSolver(size_t num_nodes, std::vector<TransferIO> transfers)
      : values_(num_nodes, Domain::Bottom()),
        transfers_(std::move(transfers)),
        readers_(num_nodes) {
    for (size_t t = 0; t < transfers_.size(); ++t) {
      for (uint32_t n : transfers_[t].reads) {
        if (n < readers_.size()) readers_[n].push_back(t);
      }
    }
  }

  size_t num_nodes() const { return values_.size(); }
  const Value& value(uint32_t node) const { return values_[node]; }
  const std::vector<Value>& values() const { return values_; }

  /// Joins `v` into a node outside any transfer (seeding from facts);
  /// callers do this before Solve().
  void Seed(uint32_t node, const Value& v) {
    if (node < values_.size()) Domain::Join(&values_[node], v);
  }

  /// Runs `transfer(t, solver)` for every transfer until no node
  /// changes. The callback reads node values via value() and writes
  /// via Update(); it is re-invoked for transfer `t` whenever a node
  /// in transfers[t].reads changed since its last run. Returns the
  /// number of transfer applications (for convergence tests).
  template <typename TransferFn>
  size_t Solve(TransferFn&& transfer) {
    std::deque<size_t> worklist;
    std::vector<char> queued(transfers_.size(), 1);
    for (size_t t = 0; t < transfers_.size(); ++t) worklist.push_back(t);

    size_t applications = 0;
    while (!worklist.empty() && applications < kMaxApplications) {
      size_t t = worklist.front();
      worklist.pop_front();
      queued[t] = 0;
      ++applications;

      changed_nodes_.clear();
      transfer(t, *this);
      for (uint32_t n : changed_nodes_) {
        for (size_t reader : readers_[n]) {
          if (!queued[reader]) {
            queued[reader] = 1;
            worklist.push_back(reader);
          }
        }
      }
    }
    return applications;
  }

  /// Joins `v` into `node`; records the change so dependent transfers
  /// re-run. Only meaningful from inside a Solve() callback.
  void Update(uint32_t node, const Value& v) {
    if (node >= values_.size()) return;
    if (Domain::Join(&values_[node], v)) changed_nodes_.push_back(node);
  }

  static constexpr size_t kMaxApplications = 1u << 20;

 private:
  std::vector<Value> values_;
  std::vector<TransferIO> transfers_;
  std::vector<std::vector<size_t>> readers_;  // node -> transfer indexes
  std::vector<uint32_t> changed_nodes_;
};

/// Strongly connected components of a directed graph, Tarjan's
/// algorithm (iterative, so deep rule chains cannot overflow the C++
/// stack). Returns a component id per node; ids are opaque labels —
/// two nodes share an id iff they lie on a common cycle. Used by the
/// termination analysis to decide whether an object-inventing rule
/// sits on a dependency cycle, and by the reachability analysis for
/// cycle grouping.
std::vector<uint32_t> StronglyConnectedComponents(
    size_t num_nodes, const std::vector<std::pair<uint32_t, uint32_t>>& edges);

}  // namespace pathlog

#endif  // PATHLOG_LINT_DATAFLOW_DATAFLOW_H_
