#include "lint/dataflow/analyses.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ast/analysis.h"
#include "ast/printer.h"
#include "base/strings.h"
#include "eval/dependency.h"
#include "eval/engine.h"
#include "lint/dataflow/dataflow.h"
#include "semantics/structure.h"
#include "store/object_store.h"

namespace pathlog {

namespace {

struct Span {
  int line = 0;
  int column = 0;
};

Span SpanOf(const Ref& t, Span fallback) {
  return t.line > 0 ? Span{t.line, t.column} : fallback;
}

const Ref& Deref(const Ref& t) {
  const Ref* p = &t;
  while (p->kind == RefKind::kParen) p = p->base.get();
  return *p;
}

bool IsGuardName(const std::string& name) {
  return name == kLtName || name == kLeqName || name == kGtName ||
         name == kGeqName || name == kIntEqName || name == kIntNeqName ||
         name == kBetweenName;
}

// ---- per-clause structure -------------------------------------------

/// One head assignment into a method: `value` is the asserted result
/// reference, or null when the head invents the result (a skolem).
struct Assignment {
  std::string method;
  const Ref* value = nullptr;
  Span span;
};

/// One comparison-guard application, head or body.
struct GuardUse {
  const Ref* receiver = nullptr;  ///< deref'd
  std::string guard;
  std::vector<const Ref*> args;  ///< deref'd
  Span span;
};

/// A grant (head) or requirement (body) on one receiver: a filter atom
/// or a bare path use.
struct Atom {
  FilterKind kind = FilterKind::kScalar;
  std::string name;  ///< method name; class name for kClass
  const Ref* value = nullptr;
  std::vector<const Ref*> elems;
  bool has_args = false;
  bool path_only = false;  ///< bare `X.m`: existence, no value constraint
  Span span;
};

/// How one positive body literal relates to the head's anchor variable.
enum class LiteralRole : uint8_t {
  kIgnoresAnchor,   ///< does not mention the anchor at all
  kAnchoredSimple,  ///< molecule/path directly over the anchor variable
  kAnchoredDeep,    ///< anchored on it through a longer chain
  kMentionsOnly,    ///< mentions it in a non-anchor position
};

struct BodyLiteralInfo {
  const Literal* lit = nullptr;
  Span span;
  /// Non-builtin method names this literal reads, with first spans.
  std::vector<std::pair<std::string, Span>> reads;
  bool reads_any = false;  ///< variable/complex method position
};

struct ClauseInfo {
  const Rule* rule = nullptr;
  size_t rule_index = 0;  ///< into Program::rules; SIZE_MAX for triggers
  bool is_trigger = false;
  Span span;

  // Sort flow.
  std::vector<Assignment> assignments;
  /// var -> methods whose result sorts flow into it (body bindings).
  std::map<std::string, std::vector<std::string>> var_sources;
  std::vector<GuardUse> guards;
  std::set<std::string> sort_reads;  ///< methods the transfer consults

  // Liveness.
  std::set<std::string> defines;  ///< head-defined methods
  bool defines_any = false;
  std::vector<BodyLiteralInfo> body;  ///< positive literals only

  // PL015: ground scalar bindings per (receiver key, method key).
  struct ScalarBinding {
    const Ref* value = nullptr;  ///< deref'd ground name or var
    Span span;
  };
  std::map<std::pair<std::string, std::string>, std::vector<ScalarBinding>>
      scalar_bindings;
};

/// Walks one clause and fills a ClauseInfo. Mirrors the traversal
/// split of eval/dependency.cc's Collector: head positions assert
/// (spine always creates, value positions create only under
/// kSkolemize), body positions read.
class ClauseWalker {
 public:
  ClauseWalker(ClauseInfo* out, bool skolemize)
      : out_(out), skolemize_(skolemize) {}

  void WalkHead(const Ref& t, Span fallback) { Head(t, /*spine=*/true, fallback); }

  void WalkBodyLiteral(const Literal& lit, Span fallback) {
    current_ = nullptr;
    if (!lit.negated) {
      out_->body.push_back({});
      current_ = &out_->body.back();
      current_->lit = &lit;
      current_->span = fallback;
    }
    if (lit.ref) Body(*lit.ref, fallback);
    current_ = nullptr;
  }

 private:
  void Head(const Ref& t, bool spine, Span fallback) {
    Span here = SpanOf(t, fallback);
    switch (t.kind) {
      case RefKind::kName:
      case RefKind::kVar:
        return;
      case RefKind::kParen:
        Head(*t.base, spine, here);
        return;
      case RefKind::kPath: {
        const Ref& m = Deref(*t.method);
        if (m.kind == RefKind::kName && m.name_kind == NameKind::kSymbol &&
            !IsBuiltinMethodName(m.text)) {
          if (spine || skolemize_) {
            out_->defines.insert(m.text);
            // The created result is a fresh object; spine inventions
            // are kept out of the sort conflict (the spine may equally
            // denote an existing value — see analyses.h), value-path
            // inventions under kSkolemize always produce objects.
            if (!spine && skolemize_) {
              out_->assignments.push_back({m.text, nullptr, here});
            }
          }
        } else if (m.kind != RefKind::kName) {
          out_->defines_any = true;
        }
        Head(*t.base, spine, here);
        for (const RefPtr& a : t.args) Head(*a, /*spine=*/false, here);
        return;
      }
      case RefKind::kMolecule:
        Head(*t.base, spine, here);
        for (const Filter& f : t.filters) {
          if (f.kind == FilterKind::kClass) {
            Head(*f.value, /*spine=*/false, here);
            continue;
          }
          const Ref& m = Deref(*f.method);
          std::string name;
          if (m.kind == RefKind::kName && m.name_kind == NameKind::kSymbol) {
            if (IsBuiltinMethodName(m.text)) {
              name.clear();
            } else {
              name = m.text;
              out_->defines.insert(name);
            }
          } else {
            out_->defines_any = true;
          }
          for (const RefPtr& a : f.args) Head(*a, /*spine=*/false, here);
          auto assign = [&](const Ref& value) {
            if (!name.empty()) {
              out_->assignments.push_back({name, &value, SpanOf(value, here)});
              RecordSortReads(value);
            }
            Head(value, /*spine=*/false, here);
          };
          switch (f.kind) {
            case FilterKind::kScalar:
              assign(*f.value);
              break;
            case FilterKind::kSetRef:
              // Referenced objects become members: their sorts flow in,
              // but the reference itself is a body-style read.
              if (!name.empty()) {
                out_->assignments.push_back(
                    {name, f.value.get(), SpanOf(*f.value, here)});
                RecordSortReads(*f.value);
              }
              Body(*f.value, here);
              break;
            case FilterKind::kSetEnum:
              for (const RefPtr& e : f.elems) assign(*e);
              break;
            case FilterKind::kClass:
              break;
          }
        }
        return;
    }
  }

  void Body(const Ref& t, Span fallback) {
    Span here = SpanOf(t, fallback);
    switch (t.kind) {
      case RefKind::kName:
      case RefKind::kVar:
        return;
      case RefKind::kPath: {
        const Ref& m = Deref(*t.method);
        if (m.kind == RefKind::kName && m.name_kind == NameKind::kSymbol) {
          if (IsGuardName(m.text)) {
            GuardUse g;
            g.receiver = &Deref(*t.base);
            g.guard = m.text;
            for (const RefPtr& a : t.args) g.args.push_back(&Deref(*a));
            g.span = here;
            out_->guards.push_back(std::move(g));
          } else if (!IsBuiltinMethodName(m.text)) {
            AddRead(m.text, here);
          }
        } else if (m.kind != RefKind::kName) {
          if (current_) current_->reads_any = true;
          Body(m, here);
        }
        Body(*t.base, here);
        for (const RefPtr& a : t.args) Body(*a, here);
        return;
      }
      case RefKind::kParen:
        Body(*t.base, here);
        return;
      case RefKind::kMolecule: {
        Body(*t.base, here);
        const std::string receiver_key = ReceiverKey(*t.base);
        for (const Filter& f : t.filters) {
          if (f.kind == FilterKind::kClass) {
            Body(*f.value, here);
            continue;
          }
          const Ref& m = Deref(*f.method);
          std::string name;
          if (m.kind == RefKind::kName && m.name_kind == NameKind::kSymbol) {
            if (!IsBuiltinMethodName(m.text)) {
              name = m.text;
              AddRead(name, here);
            }
          } else {
            if (current_) current_->reads_any = true;
            Body(m, here);
          }
          for (const RefPtr& a : f.args) Body(*a, here);
          // Variable bindings: the method's result sorts flow into the
          // bound variable.
          auto bind = [&](const Ref& value) {
            const Ref& v = Deref(value);
            if (!name.empty() && v.kind == RefKind::kVar && current_) {
              out_->var_sources[v.text].push_back(name);
              out_->sort_reads.insert(name);
            }
            Body(value, here);
          };
          switch (f.kind) {
            case FilterKind::kScalar: {
              bind(*f.value);
              if (!name.empty() && !receiver_key.empty() && current_) {
                const Ref& v = Deref(*f.value);
                if (v.kind == RefKind::kName || v.kind == RefKind::kVar) {
                  std::string mkey = name;
                  for (const RefPtr& a : f.args) mkey += "@" + ToString(*a);
                  out_->scalar_bindings[{receiver_key, mkey}].push_back(
                      {&v, SpanOf(v, here)});
                }
              }
              break;
            }
            case FilterKind::kSetRef:
              Body(*f.value, here);
              break;
            case FilterKind::kSetEnum:
              for (const RefPtr& e : f.elems) bind(*e);
              break;
            case FilterKind::kClass:
              break;
          }
        }
        return;
      }
    }
  }

  /// Anchor identity for the same-receiver scalar consistency check;
  /// empty when the receiver is not a plain variable or symbol.
  static std::string ReceiverKey(const Ref& base) {
    const Ref& d = Deref(base);
    if (d.kind == RefKind::kVar) return StrCat("V:", d.text);
    if (d.kind == RefKind::kName && d.name_kind == NameKind::kSymbol) {
      return StrCat("N:", d.text);
    }
    return "";
  }

  void AddRead(const std::string& name, Span span) {
    if (current_ == nullptr) return;  // negated literal: no liveness read
    for (const auto& [existing, s] : current_->reads) {
      if (existing == name) return;
    }
    current_->reads.push_back({name, span});
  }

  void RecordSortReads(const Ref& value) {
    const Ref& d = Deref(value);
    switch (d.kind) {
      case RefKind::kName:
      case RefKind::kVar:
        return;
      case RefKind::kPath: {
        const Ref& m = Deref(*d.method);
        if (m.kind == RefKind::kName && m.name_kind == NameKind::kSymbol &&
            !IsBuiltinMethodName(m.text)) {
          out_->sort_reads.insert(m.text);
        }
        RecordSortReads(*d.base);
        return;
      }
      case RefKind::kParen:
      case RefKind::kMolecule:
        if (d.base) RecordSortReads(*d.base);
        return;
    }
  }

  ClauseInfo* out_;
  bool skolemize_;
  BodyLiteralInfo* current_ = nullptr;
};

// ---- the analyzer ----------------------------------------------------

class Analyzer {
 public:
  Analyzer(const Program& program, const AnalysisOptions& options,
           LintReport* report)
      : program_(program), options_(options), report_(report) {}

  AnalysisSummary Run() {
    Collect();
    SortFlow();
    Reachability();
    Termination();
    Adornments();
    return std::move(summary_);
  }

 private:
  bool skolemize() const {
    return options_.head_value_mode == HeadValueMode::kSkolemize;
  }

  void Add(LintCode code, Severity severity, Span span, std::string message,
           std::vector<std::string> notes = {}) {
    if (report_ == nullptr) return;
    if (options_.errors_only && severity != Severity::kError) return;
    report_->Add(code, severity, span.line, span.column, std::move(message),
                 std::move(notes));
  }

  // ---- collection ----------------------------------------------------

  void Collect() {
    auto collect = [&](const Rule& rule, size_t index, bool is_trigger) {
      ClauseInfo info;
      info.rule = &rule;
      info.rule_index = index;
      info.is_trigger = is_trigger;
      info.span = {rule.line, rule.column};
      ClauseWalker walker(&info, skolemize());
      if (rule.head) walker.WalkHead(*rule.head, info.span);
      for (const Literal& lit : rule.body) {
        walker.WalkBodyLiteral(lit, Span{lit.line, lit.column});
      }
      clauses_.push_back(std::move(info));
    };
    for (size_t i = 0; i < program_.rules.size(); ++i) {
      collect(program_.rules[i], i, /*is_trigger=*/false);
    }
    for (const TriggerRule& trigger : program_.triggers) {
      collect(trigger.rule, static_cast<size_t>(-1), /*is_trigger=*/true);
    }

    // The method universe: everything defined, read, or known
    // extensionally.
    for (const ClauseInfo& c : clauses_) {
      for (const std::string& m : c.defines) Intern(m);
      for (const std::string& m : c.sort_reads) Intern(m);
      for (const BodyLiteralInfo& b : c.body) {
        for (const auto& [m, span] : b.reads) Intern(m);
      }
    }
    for (const std::string& m : options_.assume_defined) Intern(m);
    for (const auto& [m, sorts] : options_.extensional_sorts) Intern(m);
    for (const SignatureDecl& sig : program_.signatures) {
      const Ref* m = sig.method ? &Deref(*sig.method) : nullptr;
      if (m != nullptr && m->kind == RefKind::kName) {
        Intern(m->text);
        sig_methods_.insert(m->text);
      }
    }
  }

  uint32_t Intern(const std::string& name) {
    auto [it, inserted] = node_of_.try_emplace(
        name, static_cast<uint32_t>(node_names_.size()));
    if (inserted) node_names_.push_back(name);
    return it->second;
  }

  std::optional<uint32_t> NodeOf(const std::string& name) const {
    auto it = node_of_.find(name);
    if (it == node_of_.end()) return std::nullopt;
    return it->second;
  }

  // ---- analysis 1: type flow (PL014, PL015) --------------------------

  /// Sorts a signature result type contributes: the distinguished type
  /// names `integer` and `string` mean those sorts, everything else is
  /// a class of objects.
  static SortSet SigSort(const Ref& result_type) {
    const Ref& d = Deref(result_type);
    if (d.kind != RefKind::kName) return kSortBottom;
    if (d.name_kind != NameKind::kSymbol) return kSortBottom;
    if (d.text == "integer") return kSortInt;
    if (d.text == "string") return kSortString;
    return kSortObject;
  }

  SortSet ResolveSort(const Ref& value,
                      const std::map<std::string, SortSet>& var_sorts,
                      const std::vector<SortSet>& node_sorts) const {
    const Ref& d = Deref(value);
    switch (d.kind) {
      case RefKind::kName:
        switch (d.name_kind) {
          case NameKind::kInt: return kSortInt;
          case NameKind::kString: return kSortString;
          case NameKind::kSymbol: return kSortObject;
        }
        return kSortBottom;
      case RefKind::kVar: {
        auto it = var_sorts.find(d.text);
        return it == var_sorts.end() ? kSortBottom : it->second;
      }
      case RefKind::kPath: {
        const Ref& m = Deref(*d.method);
        if (m.kind == RefKind::kName && m.name_kind == NameKind::kSymbol) {
          if (m.text == kSelfMethodName) {
            return ResolveSort(*d.base, var_sorts, node_sorts);
          }
          if (IsGuardName(m.text)) return kSortInt;
          if (std::optional<uint32_t> n = NodeOf(m.text)) {
            return node_sorts[*n];
          }
          return kSortBottom;
        }
        return kSortTop;  // generic method: could be anything
      }
      case RefKind::kMolecule:
        return ResolveSort(*d.base, var_sorts, node_sorts);
      case RefKind::kParen:
        break;  // stripped by Deref
    }
    return kSortBottom;
  }

  std::map<std::string, SortSet> VarSorts(
      const ClauseInfo& c, const std::vector<SortSet>& node_sorts) const {
    std::map<std::string, SortSet> out;
    for (const auto& [var, sources] : c.var_sources) {
      SortSet s = kSortBottom;
      for (const std::string& m : sources) {
        if (std::optional<uint32_t> n = NodeOf(m)) {
          s = static_cast<SortSet>(s | node_sorts[*n]);
        }
      }
      out[var] = s;
    }
    return out;
  }

  void SortFlow() {
    std::vector<TransferIO> io(clauses_.size());
    for (size_t i = 0; i < clauses_.size(); ++i) {
      for (const std::string& m : clauses_[i].sort_reads) {
        io[i].reads.push_back(*NodeOf(m));
      }
      for (const Assignment& a : clauses_[i].assignments) {
        io[i].defines.push_back(*NodeOf(a.method));
      }
    }
    FixpointSolver<SortDomain> solver(node_names_.size(), std::move(io));
    for (const auto& [m, sorts] : options_.extensional_sorts) {
      solver.Seed(*NodeOf(m), sorts);
    }
    for (const SignatureDecl& sig : program_.signatures) {
      const Ref* m = sig.method ? &Deref(*sig.method) : nullptr;
      if (m == nullptr || m->kind != RefKind::kName) continue;
      if (sig.result_type) solver.Seed(*NodeOf(m->text), SigSort(*sig.result_type));
    }
    summary_.sort_applications =
        solver.Solve([&](size_t t, FixpointSolver<SortDomain>& s) {
          const ClauseInfo& c = clauses_[t];
          std::map<std::string, SortSet> vars = VarSorts(c, s.values());
          for (const Assignment& a : c.assignments) {
            SortSet v = a.value == nullptr
                            ? static_cast<SortSet>(kSortObject)
                            : ResolveSort(*a.value, vars, s.values());
            if (v != kSortBottom) s.Update(*NodeOf(a.method), v);
          }
        });

    for (size_t n = 0; n < node_names_.size(); ++n) {
      if (solver.value(static_cast<uint32_t>(n)) != kSortBottom) {
        summary_.method_sorts[node_names_[n]] =
            solver.value(static_cast<uint32_t>(n));
      }
    }

    ReportSortConflicts(solver.values());
    ReportGuardSorts(solver.values());
    ReportContradictions(solver.values());
  }

  // PL014, first form: one method, two concrete result sorts.
  void ReportSortConflicts(const std::vector<SortSet>& node_sorts) {
    // Witnesses per (method, sort): the first assignment whose resolved
    // sort contains the bit, or a seed description.
    struct Witness {
      Span span;
      std::string what;
    };
    std::map<std::pair<std::string, SortSet>, Witness> witnesses;
    for (const ClauseInfo& c : clauses_) {
      std::map<std::string, SortSet> vars = VarSorts(c, node_sorts);
      for (const Assignment& a : c.assignments) {
        SortSet v = a.value == nullptr
                        ? static_cast<SortSet>(kSortObject)
                        : ResolveSort(*a.value, vars, node_sorts);
        for (SortSet bit : {kSortInt, kSortString, kSortObject}) {
          if (!(v & bit)) continue;
          witnesses.try_emplace(
              {a.method, bit},
              Witness{a.span,
                      a.value == nullptr
                          ? "an invented (skolem) object"
                          : StrCat("`", ToString(*a.value), "`")});
        }
      }
    }
    for (size_t n = 0; n < node_names_.size(); ++n) {
      SortSet s = node_sorts[n];
      if (SortCount(s) < 2) continue;
      const std::string& method = node_names_[n];
      Span span{0, 0};
      std::vector<std::string> notes;
      for (SortSet bit : {kSortInt, kSortString, kSortObject}) {
        if (!(s & bit)) continue;
        auto it = witnesses.find({method, bit});
        if (it != witnesses.end()) {
          if (span.line == 0) span = it->second.span;
          notes.push_back(StrCat(SortSetName(bit), " from ", it->second.what,
                                 " (line ", it->second.span.line, ")"));
        } else if (auto ext = options_.extensional_sorts.find(method);
                   ext != options_.extensional_sorts.end() &&
                   (ext->second & bit)) {
          notes.push_back(
              StrCat(SortSetName(bit), " from extensional facts in the store"));
        } else {
          notes.push_back(StrCat(SortSetName(bit),
                                 " from a declared signature result type"));
        }
      }
      Add(LintCode::kSortConflict, Severity::kWarning, span,
          StrCat("method ", method, " derives results of conflicting sorts (",
                 SortSetName(s),
                 "); comparisons and joins over it are type-confused"),
          std::move(notes));
    }
  }

  // PL014, second form: a comparison guard whose receiver or argument
  // can never be an integer.
  void ReportGuardSorts(const std::vector<SortSet>& node_sorts) {
    for (const ClauseInfo& c : clauses_) {
      std::map<std::string, SortSet> vars = VarSorts(c, node_sorts);
      for (const GuardUse& g : c.guards) {
        auto check = [&](const Ref& r, const char* role) {
          SortSet s = ResolveSort(r, vars, node_sorts);
          if (s == kSortBottom || (s & kSortInt)) return false;
          Add(LintCode::kSortConflict, Severity::kWarning, g.span,
              StrCat("comparison guard ", g.guard, " can never hold: its ",
                     role, " `", ToString(r), "` is ", SortSetName(s),
                     "-sorted, and guards are partial identities on "
                     "integers"));
          return true;
        };
        if (check(*g.receiver, "receiver")) continue;
        for (const Ref* a : g.args) {
          if (check(*a, "argument")) break;
        }
      }
    }
  }

  // PL015: contradictory in-body constraints — the guard intervals on a
  // variable meet to nothing, or one scalar method is pinned to two
  // different ground values for the same receiver.
  void ReportContradictions(const std::vector<SortSet>& node_sorts) {
    for (const ClauseInfo& c : clauses_) {
      if (ReportClauseContradiction(c)) continue;
    }
    (void)node_sorts;
  }

  struct VarConstraint {
    IntInterval interval;
    std::vector<int64_t> neq;
    bool guarded = false;
    Span span{0, 0};
  };

  /// Guard semantics as interval meets; `interval` is narrowed.
  static void ApplyGuard(const GuardUse& g, int64_t y, int64_t y2,
                         VarConstraint* vc) {
    vc->guarded = true;
    if (vc->span.line == 0) vc->span = g.span;
    if (g.guard == kLtName) vc->interval.Meet(INT64_MIN, y - 1);
    else if (g.guard == kLeqName) vc->interval.Meet(INT64_MIN, y);
    else if (g.guard == kGtName) vc->interval.Meet(y + 1, INT64_MAX);
    else if (g.guard == kGeqName) vc->interval.Meet(y, INT64_MAX);
    else if (g.guard == kIntEqName) vc->interval.Meet(y, y);
    else if (g.guard == kIntNeqName) vc->neq.push_back(y);
    else if (g.guard == kBetweenName) vc->interval.Meet(y, y2);
  }

  bool ReportClauseContradiction(const ClauseInfo& c) {
    std::map<std::string, VarConstraint> constraints;
    for (const GuardUse& g : c.guards) {
      // Argument values must be ground integers to constrain anything.
      std::vector<int64_t> args;
      bool ground_args = true;
      for (const Ref* a : g.args) {
        if (a->kind == RefKind::kName && a->name_kind == NameKind::kInt) {
          args.push_back(a->int_value);
        } else {
          ground_args = false;
        }
      }
      size_t need = g.guard == kBetweenName ? 2 : 1;
      if (!ground_args || args.size() != need) continue;
      int64_t y = args[0];
      int64_t y2 = args.size() > 1 ? args[1] : args[0];

      if (g.receiver->kind == RefKind::kName) {
        if (g.receiver->name_kind != NameKind::kInt) continue;  // PL014's case
        VarConstraint ground;
        ground.interval.Meet(g.receiver->int_value, g.receiver->int_value);
        ApplyGuard(g, y, y2, &ground);
        bool neq_hit = false;
        for (int64_t p : ground.neq) {
          neq_hit |= p == g.receiver->int_value;
        }
        if (ground.interval.empty() || neq_hit) {
          Add(LintCode::kContradiction, Severity::kWarning, g.span,
              StrCat("guard ", g.guard, " on the constant ",
                     g.receiver->int_value,
                     " is statically false; this body can never be "
                     "satisfied"));
          return true;
        }
        continue;
      }
      if (g.receiver->kind == RefKind::kVar) {
        ApplyGuard(g, y, y2, &constraints[g.receiver->text]);
      }
    }

    for (auto& [var, vc] : constraints) {
      if (vc.interval.empty()) {
        Add(LintCode::kContradiction, Severity::kWarning, vc.span,
            StrCat("the comparison guards on ", var,
                   " are contradictory: together they require ", var,
                   " in ", vc.interval.ToString(),
                   " — this body can never be satisfied"));
        return true;
      }
    }

    // Scalar methods are single-valued per (receiver, args): two
    // distinct ground values, or a ground value outside the variable's
    // guard interval, are unsatisfiable.
    for (const auto& [key, bindings] : c.scalar_bindings) {
      const Ref* ground = nullptr;
      Span ground_span{0, 0};
      for (const ClauseInfo::ScalarBinding& b : bindings) {
        if (b.value->kind != RefKind::kName) continue;
        if (ground != nullptr && !RefEquals(*ground, *b.value)) {
          Add(LintCode::kContradiction, Severity::kWarning, b.span,
              StrCat("scalar method ", key.second,
                     " cannot yield both `", ToString(*ground), "` (line ",
                     ground_span.line, ") and `", ToString(*b.value),
                     "` for the same receiver; this body can never be "
                     "satisfied"));
          return true;
        }
        if (ground == nullptr) {
          ground = b.value;
          ground_span = b.span;
        }
      }
      if (ground == nullptr) continue;
      for (const ClauseInfo::ScalarBinding& b : bindings) {
        if (b.value->kind != RefKind::kVar) continue;
        auto it = constraints.find(b.value->text);
        if (it == constraints.end() || !it->second.guarded) continue;
        bool out = false;
        std::string why;
        if (ground->name_kind == NameKind::kInt) {
          int64_t v = ground->int_value;
          out = !it->second.interval.Contains(v);
          for (int64_t p : it->second.neq) out |= p == v;
          why = StrCat("the guards require ", b.value->text, " in ",
                       it->second.interval.ToString());
        } else {
          out = true;
          why = StrCat(b.value->text,
                       " is guarded as an integer but bound to `",
                       ToString(*ground), "`");
        }
        if (out) {
          Add(LintCode::kContradiction, Severity::kWarning, b.span,
              StrCat("variable ", b.value->text, " is bound to `",
                     ToString(*ground), "` through scalar method ",
                     key.second, ", but ", why,
                     " — this body can never be satisfied"));
          return true;
        }
      }
    }
    return false;
  }

  // ---- analysis 2: fixpoint reachability (PL016) ---------------------

  void Reachability() {
    // One extra pseudo-node: "some method holds a tuple", read by
    // wildcard-reading clauses and updated by every definition.
    const uint32_t any_node = static_cast<uint32_t>(node_names_.size());
    std::vector<TransferIO> io(clauses_.size());
    for (size_t i = 0; i < clauses_.size(); ++i) {
      if (clauses_[i].rule->IsFact()) continue;  // facts seed, not transfer
      for (const BodyLiteralInfo& b : clauses_[i].body) {
        for (const auto& [m, span] : b.reads) io[i].reads.push_back(*NodeOf(m));
        if (b.reads_any) io[i].reads.push_back(any_node);
      }
    }
    FixpointSolver<LiveDomain> solver(node_names_.size() + 1, std::move(io));

    auto seed = [&](const std::string& m) {
      solver.Seed(*NodeOf(m), true);
      solver.Seed(any_node, true);
    };
    for (const ClauseInfo& c : clauses_) {
      if (!c.rule->IsFact()) continue;
      for (const std::string& m : c.defines) seed(m);
      if (c.defines_any) {
        for (uint32_t n = 0; n < node_names_.size(); ++n) solver.Seed(n, true);
        solver.Seed(any_node, true);
      }
    }
    for (const std::string& m : options_.assume_defined) seed(m);
    for (const std::string& m : sig_methods_) seed(m);

    auto fires = [&](const ClauseInfo& c,
                     const FixpointSolver<LiveDomain>& s) {
      for (const BodyLiteralInfo& b : c.body) {
        for (const auto& [m, span] : b.reads) {
          if (!s.value(*NodeOf(m))) return false;
        }
        if (b.reads_any && !s.value(any_node)) return false;
      }
      return true;
    };
    summary_.live_applications =
        solver.Solve([&](size_t t, FixpointSolver<LiveDomain>& s) {
          const ClauseInfo& c = clauses_[t];
          if (c.rule->IsFact() || !fires(c, s)) return;
          for (const std::string& m : c.defines) {
            s.Update(*NodeOf(m), true);
            s.Update(any_node, true);
          }
          if (c.defines_any) {
            for (uint32_t n = 0; n < node_names_.size(); ++n) s.Update(n, true);
            s.Update(any_node, true);
          }
        });

    for (uint32_t n = 0; n < node_names_.size(); ++n) {
      (solver.value(n) ? summary_.live_methods : summary_.empty_methods)
          .insert(node_names_[n]);
    }

    // PL011 reports rules whose body reads a method *nothing* defines;
    // PL016 is the transitive extension, so suppress it where PL011
    // already spoke (or where a wildcard define silenced PL011).
    std::set<std::string> syntactic = options_.assume_defined;
    syntactic.insert(sig_methods_.begin(), sig_methods_.end());
    bool wildcard_define = false;
    for (const ClauseInfo& c : clauses_) {
      syntactic.insert(c.defines.begin(), c.defines.end());
      wildcard_define |= c.defines_any;
    }

    for (const ClauseInfo& c : clauses_) {
      if (c.rule->IsFact() || fires(c, solver)) continue;
      const std::string* dead = nullptr;
      Span dead_span = c.span;
      bool pl011_would_fire = false;
      for (const BodyLiteralInfo& b : c.body) {
        for (const auto& [m, span] : b.reads) {
          if (!wildcard_define && !syntactic.count(m)) pl011_would_fire = true;
          if (dead == nullptr && !solver.value(*NodeOf(m))) {
            dead = &m;
            dead_span = span;
          }
        }
      }
      if (dead == nullptr || pl011_would_fire) continue;
      std::vector<std::string> notes;
      for (const ClauseInfo& d : clauses_) {
        if (d.rule->IsFact() || !d.defines.count(*dead)) continue;
        notes.push_back(StrCat(
            "method ", *dead, " is defined only by `", ToString(*d.rule),
            "` (line ", d.span.line, "), which itself can never fire"));
        if (notes.size() >= 3) break;
      }
      Add(LintCode::kDeadRule, Severity::kWarning, dead_span,
          StrCat("this rule can never fire: no chain of rules starting "
                 "from the seeded facts and signatures ever derives a "
                 "tuple for method ", *dead),
          std::move(notes));
    }
  }

  // ---- analysis 3: termination / bounded invention (PL017, PL018) ----

  /// The head's invention structure: the outermost spine path, the
  /// grants attached to the invented object, and the anchor variable.
  struct Invention {
    std::string anchor;  ///< innermost spine base variable
    std::vector<std::string> spine_methods;
    std::vector<Atom> granted;
    std::set<std::string> granted_methods;
    std::set<std::string> granted_classes;
    Span span;
  };

  static std::optional<Atom> FilterAtom(const Filter& f, Span fallback) {
    Atom a;
    a.kind = f.kind;
    a.span = fallback;
    a.has_args = !f.args.empty();
    if (f.kind == FilterKind::kClass) {
      const Ref& c = Deref(*f.value);
      a.value = &c;
      if (c.kind == RefKind::kName && c.name_kind == NameKind::kSymbol) {
        a.name = c.text;
      }
      return a;
    }
    const Ref& m = Deref(*f.method);
    if (m.kind != RefKind::kName || m.name_kind != NameKind::kSymbol) {
      return std::nullopt;  // generic method position: not analysable
    }
    a.name = m.text;
    if (f.value) a.value = &Deref(*f.value);
    for (const RefPtr& e : f.elems) a.elems.push_back(&Deref(*e));
    return a;
  }

  std::optional<Invention> FindInvention(const Ref& head, Span fallback) const {
    Invention inv;
    const Ref* t = &Deref(head);
    // Outermost molecule layers: grants to the invented object.
    while (t->kind == RefKind::kMolecule) {
      for (const Filter& f : t->filters) {
        std::optional<Atom> a = FilterAtom(f, SpanOf(*t, fallback));
        if (!a) return std::nullopt;
        if (a->kind == FilterKind::kClass) {
          if (a->name.empty()) return std::nullopt;
          inv.granted_classes.insert(a->name);
        } else {
          inv.granted_methods.insert(a->name);
        }
        inv.granted.push_back(std::move(*a));
      }
      t = &Deref(*t->base);
    }
    if (t->kind != RefKind::kPath) return std::nullopt;  // no spine invention
    inv.span = SpanOf(*t, fallback);
    // The spine: paths (possibly through inner molecules) down to the
    // anchor. Inner molecule grants attach to inner skolems, which is
    // sound to ignore (fewer grants can only under-approve PL017).
    while (true) {
      if (t->kind == RefKind::kPath) {
        const Ref& m = Deref(*t->method);
        if (m.kind != RefKind::kName || m.name_kind != NameKind::kSymbol ||
            IsBuiltinMethodName(m.text)) {
          return std::nullopt;
        }
        inv.spine_methods.push_back(m.text);
        t = &Deref(*t->base);
      } else if (t->kind == RefKind::kMolecule) {
        t = &Deref(*t->base);
      } else {
        break;
      }
    }
    if (t->kind != RefKind::kVar) return std::nullopt;  // ground anchor: bounded
    inv.anchor = t->text;
    // A spine method that the head also grants would stop inventing on
    // the second round; require genuinely fresh paths.
    for (const std::string& m : inv.spine_methods) {
      if (inv.granted_methods.count(m)) return std::nullopt;
    }
    return inv;
  }

  /// Decomposes one positive literal relative to the anchor variable.
  struct AnchoredLiteral {
    LiteralRole role = LiteralRole::kIgnoresAnchor;
    std::vector<Atom> atoms;   ///< requirements (kAnchoredSimple only)
    bool guard_on_anchor = false;
    std::set<std::string> methods;  ///< all non-builtin methods mentioned
  };

  static void CollectMethods(const Ref& t, std::set<std::string>* out) {
    switch (t.kind) {
      case RefKind::kName:
      case RefKind::kVar:
        return;
      case RefKind::kParen:
        CollectMethods(*t.base, out);
        return;
      case RefKind::kPath: {
        const Ref& m = Deref(*t.method);
        if (m.kind == RefKind::kName && m.name_kind == NameKind::kSymbol) {
          if (!IsBuiltinMethodName(m.text)) out->insert(m.text);
        } else {
          CollectMethods(m, out);
        }
        CollectMethods(*t.base, out);
        for (const RefPtr& a : t.args) CollectMethods(*a, out);
        return;
      }
      case RefKind::kMolecule:
        CollectMethods(*t.base, out);
        for (const Filter& f : t.filters) {
          if (f.kind == FilterKind::kClass) {
            CollectMethods(*f.value, out);
            continue;
          }
          const Ref& m = Deref(*f.method);
          if (m.kind == RefKind::kName && m.name_kind == NameKind::kSymbol) {
            if (!IsBuiltinMethodName(m.text)) out->insert(m.text);
          } else {
            CollectMethods(m, out);
          }
          for (const RefPtr& a : f.args) CollectMethods(*a, out);
          if (f.value) CollectMethods(*f.value, out);
          for (const RefPtr& e : f.elems) CollectMethods(*e, out);
        }
        return;
    }
  }

  AnchoredLiteral Classify(const Literal& lit, const std::string& anchor,
                           Span fallback) const {
    AnchoredLiteral out;
    CollectMethods(*lit.ref, &out.methods);
    if (!VarsOf(*lit.ref).count(anchor)) {
      out.role = LiteralRole::kIgnoresAnchor;
      return out;
    }
    const Ref* t = &Deref(*lit.ref);
    // Innermost base of the chain.
    const Ref* base = t;
    while (base->kind == RefKind::kMolecule || base->kind == RefKind::kPath) {
      base = &Deref(*base->base);
    }
    if (base->kind != RefKind::kVar || base->text != anchor) {
      out.role = LiteralRole::kMentionsOnly;
      return out;
    }
    // One-level shapes: molecules stacked directly on the variable, or
    // a single path over it.
    if (t->kind == RefKind::kPath) {
      const Ref& inner = Deref(*t->base);
      if (inner.kind != RefKind::kVar) {
        out.role = LiteralRole::kAnchoredDeep;
        return out;
      }
      const Ref& m = Deref(*t->method);
      if (m.kind == RefKind::kName && m.name_kind == NameKind::kSymbol) {
        if (IsGuardName(m.text)) {
          out.guard_on_anchor = true;
          out.role = LiteralRole::kAnchoredSimple;
          return out;
        }
        if (!IsBuiltinMethodName(m.text)) {
          Atom a;
          a.path_only = true;
          a.name = m.text;
          a.span = SpanOf(*t, fallback);
          out.atoms.push_back(std::move(a));
          out.role = LiteralRole::kAnchoredSimple;
          return out;
        }
      }
      out.role = LiteralRole::kAnchoredDeep;
      return out;
    }
    while (t->kind == RefKind::kMolecule) {
      for (const Filter& f : t->filters) {
        std::optional<Atom> a = FilterAtom(f, SpanOf(*t, fallback));
        if (!a) {
          out.role = LiteralRole::kAnchoredDeep;
          return out;
        }
        out.atoms.push_back(std::move(*a));
      }
      t = &Deref(*t->base);
    }
    out.role = t->kind == RefKind::kVar ? LiteralRole::kAnchoredSimple
                                        : LiteralRole::kAnchoredDeep;
    return out;
  }

  /// Can a requirement value be met by a granted value, for the
  /// *invented* object of the next round? `forbidden_vars` are
  /// variables whose bindings the head does not control.
  static bool ValueMatches(const Ref* req, const Ref* granted,
                           const std::string& anchor,
                           const std::set<std::string>& forbidden_vars,
                           const std::map<std::string, VarConstraint>& guards) {
    if (req == nullptr || granted == nullptr) return false;
    if (VarsOf(*req).count(anchor)) return false;  // refers to the old anchor
    if (RefEquals(*req, *granted)) return true;
    // A requirement variable matches a ground grant when nothing else
    // constrains it: not used outside the anchored literals, and any
    // guards admit the granted value.
    if (req->kind != RefKind::kVar) return false;
    if (forbidden_vars.count(req->text)) return false;
    if (granted->kind != RefKind::kName) return false;
    auto it = guards.find(req->text);
    if (it != guards.end() && it->second.guarded) {
      if (granted->name_kind != NameKind::kInt) return false;
      if (!it->second.interval.Contains(granted->int_value)) return false;
      for (int64_t p : it->second.neq) {
        if (p == granted->int_value) return false;
      }
    }
    return true;
  }

  void Termination() {
    // SCC structure of the method dependency graph, wildcard coupling
    // included, shared across clauses.
    std::vector<Rule> all_rules;
    for (const ClauseInfo& c : clauses_) all_rules.push_back(*c.rule);
    ObjectStore dep_store;
    Result<DependencyGraph> graph =
        DependencyGraph::Build(all_rules, &dep_store, options_.head_value_mode);
    if (!graph.ok()) return;  // ill-formed clauses: structural lint reports

    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (const DependencyGraph::Edge& e : graph->edges()) {
      edges.push_back({e.from, e.to});
    }
    std::vector<uint32_t> scc =
        StronglyConnectedComponents(graph->num_nodes(), edges);
    std::map<std::string, uint32_t> dep_node;
    for (uint32_t n = 0; n < graph->num_nodes(); ++n) {
      dep_node[graph->NodeName(n)] = n;
    }

    // What the program can derive intensionally, for the PL018
    // derivability test.
    std::set<std::string> rule_defined, rule_classes;
    bool rule_defines_any = false, rule_any_class = false;
    for (const ClauseInfo& c : clauses_) {
      if (c.rule->IsFact()) continue;
      rule_defined.insert(c.defines.begin(), c.defines.end());
      rule_defines_any |= c.defines_any;
      CollectHeadClasses(*c.rule->head, &rule_classes, &rule_any_class);
    }

    for (const ClauseInfo& c : clauses_) {
      if (c.rule->IsFact() || !c.rule->head) continue;
      std::optional<Invention> inv = FindInvention(*c.rule->head, c.span);
      if (!inv) continue;
      AnalyzeInvention(c, *inv, scc, dep_node, rule_defined, rule_classes,
                       rule_defines_any, rule_any_class);
    }
  }

  static void CollectHeadClasses(const Ref& head, std::set<std::string>* out,
                                 bool* any_class) {
    switch (head.kind) {
      case RefKind::kName:
      case RefKind::kVar:
        return;
      case RefKind::kParen:
      case RefKind::kPath:
        if (head.base) CollectHeadClasses(*head.base, out, any_class);
        return;
      case RefKind::kMolecule:
        CollectHeadClasses(*head.base, out, any_class);
        for (const Filter& f : head.filters) {
          if (f.kind != FilterKind::kClass) continue;
          const Ref& cls = Deref(*f.value);
          if (cls.kind == RefKind::kName && cls.name_kind == NameKind::kSymbol) {
            out->insert(cls.text);
          } else {
            *any_class = true;
          }
        }
        return;
    }
  }

  void AnalyzeInvention(const ClauseInfo& c, const Invention& inv,
                        const std::vector<uint32_t>& scc,
                        const std::map<std::string, uint32_t>& dep_node,
                        const std::set<std::string>& rule_defined,
                        const std::set<std::string>& rule_classes,
                        bool rule_defines_any, bool rule_any_class) {
    // Per-variable guard constraints (for value matching).
    std::map<std::string, VarConstraint> guards;
    for (const GuardUse& g : c.guards) {
      std::vector<int64_t> args;
      for (const Ref* a : g.args) {
        if (a->kind == RefKind::kName && a->name_kind == NameKind::kInt) {
          args.push_back(a->int_value);
        }
      }
      if (g.receiver->kind != RefKind::kVar) continue;
      size_t need = g.guard == kBetweenName ? 2 : 1;
      VarConstraint& vc = guards[g.receiver->text];
      if (args.size() == need) {
        ApplyGuard(g, args[0], args.size() > 1 ? args[1] : args[0], &vc);
      } else {
        vc.guarded = true;  // unknown bound: be conservative
        vc.interval.Meet(1, 0);  // empty: nothing provably matches
      }
    }

    // Classify every positive literal; collect the variables that the
    // non-anchored parts of the body constrain.
    std::vector<std::pair<const Literal*, AnchoredLiteral>> anchored;
    std::set<std::string> forbidden_vars;
    bool provable = true;          // PL017 still possible
    bool blocked = false;          // re-entry provably impossible
    std::set<std::string> outside_methods;  // PL018 candidates from
                                            // non-anchored mentions
    size_t anchored_count = 0;
    for (const Literal& lit : c.rule->body) {
      if (!lit.ref) return;
      Span lspan{lit.line, lit.column};
      AnchoredLiteral al = Classify(lit, inv.anchor, lspan);
      if (lit.negated) {
        if (al.role == LiteralRole::kIgnoresAnchor) continue;
        // A negated literal over the anchor is satisfied by a fresh
        // object exactly when it cannot touch anything granted.
        bool disjoint = al.role == LiteralRole::kAnchoredSimple;
        for (const Atom& a : al.atoms) {
          if (a.kind == FilterKind::kClass
                  ? inv.granted_classes.count(a.name) > 0
                  : inv.granted_methods.count(a.name) > 0) {
            disjoint = false;
          }
        }
        if (!disjoint) provable = false;
        continue;
      }
      switch (al.role) {
        case LiteralRole::kIgnoresAnchor:
          for (const std::string& v : VarsOf(*lit.ref)) {
            forbidden_vars.insert(v);
          }
          continue;
        case LiteralRole::kAnchoredSimple:
          if (al.guard_on_anchor) {
            // Fresh skolems are not integers: the loop cannot close.
            blocked = true;
            continue;
          }
          ++anchored_count;
          anchored.push_back({&lit, std::move(al)});
          continue;
        case LiteralRole::kAnchoredDeep:
        case LiteralRole::kMentionsOnly:
          provable = false;
          outside_methods.insert(al.methods.begin(), al.methods.end());
          continue;
      }
    }
    if (blocked || anchored_count == 0) return;

    // Match every requirement against the grants.
    std::vector<Atom> missing;
    bool value_uncertain = false;
    for (const auto& [lit, al] : anchored) {
      for (const Atom& req : al.atoms) {
        if (req.kind == FilterKind::kClass) {
          if (!req.name.empty() && inv.granted_classes.count(req.name)) {
            continue;
          }
          missing.push_back(req);
          continue;
        }
        if (req.path_only) {
          if (inv.granted_methods.count(req.name)) continue;
          missing.push_back(req);
          continue;
        }
        if (!inv.granted_methods.count(req.name)) {
          missing.push_back(req);
          continue;
        }
        // The method is granted: does the value provably match?
        bool matched = false;
        for (const Atom& g : inv.granted) {
          if (g.kind == FilterKind::kClass || g.name != req.name) continue;
          if (g.has_args || req.has_args) continue;
          if (req.kind == FilterKind::kScalar &&
              g.kind == FilterKind::kScalar) {
            matched |= ValueMatches(req.value, g.value, inv.anchor,
                                    forbidden_vars, guards);
          } else if (req.kind == FilterKind::kSetEnum &&
                     g.kind == FilterKind::kSetEnum) {
            bool all = true;
            for (const Ref* e : req.elems) {
              bool one = false;
              for (const Ref* ge : g.elems) {
                one |= ValueMatches(e, ge, inv.anchor, forbidden_vars, guards);
              }
              all &= one;
            }
            matched |= all;
          }
        }
        if (!matched) value_uncertain = true;
      }
    }

    const std::string& mint = inv.spine_methods.front();
    if (provable && missing.empty() && !value_uncertain &&
        outside_methods.empty()) {
      std::vector<std::string> notes;
      notes.push_back(StrCat(
          "the head grants the invented object ", DescribeGrants(inv),
          ", which satisfies everything the body requires of ", inv.anchor));
      notes.push_back(StrCat(
          "each invented object re-enters the rule as ", inv.anchor,
          " and mints another through method ", mint,
          "; add a bounding guard or restrict the anchor to a base class"));
      Add(LintCode::kNonTermination, Severity::kError, inv.span,
          StrCat("materialisation of this ",
                 c.is_trigger ? "trigger" : "rule",
                 " cannot terminate: it invents a fresh object through "
                 "method ", mint, " for every binding of ", inv.anchor,
                 " and re-derives its own premise for the new object"),
          std::move(notes));
      return;
    }

    // Not self-sustaining. Possibly unbounded when every missing
    // requirement is derivable by rules coupled into the same
    // dependency cycle.
    std::set<std::string> needed(outside_methods);
    for (const Atom& a : missing) {
      if (a.kind == FilterKind::kClass) {
        if (a.name.empty()) return;
        if (!rule_any_class && !rule_classes.count(a.name)) return;
      } else {
        needed.insert(a.name);
      }
    }
    if (needed.empty() && missing.empty()) return;  // only value mismatches
    auto coupled = [&](const std::string& m) {
      auto mn = dep_node.find(m);
      if (mn == dep_node.end()) return false;
      for (const std::string& d : c.defines) {
        auto dn = dep_node.find(d);
        if (dn != dep_node.end() && scc[dn->second] == scc[mn->second]) {
          return true;
        }
      }
      return false;
    };
    for (const std::string& m : needed) {
      if (!rule_defines_any && !rule_defined.count(m)) return;
      if (!coupled(m) && !rule_defines_any) return;
    }

    std::vector<std::string> notes;
    notes.push_back(StrCat("the head grants the invented object ",
                           DescribeGrants(inv)));
    std::string need_list;
    for (const Atom& a : missing) {
      if (!need_list.empty()) need_list += ", ";
      need_list += a.kind == FilterKind::kClass ? StrCat(": ", a.name) : a.name;
    }
    for (const std::string& m : needed) {
      if (missing.empty() || !need_list.empty()) {
        if (need_list.find(m) != std::string::npos) continue;
      }
      if (!need_list.empty()) need_list += ", ";
      need_list += m;
    }
    notes.push_back(StrCat(
        "re-entry additionally needs { ", need_list,
        " }, which other rules in the same dependency cycle can derive "
        "for the invented objects"));
    notes.push_back(
        "if they ever do, every round invents another object; consider a "
        "bounding guard, or verify the cycle cannot reach the skolems");
    Add(LintCode::kUnboundedInvention, Severity::kWarning, inv.span,
        StrCat("recursive object invention through method ", mint,
               " may be unbounded: the invented objects can re-enter "
               "this ", c.is_trigger ? "trigger" : "rule",
               " through the rule cycle"),
        std::move(notes));
  }

  static std::string DescribeGrants(const Invention& inv) {
    if (inv.granted.empty()) return "nothing";
    std::string out = "{ ";
    for (size_t i = 0; i < inv.granted.size(); ++i) {
      if (i > 0) out += "; ";
      const Atom& a = inv.granted[i];
      if (a.kind == FilterKind::kClass) {
        out += StrCat(": ", a.name);
      } else if (a.kind == FilterKind::kScalar && a.value != nullptr) {
        out += StrCat(a.name, "->", ToString(*a.value));
      } else {
        out += a.name;
      }
    }
    return out + " }";
  }

  // ---- analysis 4: adornments (PL019) --------------------------------

  /// True when the literal, evaluated with `bound` variables, probes an
  /// index: bound/ground anchor, ground class, or a ground/bound filter
  /// value on a simple method.
  static void Modes(const Ref& t, const std::set<std::string>& bound,
                    bool* anchor_bound, bool* index_driven) {
    const Ref& d = Deref(t);
    // The anchor: innermost base of the chain.
    const Ref* base = &d;
    while (base->kind == RefKind::kMolecule || base->kind == RefKind::kPath) {
      base = &Deref(*base->base);
    }
    *anchor_bound = base->kind == RefKind::kName ||
                    (base->kind == RefKind::kVar && bound.count(base->text));
    if (*anchor_bound) {
      *index_driven = true;
      return;
    }
    auto value_known = [&](const Ref& v) {
      const Ref& dv = Deref(v);
      if (dv.kind == RefKind::kName) return true;
      if (dv.kind == RefKind::kVar) return bound.count(dv.text) > 0;
      // A composite value: known when all its variables are bound.
      for (const std::string& var : VarsOf(dv)) {
        if (!bound.count(var)) return false;
      }
      return true;
    };
    // Molecule layers along the chain can drive the enumeration.
    for (const Ref* m = &d; m->kind == RefKind::kMolecule ||
                            m->kind == RefKind::kPath;
         m = &Deref(*m->base)) {
      if (m->kind != RefKind::kMolecule) continue;
      for (const Filter& f : m->filters) {
        if (f.kind == FilterKind::kClass) {
          const Ref& cls = Deref(*f.value);
          if (cls.kind == RefKind::kName) {
            *index_driven = true;
            return;
          }
          continue;
        }
        const Ref& method = Deref(*f.method);
        bool guard = method.kind == RefKind::kName &&
                     method.name_kind == NameKind::kSymbol &&
                     IsGuardName(method.text);
        if (guard) continue;  // guards have no extent to probe
        switch (f.kind) {
          case FilterKind::kScalar:
            if (value_known(*f.value)) {
              *index_driven = true;
              return;
            }
            break;
          case FilterKind::kSetRef:
            if (value_known(*f.value)) {
              *index_driven = true;
              return;
            }
            break;
          case FilterKind::kSetEnum:
            for (const RefPtr& e : f.elems) {
              if (value_known(*e)) {
                *index_driven = true;
                return;
              }
            }
            break;
          case FilterKind::kClass:
            break;
        }
      }
    }
  }

  void Adornments() {
    for (const ClauseInfo& c : clauses_) {
      if (c.rule->IsFact() || c.is_trigger) continue;
      std::vector<Literal> engine_order = c.rule->body;
      if (!OrderLiteralsForSafety(&engine_order, nullptr).ok()) continue;

      RuleAdornment ad;
      ad.rule_index = c.rule_index;
      std::set<std::string> bound;
      size_t engine_scans = 0;
      Span first_scan{0, 0};
      std::string first_scan_text;
      for (const Literal& lit : engine_order) {
        LiteralMode mode;
        mode.literal = ToString(lit);
        mode.negated = lit.negated;
        Modes(*lit.ref, bound, &mode.anchor_bound, &mode.index_driven);
        if (!lit.negated && !mode.index_driven) {
          ++engine_scans;
          if (first_scan.line == 0) {
            first_scan = SpanOf(*lit.ref, Span{lit.line, lit.column});
            first_scan_text = mode.literal;
          }
        }
        if (!lit.negated) {
          for (const std::string& v : VarsOf(*lit.ref)) bound.insert(v);
        }
        ad.literals.push_back(std::move(mode));
      }
      summary_.adornments.push_back(std::move(ad));
      if (engine_scans == 0) continue;

      // Is there an admissible order with fewer unbound-target scans?
      std::vector<Literal> better;
      size_t better_scans = GreedyOrder(c.rule->body, &better);
      if (better_scans >= engine_scans) continue;

      std::string suggestion;
      for (size_t i = 0; i < better.size(); ++i) {
        if (i > 0) suggestion += ", ";
        suggestion += ToString(better[i]);
      }
      Add(LintCode::kUnboundTarget, Severity::kWarning, first_scan,
          StrCat("this rule always evaluates `", first_scan_text,
                 "` with an unbound target: no anchor, class, or filter "
                 "value is bound when it runs, so it scans instead of "
                 "probing the inverted value->receiver indexes"),
          {StrCat("an admissible order avoids the scan: ", suggestion),
           "rule bodies follow safety order only; the cost-based planner "
           "hook (DatabaseOptions::use_analysis_hints) and queries reorder "
           "automatically"});
    }
  }

  /// Greedy admissible order preferring index-driven literals; returns
  /// the number of positive literals that still evaluate undriven.
  static size_t GreedyOrder(const std::vector<Literal>& body,
                            std::vector<Literal>* out) {
    std::vector<Literal> remaining = body;
    std::set<std::string> bound;
    std::map<std::string, int> occurrences;
    for (const Literal& lit : remaining) {
      for (const std::string& v : VarsOf(*lit.ref)) ++occurrences[v];
    }
    auto admissible = [&](const Literal& lit) {
      std::set<std::string> need;
      if (lit.negated) {
        for (const std::string& v : VarsOf(*lit.ref)) {
          if (occurrences[v] > 1) need.insert(v);
        }
      } else {
        need = SetRefValueVars(*lit.ref);
      }
      for (const std::string& v : need) {
        if (!bound.count(v)) return false;
      }
      return true;
    };
    size_t scans = 0;
    while (!remaining.empty()) {
      size_t pick = remaining.size();
      bool pick_driven = false;
      for (size_t i = 0; i < remaining.size(); ++i) {
        if (!admissible(remaining[i])) continue;
        bool anchor_bound = false, driven = false;
        Modes(*remaining[i].ref, bound, &anchor_bound, &driven);
        if (remaining[i].negated) driven = true;  // tests scan nothing new
        if (pick == remaining.size() || (driven && !pick_driven)) {
          pick = i;
          pick_driven = driven;
          if (driven) break;
        }
      }
      if (pick == remaining.size()) {
        out->clear();
        return body.size();  // unorderable (reported as PL005 elsewhere)
      }
      if (!pick_driven && !remaining[pick].negated) ++scans;
      if (!remaining[pick].negated) {
        for (const std::string& v : VarsOf(*remaining[pick].ref)) {
          bound.insert(v);
        }
      }
      out->push_back(remaining[pick]);
      remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick));
    }
    return scans;
  }

  const Program& program_;
  const AnalysisOptions& options_;
  LintReport* report_;
  AnalysisSummary summary_;

  std::vector<ClauseInfo> clauses_;
  std::map<std::string, uint32_t> node_of_;
  std::vector<std::string> node_names_;
  std::set<std::string> sig_methods_;
};

}  // namespace

AnalysisSummary AnalyzeProgram(const Program& program,
                               const AnalysisOptions& options,
                               LintReport* report) {
  Analyzer analyzer(program, options, report);
  return analyzer.Run();
}

}  // namespace pathlog
