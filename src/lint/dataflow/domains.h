// Abstract domains for the semantic analyses (lint/dataflow/analyses.h).
//
// SortDomain — a powerset lattice over the three concrete value sorts
// a PathLog name can have: integer, string, or object (symbol / oid,
// including virtual objects). ⊥ is the empty set ("no value ever
// observed"), ⊤ is all three; a set with two or more concrete sorts
// witnesses a sort conflict (PL014). The powerset representation —
// rather than a flat int/string/oid/⊤ diamond — keeps *which* sorts
// met, so the diagnostic can say "integer and string" instead of ⊤.
//
// LiveDomain — the two-point lattice for fixpoint reachability
// (PL016): can this method ever hold a tuple, starting from the
// seeded facts?
//
// IntInterval — a non-relational interval for the in-body
// contradiction check (PL015): the conjunction of comparison guards
// (`lt`/`leq`/`gt`/`geq`/`intEq`/`between`) on one variable narrows an
// interval; an empty interval means the body is unsatisfiable. Used
// per-rule (meet direction), not by the fixpoint solver.

#ifndef PATHLOG_LINT_DATAFLOW_DOMAINS_H_
#define PATHLOG_LINT_DATAFLOW_DOMAINS_H_

#include <cstdint>
#include <limits>
#include <string>

namespace pathlog {

/// Bitmask of concrete sorts.
enum SortBit : uint8_t {
  kSortInt = 1u << 0,
  kSortString = 1u << 1,
  kSortObject = 1u << 2,
};

using SortSet = uint8_t;

inline constexpr SortSet kSortBottom = 0;
inline constexpr SortSet kSortTop = kSortInt | kSortString | kSortObject;

/// Number of concrete sorts in the set.
int SortCount(SortSet s);

/// "integer", "string", "object", or a "+"-joined list ("integer+string");
/// "unknown" for ⊥.
std::string SortSetName(SortSet s);

struct SortDomain {
  using Value = SortSet;
  static Value Bottom() { return kSortBottom; }
  static bool Join(Value* into, const Value& from) {
    Value before = *into;
    *into = static_cast<Value>(*into | from);
    return *into != before;
  }
};

struct LiveDomain {
  /// 0 = dead, 1 = live. Not `bool`: the solver keeps a
  /// std::vector<Value>, and vector<bool>'s proxy references cannot be
  /// passed to Join.
  using Value = uint8_t;
  static Value Bottom() { return 0; }
  static bool Join(Value* into, const Value& from) {
    if (*into || !from) return false;
    *into = 1;
    return true;
  }
};

/// A closed integer interval [lo, hi]; empty when lo > hi. Meet
/// (intersection) direction only.
struct IntInterval {
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();

  bool empty() const { return lo > hi; }
  bool Contains(int64_t v) const { return lo <= v && v <= hi; }

  /// Intersects with [other_lo, other_hi] in place.
  void Meet(int64_t other_lo, int64_t other_hi) {
    if (other_lo > lo) lo = other_lo;
    if (other_hi < hi) hi = other_hi;
  }

  /// Renders as "[lo, hi]" with infinities elided ("[5, +inf)").
  std::string ToString() const;
};

}  // namespace pathlog

#endif  // PATHLOG_LINT_DATAFLOW_DOMAINS_H_
