#include "lint/dataflow/domains.h"

#include "base/strings.h"

namespace pathlog {

int SortCount(SortSet s) {
  int n = 0;
  for (SortSet bit : {kSortInt, kSortString, kSortObject}) {
    if (s & bit) ++n;
  }
  return n;
}

std::string SortSetName(SortSet s) {
  if (s == kSortBottom) return "unknown";
  std::string out;
  auto add = [&](SortSet bit, const char* name) {
    if (!(s & bit)) return;
    if (!out.empty()) out += "+";
    out += name;
  };
  add(kSortInt, "integer");
  add(kSortString, "string");
  add(kSortObject, "object");
  return out;
}

std::string IntInterval::ToString() const {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  if (empty()) return "(empty)";
  std::string out = lo == kMin ? "(-inf" : StrCat("[", lo);
  out += ", ";
  out += hi == kMax ? "+inf)" : StrCat(hi, "]");
  return out;
}

}  // namespace pathlog
