#include "lint/diagnostic.h"

#include "base/strings.h"

namespace pathlog {

std::string LintCodeName(LintCode code) {
  int n = static_cast<int>(code);
  return StrCat("PL", n < 100 ? "0" : "", n < 10 ? "0" : "", n);
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "note";
}

void LintReport::Add(LintCode code, Severity severity, int line, int column,
                     std::string message, std::vector<std::string> notes) {
  diagnostics_.push_back(Diagnostic{code, severity, line, column,
                                    std::move(message), std::move(notes)});
}

size_t LintReport::errors() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

size_t LintReport::warnings() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

bool LintReport::Has(LintCode code) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string LintReport::ToString(std::string_view file) const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += StrCat(file, ":", d.line, ":", d.column, ": ",
                  SeverityName(d.severity), "[", LintCodeName(d.code), "]: ",
                  d.message, "\n");
    for (const std::string& note : d.notes) {
      out += StrCat("    note: ", note, "\n");
    }
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string LintReport::ToJson(std::string_view file) const {
  std::string out = StrCat("{\"file\":\"", JsonEscape(file),
                           "\",\"errors\":", errors(),
                           ",\"warnings\":", warnings(), ",\"diagnostics\":[");
  for (size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i > 0) out += ",";
    out += StrCat("{\"code\":\"", LintCodeName(d.code), "\",\"severity\":\"",
                  SeverityName(d.severity), "\",\"line\":", d.line,
                  ",\"column\":", d.column, ",\"message\":\"",
                  JsonEscape(d.message), "\",\"notes\":[");
    for (size_t j = 0; j < d.notes.size(); ++j) {
      if (j > 0) out += ",";
      out += StrCat("\"", JsonEscape(d.notes[j]), "\"");
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace pathlog
