#include "lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <vector>

#include "ast/analysis.h"
#include "ast/printer.h"
#include "base/strings.h"
#include "eval/dependency.h"
#include "eval/engine.h"
#include "eval/stratify.h"
#include "lint/dataflow/analyses.h"
#include "parser/parser.h"
#include "semantics/structure.h"
#include "store/object_store.h"

namespace pathlog {

namespace {

struct Span {
  int line = 0;
  int column = 0;
};

Span SpanOf(const Ref& t, Span fallback) {
  return t.line > 0 ? Span{t.line, t.column} : fallback;
}

const Ref* UnwrapParens(const Ref* t) {
  while (t->kind == RefKind::kParen) t = t->base.get();
  return t;
}

// ---- PL002: locating an ill-formed reference ------------------------

struct IllFormedSite {
  Span span;
  std::string message;
};

IllFormedSite LocateIllFormed(const Ref& t, Span fallback);

/// Descends into `child` if it is itself ill-formed; the caller keeps
/// the blame otherwise.
std::optional<IllFormedSite> Descend(const Ref& child, Span fallback) {
  if (CheckWellFormed(child).ok()) return std::nullopt;
  return LocateIllFormed(child, fallback);
}

/// Pre: CheckWellFormed(t) fails. Returns the smallest sub-reference
/// to blame, so the diagnostic points at the offending filter or
/// method rather than the whole clause.
IllFormedSite LocateIllFormed(const Ref& t, Span fallback) {
  Span here = SpanOf(t, fallback);
  switch (t.kind) {
    case RefKind::kName:
    case RefKind::kVar:
      break;  // leaves never fail
    case RefKind::kParen:
      if (auto site = Descend(*t.base, here)) return *site;
      break;
    case RefKind::kPath: {
      if (auto site = Descend(*t.base, here)) return *site;
      if (auto site = Descend(*t.method, here)) return *site;
      for (const RefPtr& a : t.args) {
        if (auto site = Descend(*a, here)) return *site;
      }
      // Sub-references are fine, so the path itself is at fault
      // (a non-simple method position): blame the method.
      return {SpanOf(*t.method, here), CheckWellFormed(t).message()};
    }
    case RefKind::kMolecule: {
      if (auto site = Descend(*t.base, here)) return *site;
      for (const Filter& f : t.filters) {
        // Probe each filter on its own to pin the offending one.
        RefPtr probe = Ref::Molecule(t.base, {f});
        Status st = CheckWellFormed(*probe);
        if (st.ok()) continue;
        const RefPtr& anchor =
            f.kind == FilterKind::kClass ? f.value : f.method;
        Span fspan = anchor ? SpanOf(*anchor, here) : here;
        std::vector<const RefPtr*> parts;
        if (f.method) parts.push_back(&f.method);
        for (const RefPtr& a : f.args) parts.push_back(&a);
        if (f.value) parts.push_back(&f.value);
        for (const RefPtr& e : f.elems) parts.push_back(&e);
        for (const RefPtr* part : parts) {
          if (auto site = Descend(**part, fspan)) return *site;
        }
        return {fspan, st.message()};
      }
      break;
    }
  }
  return {here, CheckWellFormed(t).message()};
}

// ---- method-use collection (PL008/PL009/PL011/PL012) ----------------

struct MethodUse {
  std::string name;
  bool set_use;   ///< `..m` path or `->>` filter (vs `.m` / `->`)
  bool defining;  ///< head position that asserts facts for the method
  Span span;
};

struct UseSink {
  std::vector<MethodUse> uses;
  /// A variable or complex reference at a defining (resp. reading)
  /// method position: the clause may define (read) *any* method.
  bool wildcard_define = false;
  bool wildcard_read = false;
};

/// Mirrors eval/dependency.cc's Collector, but records method *names*
/// with source spans and a defining/reading split instead of Oids.
class UseWalker {
 public:
  UseWalker(UseSink* sink, bool skolemize)
      : sink_(sink), skolemize_(skolemize) {}

  /// `create` is true on the head spine; value positions define only
  /// under kSkolemize (eval/head_assert.h).
  void Head(const Ref& t, bool create, Span fallback) {
    Span here = SpanOf(t, fallback);
    switch (t.kind) {
      case RefKind::kName:
      case RefKind::kVar:
        return;
      case RefKind::kParen:
        Head(*t.base, create, here);
        return;
      case RefKind::kPath:
        AddUse(*t.method, t.set_valued_path, create || skolemize_, here);
        Head(*t.base, create, here);
        for (const RefPtr& a : t.args) Head(*a, skolemize_, here);
        return;
      case RefKind::kMolecule:
        Head(*t.base, create, here);
        for (const Filter& f : t.filters) {
          if (f.kind == FilterKind::kClass) {
            Head(*f.value, skolemize_, here);
            continue;
          }
          AddUse(*f.method, f.kind != FilterKind::kScalar, true, here);
          for (const RefPtr& a : f.args) Head(*a, skolemize_, here);
          switch (f.kind) {
            case FilterKind::kScalar:
              Head(*f.value, skolemize_, here);
              break;
            case FilterKind::kSetRef:
              Body(*f.value, here);  // referenced, not asserted
              break;
            case FilterKind::kSetEnum:
              for (const RefPtr& e : f.elems) Head(*e, skolemize_, here);
              break;
            case FilterKind::kClass:
              break;
          }
        }
        return;
    }
  }

  void Body(const Ref& t, Span fallback) {
    Span here = SpanOf(t, fallback);
    switch (t.kind) {
      case RefKind::kName:
      case RefKind::kVar:
        return;
      case RefKind::kParen:
        Body(*t.base, here);
        return;
      case RefKind::kPath:
        AddUse(*t.method, t.set_valued_path, false, here);
        Body(*t.base, here);
        for (const RefPtr& a : t.args) Body(*a, here);
        return;
      case RefKind::kMolecule:
        Body(*t.base, here);
        for (const Filter& f : t.filters) {
          if (f.kind == FilterKind::kClass) {
            Body(*f.value, here);
            continue;
          }
          AddUse(*f.method, f.kind != FilterKind::kScalar, false, here);
          for (const RefPtr& a : f.args) Body(*a, here);
          if (f.value) Body(*f.value, here);
          for (const RefPtr& e : f.elems) Body(*e, here);
        }
        return;
    }
  }

 private:
  void AddUse(const Ref& m, bool set_use, bool defining, Span fallback) {
    const Ref* d = UnwrapParens(&m);
    if (d->kind == RefKind::kName) {
      if (d->name_kind == NameKind::kSymbol &&
          !IsBuiltinMethodName(d->text)) {
        sink_->uses.push_back(
            {d->text, set_use, defining, SpanOf(*d, fallback)});
      }
      return;
    }
    if (defining) {
      sink_->wildcard_define = true;
    } else {
      sink_->wildcard_read = true;
    }
    // A complex method reference (the generic `(M.tc)`) contains
    // method uses of its own.
    if (d->kind == RefKind::kPath || d->kind == RefKind::kMolecule) {
      if (defining) {
        Head(*d, /*create=*/true, fallback);
      } else {
        Body(*d, fallback);
      }
    }
  }

  UseSink* sink_;
  bool skolemize_;
};

/// Everything the linter gathers about one rule-like clause.
struct ClauseUses {
  UseSink head;
  std::vector<UseSink> body;  // parallel to the body literal vector
};

ClauseUses CollectUses(const Rule& rule, bool skolemize) {
  ClauseUses out;
  Span clause{rule.line, rule.column};
  if (rule.head) {
    UseWalker walker(&out.head, skolemize);
    walker.Head(*rule.head, /*create=*/true, clause);
  }
  for (const Literal& lit : rule.body) {
    UseSink sink;
    if (lit.ref) {
      UseWalker walker(&sink, skolemize);
      walker.Body(*lit.ref, Span{lit.line, lit.column});
    }
    out.body.push_back(std::move(sink));
  }
  return out;
}

// ---- the linter -----------------------------------------------------

struct SigInfo {
  bool scalar = false;
  bool set = false;
};

class LintPass {
 public:
  LintPass(const LintOptions& options, LintReport* report)
      : options_(options), report_(report) {}

  void Run(const Program& program) {
    CheckSignatureDecls(program.signatures);
    for (const Rule& rule : program.rules) {
      CheckRuleLike(rule, /*is_trigger=*/false);
    }
    for (const TriggerRule& trigger : program.triggers) {
      CheckRuleLike(trigger.rule, /*is_trigger=*/true);
    }
    for (const struct Query& query : program.queries) {
      CheckQuery(query);
    }
    CheckStratifiable(program.rules);
    if (!options_.errors_only) {
      CheckAgainstSignatures(program);
      CheckReachability(program);
    }
    if (options_.analyze) {
      AnalysisOptions analysis;
      analysis.head_value_mode = options_.head_value_mode;
      analysis.assume_defined = options_.assume_defined;
      analysis.extensional_sorts = options_.extensional_sorts;
      analysis.errors_only = options_.errors_only;
      AnalyzeProgram(program, analysis, report_);
    }
  }

 private:
  bool skolemize() const {
    return options_.head_value_mode == HeadValueMode::kSkolemize;
  }

  void Add(LintCode code, Severity severity, Span span, std::string message,
           std::vector<std::string> notes = {}) {
    if (options_.errors_only && severity != Severity::kError) return;
    report_->Add(code, severity, span.line, span.column, std::move(message),
                 std::move(notes));
  }

  // PL002 for bad declarations; fills sigs_ for the later checks.
  void CheckSignatureDecls(const std::vector<SignatureDecl>& decls) {
    for (const SignatureDecl& decl : decls) {
      Span span{decl.line, decl.column};
      bool usable = true;
      auto require_ground_name = [&](const RefPtr& r, const char* role) {
        const Ref* d = r ? UnwrapParens(r.get()) : nullptr;
        if (d == nullptr || d->kind != RefKind::kName) {
          Add(LintCode::kIllFormed, Severity::kError,
              r ? SpanOf(*r, span) : span,
              StrCat("signature ", role, " must be a ground name",
                     r ? StrCat(", got: ", ToString(*r)) : ""));
          usable = false;
        }
      };
      require_ground_name(decl.klass, "class");
      require_ground_name(decl.method, "method");
      require_ground_name(decl.result_type, "result type");
      for (const RefPtr& a : decl.arg_types) {
        require_ground_name(a, "argument type");
      }
      if (!usable) continue;
      SigInfo& info = sigs_[UnwrapParens(decl.method.get())->text];
      (decl.set_valued ? info.set : info.scalar) = true;
    }
  }

  // PL002/PL003/PL004/PL005/PL006/PL010/PL013 for one rule or trigger.
  void CheckRuleLike(const Rule& rule, bool is_trigger) {
    Span clause{rule.line, rule.column};
    if (!rule.head) {
      Add(LintCode::kIllFormed, Severity::kError, clause,
          "rule has no head");
      return;
    }
    Status head_wf = CheckWellFormed(*rule.head);
    if (!head_wf.ok()) {
      IllFormedSite site = LocateIllFormed(*rule.head, clause);
      Add(LintCode::kIllFormed, Severity::kError, site.span, site.message);
    } else if (IsSetValued(*rule.head)) {
      Add(LintCode::kSetValuedHead, Severity::kError,
          SpanOf(*rule.head, clause),
          StrCat("set-valued reference cannot be a rule head (its "
                 "denotation is not uniquely determined, paper "
                 "section 6): ",
                 ToString(*rule.head)));
    } else {
      const Ref* h = UnwrapParens(rule.head.get());
      if (h->kind == RefKind::kName || h->kind == RefKind::kVar) {
        Add(LintCode::kTrivialHead, Severity::kError,
            SpanOf(*rule.head, clause),
            StrCat("rule head asserts nothing; it must be a path or "
                   "molecule, got: ",
                   ToString(*rule.head)));
      }
    }
    for (const Literal& lit : rule.body) {
      Span lspan{lit.line, lit.column};
      if (!lit.ref) {
        Add(LintCode::kIllFormed, Severity::kError, lspan,
            "rule body contains an empty literal");
        continue;
      }
      if (!CheckWellFormed(*lit.ref).ok()) {
        IllFormedSite site = LocateIllFormed(*lit.ref, lspan);
        Add(LintCode::kIllFormed, Severity::kError, site.span, site.message);
      }
    }
    CheckSafety(rule.head.get(), rule.body, clause, rule.IsFact());
    CheckVariableHygiene(rule.head.get(), rule.body, clause);
    if (is_trigger) {
      if (rule.body.empty()) {
        Add(LintCode::kIllFormedTrigger, Severity::kError, clause,
            "a trigger needs an event literal (head <~ event, ...)");
      } else if (rule.body.front().negated) {
        Add(LintCode::kIllFormedTrigger, Severity::kError,
            Span{rule.body.front().line, rule.body.front().column},
            "the event literal of a trigger must be positive (facts are "
            "monotone; there is no deletion event)");
      }
    }
  }

  void CheckQuery(const struct Query& query) {
    Span clause{query.line, query.column};
    for (const Literal& lit : query.body) {
      Span lspan{lit.line, lit.column};
      if (!lit.ref) {
        Add(LintCode::kIllFormed, Severity::kError, lspan,
            "query contains an empty literal");
        continue;
      }
      if (!CheckWellFormed(*lit.ref).ok()) {
        IllFormedSite site = LocateIllFormed(*lit.ref, lspan);
        Add(LintCode::kIllFormed, Severity::kError, site.span, site.message);
      }
    }
    CheckSafety(nullptr, query.body, clause, /*is_fact=*/false);
    // No singleton check: one-off query variables are idiomatic.
    CheckNegationOnlyVars(nullptr, query.body, nullptr);
  }

  // PL005: unorderable conjunction, unbound head variables, non-ground
  // facts.
  void CheckSafety(const Ref* head, const std::vector<Literal>& body,
                   Span clause, bool is_fact) {
    for (const Literal& lit : body) {
      if (!lit.ref) return;  // already reported as PL002
    }
    std::vector<Literal> ordered = body;
    std::set<std::string> bound;
    Status st = OrderLiteralsForSafety(&ordered, &bound);
    if (!st.ok()) {
      Add(LintCode::kUnsafeRule, Severity::kError, clause, st.message());
      return;
    }
    if (head == nullptr) return;
    for (const std::string& v : VarsOf(*head)) {
      if (bound.count(v)) continue;
      Add(LintCode::kUnsafeRule, Severity::kError, SpanOf(*head, clause),
          is_fact
              ? StrCat("fact is not ground: variable ", v,
                       " has no binding occurrence")
              : StrCat("head variable ", v,
                       " is not bound by any positive body literal "
                       "(range restriction)"));
    }
  }

  // PL006 helper shared between rules and queries. `singleton_exempt`
  // (if non-null) receives the variables already reported, so the
  // singleton check can skip them.
  void CheckNegationOnlyVars(const Ref* head,
                             const std::vector<Literal>& body,
                             std::set<std::string>* singleton_exempt) {
    std::set<std::string> positive;
    if (head) CollectVars(*head, &positive);
    for (const Literal& lit : body) {
      if (!lit.negated && lit.ref) CollectVars(*lit.ref, &positive);
    }
    std::set<std::string> reported;
    for (const Literal& lit : body) {
      if (!lit.negated || !lit.ref) continue;
      for (const std::string& v : VarsOf(*lit.ref)) {
        if (positive.count(v) || reported.count(v)) continue;
        if (StartsWith(v, "_")) continue;
        reported.insert(v);
        Add(LintCode::kNegationOnlyVar, Severity::kWarning,
            Span{lit.line, lit.column},
            StrCat("variable ", v,
                   " occurs only under negation (existentially "
                   "quantified inside the `not`); rename it to _", v,
                   " if that is intended"));
      }
    }
    if (singleton_exempt) {
      singleton_exempt->insert(reported.begin(), reported.end());
    }
  }

  // PL006 + PL010 for one rule.
  void CheckVariableHygiene(const Ref* head,
                            const std::vector<Literal>& body, Span clause) {
    std::set<std::string> exempt;
    CheckNegationOnlyVars(head, body, &exempt);
    std::map<std::string, int> counts;
    if (head) CollectVarCounts(*head, &counts);
    for (const Literal& lit : body) {
      if (lit.ref) CollectVarCounts(*lit.ref, &counts);
    }
    for (const auto& [var, count] : counts) {
      if (count != 1 || StartsWith(var, "_") || exempt.count(var)) continue;
      Add(LintCode::kSingletonVar, Severity::kWarning, clause,
          StrCat("variable ", var,
                 " occurs only once in this rule; a singleton joins "
                 "nothing (use _", var, " to mark it intentional)"));
    }
  }

  // PL007 with the offending cycle spelled out.
  void CheckStratifiable(const std::vector<Rule>& rules) {
    ObjectStore store;
    Result<DependencyGraph> graph =
        DependencyGraph::Build(rules, &store, options_.head_value_mode);
    if (!graph.ok()) return;
    CycleExplanation cycle;
    Result<Stratification> strata = Stratify(*graph, rules.size(), &cycle);
    if (strata.ok()) return;

    std::vector<std::string> notes;
    Span span{0, 0};
    for (size_t i = 0; i < cycle.edges.size(); ++i) {
      const DependencyGraph::Edge& e = cycle.edges[i];
      std::string via;
      if (e.rule >= 0 && static_cast<size_t>(e.rule) < rules.size()) {
        const Rule& r = rules[static_cast<size_t>(e.rule)];
        if (span.line == 0 && r.line > 0) span = {r.line, r.column};
        via = StrCat("rule #", e.rule + 1, " (line ", r.line, "): ",
                     ToString(r));
      } else {
        via = "generic wildcard coupling (a variable or complex method "
              "position links all methods)";
      }
      if (i == 0) {
        notes.push_back(StrCat(
            "cycle closed by the needs-complete edge: deriving '",
            graph->NodeName(e.from), "' needs the *complete* result set of '",
            graph->NodeName(e.to),
            "' — a `->>` filter result or negated literal in ", via));
      } else {
        notes.push_back(StrCat("the cycle returns via '",
                               graph->NodeName(e.from), "' -> '",
                               graph->NodeName(e.to), "' in ", via));
      }
    }
    Add(LintCode::kNotStratifiable, Severity::kError, span,
        strata.status().message(), std::move(notes));
  }

  // PL008 / PL009 / PL012 against the declared signatures.
  void CheckAgainstSignatures(const Program& program) {
    if (sigs_.empty()) return;
    std::set<std::string> undeclared_read, undeclared_defined;
    std::set<std::string> flavour_reported;
    auto consider = [&](const MethodUse& use) {
      auto it = sigs_.find(use.name);
      if (it == sigs_.end()) {
        if (use.defining) {
          if (!undeclared_defined.insert(use.name).second) return;
          Add(LintCode::kUnsignedHeadPath, Severity::kWarning, use.span,
              StrCat("head defines objects through method ", use.name,
                     ", which no signature declares; virtual objects "
                     "should be signature-typed (section 6)"));
        } else {
          if (!undeclared_read.insert(use.name).second) return;
          Add(LintCode::kUndeclaredMethod, Severity::kWarning, use.span,
              StrCat("method ", use.name,
                     " is used but no signature declares it"));
        }
        return;
      }
      const SigInfo& info = it->second;
      if (use.set_use && !info.set) {
        if (flavour_reported.insert(StrCat(use.name, "/set")).second) {
          Add(LintCode::kFlavourMismatch, Severity::kWarning, use.span,
              StrCat("set-valued use of method ", use.name,
                     " but its signatures all declare a scalar (`=>`) "
                     "method"));
        }
      } else if (!use.set_use && !info.scalar) {
        if (flavour_reported.insert(StrCat(use.name, "/scalar")).second) {
          Add(LintCode::kFlavourMismatch, Severity::kWarning, use.span,
              StrCat("scalar use of method ", use.name,
                     " but its signatures all declare a set-valued "
                     "(`=>>`) method"));
        }
      }
    };
    auto consider_clause = [&](const Rule& rule) {
      ClauseUses uses = CollectUses(rule, skolemize());
      for (const MethodUse& use : uses.head.uses) consider(use);
      for (const UseSink& sink : uses.body) {
        for (const MethodUse& use : sink.uses) consider(use);
      }
    };
    for (const Rule& rule : program.rules) consider_clause(rule);
    for (const TriggerRule& trigger : program.triggers) {
      consider_clause(trigger.rule);
    }
    for (const struct Query& query : program.queries) {
      Rule as_rule;
      as_rule.body = query.body;
      as_rule.line = query.line;
      as_rule.column = query.column;
      consider_clause(as_rule);
    }
  }

  // PL011: a positive body literal reads a method nothing defines.
  void CheckReachability(const Program& program) {
    std::set<std::string> defined = options_.assume_defined;
    for (const auto& kv : sigs_) defined.insert(kv.first);
    std::vector<const Rule*> clauses;
    for (const Rule& rule : program.rules) clauses.push_back(&rule);
    for (const TriggerRule& trigger : program.triggers) {
      clauses.push_back(&trigger.rule);
    }
    std::vector<ClauseUses> all_uses;
    for (const Rule* rule : clauses) {
      all_uses.push_back(CollectUses(*rule, skolemize()));
      const ClauseUses& uses = all_uses.back();
      if (uses.head.wildcard_define) return;  // anything may be defined
      for (const MethodUse& use : uses.head.uses) {
        if (use.defining) defined.insert(use.name);
      }
    }
    for (size_t c = 0; c < clauses.size(); ++c) {
      const Rule& rule = *clauses[c];
      if (rule.IsFact()) continue;
      std::set<std::string> reported;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (rule.body[i].negated) continue;
        for (const MethodUse& use : all_uses[c].body[i].uses) {
          if (defined.count(use.name) || !reported.insert(use.name).second) {
            continue;
          }
          Add(LintCode::kRuleNeverFires, Severity::kWarning, use.span,
              StrCat("this rule can never fire: its body reads method ",
                     use.name,
                     ", which no fact, rule head, or signature defines"));
        }
      }
    }
  }

  const LintOptions& options_;
  LintReport* report_;
  std::map<std::string, SigInfo> sigs_;
};

}  // namespace

LintReport ProgramLinter::Lint(const Program& program) const {
  LintReport report;
  LintPass pass(options_, &report);
  pass.Run(program);
  return report;
}

LintReport ProgramLinter::LintSource(std::string_view source) const {
  Result<Program> program = ParseProgram(source);
  if (!program.ok()) {
    LintReport report;
    // Parser messages lead with "line L, column C: ..."; recover the
    // span so PL001 is located like every other diagnostic.
    int line = 0, column = 0;
    const std::string& msg = program.status().message();
    (void)sscanf(msg.c_str(), "line %d, column %d", &line, &column);
    report.Add(LintCode::kParseError, Severity::kError, line, column, msg);
    return report;
  }
  return Lint(*program);
}

Status ReportToStatus(const LintReport& report) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.severity != Severity::kError) continue;
    std::string message =
        StrCat("lint ", LintCodeName(d.code), " at ", d.line, ":", d.column,
               ": ", d.message);
    switch (d.code) {
      case LintCode::kParseError:
        return ParseError(std::move(message));
      case LintCode::kUnsafeRule:
        return UnsafeRule(std::move(message));
      case LintCode::kNotStratifiable:
        return NotStratifiable(std::move(message));
      default:
        return IllFormed(std::move(message));
    }
  }
  return Status::OK();
}

}  // namespace pathlog
