#include "ast/printer.h"

#include "ast/program.h"
#include "base/strings.h"

namespace pathlog {

namespace {

void PrintRef(const Ref& t, std::string* out);

void PrintArgs(const std::vector<RefPtr>& args, std::string* out) {
  if (args.empty()) return;
  out->append("@(");
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out->append(",");
    PrintRef(*args[i], out);
  }
  out->append(")");
}

void PrintFilterInner(const Filter& f, std::string* out) {
  PrintRef(*f.method, out);
  PrintArgs(f.args, out);
  switch (f.kind) {
    case FilterKind::kScalar:
      out->append("->");
      PrintRef(*f.value, out);
      break;
    case FilterKind::kSetRef:
      out->append("->>");
      PrintRef(*f.value, out);
      break;
    case FilterKind::kSetEnum:
      out->append("->>{");
      for (size_t i = 0; i < f.elems.size(); ++i) {
        if (i > 0) out->append(",");
        PrintRef(*f.elems[i], out);
      }
      out->append("}");
      break;
    case FilterKind::kClass:
      break;  // not printed here
  }
}

void PrintRef(const Ref& t, std::string* out) {
  switch (t.kind) {
    case RefKind::kName:
      if (t.name_kind == NameKind::kString) {
        out->append(StrCat("\"", t.text, "\""));
      } else {
        out->append(t.text);
      }
      return;
    case RefKind::kVar:
      out->append(t.text);
      return;
    case RefKind::kParen:
      out->append("(");
      PrintRef(*t.base, out);
      out->append(")");
      return;
    case RefKind::kPath:
      PrintRef(*t.base, out);
      out->append(t.set_valued_path ? ".." : ".");
      PrintRef(*t.method, out);
      PrintArgs(t.args, out);
      return;
    case RefKind::kMolecule: {
      PrintRef(*t.base, out);
      // Runs of non-class filters are grouped into one bracket; class
      // filters print as `:class`.
      size_t i = 0;
      while (i < t.filters.size()) {
        if (t.filters[i].kind == FilterKind::kClass) {
          out->append(":");
          PrintRef(*t.filters[i].value, out);
          ++i;
          continue;
        }
        out->append("[");
        bool first = true;
        while (i < t.filters.size() &&
               t.filters[i].kind != FilterKind::kClass) {
          if (!first) out->append("; ");
          first = false;
          PrintFilterInner(t.filters[i], out);
          ++i;
        }
        out->append("]");
      }
      if (t.filters.empty()) out->append("[]");
      return;
    }
  }
}

}  // namespace

std::string ToString(const Ref& t) {
  std::string out;
  PrintRef(t, &out);
  return out;
}

std::string ToString(const Filter& f) {
  std::string out;
  if (f.kind == FilterKind::kClass) {
    out.append(":");
    PrintRef(*f.value, &out);
  } else {
    out.append("[");
    PrintFilterInner(f, &out);
    out.append("]");
  }
  return out;
}

std::string ToString(const Literal& lit) {
  std::string out;
  if (lit.negated) out.append("not ");
  PrintRef(*lit.ref, &out);
  return out;
}

std::string ToString(const Rule& rule) {
  std::string out = ToString(*rule.head);
  if (!rule.body.empty()) {
    out.append(" <- ");
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out.append(", ");
      out.append(ToString(rule.body[i]));
    }
  }
  out.append(".");
  return out;
}

std::string ToString(const TriggerRule& trigger) {
  std::string out = ToString(*trigger.rule.head);
  out.append(" <~ ");
  for (size_t i = 0; i < trigger.rule.body.size(); ++i) {
    if (i > 0) out.append(", ");
    out.append(ToString(trigger.rule.body[i]));
  }
  out.append(".");
  return out;
}

std::string ToString(const Query& query) {
  std::string out = "?- ";
  for (size_t i = 0; i < query.body.size(); ++i) {
    if (i > 0) out.append(", ");
    out.append(ToString(query.body[i]));
  }
  out.append(".");
  return out;
}

std::string ToString(const SignatureDecl& sig) {
  std::string out = ToString(*sig.klass);
  out.append("[");
  out.append(ToString(*sig.method));
  if (!sig.arg_types.empty()) {
    out.append("@(");
    for (size_t i = 0; i < sig.arg_types.size(); ++i) {
      if (i > 0) out.append(",");
      out.append(ToString(*sig.arg_types[i]));
    }
    out.append(")");
  }
  out.append(sig.set_valued ? " =>> " : " => ");
  out.append(ToString(*sig.result_type));
  out.append("].");
  return out;
}

std::string ToString(const Program& program) {
  std::vector<std::string> parts;
  for (const SignatureDecl& s : program.signatures) {
    parts.push_back(ToString(s));
  }
  for (const Rule& r : program.rules) parts.push_back(ToString(r));
  for (const TriggerRule& t : program.triggers) parts.push_back(ToString(t));
  for (const Query& q : program.queries) parts.push_back(ToString(q));
  return StrJoin(parts, "\n");
}

}  // namespace pathlog
