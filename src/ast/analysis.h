// Static analysis of references: scalarity (Definition 2),
// well-formedness (Definition 3), simplicity, and variable collection.

#ifndef PATHLOG_AST_ANALYSIS_H_
#define PATHLOG_AST_ANALYSIS_H_

#include <map>
#include <set>
#include <string>

#include "ast/ref.h"
#include "base/status.h"

namespace pathlog {

/// True iff `t` is a *simple* reference (name, variable, or bracketed
/// reference) — the only forms admitted at method and class positions
/// by Definition 1.
bool IsSimpleRef(const Ref& t);

/// Definition 2: a reference is set-valued iff it is a `..` path; a `.`
/// path one of whose sub-references (base, method, or argument) is
/// set-valued; a molecule with set-valued base; or a bracketed
/// set-valued reference. Otherwise it is scalar.
bool IsSetValued(const Ref& t);

/// Definition 3: checks that every sub-reference is well-formed and
/// that molecules respect scalarity: scalar filters take scalar
/// methods, arguments and results; `->>` filters take a set-valued
/// reference or an explicit set of scalar references; classes are
/// scalar. Paths are unrestricted ("well-formedness only restricts the
/// usage of set valued references in molecules, but not in paths").
/// Additionally enforces Definition 1's requirement that method and
/// class positions hold simple references, which matters for
/// programmatically built ASTs that bypassed the parser.
Status CheckWellFormed(const Ref& t);

/// Adds every occurrence of every variable in `t` to `out`, counting
/// multiplicity (a variable occurring twice adds 2). This is the
/// primary variable walk; the set-valued forms below are wrappers.
void CollectVarCounts(const Ref& t, std::map<std::string, int>* out);

/// Convenience: variable -> number of occurrences in `t`.
std::map<std::string, int> VarCountsOf(const Ref& t);

/// Adds every variable occurring in `t` to `out` (occurrence counts
/// discarded).
void CollectVars(const Ref& t, std::set<std::string>* out);

/// Convenience: the set of variables of `t`.
std::set<std::string> VarsOf(const Ref& t);

/// True iff `t` contains no variables.
bool IsGround(const Ref& t);

}  // namespace pathlog

#endif  // PATHLOG_AST_ANALYSIS_H_
