#include "ast/analysis.h"

#include "ast/printer.h"
#include "base/strings.h"

namespace pathlog {

bool IsSimpleRef(const Ref& t) {
  return t.kind == RefKind::kName || t.kind == RefKind::kVar ||
         t.kind == RefKind::kParen;
}

bool IsSetValued(const Ref& t) {
  switch (t.kind) {
    case RefKind::kName:
    case RefKind::kVar:
      return false;
    case RefKind::kParen:
      return IsSetValued(*t.base);
    case RefKind::kPath: {
      if (t.set_valued_path) return true;
      if (IsSetValued(*t.base)) return true;
      if (IsSetValued(*t.method)) return true;
      for (const RefPtr& a : t.args) {
        if (IsSetValued(*a)) return true;
      }
      return false;
    }
    case RefKind::kMolecule:
      // Only the first sub-reference determines the scalarity of the
      // entire molecule (paper section 4.2).
      return IsSetValued(*t.base);
  }
  return false;
}

namespace {

Status CheckMethodPosition(const Ref& m, const char* role) {
  if (!IsSimpleRef(m)) {
    return IllFormed(StrCat(role, " position must hold a simple reference "
                            "(name, variable, or bracketed reference), got: ",
                            ToString(m)));
  }
  return CheckWellFormed(m);
}

Status CheckScalarPosition(const Ref& t, const char* role) {
  PATHLOG_RETURN_IF_ERROR(CheckWellFormed(t));
  if (IsSetValued(t)) {
    return IllFormed(StrCat("set-valued reference not allowed at ", role,
                            " position: ", ToString(t)));
  }
  return Status::OK();
}

Status CheckFilter(const Filter& f) {
  if (f.kind == FilterKind::kClass) {
    PATHLOG_RETURN_IF_ERROR(CheckMethodPosition(*f.value, "class"));
    return CheckScalarPosition(*f.value, "class");
  }
  PATHLOG_RETURN_IF_ERROR(CheckMethodPosition(*f.method, "method"));
  PATHLOG_RETURN_IF_ERROR(CheckScalarPosition(*f.method, "method"));
  for (const RefPtr& a : f.args) {
    PATHLOG_RETURN_IF_ERROR(CheckScalarPosition(*a, "filter-argument"));
  }
  switch (f.kind) {
    case FilterKind::kScalar:
      return CheckScalarPosition(*f.value, "scalar-result");
    case FilterKind::kSetRef:
      PATHLOG_RETURN_IF_ERROR(CheckWellFormed(*f.value));
      if (!IsSetValued(*f.value)) {
        return IllFormed(StrCat(
            "the result of a `->>` filter must be a set-valued reference "
            "or an explicit set; ",
            ToString(*f.value),
            " is scalar (write it inside braces: ->>{...})"));
      }
      return Status::OK();
    case FilterKind::kSetEnum:
      for (const RefPtr& e : f.elems) {
        PATHLOG_RETURN_IF_ERROR(CheckScalarPosition(*e, "set-element"));
      }
      if (f.elems.empty()) {
        return IllFormed("explicit set in a `->>` filter must not be empty");
      }
      return Status::OK();
    case FilterKind::kClass:
      break;  // handled above
  }
  return Status::OK();
}

}  // namespace

Status CheckWellFormed(const Ref& t) {
  switch (t.kind) {
    case RefKind::kName:
    case RefKind::kVar:
      return Status::OK();
    case RefKind::kParen:
      return CheckWellFormed(*t.base);
    case RefKind::kPath: {
      PATHLOG_RETURN_IF_ERROR(CheckWellFormed(*t.base));
      PATHLOG_RETURN_IF_ERROR(CheckMethodPosition(*t.method, "method"));
      // Paths are deliberately liberal: base, method and arguments may
      // be set-valued (e.g. p1.paidFor@(p1..vehicles)).
      for (const RefPtr& a : t.args) {
        PATHLOG_RETURN_IF_ERROR(CheckWellFormed(*a));
      }
      return Status::OK();
    }
    case RefKind::kMolecule: {
      PATHLOG_RETURN_IF_ERROR(CheckWellFormed(*t.base));
      for (const Filter& f : t.filters) {
        PATHLOG_RETURN_IF_ERROR(CheckFilter(f));
      }
      return Status::OK();
    }
  }
  return Internal("CheckWellFormed: unknown reference kind");
}

void CollectVarCounts(const Ref& t, std::map<std::string, int>* out) {
  switch (t.kind) {
    case RefKind::kName:
      return;
    case RefKind::kVar:
      ++(*out)[t.text];
      return;
    case RefKind::kParen:
      CollectVarCounts(*t.base, out);
      return;
    case RefKind::kPath:
      CollectVarCounts(*t.base, out);
      CollectVarCounts(*t.method, out);
      for (const RefPtr& a : t.args) CollectVarCounts(*a, out);
      return;
    case RefKind::kMolecule:
      CollectVarCounts(*t.base, out);
      for (const Filter& f : t.filters) {
        if (f.method) CollectVarCounts(*f.method, out);
        for (const RefPtr& a : f.args) CollectVarCounts(*a, out);
        if (f.value) CollectVarCounts(*f.value, out);
        for (const RefPtr& e : f.elems) CollectVarCounts(*e, out);
      }
      return;
  }
}

std::map<std::string, int> VarCountsOf(const Ref& t) {
  std::map<std::string, int> out;
  CollectVarCounts(t, &out);
  return out;
}

void CollectVars(const Ref& t, std::set<std::string>* out) {
  std::map<std::string, int> counts;
  CollectVarCounts(t, &counts);
  for (const auto& kv : counts) out->insert(kv.first);
}

std::set<std::string> VarsOf(const Ref& t) {
  std::set<std::string> out;
  CollectVars(t, &out);
  return out;
}

bool IsGround(const Ref& t) { return VarsOf(t).empty(); }

}  // namespace pathlog
