#include "ast/ref.h"

namespace pathlog {

namespace {
std::shared_ptr<Ref> NewRef(RefKind kind) {
  auto r = std::make_shared<Ref>();
  r->kind = kind;
  return r;
}
}  // namespace

RefPtr Ref::Name(std::string_view symbol) {
  auto r = NewRef(RefKind::kName);
  r->name_kind = NameKind::kSymbol;
  r->text = std::string(symbol);
  return r;
}

RefPtr Ref::Int(int64_t value) {
  auto r = NewRef(RefKind::kName);
  r->name_kind = NameKind::kInt;
  r->text = std::to_string(value);
  r->int_value = value;
  return r;
}

RefPtr Ref::Str(std::string_view value) {
  auto r = NewRef(RefKind::kName);
  r->name_kind = NameKind::kString;
  r->text = std::string(value);
  return r;
}

RefPtr Ref::Var(std::string_view name) {
  auto r = NewRef(RefKind::kVar);
  r->text = std::string(name);
  return r;
}

RefPtr Ref::Paren(RefPtr inner) {
  auto r = NewRef(RefKind::kParen);
  r->base = std::move(inner);
  return r;
}

RefPtr Ref::ScalarPath(RefPtr base, RefPtr method, std::vector<RefPtr> args) {
  auto r = NewRef(RefKind::kPath);
  r->base = std::move(base);
  r->method = std::move(method);
  r->args = std::move(args);
  r->set_valued_path = false;
  return r;
}

RefPtr Ref::SetPath(RefPtr base, RefPtr method, std::vector<RefPtr> args) {
  auto r = NewRef(RefKind::kPath);
  r->base = std::move(base);
  r->method = std::move(method);
  r->args = std::move(args);
  r->set_valued_path = true;
  return r;
}

RefPtr Ref::Molecule(RefPtr base, std::vector<Filter> filters) {
  auto r = NewRef(RefKind::kMolecule);
  r->base = std::move(base);
  r->filters = std::move(filters);
  return r;
}

Filter Ref::ScalarFilter(RefPtr method, RefPtr result,
                         std::vector<RefPtr> args) {
  Filter f;
  f.kind = FilterKind::kScalar;
  f.method = std::move(method);
  f.value = std::move(result);
  f.args = std::move(args);
  return f;
}

Filter Ref::SetRefFilter(RefPtr method, RefPtr result,
                         std::vector<RefPtr> args) {
  Filter f;
  f.kind = FilterKind::kSetRef;
  f.method = std::move(method);
  f.value = std::move(result);
  f.args = std::move(args);
  return f;
}

Filter Ref::SetEnumFilter(RefPtr method, std::vector<RefPtr> elems,
                          std::vector<RefPtr> args) {
  Filter f;
  f.kind = FilterKind::kSetEnum;
  f.method = std::move(method);
  f.elems = std::move(elems);
  f.args = std::move(args);
  return f;
}

Filter Ref::ClassFilter(RefPtr klass) {
  Filter f;
  f.kind = FilterKind::kClass;
  f.value = std::move(klass);
  return f;
}

namespace {
bool RefPtrEquals(const RefPtr& a, const RefPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return RefEquals(*a, *b);
}

bool RefListEquals(const std::vector<RefPtr>& a, const std::vector<RefPtr>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!RefPtrEquals(a[i], b[i])) return false;
  }
  return true;
}
}  // namespace

bool FilterEquals(const Filter& a, const Filter& b) {
  if (a.kind != b.kind) return false;
  if (!RefPtrEquals(a.method, b.method)) return false;
  if (!RefPtrEquals(a.value, b.value)) return false;
  if (!RefListEquals(a.args, b.args)) return false;
  if (a.elems.size() != b.elems.size()) return false;
  for (size_t i = 0; i < a.elems.size(); ++i) {
    if (!RefPtrEquals(a.elems[i], b.elems[i])) return false;
  }
  return true;
}

bool RefEquals(const Ref& a, const Ref& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case RefKind::kName:
      return a.name_kind == b.name_kind && a.text == b.text &&
             a.int_value == b.int_value;
    case RefKind::kVar:
      return a.text == b.text;
    case RefKind::kParen:
      return RefPtrEquals(a.base, b.base);
    case RefKind::kPath:
      return a.set_valued_path == b.set_valued_path &&
             RefPtrEquals(a.base, b.base) && RefPtrEquals(a.method, b.method) &&
             RefListEquals(a.args, b.args);
    case RefKind::kMolecule: {
      if (!RefPtrEquals(a.base, b.base)) return false;
      if (a.filters.size() != b.filters.size()) return false;
      for (size_t i = 0; i < a.filters.size(); ++i) {
        if (!FilterEquals(a.filters[i], b.filters[i])) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace pathlog
