// Abstract syntax of PathLog references (paper, Definition 1).
//
// References are the single syntactic category from which everything
// else is built: names and variables are simple references; a *path*
// applies a (scalar `.` or set-valued `..`) method to a reference; a
// *molecule* attaches filters (`[m->t]`, `[m->>t]`, `[m->>{..}]`) or a
// class membership (`: c`) to a reference. Paths and molecules nest
// mutually without restriction.
//
// Deviating from the letter of Definition 1 only in representation, a
// molecule node carries a *list* of filters: the paper itself declares
// `t[f1][f2]` and `t[f1; f2]` to be the same molecule.

#ifndef PATHLOG_AST_REF_H_
#define PATHLOG_AST_REF_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pathlog {

struct Ref;
/// References are immutable and shared; sub-references are never
/// mutated after construction.
using RefPtr = std::shared_ptr<const Ref>;

enum class RefKind : uint8_t {
  /// A name n in N: symbol, integer, or string.
  kName,
  /// A variable X in V.
  kVar,
  /// A bracketed reference `(t)`, which resets evaluation grouping and
  /// turns any reference into a *simple* one (usable at method/class
  /// position, cf. `L : (integer.list)` and the generic `(M.tc)`).
  kParen,
  /// A path `t0.m@(t1..tk)` or `t0..m@(t1..tk)`.
  kPath,
  /// A molecule: `t0` followed by one or more filters.
  kMolecule,
};

enum class NameKind : uint8_t { kSymbol, kInt, kString };

enum class FilterKind : uint8_t {
  /// `[m@(args)->t_r]` — scalar method result.
  kScalar,
  /// `[m@(args)->>t_r]` — the objects denoted by the set-valued
  /// reference t_r are among the method's results.
  kSetRef,
  /// `[m@(args)->>{t'_1..t'_l}]` — the listed scalar references are
  /// among the method's results.
  kSetEnum,
  /// `: c` — class membership.
  kClass,
};

/// One element of a molecule's filter list.
struct Filter {
  FilterKind kind;
  /// The method; must be a simple reference (Definition 1). Null for
  /// kClass filters.
  RefPtr method;
  /// Arguments t_1..t_k (empty when called without `@(...)`).
  std::vector<RefPtr> args;
  /// kScalar: the scalar result reference.
  /// kSetRef: the set-valued result reference.
  /// kClass:  the class (a simple reference).
  RefPtr value;
  /// kSetEnum: the enumerated scalar references.
  std::vector<RefPtr> elems;
};

/// A PathLog reference. Construct via the static factories; fields not
/// applicable to `kind` stay empty.
struct Ref {
  RefKind kind;

  /// Source position of the first token of this reference (1-based);
  /// 0 when the reference was built programmatically rather than
  /// parsed. Ignored by RefEquals — spans are presentation, not
  /// identity.
  int line = 0;
  int column = 0;

  // kName / kVar
  NameKind name_kind = NameKind::kSymbol;
  std::string text;       ///< symbol text, variable name, string value
  int64_t int_value = 0;  ///< kName with name_kind == kInt

  // kParen: base.  kPath: base, method, args.  kMolecule: base, filters.
  RefPtr base;
  RefPtr method;  ///< simple reference
  bool set_valued_path = false;  ///< `..` vs `.`
  std::vector<RefPtr> args;
  std::vector<Filter> filters;

  // ---- factories ----------------------------------------------------
  static RefPtr Name(std::string_view symbol);
  static RefPtr Int(int64_t value);
  static RefPtr Str(std::string_view value);
  static RefPtr Var(std::string_view name);
  static RefPtr Paren(RefPtr inner);
  static RefPtr ScalarPath(RefPtr base, RefPtr method,
                           std::vector<RefPtr> args = {});
  static RefPtr SetPath(RefPtr base, RefPtr method,
                        std::vector<RefPtr> args = {});
  static RefPtr Molecule(RefPtr base, std::vector<Filter> filters);

  // ---- filter factories ----------------------------------------------
  static Filter ScalarFilter(RefPtr method, RefPtr result,
                             std::vector<RefPtr> args = {});
  static Filter SetRefFilter(RefPtr method, RefPtr result,
                             std::vector<RefPtr> args = {});
  static Filter SetEnumFilter(RefPtr method, std::vector<RefPtr> elems,
                              std::vector<RefPtr> args = {});
  static Filter ClassFilter(RefPtr klass);
};

/// The built-in scalar method `self`: for every object u,
/// I_->(self)(u) = u. The XSQL-style selector `[X]` is sugar for
/// `[self->X]` (paper section 4.1).
inline constexpr std::string_view kSelfMethodName = "self";

/// Structural equality of references (names by value, variables by
/// name).
bool RefEquals(const Ref& a, const Ref& b);
bool FilterEquals(const Filter& a, const Filter& b);

}  // namespace pathlog

#endif  // PATHLOG_AST_REF_H_
