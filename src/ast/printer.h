// Rendering references, literals, rules and programs back into PathLog
// surface syntax. The printer round-trips with the parser: for every
// parsed clause c, Parse(ToString(c)) yields a structurally equal
// clause (property-tested in tests/printer_test.cc).

#ifndef PATHLOG_AST_PRINTER_H_
#define PATHLOG_AST_PRINTER_H_

#include <string>

#include "ast/ref.h"

namespace pathlog {

struct Literal;
struct Rule;
struct TriggerRule;
struct Query;
struct SignatureDecl;
struct Program;

std::string ToString(const Ref& t);
std::string ToString(const Filter& f);
std::string ToString(const Literal& lit);
std::string ToString(const Rule& rule);
std::string ToString(const TriggerRule& trigger);
std::string ToString(const Query& query);
std::string ToString(const SignatureDecl& sig);
std::string ToString(const Program& program);

}  // namespace pathlog

#endif  // PATHLOG_AST_PRINTER_H_
