#include "ast/program.h"

#include "ast/analysis.h"
#include "ast/printer.h"
#include "base/strings.h"

namespace pathlog {

Status CheckRuleWellFormed(const Rule& rule) {
  if (!rule.head) return IllFormed("rule has no head");
  PATHLOG_RETURN_IF_ERROR(CheckWellFormed(*rule.head));
  if (IsSetValued(*rule.head)) {
    return IllFormed(StrCat(
        "set-valued reference cannot be a rule head (its denotation is "
        "not uniquely determined, paper section 6): ",
        ToString(*rule.head)));
  }
  // A bare name or variable head asserts nothing.
  const Ref* h = rule.head.get();
  while (h->kind == RefKind::kParen) h = h->base.get();
  if (h->kind == RefKind::kName || h->kind == RefKind::kVar) {
    return IllFormed(StrCat("rule head must be a path or molecule, got: ",
                            ToString(*rule.head)));
  }
  for (const Literal& lit : rule.body) {
    if (!lit.ref) return IllFormed("rule body contains an empty literal");
    PATHLOG_RETURN_IF_ERROR(CheckWellFormed(*lit.ref));
  }
  if (rule.IsFact() && !IsGround(*rule.head)) {
    return IllFormed(StrCat("fact must be ground: ", ToString(*rule.head)));
  }
  return Status::OK();
}

Status CheckTriggerWellFormed(const TriggerRule& trigger) {
  PATHLOG_RETURN_IF_ERROR(CheckRuleWellFormed(trigger.rule));
  if (trigger.rule.body.empty()) {
    return IllFormed("a trigger needs an event literal (head <~ event, ...)");
  }
  if (trigger.rule.body.front().negated) {
    return IllFormed(
        "the event literal of a trigger must be positive (facts are "
        "monotone; there is no deletion event)");
  }
  return Status::OK();
}

}  // namespace pathlog
