// Clauses: literals, rules (facts are rules with empty bodies),
// queries, and signature declarations; a Program aggregates them.

#ifndef PATHLOG_AST_PROGRAM_H_
#define PATHLOG_AST_PROGRAM_H_

#include <string>
#include <vector>

#include "ast/ref.h"
#include "base/status.h"

namespace pathlog {

/// A body element: a reference used as a formula, possibly negated.
/// Negation-as-failure is an extension beyond the paper (the paper
/// only needs stratification for set-valued references in bodies); it
/// is evaluated under the same stratification machinery.
struct Literal {
  RefPtr ref;
  bool negated = false;

  /// Source position of the literal (the `not`, if negated, else the
  /// reference); 0 when built programmatically.
  int line = 0;
  int column = 0;
};

/// `head <- body.` — with an empty body, a fact. The head must be a
/// scalar reference (paper section 6: "the usage of set valued
/// references in rule heads should be forbidden").
struct Rule {
  RefPtr head;
  std::vector<Literal> body;

  /// Source position of the clause's first token; 0 when built
  /// programmatically.
  int line = 0;
  int column = 0;

  bool IsFact() const { return body.empty(); }
};

/// `?- body.` — a conjunctive query; answers are bindings of the body's
/// variables (all of them, in name order).
struct Query {
  std::vector<Literal> body;

  /// Source position of the clause's first token; 0 when built
  /// programmatically.
  int line = 0;
  int column = 0;
};

/// A method signature: `class[m @(argtypes) => result]` (scalar) or
/// `=>> result` (set-valued). Used by the type checker (section 2:
/// "the usage of methods can be controlled by signatures ... which
/// makes type checking techniques applicable").
struct SignatureDecl {
  RefPtr klass;    ///< receiver class (simple reference, ground)
  RefPtr method;   ///< method name (simple reference, ground)
  std::vector<RefPtr> arg_types;
  RefPtr result_type;
  bool set_valued = false;

  /// Source position of the declaration (the method token); 0 when
  /// built programmatically.
  int line = 0;
  int column = 0;
};

/// `head <~ event, conditions.` — an active (event-condition-action)
/// rule, the production/active flavour the paper's sections 1 and 7
/// claim the reference machinery supports. The first body literal is
/// the *event*: the trigger fires once per new fact matching it, the
/// remaining literals are the condition checked against the current
/// state, and the head is asserted per solution.
struct TriggerRule {
  Rule rule;  ///< body[0] is the event literal (never negated)
};

/// A parsed unit of PathLog text: rules and facts in order, plus
/// queries, triggers and signature declarations.
struct Program {
  std::vector<Rule> rules;
  std::vector<TriggerRule> triggers;
  std::vector<Query> queries;
  std::vector<SignatureDecl> signatures;
};

/// Well-formedness of a trigger: the underlying rule checks apply, the
/// body must be non-empty, and the event literal must be positive.
Status CheckTriggerWellFormed(const TriggerRule& trigger);

/// Structural well-formedness of a whole rule: head and body references
/// satisfy Definition 3, and the head is a scalar, non-trivial
/// reference (not a lone name or variable).
Status CheckRuleWellFormed(const Rule& rule);

}  // namespace pathlog

#endif  // PATHLOG_AST_PROGRAM_H_
