#include "query/database.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <set>
#include <thread>

#include "base/budget.h"

#include "ast/analysis.h"
#include "ast/printer.h"
#include "base/coding.h"
#include "base/crc32.h"
#include "base/strings.h"
#include "eval/ref_eval.h"
#include "lint/dataflow/analyses.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "query/planner.h"
#include "semantics/structure.h"
#include "store/fact.h"
#include "store/snapshot.h"

namespace pathlog {

namespace {

/// Magic of the database-level snapshot file (store snapshot + program
/// text + signatures + trigger watermark, CRC-protected). Legacy files
/// (no magic, raw length-prefixed blobs) remain readable.
constexpr char kDbMagic[] = "PLGDB002";
constexpr size_t kDbMagicLen = 8;

/// The concrete sort of a stored value, for seeding the type-flow
/// analysis from extensional facts.
SortSet SortOfOid(const ObjectStore& store, Oid o) {
  switch (store.kind(o)) {
    case ObjectKind::kInt:
      return kSortInt;
    case ObjectKind::kString:
      return kSortString;
    default:
      return kSortObject;
  }
}

/// Every method with extensional facts, plus the observed sorts of its
/// stored values. Seeds for both Lint() and RefreshAnalysisHints().
void CollectStoreSeeds(const ObjectStore& store,
                       std::set<std::string>* defined,
                       std::map<std::string, SortSet>* sorts) {
  for (Oid m : store.ScalarMethods()) {
    const std::string& name = store.DisplayName(m);
    defined->insert(name);
    SortSet s = kSortBottom;
    for (const ScalarEntry& e : store.ScalarEntries(m)) {
      s = static_cast<SortSet>(s | SortOfOid(store, e.value));
    }
    if (s != kSortBottom) (*sorts)[name] = s;
  }
  for (Oid m : store.SetMethods()) {
    const std::string& name = store.DisplayName(m);
    defined->insert(name);
    SortSet s = kSortBottom;
    for (const SetGroup& g : store.SetGroups(m)) {
      for (Oid member : g.members) {
        s = static_cast<SortSet>(s | SortOfOid(store, member));
      }
    }
    if (s != kSortBottom) {
      auto [it, inserted] = sorts->try_emplace(name, s);
      if (!inserted) it->second = static_cast<SortSet>(it->second | s);
    }
  }
}

const char* StrategyName(EvalStrategy s) {
  switch (s) {
    case EvalStrategy::kNaive:
      return "naive";
    case EvalStrategy::kSemiNaiveRules:
      return "semi-naive-rules";
    case EvalStrategy::kSemiNaiveDelta:
      return "semi-naive-delta";
  }
  return "unknown";
}

uint64_t UnixMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Hex CRC32 of the planned body in execution order — the plan
/// fingerprint ExplainQuery prints and the query log records, so a
/// slow log record links straight to its plan.
std::string PlanFingerprint(const std::vector<Literal>& body) {
  std::string printed;
  for (const Literal& lit : body) {
    printed += ToString(lit);
    printed += ";";
  }
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", Crc32(printed));
  return std::string(buf);
}

}  // namespace

Database::Database() : Database(DatabaseOptions{}) {}

Database::Database(DatabaseOptions options) : options_(options) {
  store_.set_metrics(options_.engine.obs.metrics);
  // The built-in method and the structural type names always exist.
  store_.InternSymbol(kSelfMethodName);
  store_.InternSymbol(kAnyTypeName);
  store_.InternSymbol(kIntTypeName);
  store_.InternSymbol(kStringTypeName);
}

void Database::SetObsSinks(const ObsSinks& obs) {
  // Quiesced-setup only (see the header): lock-free paths — metrics
  // counters, RecordQueryObs — read these sink pointers without the
  // guard, so no other thread may be inside the database during the
  // swap. The lock still orders the WAL re-attachment below.
  WriteLock lock(*this);
  options_.engine.obs = obs;
  options_.triggers.obs = obs;
  store_.set_metrics(obs.metrics);
  if (wal_) wal_->set_obs(obs.metrics, obs.tracer, obs.flight);
  UpdateStoreGauges();
}

std::string Database::ProfileReport() const {
  if (options_.engine.obs.profiler == nullptr) {
    return "profile: no profiler attached (enable profiling first)\n";
  }
  return options_.engine.obs.profiler->Report();
}

void Database::UpdateStoreGauges() {
  MetricsRegistry* m = options_.engine.obs.metrics;
  if (m == nullptr) return;
  if (Gauge* g = m->GetGauge("pathlog_store_objects", "universe size")) {
    g->Set(static_cast<double>(store_.UniverseSize()));
  }
  if (Gauge* g = m->GetGauge("pathlog_store_facts", "fact log length")) {
    g->Set(static_cast<double>(store_.generation()));
  }
}

QueryLog* Database::query_log_sink() const {
  if (options_.engine.obs.query_log != nullptr) {
    return options_.engine.obs.query_log;
  }
  return options_.query_log;
}

void Database::RecordQueryObs(QueryLogRecord rec) {
  if (FlightRecorder* flight = options_.engine.obs.flight;
      flight != nullptr) {
    // kind and status are fixed tokens (no escaping needed); the query
    // text stays out of the args to keep the ring entry small.
    std::string args = StrCat("{\"kind\":\"", rec.kind, "\",\"status\":\"",
                              rec.status, "\",\"rows\":", rec.rows, "}");
    const auto dur_us = static_cast<uint64_t>(rec.latency_ms * 1000.0);
    flight->Record(StrCat("db.", rec.kind), "database",
                   dur_us == 0 ? 1 : dur_us, args);
  }
  if (rec.budget_rejected) MaybeDumpFlightRecorder("budget_rejection");
  if (QueryLog* log = query_log_sink(); log != nullptr) {
    rec.ts_ms = UnixMillis();
    (void)log->Append(std::move(rec));  // latched error; keep serving
  }
}

void Database::MaybeDumpFlightRecorder(std::string_view reason) {
  FlightRecorder* flight = options_.engine.obs.flight;
  if (flight == nullptr || fops_ == nullptr || durable_dir_.empty()) return;
  const std::string path = StrCat(
      durable_dir_, "/flightrec-", UnixMillis(), "-",
      flight_dumps_.fetch_add(1, std::memory_order_relaxed) + 1,
      ".trace.json");
  flight->Record("flightrec.dump", "database", /*dur_us=*/0,
                 StrCat("{\"reason\":\"", reason, "\"}"));
  if (!flight->WriteTo(path, fops_).ok()) return;  // best-effort
  if (MetricsRegistry* m = options_.engine.obs.metrics; m != nullptr) {
    if (Counter* c =
            m->GetCounter("pathlog_flightrec_dumps_total",
                          "flight-recorder incident dumps written")) {
      c->Inc();
    }
  }
}

void Database::InternNames(const Ref& t) {
  switch (t.kind) {
    case RefKind::kName:
      switch (t.name_kind) {
        case NameKind::kSymbol:
          store_.InternSymbol(t.text);
          break;
        case NameKind::kInt:
          store_.InternInt(t.int_value);
          break;
        case NameKind::kString:
          store_.InternString(t.text);
          break;
      }
      return;
    case RefKind::kVar:
      return;
    case RefKind::kParen:
      InternNames(*t.base);
      return;
    case RefKind::kPath:
      InternNames(*t.base);
      InternNames(*t.method);
      for (const RefPtr& a : t.args) InternNames(*a);
      return;
    case RefKind::kMolecule:
      InternNames(*t.base);
      for (const Filter& f : t.filters) {
        if (f.method) InternNames(*f.method);
        for (const RefPtr& a : f.args) InternNames(*a);
        if (f.value) InternNames(*f.value);
        for (const RefPtr& e : f.elems) InternNames(*e);
      }
      return;
  }
}

bool Database::NamesInterned(const Ref& t) const {
  // Mirrors InternNames exactly: true iff InternNames(t) would be a
  // no-op, i.e. evaluating t cannot grow the store's name tables.
  switch (t.kind) {
    case RefKind::kName:
      switch (t.name_kind) {
        case NameKind::kSymbol:
          return store_.FindSymbol(t.text).has_value();
        case NameKind::kInt:
          return store_.FindInt(t.int_value).has_value();
        case NameKind::kString:
          return store_.FindString(t.text).has_value();
      }
      return false;
    case RefKind::kVar:
      return true;
    case RefKind::kParen:
      return NamesInterned(*t.base);
    case RefKind::kPath:
      if (!NamesInterned(*t.base) || !NamesInterned(*t.method)) return false;
      for (const RefPtr& a : t.args) {
        if (!NamesInterned(*a)) return false;
      }
      return true;
    case RefKind::kMolecule:
      if (!NamesInterned(*t.base)) return false;
      for (const Filter& f : t.filters) {
        if (f.method && !NamesInterned(*f.method)) return false;
        for (const RefPtr& a : f.args) {
          if (!NamesInterned(*a)) return false;
        }
        if (f.value && !NamesInterned(*f.value)) return false;
        for (const RefPtr& e : f.elems) {
          if (!NamesInterned(*e)) return false;
        }
      }
      return true;
  }
  return false;
}

bool Database::NothingPendingLocked() const {
  // Mirrors CommitDurable's empty-batch test: true when a commit would
  // be a no-op.
  if (!wal_) return true;
  return store_.UniverseSize() == wal_objects_ &&
         store_.generation() == wal_facts_ && pending_program_text_.empty() &&
         trigger_watermark_ == wal_trigger_watermark_;
}

bool Database::ReadOnlyReadyLocked(const Ref& t) const {
  // A degraded database skips materialisation and commit anyway, so
  // only the intern check gates its fast path.
  if (dirty_ && !degraded()) return false;
  if (!degraded() && !NothingPendingLocked()) return false;
  return NamesInterned(t);
}

bool Database::ReadOnlyReadyLocked(const struct Query& query) const {
  if (dirty_ && !degraded()) return false;
  if (!degraded() && !NothingPendingLocked()) return false;
  for (const Literal& lit : query.body) {
    if (!NamesInterned(*lit.ref)) return false;
  }
  return true;
}

Status Database::Load(std::string_view program_text) {
  Result<Program> program = ParseProgram(program_text);
  if (!program.ok()) return program.status();
  return LoadProgram(*program);
}

Status Database::LoadProgram(const Program& program) {
  WriteLock lock(*this);
  return LoadProgramLocked(program);
}

Status Database::LoadProgramLocked(const Program& program) {
  if (degraded()) return DegradedError();
  TraceSpan load_span(options_.engine.obs.tracer, "db.load", "database");
  if (!program.queries.empty()) {
    return InvalidArgument(
        "programs loaded into a Database must not contain `?-` queries; "
        "run them with Database::Query");
  }
  if (options_.lint_on_load) {
    LintOptions lint_options;
    lint_options.head_value_mode = options_.engine.head_value_mode;
    lint_options.errors_only = true;
    PATHLOG_RETURN_IF_ERROR(
        ReportToStatus(ProgramLinter(lint_options).Lint(program)));
  }
  for (const SignatureDecl& sig : program.signatures) {
    PATHLOG_RETURN_IF_ERROR(signatures_.Declare(sig, &store_));
    signature_text_ += ToString(sig);
    signature_text_ += "\n";
    if (wal_) {
      pending_program_text_ += ToString(sig);
      pending_program_text_ += "\n";
    }
  }
  for (const TriggerRule& trigger : program.triggers) {
    PATHLOG_RETURN_IF_ERROR(CheckTriggerWellFormed(trigger));
    InternNames(*trigger.rule.head);
    for (const Literal& lit : trigger.rule.body) InternNames(*lit.ref);
    triggers_.push_back(trigger);
    if (wal_) {
      pending_program_text_ += ToString(trigger);
      pending_program_text_ += "\n";
    }
  }
  for (const Rule& rule : program.rules) {
    PATHLOG_RETURN_IF_ERROR(CheckRuleWellFormed(rule));
    InternNames(*rule.head);
    for (const Literal& lit : rule.body) InternNames(*lit.ref);
    if (rule.IsFact()) {
      HeadAsserter asserter(&store_, options_.engine.head_value_mode);
      Bindings empty;
      PATHLOG_RETURN_IF_ERROR(asserter.Assert(*rule.head, &empty));
    } else {
      rules_.push_back(rule);
      if (wal_) {
        pending_program_text_ += ToString(rule);
        pending_program_text_ += "\n";
      }
    }
  }
  dirty_ = true;
  return FinishMutation(Status::OK());
}

Status Database::Materialize() {
  WriteLock lock(*this);
  return MaterializeLocked();
}

Status Database::MaterializeLocked() {
  if (degraded()) return DegradedError();
  TraceSpan mat_span(options_.engine.obs.tracer, "db.materialize",
                     "database");
  FlightSpan mat_flight(options_.engine.obs.flight, "db.materialize",
                        "database");
  EngineOptions engine_options = options_.engine;
  if (options_.use_analysis_hints) {
    RefreshAnalysisHints();
    engine_options.planner_hints = &planner_hints_;
  }
  Engine engine(&store_, engine_options);
  PATHLOG_RETURN_IF_ERROR(engine.AddRules(rules_));
  Status run_status = engine.Run();
  // Stats are preserved even when Run() fails — a kDeadlineExceeded
  // with no elapsed time, stratum, or rule context is undiagnosable.
  last_stats_ = engine.stats();
  if (options_.engine.trace_provenance) {
    const std::vector<DerivationRecord>& records = engine.provenance();
    provenance_.insert(provenance_.end(), records.begin(), records.end());
  }
  UpdateStoreGauges();
  PATHLOG_RETURN_IF_ERROR(run_status);
  dirty_ = false;
  if (options_.fire_triggers_on_materialize && !triggers_.empty()) {
    PATHLOG_RETURN_IF_ERROR(FireTriggersLocked());
  }
  if (options_.type_check_after_materialize && !signatures_.empty()) {
    TypeChecker checker(store_, signatures_);
    std::vector<TypeViolation> violations;
    checker.CheckSince(type_check_watermark_, &violations);
    type_check_watermark_ = store_.generation();
    if (!violations.empty()) {
      return TypeError(StrCat(violations[0].message,
                              violations.size() > 1
                                  ? StrCat(" (and ", violations.size() - 1,
                                           " more violations)")
                                  : ""));
    }
  }
  return FinishMutation(Status::OK());
}

Result<ResultSet> Database::Query(std::string_view query_text) {
  Result<struct Query> q = ParseQuery(query_text);
  if (!q.ok()) return q.status();
  return RunQuery(*q);
}

Result<ResultSet> Database::RunQuery(const struct Query& query) {
  QueryLogRecord rec;
  rec.kind = "query";
  rec.query = ToString(query);
  rec.strategy = StrategyName(options_.engine.strategy);
  // Sampled outside the body so a rejection anywhere inside — the
  // lazy Materialize() included, which returns early — still reaches
  // the record (and so the flight-recorder incident dump).
  ResourceBudget* query_budget = options_.engine.budget;
  const uint64_t query_rejections_before =
      query_budget != nullptr ? query_budget->rejections() : 0;
  const auto query_t0 = std::chrono::steady_clock::now();
  Result<ResultSet> answer = [&]() -> Result<ResultSet> {
    {
      // Read-only fast path: nothing to materialise, intern or commit,
      // so evaluation runs under a shared hold of the snapshot guard,
      // concurrently with other readers.
      ReadLock lock(*this);
      if (ReadOnlyReadyLocked(query)) return RunQueryLocked(query, &rec, query_t0);
    }
    // Mutating slow path, under the exclusive lock. Degraded read-only
    // mode keeps answering from the last consistent state — no
    // re-materialisation (it would grow the store past what the broken
    // log can persist) and no WAL commit.
    WriteLock lock(*this);
    if (dirty_ && !degraded()) {
      PATHLOG_RETURN_IF_ERROR(MaterializeLocked());
    }
    for (const Literal& lit : query.body) {
      PATHLOG_RETURN_IF_ERROR(CheckWellFormed(*lit.ref));
      InternNames(*lit.ref);
    }
    // Queries intern names; recovery replays oids densely, so even
    // fact-free universe growth must reach the log. (A degraded
    // database skips the commit — the checkpoint that recovers it
    // snapshots the whole store, interns included.)
    if (!degraded()) {
      PATHLOG_RETURN_IF_ERROR(CommitDurable());
    }
    return RunQueryLocked(query, &rec, query_t0);
  }();
  rec.latency_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - query_t0)
                       .count();
  rec.budget_wall_ms = rec.latency_ms;
  if (query_budget != nullptr) {
    rec.budget_rejected =
        query_budget->rejections() - query_rejections_before > 0;
    rec.budget_derivations = query_budget->derivations();
  }
  if (answer.ok()) {
    rec.rows = answer->size();
  } else {
    // The locked core may never have run (well-formedness or plan
    // error): sample the store size for the record under a shared hold.
    ReadLock lock(*this);
    rec.budget_store_bytes = store_.ApproxBytes();
    rec.status = StatusCodeName(answer.status().code());
  }
  RecordQueryObs(std::move(rec));
  return answer;
}

Result<ResultSet> Database::RunQueryLocked(
    const struct Query& query, QueryLogRecord* rec,
    std::chrono::steady_clock::time_point t0) {
  // Sampled under the lock: the store cannot change while we hold it.
  rec->budget_store_bytes = store_.ApproxBytes();
  TraceSpan query_span(options_.engine.obs.tracer, "db.query", "database");
  std::vector<Literal> body = query.body;
  std::set<std::string> user_vars;
  for (const Literal& lit : body) {
    PATHLOG_RETURN_IF_ERROR(CheckWellFormed(*lit.ref));
    // Variables occurring only under negation are existential inside
    // the negated literal and are not answer variables.
    if (lit.negated) continue;
    for (const std::string& v : VarsOf(*lit.ref)) user_vars.insert(v);
  }
  Profiler* profiler = options_.engine.obs.profiler;
  std::vector<double> estimates;
  PATHLOG_RETURN_IF_ERROR(PlanConjunction(
      &body, store_, nullptr, profiler != nullptr ? &estimates : nullptr,
      options_.use_analysis_hints ? &planner_hints_ : nullptr,
      options_.engine.planner_stats));
  rec->plan_fingerprint = PlanFingerprint(body);

  std::vector<std::string> vars(user_vars.begin(), user_vars.end());
  ResultSet result(vars);

  SemanticStructure I(store_);
  RefEvaluator eval(I, options_.engine.use_inverted_indexes);
  // The budget window for the query's own enumeration (Materialize
  // above already published its window through the engine).
  ResourceBudget* budget = options_.engine.budget;
  if (budget != nullptr) budget->Arm();
  const uint64_t rejections_before =
      budget != nullptr ? budget->rejections() : 0;
  eval.set_budget(budget);
  Bindings b;
  // Per-literal solution production and entry counts, recorded against
  // the planner's estimates (profiler only). `entered[i]` counts the
  // outer binding tuples that reached literal i, so produced/entered
  // is the observed per-probe cardinality the estimate predicts.
  std::vector<uint64_t> produced(profiler != nullptr ? body.size() : 0, 0);
  std::vector<uint64_t> entered(profiler != nullptr ? body.size() : 0, 0);
  std::function<Result<bool>(size_t)> go = [&](size_t i) -> Result<bool> {
    if (i == body.size()) {
      std::vector<Oid> row;
      row.reserve(vars.size());
      for (const std::string& v : vars) {
        std::optional<Oid> o = b.Get(v);
        if (!o) {
          return Status(UnsafeRule(StrCat(
              "query variable ", v,
              " occurs only under negation and is never bound")));
        }
        row.push_back(*o);
      }
      result.AddRow(std::move(row));
      return true;
    }
    const Literal& lit = body[i];
    if (profiler != nullptr) ++entered[i];
    if (lit.negated) {
      Result<bool> sat = eval.Satisfiable(*lit.ref, &b);
      if (!sat.ok()) return sat.status();
      if (*sat) return true;
      return go(i + 1);
    }
    return eval.Enumerate(*lit.ref, &b, [&](Oid) {
      if (profiler != nullptr) ++produced[i];
      return go(i + 1);
    });
  };
  Result<bool> r = go(0);
  if (budget != nullptr) {
    CountBudgetRejections(options_.engine.obs.metrics,
                          budget->rejections() - rejections_before);
  }
  rec->route_inverted_probes = eval.inverted_probes();
  rec->route_extent_scans = eval.extent_scans();
  rec->route_universe_scans = eval.universe_scans();
  rec->route_duplicates_suppressed = eval.duplicates_suppressed();
  if (!r.ok()) return r.status();
  result.Dedup();

  if (profiler != nullptr) {
    for (size_t i = 0; i < body.size(); ++i) {
      if (body[i].negated) continue;
      profiler->RecordDriverLiteral(ToString(body[i]),
                                    i < estimates.size() ? estimates[i] : 0,
                                    produced[i], entered[i]);
    }
    Profiler::RouteTotals routes;
    routes.inverted_probes = eval.inverted_probes();
    routes.extent_scans = eval.extent_scans();
    routes.universe_scans = eval.universe_scans();
    routes.duplicates_suppressed = eval.duplicates_suppressed();
    profiler->RecordRoutes(routes);
  }
  if (MetricsRegistry* m = options_.engine.obs.metrics; m != nullptr) {
    if (Counter* c = m->GetCounter("pathlog_queries_total",
                                   "conjunctive queries answered")) {
      c->Inc();
    }
    if (Histogram* h =
            m->GetHistogram("pathlog_query_ms", DefaultLatencyBoundsMs(),
                            "query wall time in milliseconds")) {
      h->Observe(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
    }
  }
  return result;
}

Result<std::string> Database::ExplainQuery(std::string_view query_text) {
  Result<struct Query> q = ParseQuery(query_text);
  if (!q.ok()) return q.status();
  WriteLock lock(*this);
  if (dirty_ && !degraded()) {
    PATHLOG_RETURN_IF_ERROR(MaterializeLocked());
  }
  std::vector<Literal> body = q->body;
  for (const Literal& lit : body) {
    PATHLOG_RETURN_IF_ERROR(CheckWellFormed(*lit.ref));
    InternNames(*lit.ref);
  }
  std::vector<std::string> log;
  PATHLOG_RETURN_IF_ERROR(PlanConjunction(
      &body, store_, &log, nullptr,
      options_.use_analysis_hints ? &planner_hints_ : nullptr,
      options_.engine.planner_stats));
  if (!degraded()) {
    PATHLOG_RETURN_IF_ERROR(CommitDurable());
  }
  std::string out = "plan:\n";
  for (size_t i = 0; i < log.size(); ++i) {
    out += StrCat("  ", i + 1, ". ", log[i], "\n");
  }
  out += StrCat("planner statistics: ",
                options_.engine.planner_stats == PlannerStatsMode::kSkewAware
                    ? "skew-aware (top-k heavy-hitter buckets, "
                      "residual-average floor)"
                    : "average bucket (skew-blind)",
                "\n");
  // The same fingerprint the query log records, so a slow record's
  // plan can be looked up by hash.
  out += StrCat("plan fingerprint: ", PlanFingerprint(body), "\n");
  return out;
}

Result<std::vector<Oid>> Database::Eval(std::string_view ref_text) {
  QueryLogRecord rec;
  rec.kind = "eval";
  rec.query = std::string(ref_text);
  rec.strategy = StrategyName(options_.engine.strategy);
  // Sampled outside the body so a rejection anywhere inside — the
  // lazy Materialize() included, which returns early — still reaches
  // the record (and so the flight-recorder incident dump).
  ResourceBudget* query_budget = options_.engine.budget;
  const uint64_t query_rejections_before =
      query_budget != nullptr ? query_budget->rejections() : 0;
  const auto t0 = std::chrono::steady_clock::now();
  Result<std::vector<Oid>> answer = [&]() -> Result<std::vector<Oid>> {
    Result<RefPtr> ref = ParseRef(ref_text);
    if (!ref.ok()) return ref.status();
    PATHLOG_RETURN_IF_ERROR(CheckWellFormed(**ref));
    {
      // Read-only fast path (see RunQuery): evaluate under a shared
      // hold, concurrently with other readers.
      ReadLock lock(*this);
      if (ReadOnlyReadyLocked(**ref)) return EvalLocked(**ref, &rec);
    }
    WriteLock lock(*this);
    InternNames(**ref);
    if (dirty_ && !degraded()) {
      PATHLOG_RETURN_IF_ERROR(MaterializeLocked());
    }
    if (!degraded()) {
      PATHLOG_RETURN_IF_ERROR(CommitDurable());
    }
    return EvalLocked(**ref, &rec);
  }();
  rec.latency_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  rec.budget_wall_ms = rec.latency_ms;
  if (query_budget != nullptr) {
    rec.budget_rejected =
        query_budget->rejections() - query_rejections_before > 0;
    rec.budget_derivations = query_budget->derivations();
  }
  if (answer.ok()) {
    rec.rows = answer->size();
  } else {
    // The locked core may never have run (parse error): sample the
    // store size for the record under a shared hold.
    ReadLock lock(*this);
    rec.budget_store_bytes = store_.ApproxBytes();
    rec.status = StatusCodeName(answer.status().code());
  }
  RecordQueryObs(std::move(rec));
  return answer;
}

Result<std::vector<Oid>> Database::EvalLocked(const Ref& ref,
                                              QueryLogRecord* rec) {
  // Sampled under the lock: the store cannot change while we hold it.
  rec->budget_store_bytes = store_.ApproxBytes();
  SemanticStructure I(store_);
  RefEvaluator eval(I, options_.engine.use_inverted_indexes);
  ResourceBudget* budget = options_.engine.budget;
  if (budget != nullptr) budget->Arm();
  const uint64_t rejections_before =
      budget != nullptr ? budget->rejections() : 0;
  eval.set_budget(budget);
  Bindings b;
  std::vector<Oid> out;
  Result<bool> r = eval.Enumerate(ref, &b, [&](Oid o) -> Result<bool> {
    out.push_back(o);
    return true;
  });
  if (budget != nullptr) {
    CountBudgetRejections(options_.engine.obs.metrics,
                          budget->rejections() - rejections_before);
  }
  rec->route_inverted_probes = eval.inverted_probes();
  rec->route_extent_scans = eval.extent_scans();
  rec->route_universe_scans = eval.universe_scans();
  rec->route_duplicates_suppressed = eval.duplicates_suppressed();
  if (!r.ok()) return r.status();
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<bool> Database::Holds(std::string_view ref_text) {
  QueryLogRecord rec;
  rec.kind = "holds";
  rec.query = std::string(ref_text);
  rec.strategy = StrategyName(options_.engine.strategy);
  // Sampled outside the body so a rejection anywhere inside — the
  // lazy Materialize() included, which returns early — still reaches
  // the record (and so the flight-recorder incident dump).
  ResourceBudget* query_budget = options_.engine.budget;
  const uint64_t query_rejections_before =
      query_budget != nullptr ? query_budget->rejections() : 0;
  const auto t0 = std::chrono::steady_clock::now();
  Result<bool> answer = [&]() -> Result<bool> {
    Result<RefPtr> ref = ParseRef(ref_text);
    if (!ref.ok()) return ref.status();
    PATHLOG_RETURN_IF_ERROR(CheckWellFormed(**ref));
    {
      // Read-only fast path (see RunQuery): evaluate under a shared
      // hold, concurrently with other readers.
      ReadLock lock(*this);
      if (ReadOnlyReadyLocked(**ref)) return HoldsLocked(**ref, &rec);
    }
    WriteLock lock(*this);
    InternNames(**ref);
    if (dirty_ && !degraded()) {
      PATHLOG_RETURN_IF_ERROR(MaterializeLocked());
    }
    if (!degraded()) {
      PATHLOG_RETURN_IF_ERROR(CommitDurable());
    }
    return HoldsLocked(**ref, &rec);
  }();
  rec.latency_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  rec.budget_wall_ms = rec.latency_ms;
  if (query_budget != nullptr) {
    rec.budget_rejected =
        query_budget->rejections() - query_rejections_before > 0;
    rec.budget_derivations = query_budget->derivations();
  }
  if (answer.ok()) {
    rec.rows = *answer ? 1 : 0;
  } else {
    // The locked core may never have run (parse error): sample the
    // store size for the record under a shared hold.
    ReadLock lock(*this);
    rec.budget_store_bytes = store_.ApproxBytes();
    rec.status = StatusCodeName(answer.status().code());
  }
  RecordQueryObs(std::move(rec));
  return answer;
}

Result<bool> Database::HoldsLocked(const Ref& ref, QueryLogRecord* rec) {
  // Sampled under the lock: the store cannot change while we hold it.
  rec->budget_store_bytes = store_.ApproxBytes();
  SemanticStructure I(store_);
  RefEvaluator eval(I, options_.engine.use_inverted_indexes);
  ResourceBudget* budget = options_.engine.budget;
  if (budget != nullptr) budget->Arm();
  const uint64_t rejections_before =
      budget != nullptr ? budget->rejections() : 0;
  eval.set_budget(budget);
  Bindings b;
  Result<bool> sat = eval.Satisfiable(ref, &b);
  if (budget != nullptr) {
    CountBudgetRejections(options_.engine.obs.metrics,
                          budget->rejections() - rejections_before);
  }
  rec->route_inverted_probes = eval.inverted_probes();
  rec->route_extent_scans = eval.extent_scans();
  rec->route_universe_scans = eval.universe_scans();
  rec->route_duplicates_suppressed = eval.duplicates_suppressed();
  return sat;
}

Status Database::TypeCheck(std::vector<TypeViolation>* violations) const {
  ReadLock lock(*this);
  TypeChecker checker(store_, signatures_);
  checker.CheckAll(violations);
  return Status::OK();
}

LintReport Database::Lint() const {
  ReadLock lock(*this);
  Program program;
  program.rules = rules_;
  program.triggers = triggers_;
  // Facts were asserted at load time rather than kept as Rule objects,
  // and signatures live in the SignatureTable; recover the declaration
  // forms from the loadable signature text.
  if (!signature_text_.empty()) {
    Result<Program> sigs = ParseProgram(signature_text_);
    if (sigs.ok()) program.signatures = std::move(sigs->signatures);
  }
  LintOptions lint_options;
  lint_options.head_value_mode = options_.engine.head_value_mode;
  lint_options.analyze = true;
  CollectStoreSeeds(store_, &lint_options.assume_defined,
                    &lint_options.extensional_sorts);
  return ProgramLinter(std::move(lint_options)).Lint(program);
}

void Database::RefreshAnalysisHints() {
  Program program;
  program.rules = rules_;
  program.triggers = triggers_;
  if (!signature_text_.empty()) {
    Result<Program> sigs = ParseProgram(signature_text_);
    if (sigs.ok()) program.signatures = std::move(sigs->signatures);
  }
  AnalysisOptions analysis;
  analysis.head_value_mode = options_.engine.head_value_mode;
  CollectStoreSeeds(store_, &analysis.assume_defined,
                    &analysis.extensional_sorts);
  AnalysisSummary summary = AnalyzeProgram(program, analysis, nullptr);
  planner_hints_.empty_methods = std::move(summary.empty_methods);
}

Status Database::FireTriggers() {
  WriteLock lock(*this);
  return FireTriggersLocked();
}

Status Database::FireTriggersLocked() {
  if (degraded()) return DegradedError();
  // The engine's governance follows the cascade: the shared resource
  // budget if one is attached, else the engine's wall deadline.
  TriggerOptions topts = options_.triggers;
  if (topts.max_wall_ms == 0) topts.max_wall_ms = options_.engine.max_wall_ms;
  if (topts.budget == nullptr) topts.budget = options_.engine.budget;
  if (topts.budget != nullptr) topts.budget->Arm();
  TriggerEngine engine(&store_, trigger_watermark_, topts);
  for (const TriggerRule& t : triggers_) {
    PATHLOG_RETURN_IF_ERROR(engine.AddTrigger(t));
  }
  Status st = engine.Fire();
  trigger_watermark_ = engine.watermark();
  trigger_stats_.rounds += engine.stats().rounds;
  trigger_stats_.firings += engine.stats().firings;
  trigger_stats_.facts_added += engine.stats().facts_added;
  return FinishMutation(st);
}

Result<std::string> Database::SaveSnapshotBytes() const {
  Result<std::string> store_bytes = SerializeSnapshot(store_);
  if (!store_bytes.ok()) return store_bytes.status();
  std::string program;
  {
    Program prog;
    prog.rules = rules_;
    prog.triggers = triggers_;
    program = ToString(prog);
  }
  std::string body;
  PutU64(&body, store_bytes->size());
  body.append(*store_bytes);
  PutU64(&body, program.size());
  body.append(program);
  PutU64(&body, signature_text_.size());
  body.append(signature_text_);
  PutU64(&body, trigger_watermark_);

  std::string out;
  out.reserve(kDbMagicLen + 4 + body.size());
  out.append(kDbMagic, kDbMagicLen);
  PutU32(&out, Crc32(body));
  out.append(body);
  return out;
}

Status Database::SaveSnapshotFile(const std::string& path) const {
  Result<std::string> bytes = [&]() -> Result<std::string> {
    ReadLock lock(*this);
    return SaveSnapshotBytes();
  }();
  if (!bytes.ok()) return bytes.status();
  return WriteFileAtomic(DefaultFileOps(), path, *bytes);
}

Result<Database> Database::LoadSnapshotBytes(const std::string& bytes,
                                             DatabaseOptions options,
                                             const std::string& origin) {
  std::string_view body(bytes);
  if (bytes.size() >= kDbMagicLen &&
      std::memcmp(bytes.data(), kDbMagic, kDbMagicLen) == 0) {
    ByteReader header(body.substr(kDbMagicLen));
    const uint32_t crc = header.U32();
    if (!header.Ok()) {
      return Status(InvalidArgument(
          StrCat(origin, ": corrupt database snapshot (truncated header)")));
    }
    body = body.substr(kDbMagicLen + 4);
    if (Crc32(body) != crc) {
      return Status(InvalidArgument(StrCat(
          origin, ": corrupt database snapshot (body checksum mismatch)")));
    }
  }
  // Legacy files carry the same body with no magic and no checksum.
  ByteReader r(body);
  auto get_blob = [&r](std::string* blob) {
    uint64_t len = r.U64();
    if (!r.Ok() || len > r.remaining()) return false;
    blob->assign(r.Bytes(len));
    return r.Ok();
  };
  std::string store_bytes, rules_text, sig_text;
  bool blobs_ok =
      get_blob(&store_bytes) && get_blob(&rules_text) && get_blob(&sig_text);
  const uint64_t trigger_watermark = blobs_ok ? r.U64() : 0;
  if (!blobs_ok || !r.Ok() || r.remaining() != 0) {
    return Status(
        InvalidArgument(StrCat(origin, ": corrupt database snapshot")));
  }

  Database db(options);
  Result<ObjectStore> store = DeserializeSnapshot(store_bytes);
  if (!store.ok()) return store.status();
  db.store_ = std::move(*store);
  // The deserialized store replaced the constructor's, so re-attach.
  db.store_.set_metrics(options.engine.obs.metrics);
  PATHLOG_RETURN_IF_ERROR(db.Load(sig_text));
  PATHLOG_RETURN_IF_ERROR(db.Load(rules_text));
  db.trigger_watermark_ =
      std::min(trigger_watermark, db.store_.generation());
  return db;
}

Result<Database> Database::LoadSnapshotFile(const std::string& path,
                                            DatabaseOptions options) {
  Result<std::string> bytes = DefaultFileOps()->ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return LoadSnapshotBytes(*bytes, options, path);
}

Result<Database> Database::Open(const std::string& dir,
                                DatabaseOptions options, FileOps* fops) {
  if (fops == nullptr) fops = DefaultFileOps();
  PATHLOG_RETURN_IF_ERROR(fops->CreateDir(dir));

  Database db(options);
  // Members are set after this assignment: the snapshot loader builds a
  // plain in-memory database and the assignment wipes durability state.
  const std::string snapshot_path = dir + "/snapshot.plgdb";
  if (fops->Exists(snapshot_path)) {
    Result<std::string> bytes = fops->ReadFile(snapshot_path);
    if (!bytes.ok()) return bytes.status();
    Result<Database> loaded = LoadSnapshotBytes(*bytes, options, snapshot_path);
    if (!loaded.ok()) return loaded.status();
    db = std::move(*loaded);
  }
  db.fops_ = fops;
  db.durable_dir_ = dir;

  // An atomic write interrupted before its rename leaves a temp file;
  // it was never part of the committed state. Sweep every stale one,
  // whatever write produced it.
  if (Result<std::vector<std::string>> entries = fops->ListDir(dir);
      entries.ok()) {
    for (const std::string& name : *entries) {
      if (name.size() > 4 &&
          name.compare(name.size() - 4, 4, ".tmp") == 0) {
        (void)fops->Remove(dir + "/" + name);
      }
    }
  }

  if (fops->Exists(db.WalPath())) {
    Result<std::string> bytes = fops->ReadFile(db.WalPath());
    if (!bytes.ok()) return bytes.status();
    Result<WalScan> scan = ScanWal(*bytes);
    if (!scan.ok()) return scan.status();
    for (const WalRecord& rec : scan->records) {
      switch (rec.type) {
        case WalRecordType::kIntern:
        case WalRecordType::kFact:
          PATHLOG_RETURN_IF_ERROR(ApplyWalRecordToStore(rec, &db.store_));
          break;
        case WalRecordType::kProgram:
          PATHLOG_RETURN_IF_ERROR(db.ReplayProgramText(rec.text));
          break;
        case WalRecordType::kTriggerWatermark:
          db.trigger_watermark_ = rec.watermark;
          break;
      }
    }
    db.trigger_watermark_ =
        std::min(db.trigger_watermark_, db.store_.generation());
    if (scan->valid_bytes < kWalMagicLen) {
      // Not even the magic survived the crash; recreate the log.
      PATHLOG_RETURN_IF_ERROR(db.ResetWal());
    } else {
      if (scan->torn) {
        PATHLOG_RETURN_IF_ERROR(
            fops->Truncate(db.WalPath(), scan->valid_bytes));
      }
      Result<std::unique_ptr<FileOps::WritableFile>> file =
          fops->OpenForWrite(db.WalPath(), /*truncate=*/false);
      if (!file.ok()) return file.status();
      db.wal_ = std::make_unique<WalAppender>(std::move(*file));
      db.wal_->set_obs(options.engine.obs.metrics, options.engine.obs.tracer,
                       options.engine.obs.flight);
      db.wal_good_bytes_ = scan->valid_bytes;
    }
  } else {
    PATHLOG_RETURN_IF_ERROR(db.ResetWal());
  }

  db.wal_objects_ = db.store_.UniverseSize();
  db.wal_facts_ = db.store_.generation();
  db.wal_trigger_watermark_ = db.trigger_watermark_;
  db.pending_program_text_.clear();
  return db;
}

Status Database::ResetWal() {
  wal_.reset();
  PATHLOG_RETURN_IF_ERROR(WriteFileAtomic(
      fops_, WalPath(), std::string_view(kWalMagic, kWalMagicLen)));
  Result<std::unique_ptr<FileOps::WritableFile>> file =
      fops_->OpenForWrite(WalPath(), /*truncate=*/false);
  if (!file.ok()) return file.status();
  wal_ = std::make_unique<WalAppender>(std::move(*file));
  wal_->set_obs(options_.engine.obs.metrics, options_.engine.obs.tracer,
                options_.engine.obs.flight);
  wal_good_bytes_ = kWalMagicLen;
  return Status::OK();
}

Status Database::AppendPendingToWal(uint64_t universe, uint64_t gen,
                                    bool watermark_moved,
                                    uint64_t* records) {
  // Interns first so replay never meets a fact or rule referencing an
  // object it has not seen; facts before the watermark so a recovered
  // watermark never exceeds the recovered generation.
  for (Oid o = static_cast<Oid>(wal_objects_); o < universe; ++o) {
    const ObjectKind kind = store_.kind(o);
    const int64_t int_value =
        kind == ObjectKind::kInt ? store_.IntValue(o) : 0;
    std::string name;
    if (kind != ObjectKind::kInt) {
      name = store_.DisplayName(o);
      if (kind == ObjectKind::kString) {
        // Strings display quoted; log the raw value.
        name = name.substr(1, name.size() - 2);
      }
    }
    PATHLOG_RETURN_IF_ERROR(
        wal_->Append(EncodeWalIntern(o, kind, int_value, name)));
    ++*records;
  }
  if (!pending_program_text_.empty()) {
    PATHLOG_RETURN_IF_ERROR(
        wal_->Append(EncodeWalProgram(pending_program_text_)));
    ++*records;
  }
  for (uint64_t g = wal_facts_; g < gen; ++g) {
    PATHLOG_RETURN_IF_ERROR(wal_->Append(EncodeWalFact(g, store_.FactAt(g))));
    ++*records;
  }
  if (watermark_moved) {
    PATHLOG_RETURN_IF_ERROR(
        wal_->Append(EncodeWalTriggerWatermark(trigger_watermark_)));
    ++*records;
  }
  if (options_.durability.fsync_policy ==
      DurabilityOptions::FsyncPolicy::kAlways) {
    PATHLOG_RETURN_IF_ERROR(wal_->Sync());
  }
  return Status::OK();
}

Status Database::ReopenWalTruncated() {
  wal_.reset();
  // A failed batch may have torn bytes into the log's middle (a short
  // write); appending past them would corrupt the valid prefix. Cut
  // back to the last length every record of which is known good.
  PATHLOG_RETURN_IF_ERROR(fops_->Truncate(WalPath(), wal_good_bytes_));
  Result<std::unique_ptr<FileOps::WritableFile>> file =
      fops_->OpenForWrite(WalPath(), /*truncate=*/false);
  if (!file.ok()) return file.status();
  wal_ = std::make_unique<WalAppender>(std::move(*file));
  wal_->set_obs(options_.engine.obs.metrics, options_.engine.obs.tracer,
                options_.engine.obs.flight);
  return Status::OK();
}

void Database::BackoffSleep(uint64_t ms) {
  if (options_.durability.backoff_sleep) {
    options_.durability.backoff_sleep(ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

Status Database::DegradedError() const {
  return Unavailable(StrCat(
      "database is in degraded read-only mode (", wal_error_.message(),
      "); queries serve the last consistent state, mutations are "
      "rejected until a checkpoint succeeds"));
}

Status Database::EnterDegradedMode(Status cause) {
  wal_error_ = cause;
  // Publish to unlocked readers of degraded() — the health callback
  // runs on the stats server's accept thread.
  degraded_.store(true, std::memory_order_release);
  ++degraded_entries_;
  if (MetricsRegistry* m = options_.engine.obs.metrics; m != nullptr) {
    if (Counter* c =
            m->GetCounter("pathlog_db_degraded_entries_total",
                          "entries into degraded read-only mode")) {
      c->Inc();
    }
    if (Gauge* g = m->GetGauge("pathlog_db_degraded",
                               "1 while serving degraded read-only")) {
      g->Set(1);
    }
  }
  // Record the entry first so the incident dump below includes it.
  if (FlightRecorder* flight = options_.engine.obs.flight;
      flight != nullptr) {
    std::string args = "{\"cause\":";
    AppendJsonString(&args, cause.ToString());
    args += "}";
    flight->Record("db.degraded", "database", /*dur_us=*/0, args);
  }
  MaybeDumpFlightRecorder("degraded_mode");
  return DegradedError();
}

Status Database::CommitDurable() {
  if (degraded()) return DegradedError();
  if (!wal_) return Status::OK();

  const uint64_t universe = store_.UniverseSize();
  const uint64_t gen = store_.generation();
  const bool watermark_moved = trigger_watermark_ != wal_trigger_watermark_;
  if (universe == wal_objects_ && gen == wal_facts_ &&
      pending_program_text_.empty() && !watermark_moved) {
    return Status::OK();
  }

  const DurabilityOptions& dur = options_.durability;
  uint64_t records = 0;
  uint64_t bytes_before = wal_->appended_bytes();
  Status st = AppendPendingToWal(universe, gen, watermark_moved, &records);
  uint64_t backoff = dur.initial_backoff_ms;
  uint32_t attempt = 0;
  while (!st.ok() && IsTransientIoError(st) &&
         attempt < dur.max_transient_retries) {
    ++attempt;
    ++wal_retries_;
    if (MetricsRegistry* m = options_.engine.obs.metrics; m != nullptr) {
      if (Counter* c =
              m->GetCounter("pathlog_wal_retries_total",
                            "transient WAL failures retried with backoff")) {
        c->Inc();
      }
    }
    BackoffSleep(backoff);
    backoff = std::min(backoff * 2, dur.max_backoff_ms);
    Status reopen = ReopenWalTruncated();
    if (!reopen.ok()) {
      // The reopen itself can hit the same transient condition; let
      // the loop treat it like another failed attempt.
      st = reopen;
      continue;
    }
    records = 0;
    bytes_before = wal_->appended_bytes();
    st = AppendPendingToWal(universe, gen, watermark_moved, &records);
  }
  if (!st.ok()) return EnterDegradedMode(st);

  wal_good_bytes_ += wal_->appended_bytes() - bytes_before;
  wal_records_ += records;
  wal_objects_ = universe;
  wal_facts_ = gen;
  wal_trigger_watermark_ = trigger_watermark_;
  pending_program_text_.clear();

  if (dur.rotate_wal_bytes > 0 && wal_good_bytes_ >= dur.rotate_wal_bytes) {
    ++wal_rotations_;
    if (MetricsRegistry* m = options_.engine.obs.metrics; m != nullptr) {
      if (Counter* c = m->GetCounter(
              "pathlog_wal_rotations_total",
              "WAL segment rotations (size-triggered checkpoints)")) {
        c->Inc();
      }
    }
    return CheckpointLocked();
  }
  if (dur.checkpoint_every > 0 && wal_records_ >= dur.checkpoint_every) {
    return CheckpointLocked();
  }
  return Status::OK();
}

Status Database::FinishMutation(Status st) {
  UpdateStoreGauges();
  if (!wal_) return st;
  Status commit = CommitDurable();
  // The mutation's own error wins, but the commit still ran: whatever
  // the store gained before the failure is on disk either way.
  return st.ok() ? commit : st;
}

Status Database::Checkpoint() {
  WriteLock lock(*this);
  return CheckpointLocked();
}

Status Database::CheckpointLocked() {
  if (fops_ == nullptr) {
    return InvalidArgument(
        "Checkpoint() is only meaningful for a database from "
        "Database::Open");
  }
  TraceSpan span(options_.engine.obs.tracer, "wal.checkpoint", "wal");
  FlightSpan flight_span(options_.engine.obs.flight, "wal.checkpoint", "wal");
  if (MetricsRegistry* m = options_.engine.obs.metrics; m != nullptr) {
    if (Counter* c = m->GetCounter("pathlog_checkpoints_total",
                                   "snapshot+WAL-reset checkpoints")) {
      c->Inc();
    }
  }
  Result<std::string> bytes = SaveSnapshotBytes();
  if (!bytes.ok()) return bytes.status();
  PATHLOG_RETURN_IF_ERROR(WriteFileAtomic(fops_, SnapshotPath(), *bytes));
  // A crash between the rename above and the reset below leaves a WAL
  // overlapping the snapshot; replay is idempotent, so that window is
  // safe.
  PATHLOG_RETURN_IF_ERROR(ResetWal());
  wal_objects_ = store_.UniverseSize();
  wal_facts_ = store_.generation();
  wal_trigger_watermark_ = trigger_watermark_;
  wal_records_ = 0;
  pending_program_text_.clear();
  // A successful checkpoint is the recovery probe: the snapshot holds
  // everything the broken WAL could not persist, so read-write service
  // resumes on a fresh log.
  wal_error_ = Status::OK();
  degraded_.store(false, std::memory_order_release);
  if (MetricsRegistry* m = options_.engine.obs.metrics; m != nullptr) {
    if (Gauge* g = m->GetGauge("pathlog_db_degraded",
                               "1 while serving degraded read-only")) {
      g->Set(0);
    }
  }
  return Status::OK();
}

DatabaseHealth Database::Health() const {
  ReadLock lock(*this);
  DatabaseHealth h;
  h.durable = wal_ != nullptr || fops_ != nullptr;
  h.degraded = degraded();
  if (h.degraded) h.degraded_cause = wal_error_.message();
  h.degraded_entries = degraded_entries_;
  h.wal_retries = wal_retries_;
  h.wal_rotations = wal_rotations_;
  h.wal_records = wal_records_;
  h.wal_bytes = wal_good_bytes_;
  h.store_bytes = store_.ApproxBytes();
  h.objects = store_.UniverseSize();
  h.facts = store_.generation();
  return h;
}

Status Database::ReplayProgramText(const std::string& text) {
  Result<Program> parsed = ParseProgram(text);
  if (!parsed.ok()) return parsed.status();
  // A crash between checkpoint and WAL reset leaves program records
  // that overlap the snapshot; skip anything already installed.
  std::set<std::string> have;
  for (const Rule& rule : rules_) have.insert(ToString(rule));
  for (const TriggerRule& trigger : triggers_) have.insert(ToString(trigger));
  if (!signature_text_.empty()) {
    Result<Program> sigs = ParseProgram(signature_text_);
    if (sigs.ok()) {
      for (const SignatureDecl& sig : sigs->signatures) {
        have.insert(ToString(sig));
      }
    }
  }
  Program fresh;
  for (const SignatureDecl& sig : parsed->signatures) {
    if (have.count(ToString(sig)) == 0) fresh.signatures.push_back(sig);
  }
  for (const TriggerRule& trigger : parsed->triggers) {
    if (have.count(ToString(trigger)) == 0) fresh.triggers.push_back(trigger);
  }
  for (const Rule& rule : parsed->rules) {
    if (have.count(ToString(rule)) == 0) fresh.rules.push_back(rule);
  }
  return LoadProgramLocked(fresh);
}

std::string Database::ExplainFact(uint64_t gen) const {
  ReadLock lock(*this);
  if (gen >= store_.generation()) {
    return "no such fact.";
  }
  // Records are ordered by first_gen; find the covering one.
  auto it = std::upper_bound(
      provenance_.begin(), provenance_.end(), gen,
      [](uint64_t g, const DerivationRecord& r) { return g < r.first_gen; });
  if (it != provenance_.begin()) {
    const DerivationRecord& r = *std::prev(it);
    if (gen < r.end_gen && r.rule_index < rules_.size()) {
      std::string out =
          StrCat(FactToString(store_.FactAt(gen), store_),
                 "\n  derived by rule: ", ToString(rules_[r.rule_index]));
      if (!r.bindings.empty()) {
        out += "\n  with";
        for (const auto& [var, oid] : r.bindings) {
          out += StrCat(" ", var, "=", store_.DisplayName(oid));
        }
      }
      return out;
    }
  }
  return StrCat(FactToString(store_.FactAt(gen), store_),
                "\n  extensional (asserted directly).");
}

Result<std::string> Database::ExplainFactJson(uint64_t gen) const {
  ReadLock lock(*this);
  if (gen >= store_.generation()) {
    return Status(NotFound(StrCat("no fact with generation ", gen)));
  }
  std::string out = StrCat("{\"gen\":", gen, ",\"fact\":");
  AppendJsonString(&out, FactToString(store_.FactAt(gen), store_));
  auto it = std::upper_bound(
      provenance_.begin(), provenance_.end(), gen,
      [](uint64_t g, const DerivationRecord& r) { return g < r.first_gen; });
  if (it != provenance_.begin()) {
    const DerivationRecord& r = *std::prev(it);
    if (gen < r.end_gen && r.rule_index < rules_.size()) {
      out += ",\"kind\":\"derived\",\"rule\":";
      AppendJsonString(&out, ToString(rules_[r.rule_index]));
      out += StrCat(",\"rule_index\":", r.rule_index, ",\"bindings\":{");
      bool first = true;
      for (const auto& [var, oid] : r.bindings) {
        if (!first) out += ",";
        first = false;
        AppendJsonString(&out, var);
        out += ":";
        AppendJsonString(&out, store_.DisplayName(oid));
      }
      out += "}}";
      return out;
    }
  }
  out += ",\"kind\":\"extensional\"}";
  return out;
}

}  // namespace pathlog
