#include "query/database.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <set>

#include "ast/analysis.h"
#include "ast/printer.h"
#include "base/strings.h"
#include "eval/ref_eval.h"
#include "parser/parser.h"
#include "query/planner.h"
#include "semantics/structure.h"
#include "store/fact.h"
#include "store/snapshot.h"

namespace pathlog {

Database::Database() : Database(DatabaseOptions{}) {}

Database::Database(DatabaseOptions options) : options_(options) {
  // The built-in method and the structural type names always exist.
  store_.InternSymbol(kSelfMethodName);
  store_.InternSymbol(kAnyTypeName);
  store_.InternSymbol(kIntTypeName);
  store_.InternSymbol(kStringTypeName);
}

void Database::InternNames(const Ref& t) {
  switch (t.kind) {
    case RefKind::kName:
      switch (t.name_kind) {
        case NameKind::kSymbol:
          store_.InternSymbol(t.text);
          break;
        case NameKind::kInt:
          store_.InternInt(t.int_value);
          break;
        case NameKind::kString:
          store_.InternString(t.text);
          break;
      }
      return;
    case RefKind::kVar:
      return;
    case RefKind::kParen:
      InternNames(*t.base);
      return;
    case RefKind::kPath:
      InternNames(*t.base);
      InternNames(*t.method);
      for (const RefPtr& a : t.args) InternNames(*a);
      return;
    case RefKind::kMolecule:
      InternNames(*t.base);
      for (const Filter& f : t.filters) {
        if (f.method) InternNames(*f.method);
        for (const RefPtr& a : f.args) InternNames(*a);
        if (f.value) InternNames(*f.value);
        for (const RefPtr& e : f.elems) InternNames(*e);
      }
      return;
  }
}

Status Database::Load(std::string_view program_text) {
  Result<Program> program = ParseProgram(program_text);
  if (!program.ok()) return program.status();
  return LoadProgram(*program);
}

Status Database::LoadProgram(const Program& program) {
  if (!program.queries.empty()) {
    return InvalidArgument(
        "programs loaded into a Database must not contain `?-` queries; "
        "run them with Database::Query");
  }
  if (options_.lint_on_load) {
    LintOptions lint_options;
    lint_options.head_value_mode = options_.engine.head_value_mode;
    lint_options.errors_only = true;
    PATHLOG_RETURN_IF_ERROR(
        ReportToStatus(ProgramLinter(lint_options).Lint(program)));
  }
  for (const SignatureDecl& sig : program.signatures) {
    PATHLOG_RETURN_IF_ERROR(signatures_.Declare(sig, &store_));
    signature_text_ += ToString(sig);
    signature_text_ += "\n";
  }
  for (const TriggerRule& trigger : program.triggers) {
    PATHLOG_RETURN_IF_ERROR(CheckTriggerWellFormed(trigger));
    InternNames(*trigger.rule.head);
    for (const Literal& lit : trigger.rule.body) InternNames(*lit.ref);
    triggers_.push_back(trigger);
  }
  for (const Rule& rule : program.rules) {
    PATHLOG_RETURN_IF_ERROR(CheckRuleWellFormed(rule));
    InternNames(*rule.head);
    for (const Literal& lit : rule.body) InternNames(*lit.ref);
    if (rule.IsFact()) {
      HeadAsserter asserter(&store_, options_.engine.head_value_mode);
      Bindings empty;
      PATHLOG_RETURN_IF_ERROR(asserter.Assert(*rule.head, &empty));
    } else {
      rules_.push_back(rule);
    }
  }
  dirty_ = true;
  return Status::OK();
}

Status Database::Materialize() {
  Engine engine(&store_, options_.engine);
  PATHLOG_RETURN_IF_ERROR(engine.AddRules(rules_));
  PATHLOG_RETURN_IF_ERROR(engine.Run());
  last_stats_ = engine.stats();
  if (options_.engine.trace_provenance) {
    const std::vector<DerivationRecord>& records = engine.provenance();
    provenance_.insert(provenance_.end(), records.begin(), records.end());
  }
  dirty_ = false;
  if (options_.fire_triggers_on_materialize && !triggers_.empty()) {
    PATHLOG_RETURN_IF_ERROR(FireTriggers());
  }
  if (options_.type_check_after_materialize && !signatures_.empty()) {
    TypeChecker checker(store_, signatures_);
    std::vector<TypeViolation> violations;
    checker.CheckSince(type_check_watermark_, &violations);
    type_check_watermark_ = store_.generation();
    if (!violations.empty()) {
      return TypeError(StrCat(violations[0].message,
                              violations.size() > 1
                                  ? StrCat(" (and ", violations.size() - 1,
                                           " more violations)")
                                  : ""));
    }
  }
  return Status::OK();
}

Result<ResultSet> Database::Query(std::string_view query_text) {
  Result<struct Query> q = ParseQuery(query_text);
  if (!q.ok()) return q.status();
  return RunQuery(*q);
}

Result<ResultSet> Database::RunQuery(const struct Query& query) {
  if (dirty_) {
    PATHLOG_RETURN_IF_ERROR(Materialize());
  }
  std::vector<Literal> body = query.body;
  std::set<std::string> user_vars;
  for (const Literal& lit : body) {
    PATHLOG_RETURN_IF_ERROR(CheckWellFormed(*lit.ref));
    InternNames(*lit.ref);
    // Variables occurring only under negation are existential inside
    // the negated literal and are not answer variables.
    if (lit.negated) continue;
    for (const std::string& v : VarsOf(*lit.ref)) user_vars.insert(v);
  }
  PATHLOG_RETURN_IF_ERROR(PlanConjunction(&body, store_, nullptr));

  std::vector<std::string> vars(user_vars.begin(), user_vars.end());
  ResultSet result(vars);

  SemanticStructure I(store_);
  RefEvaluator eval(I, options_.engine.use_inverted_indexes);
  Bindings b;
  std::function<Result<bool>(size_t)> go = [&](size_t i) -> Result<bool> {
    if (i == body.size()) {
      std::vector<Oid> row;
      row.reserve(vars.size());
      for (const std::string& v : vars) {
        std::optional<Oid> o = b.Get(v);
        if (!o) {
          return Status(UnsafeRule(StrCat(
              "query variable ", v,
              " occurs only under negation and is never bound")));
        }
        row.push_back(*o);
      }
      result.AddRow(std::move(row));
      return true;
    }
    const Literal& lit = body[i];
    if (lit.negated) {
      Result<bool> sat = eval.Satisfiable(*lit.ref, &b);
      if (!sat.ok()) return sat.status();
      if (*sat) return true;
      return go(i + 1);
    }
    return eval.Enumerate(*lit.ref, &b, [&](Oid) { return go(i + 1); });
  };
  Result<bool> r = go(0);
  if (!r.ok()) return r.status();
  result.Dedup();
  return result;
}

Result<std::string> Database::ExplainQuery(std::string_view query_text) {
  Result<struct Query> q = ParseQuery(query_text);
  if (!q.ok()) return q.status();
  if (dirty_) {
    PATHLOG_RETURN_IF_ERROR(Materialize());
  }
  std::vector<Literal> body = q->body;
  for (const Literal& lit : body) {
    PATHLOG_RETURN_IF_ERROR(CheckWellFormed(*lit.ref));
    InternNames(*lit.ref);
  }
  std::vector<std::string> log;
  PATHLOG_RETURN_IF_ERROR(PlanConjunction(&body, store_, &log));
  std::string out = "plan:\n";
  for (size_t i = 0; i < log.size(); ++i) {
    out += StrCat("  ", i + 1, ". ", log[i], "\n");
  }
  return out;
}

Result<std::vector<Oid>> Database::Eval(std::string_view ref_text) {
  Result<RefPtr> ref = ParseRef(ref_text);
  if (!ref.ok()) return ref.status();
  PATHLOG_RETURN_IF_ERROR(CheckWellFormed(**ref));
  InternNames(**ref);
  if (dirty_) {
    PATHLOG_RETURN_IF_ERROR(Materialize());
  }
  SemanticStructure I(store_);
  RefEvaluator eval(I, options_.engine.use_inverted_indexes);
  Bindings b;
  std::vector<Oid> out;
  Result<bool> r = eval.Enumerate(**ref, &b, [&](Oid o) -> Result<bool> {
    out.push_back(o);
    return true;
  });
  if (!r.ok()) return r.status();
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<bool> Database::Holds(std::string_view ref_text) {
  Result<RefPtr> ref = ParseRef(ref_text);
  if (!ref.ok()) return ref.status();
  PATHLOG_RETURN_IF_ERROR(CheckWellFormed(**ref));
  InternNames(**ref);
  if (dirty_) {
    PATHLOG_RETURN_IF_ERROR(Materialize());
  }
  SemanticStructure I(store_);
  RefEvaluator eval(I, options_.engine.use_inverted_indexes);
  Bindings b;
  return eval.Satisfiable(**ref, &b);
}

Status Database::TypeCheck(std::vector<TypeViolation>* violations) const {
  TypeChecker checker(store_, signatures_);
  checker.CheckAll(violations);
  return Status::OK();
}

LintReport Database::Lint() const {
  Program program;
  program.rules = rules_;
  program.triggers = triggers_;
  // Facts were asserted at load time rather than kept as Rule objects,
  // and signatures live in the SignatureTable; recover the declaration
  // forms from the loadable signature text.
  if (!signature_text_.empty()) {
    Result<Program> sigs = ParseProgram(signature_text_);
    if (sigs.ok()) program.signatures = std::move(sigs->signatures);
  }
  LintOptions lint_options;
  lint_options.head_value_mode = options_.engine.head_value_mode;
  for (Oid m : store_.ScalarMethods()) {
    lint_options.assume_defined.insert(store_.DisplayName(m));
  }
  for (Oid m : store_.SetMethods()) {
    lint_options.assume_defined.insert(store_.DisplayName(m));
  }
  return ProgramLinter(std::move(lint_options)).Lint(program);
}

Status Database::FireTriggers() {
  TriggerEngine engine(&store_, trigger_watermark_, options_.triggers);
  for (const TriggerRule& t : triggers_) {
    PATHLOG_RETURN_IF_ERROR(engine.AddTrigger(t));
  }
  Status st = engine.Fire();
  trigger_watermark_ = engine.watermark();
  trigger_stats_.rounds += engine.stats().rounds;
  trigger_stats_.firings += engine.stats().firings;
  trigger_stats_.facts_added += engine.stats().facts_added;
  return st;
}

Status Database::SaveSnapshotFile(const std::string& path) const {
  std::string store_bytes = SerializeSnapshot(store_);
  std::string program;
  {
    Program prog;
    prog.rules = rules_;
    prog.triggers = triggers_;
    program = ToString(prog);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return InvalidArgument(StrCat("cannot open ", path, " for writing"));
  }
  auto put_u64 = [&out](uint64_t v) {
    char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
    out.write(buf, 8);
  };
  put_u64(store_bytes.size());
  out.write(store_bytes.data(),
            static_cast<std::streamsize>(store_bytes.size()));
  put_u64(program.size());
  out.write(program.data(), static_cast<std::streamsize>(program.size()));
  put_u64(signature_text_.size());
  out.write(signature_text_.data(),
            static_cast<std::streamsize>(signature_text_.size()));
  put_u64(trigger_watermark_);
  if (!out) {
    return InvalidArgument(StrCat("failed writing snapshot to ", path));
  }
  return Status::OK();
}

Result<Database> Database::LoadSnapshotFile(const std::string& path,
                                            DatabaseOptions options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(NotFound(StrCat("cannot open snapshot file ", path)));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  size_t pos = 0;
  auto get_u64 = [&](uint64_t* v) {
    if (bytes.size() - pos < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[pos + i]))
            << (8 * i);
    }
    pos += 8;
    return true;
  };
  auto get_blob = [&](std::string* blob) {
    uint64_t len = 0;
    if (!get_u64(&len) || bytes.size() - pos < len) return false;
    blob->assign(bytes, pos, len);
    pos += len;
    return true;
  };
  std::string store_bytes, rules_text, sig_text;
  uint64_t trigger_watermark = 0;
  if (!get_blob(&store_bytes) || !get_blob(&rules_text) ||
      !get_blob(&sig_text) || !get_u64(&trigger_watermark) ||
      pos != bytes.size()) {
    return Status(
        InvalidArgument(StrCat(path, ": corrupt database snapshot")));
  }

  Database db(options);
  Result<ObjectStore> store = DeserializeSnapshot(store_bytes);
  if (!store.ok()) return store.status();
  db.store_ = std::move(*store);
  PATHLOG_RETURN_IF_ERROR(db.Load(sig_text));
  PATHLOG_RETURN_IF_ERROR(db.Load(rules_text));
  db.trigger_watermark_ =
      std::min(trigger_watermark, db.store_.generation());
  return db;
}

std::string Database::ExplainFact(uint64_t gen) const {
  if (gen >= store_.generation()) {
    return "no such fact.";
  }
  // Records are ordered by first_gen; find the covering one.
  auto it = std::upper_bound(
      provenance_.begin(), provenance_.end(), gen,
      [](uint64_t g, const DerivationRecord& r) { return g < r.first_gen; });
  if (it != provenance_.begin()) {
    const DerivationRecord& r = *std::prev(it);
    if (gen < r.end_gen && r.rule_index < rules_.size()) {
      std::string out =
          StrCat(FactToString(store_.FactAt(gen), store_),
                 "\n  derived by rule: ", ToString(rules_[r.rule_index]));
      if (!r.bindings.empty()) {
        out += "\n  with";
        for (const auto& [var, oid] : r.bindings) {
          out += StrCat(" ", var, "=", store_.DisplayName(oid));
        }
      }
      return out;
    }
  }
  return StrCat(FactToString(store_.FactAt(gen), store_),
                "\n  extensional (asserted directly).");
}

}  // namespace pathlog
