// Cost-based ordering of conjunctions.
//
// The evaluator binds variables left-to-right, so literal order
// dominates query cost: a literal whose anchor is bound (or driven by
// a small extent) should run before one that would scan. The planner
// orders greedily by estimated driver cardinality, subject to the same
// safety constraints as OrderLiteralsForSafety (negated literals and
// `->>` filter results after their variables are bound).

#ifndef PATHLOG_QUERY_PLANNER_H_
#define PATHLOG_QUERY_PLANNER_H_

#include <set>
#include <string>
#include <vector>

#include "ast/program.h"
#include "base/result.h"
#include "store/object_store.h"

namespace pathlog {

// PlannerStatsMode (the runtime-bound estimator toggle) lives in
// store/method_stats.h next to the statistics it selects between, so
// EngineOptions can carry it without a header cycle.

/// Facts the semantic analyses (lint/dataflow/analyses.h) proved about
/// the installed program, consulted by the planner when provided.
/// Optional everywhere: a null hints pointer keeps the estimates
/// purely statistical.
struct PlannerHints {
  /// Methods that provably never hold a tuple under any evaluation
  /// strategy (AnalysisSummary::empty_methods). A literal driven by
  /// one enumerates nothing, so it costs nothing and short-circuits
  /// its conjunction.
  std::set<std::string> empty_methods;
};

/// Estimated number of candidate bindings the evaluator must try for
/// `t` given the already-bound variables: 1 for a bound anchor, the
/// extent/entry count for an index-driven anchor, the universe size
/// for an undriven variable.
double EstimateLiteralCost(const Ref& t, const std::set<std::string>& bound,
                           const ObjectStore& store,
                           const PlannerHints* hints = nullptr,
                           PlannerStatsMode stats_mode =
                               PlannerStatsMode::kSkewAware);

/// Reorders `body` greedily by cost subject to safety. On success the
/// body is in execution order; kUnsafeRule when no safe order exists.
/// If `cost_log` is non-null it receives one line per literal with the
/// estimate used (for ExplainQuery). If `estimates` is non-null it
/// receives the raw per-literal estimates, aligned with the final body
/// order (for the profiler's estimate-vs-actual record).
Status PlanConjunction(std::vector<Literal>* body, const ObjectStore& store,
                       std::vector<std::string>* cost_log = nullptr,
                       std::vector<double>* estimates = nullptr,
                       const PlannerHints* hints = nullptr,
                       PlannerStatsMode stats_mode =
                           PlannerStatsMode::kSkewAware);

}  // namespace pathlog

#endif  // PATHLOG_QUERY_PLANNER_H_
