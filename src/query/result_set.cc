#include "query/result_set.h"

#include <algorithm>
#include <set>

#include "base/strings.h"

namespace pathlog {

void ResultSet::Dedup() {
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

std::vector<std::string> ResultSet::Column(const std::string& var,
                                           const ObjectStore& store) const {
  std::set<std::string> names;
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i] != var) continue;
    for (const std::vector<Oid>& row : rows_) {
      names.insert(store.DisplayName(row[i]));
    }
  }
  return std::vector<std::string>(names.begin(), names.end());
}

bool ResultSet::ContainsRow(
    const std::map<std::string, std::string>& expected,
    const ObjectStore& store) const {
  for (const std::vector<Oid>& row : rows_) {
    bool match = true;
    for (const auto& [var, name] : expected) {
      auto it = std::find(vars_.begin(), vars_.end(), var);
      if (it == vars_.end() ||
          store.DisplayName(row[static_cast<size_t>(it - vars_.begin())]) !=
              name) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string ResultSet::ToString(const ObjectStore& store,
                                size_t max_rows) const {
  if (rows_.empty()) return "no answers.\n";
  std::string out = StrJoin(vars_, " | ");
  out += "\n";
  size_t shown = 0;
  for (const std::vector<Oid>& row : rows_) {
    if (shown++ >= max_rows) {
      out += StrCat("... (", rows_.size() - max_rows, " more rows)\n");
      break;
    }
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (Oid o : row) cells.push_back(store.DisplayName(o));
    out += StrJoin(cells, " | ");
    out += "\n";
  }
  return out;
}

}  // namespace pathlog
