// Query answers: named variables and rows of objects.

#ifndef PATHLOG_QUERY_RESULT_SET_H_
#define PATHLOG_QUERY_RESULT_SET_H_

#include <map>
#include <string>
#include <vector>

#include "store/object_store.h"

namespace pathlog {

class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(std::vector<std::string> vars) : vars_(std::move(vars)) {}

  const std::vector<std::string>& vars() const { return vars_; }
  const std::vector<std::vector<Oid>>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  void AddRow(std::vector<Oid> row) { rows_.push_back(std::move(row)); }
  void Dedup();

  /// The values of one variable across all rows (deduplicated, sorted
  /// by display name), as display names — convenient for tests.
  std::vector<std::string> Column(const std::string& var,
                                  const ObjectStore& store) const;

  /// True iff some row assigns exactly these display names (a subset of
  /// the variables may be given).
  bool ContainsRow(const std::map<std::string, std::string>& expected,
                   const ObjectStore& store) const;

  /// Bounded ASCII rendering ("no answers." when empty).
  std::string ToString(const ObjectStore& store, size_t max_rows = 50) const;

 private:
  std::vector<std::string> vars_;
  std::vector<std::vector<Oid>> rows_;
};

}  // namespace pathlog

#endif  // PATHLOG_QUERY_RESULT_SET_H_
