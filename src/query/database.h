// The user-facing PathLog database: parse programs, materialise rules,
// answer queries. This is the library's primary entry point; see
// examples/quickstart.cc.
//
//   Database db;
//   db.Load("p1 : employee. p1[salary->1000].") -> Status
//   db.Load("X[desc->>{Y}] <- X[kids->>{Y}].")  (rules trigger lazy
//                                                re-materialisation)
//   db.Query("?- X:employee[salary->S].")       -> ResultSet {X, S}
//   db.Eval("p1..assistants.salary")            -> objects denoted
//   db.Holds("p1[salary->1000]")                -> bool
//
// Concurrency contract (docs/IMPLEMENTATION.md "Concurrency contract"
// has the full statement): every public entry point serialises on one
// reader/writer snapshot guard. Query/RunQuery/Eval/Holds take the
// guard shared when the operation is provably read-only — nothing to
// materialise, every name already interned, nothing pending for the
// WAL — so concurrent read-only queries evaluate in parallel and are
// safe against a concurrent mutator (Load/Materialize/Checkpoint/
// FireTriggers take the guard exclusively). degraded() and Health()
// are safe from any thread (the stats server's health callback runs
// on the accept thread). NOT covered: the direct store()/rules()/
// engine_stats()/provenance()/trigger_stats() accessors return
// references into guarded state without holding the guard — callers
// own the quiescence there — and a shared options_.engine.budget is
// per-operation state, so attach budgets only to single-threaded
// databases. SetObsSinks swaps sink pointers that lock-free readers
// consult; call it only while no other thread is inside the database.

#ifndef PATHLOG_QUERY_DATABASE_H_
#define PATHLOG_QUERY_DATABASE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "active/trigger_engine.h"
#include "ast/program.h"
#include "base/mutex.h"
#include "base/result.h"
#include "base/thread_annotations.h"
#include "eval/engine.h"
#include "lint/lint.h"
#include "obs/query_log.h"
#include "query/planner.h"
#include "query/result_set.h"
#include "store/file_ops.h"
#include "store/object_store.h"
#include "store/wal.h"
#include "types/signature.h"
#include "types/type_check.h"

namespace pathlog {

/// Crash-safety policy for a database opened with Database::Open.
/// Every mutation — loads, materialisations, trigger firings, even the
/// name interning a query performs — is appended to a write-ahead log
/// before the call returns; recovery replays the newest valid snapshot
/// plus the WAL's valid prefix, truncating a torn tail.
struct DurabilityOptions {
  enum class FsyncPolicy : uint8_t {
    /// fsync the WAL at every commit boundary: a returned OK means the
    /// mutation survives any crash.
    kAlways,
    /// Never fsync (the OS flushes when it pleases). Recovery still
    /// works from whatever prefix reached disk; only the durability
    /// of the most recent commits is at risk. For bulk loads.
    kNever,
  };
  FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
  /// Checkpoint (snapshot + WAL reset) automatically once this many
  /// WAL records have accumulated; 0 = only on explicit Checkpoint().
  uint64_t checkpoint_every = 0;
  /// A WAL append/fsync failure classified as transient (kUnavailable:
  /// EIO, ENOSPC, ...) is retried up to this many times. Each retry
  /// truncates the log back to its last known-good length, reopens it
  /// and re-appends the whole pending batch — a short write may have
  /// torn the middle, so appending past it would corrupt the log.
  /// Failures with any other code are treated as persistent: no
  /// retries, immediate degraded read-only mode.
  uint32_t max_transient_retries = 4;
  /// Backoff before the first retry, doubling per attempt and capped
  /// at max_backoff_ms.
  uint64_t initial_backoff_ms = 1;
  uint64_t max_backoff_ms = 64;
  /// Rotate the WAL — auto-checkpoint, which snapshots and resets the
  /// log — once the segment reaches this many bytes; 0 = never.
  /// Bounds both recovery time and log disk usage.
  uint64_t rotate_wal_bytes = 64ull << 20;
  /// Injectable sleep for retry backoff (argument: milliseconds);
  /// null = a real sleep. Tests inject a recorder so retry schedules
  /// are asserted without real delays.
  std::function<void(uint64_t)> backoff_sleep;
};

/// A point-in-time health summary of a database (see Database::Health,
/// and the shell's \health command).
struct DatabaseHealth {
  bool durable = false;   ///< came from Open() and is (or was) logging
  bool degraded = false;  ///< serving read-only after a WAL failure
  /// Message of the WAL failure that caused degraded mode ("" if not
  /// degraded).
  std::string degraded_cause;
  uint64_t degraded_entries = 0;  ///< times degraded mode was entered
  uint64_t wal_retries = 0;       ///< transient WAL failures retried
  uint64_t wal_rotations = 0;     ///< size-triggered WAL rotations
  uint64_t wal_records = 0;       ///< records since the last checkpoint
  uint64_t wal_bytes = 0;         ///< known-good WAL length in bytes
  uint64_t store_bytes = 0;       ///< ObjectStore::ApproxBytes()
  uint64_t objects = 0;           ///< universe size
  uint64_t facts = 0;             ///< fact-log length
};

struct DatabaseOptions {
  EngineOptions engine;
  TriggerOptions triggers;
  /// Run the type checker over newly derived facts after every
  /// materialisation and fail on violations.
  bool type_check_after_materialize = false;
  /// Fire active rules automatically as part of every materialisation
  /// (after the deductive fixpoint). Off: call FireTriggers() manually.
  bool fire_triggers_on_materialize = false;
  /// Run the linter (errors only) over every program before installing
  /// it; Load/LoadProgram fail with the first lint error's status.
  bool lint_on_load = false;
  /// Re-run the semantic analyses (lint/dataflow/analyses.h) on every
  /// materialisation and let the engine and query planner consult the
  /// proven facts (query/planner.h: PlannerHints). Answers are
  /// identical with or without hints — only literal order and cost
  /// estimates change (tests/analysis_differential_test.cc).
  bool use_analysis_hints = false;
  /// Acquire the reader/writer snapshot guard on every public entry
  /// point (see the concurrency contract above). Default on. Off makes
  /// the database strictly single-threaded again and exists only so
  /// the BM_Db_LockPaired bench twin can isolate the guard's cost;
  /// never disable it in a served process.
  bool concurrency_guard = true;
  /// Durability policy; consulted only by databases from Open().
  DurabilityOptions durability;
  /// Structured per-query JSONL log (obs/query_log.h); borrowed, may
  /// be null. Every Query/Eval/Holds appends one record. Equivalent to
  /// engine.obs.query_log, which wins when both are set.
  QueryLog* query_log = nullptr;
};

class Database {
 public:
  Database();
  explicit Database(DatabaseOptions options);

  /// Parses and installs a program: facts are asserted immediately,
  /// rules and signatures are registered, and any `?-` queries in the
  /// text are rejected (use Query()). Names are interned eagerly.
  Status Load(std::string_view program_text);

  /// Installs an already-parsed program (same semantics as Load).
  Status LoadProgram(const Program& program);

  /// Answers a conjunctive query; variables are reported in name order.
  /// Re-materialises first if rules/facts changed since the last run.
  /// Literals execute in the order chosen by the cost planner
  /// (query/planner.h).
  Result<ResultSet> Query(std::string_view query_text);
  Result<ResultSet> RunQuery(const struct Query& query);

  /// The execution plan for a query, without running it: one line per
  /// literal in chosen order with the planner's cardinality estimate.
  Result<std::string> ExplainQuery(std::string_view query_text);

  /// Evaluates a reference (variables allowed but must be bindable from
  /// the reference itself); returns the denoted objects.
  Result<std::vector<Oid>> Eval(std::string_view ref_text);

  /// Active-domain entailment of a reference used as a formula.
  Result<bool> Holds(std::string_view ref_text);

  /// Runs the deductive engine now (otherwise it runs lazily on the
  /// first Query/Eval/Holds after a change).
  Status Materialize();

  /// Fires active rules (`head <~ event, conditions.`) over every fact
  /// appended since the last firing, cascading to quiescence. The fact
  /// log is the event stream: extensional and derived facts alike.
  Status FireTriggers();

  const TriggerStats& trigger_stats() const { return trigger_stats_; }
  size_t num_triggers() const { return triggers_.size(); }

  /// Type-checks the whole store against the declared signatures.
  Status TypeCheck(std::vector<TypeViolation>* violations) const;

  /// Lints everything installed so far: rules, triggers, and declared
  /// signatures, with the semantic analyses (PL014-PL019) enabled.
  /// Methods with extensional facts in the store count as defined, so
  /// PL011/PL016 do not fire for them, and the observed sorts of the
  /// stored values seed the type-flow analysis.
  LintReport Lint() const;

  /// Explains how the fact with generation `gen` came to be:
  /// "extensional." for directly asserted facts; otherwise the deriving
  /// rule and the head bindings of the producing instance. Only
  /// meaningful when options.engine.trace_provenance is set.
  std::string ExplainFact(uint64_t gen) const;

  /// ExplainFact as one JSON object:
  ///   {"gen":N,"fact":"...","kind":"extensional"} or
  ///   {"gen":N,"fact":"...","kind":"derived","rule":"...",
  ///    "rule_index":i,"bindings":{"X":"a1",...}}
  /// kNotFound when `gen` is not a fact generation.
  Result<std::string> ExplainFactJson(uint64_t gen) const;

  /// All derivation records accumulated across materialisations.
  const std::vector<DerivationRecord>& provenance() const {
    return provenance_;
  }

  /// Persists the whole database — object store (including anonymous
  /// virtual objects), rules and signatures — to a binary file.
  Status SaveSnapshotFile(const std::string& path) const;

  /// Restores a database saved with SaveSnapshotFile. The restored
  /// database re-materialises lazily on the first query (rules replay
  /// idempotently over the restored facts).
  static Result<Database> LoadSnapshotFile(const std::string& path,
                                           DatabaseOptions options = {});

  /// Opens a crash-safe database rooted at directory `dir` (created if
  /// absent). Recovery runs first: the newest valid snapshot
  /// (`dir`/snapshot.plgdb) is loaded, the WAL (`dir`/wal.plgwal) is
  /// scanned and its valid prefix replayed, and a torn tail — the
  /// remains of an append interrupted by a crash — is truncated, not
  /// fatal. Thereafter every mutation is WAL-logged per
  /// `options.durability` before the mutating call returns. `fops`
  /// injects a file system (fault injection in tests); nullptr = real.
  static Result<Database> Open(const std::string& dir,
                               DatabaseOptions options = {},
                               FileOps* fops = nullptr)
      NO_THREAD_SAFETY_ANALYSIS;  // single-threaded construction

  /// Writes a full snapshot atomically and resets the WAL. Bounds
  /// recovery time; also the only way to resume logging after a WAL
  /// write error. No-op rules: safe to call at any commit boundary.
  Status Checkpoint();

  /// True when this database was produced by Open() (durable mode; the
  /// WAL itself may be momentarily absent while degraded). Reads a
  /// pointer set once before the database can be shared, so it is safe
  /// from any thread.
  bool durable() const { return fops_ != nullptr; }

  /// True while the database is serving degraded read-only: a WAL
  /// write failed persistently (or exhausted its transient retries),
  /// so queries keep answering from the last consistent state while
  /// every mutation fails fast with kUnavailable. The next successful
  /// Checkpoint() — the recovery probe — restores read-write service.
  /// Safe from any thread: reads an atomic mirror of the latched WAL
  /// error, maintained by EnterDegradedMode() and CheckpointLocked()
  /// (the stats server's health callback calls this from its accept
  /// thread).
  bool degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }

  /// Health summary: durability mode, degraded state and cause, WAL
  /// retry/rotation counters, and store size.
  DatabaseHealth Health() const;

  /// Attaches (or, with all-null sinks, detaches) observability at
  /// runtime: the engine, trigger engine, store, WAL appender, and the
  /// database's own spans/counters all pick up the new sinks. The
  /// sink objects are borrowed; keep them alive until detached or the
  /// database is destroyed. Equivalent to setting
  /// DatabaseOptions::engine.obs before construction.
  void SetObsSinks(const ObsSinks& obs);
  const ObsSinks& obs() const { return options_.engine.obs; }

  /// The attached profiler's report (per-rule cumulative time table,
  /// index-route totals, planner estimate-vs-actual table), or a
  /// one-line note when no profiler is attached.
  std::string ProfileReport() const;

  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }
  const SignatureTable& signatures() const { return signatures_; }
  const EngineStats& engine_stats() const { return last_stats_; }
  size_t num_rules() const { return rules_.size(); }
  /// The installed (non-fact) rules, in load order.
  const std::vector<Rule>& rules() const { return rules_; }

  const std::string& DisplayName(Oid o) const { return store_.DisplayName(o); }

 private:
  // ---- The snapshot guard ------------------------------------------
  // RAII holds on state_mu_ honouring options_.concurrency_guard (off
  // means no-op, strictly single-threaded). The bodies are conditional,
  // so they opt out of the analysis; the ACQUIRE attributes still
  // describe the guarded (default) configuration to callers. Public
  // entry points construct one of these; private *Locked helpers are
  // annotated REQUIRES and never lock.
  class SCOPED_CAPABILITY ReadLock {
   public:
    explicit ReadLock(const Database& db)
        ACQUIRE_SHARED(db.state_mu_) NO_THREAD_SAFETY_ANALYSIS
        : mu_(db.options_.concurrency_guard ? db.state_mu_.get() : nullptr) {
      if (mu_ != nullptr) mu_->ReaderLock();
    }
    ~ReadLock() RELEASE() NO_THREAD_SAFETY_ANALYSIS {
      if (mu_ != nullptr) mu_->ReaderUnlock();
    }
    ReadLock(const ReadLock&) = delete;
    ReadLock& operator=(const ReadLock&) = delete;

   private:
    SharedMutex* mu_;
  };
  class SCOPED_CAPABILITY WriteLock {
   public:
    explicit WriteLock(const Database& db)
        ACQUIRE(db.state_mu_) NO_THREAD_SAFETY_ANALYSIS
        : mu_(db.options_.concurrency_guard ? db.state_mu_.get() : nullptr) {
      if (mu_ != nullptr) mu_->Lock();
    }
    ~WriteLock() RELEASE() NO_THREAD_SAFETY_ANALYSIS {
      if (mu_ != nullptr) mu_->Unlock();
    }
    WriteLock(const WriteLock&) = delete;
    WriteLock& operator=(const WriteLock&) = delete;

   private:
    SharedMutex* mu_;
  };

  /// Interns every name occurring in a reference so later evaluation
  /// can resolve it (queries may mention names no fact ever used).
  void InternNames(const Ref& t) REQUIRES(state_mu_);

  /// True when every name in `t` is already interned — the query can
  /// run without mutating the store's name tables.
  bool NamesInterned(const Ref& t) const REQUIRES_SHARED(state_mu_);

  /// True when nothing is pending for the WAL: the logged prefixes
  /// cover the store and no program text or watermark move waits.
  bool NothingPendingLocked() const REQUIRES_SHARED(state_mu_);

  /// The read-only fast-path test: evaluating this reference (or every
  /// literal of this query) under a shared lock would be pure — no
  /// materialisation due, all names interned, nothing to commit.
  bool ReadOnlyReadyLocked(const Ref& t) const REQUIRES_SHARED(state_mu_);
  bool ReadOnlyReadyLocked(const struct Query& query) const
      REQUIRES_SHARED(state_mu_);

  /// The evaluation cores, shared by the read-only fast path (shared
  /// lock) and the mutating slow path (exclusive lock). They only read
  /// database state; sinks they touch are internally thread-safe.
  Result<ResultSet> RunQueryLocked(const struct Query& query,
                                   QueryLogRecord* rec,
                                   std::chrono::steady_clock::time_point t0)
      REQUIRES_SHARED(state_mu_);
  Result<std::vector<Oid>> EvalLocked(const Ref& ref, QueryLogRecord* rec)
      REQUIRES_SHARED(state_mu_);
  Result<bool> HoldsLocked(const Ref& ref, QueryLogRecord* rec)
      REQUIRES_SHARED(state_mu_);

  /// Exclusive-lock bodies of the public mutators.
  Status LoadProgramLocked(const Program& program) REQUIRES(state_mu_);
  Status MaterializeLocked() REQUIRES(state_mu_);
  Status FireTriggersLocked() REQUIRES(state_mu_);
  Status CheckpointLocked() REQUIRES(state_mu_);

  /// The whole database as one byte string (outer "PLGDB002" framing:
  /// store snapshot + rules/trigger text + signature text + trigger
  /// watermark, checksummed).
  Result<std::string> SaveSnapshotBytes() const REQUIRES_SHARED(state_mu_);
  /// Builds a database from snapshot bytes. Single-threaded
  /// construction — nobody else can hold the new database yet, so it
  /// touches guarded fields lock-free.
  static Result<Database> LoadSnapshotBytes(const std::string& bytes,
                                            DatabaseOptions options,
                                            const std::string& origin)
      NO_THREAD_SAFETY_ANALYSIS;

  /// Appends everything not yet logged — new objects, installed
  /// program text, new facts, the trigger watermark — to the WAL and
  /// syncs per policy. No-op for non-durable databases. After a write
  /// error the WAL is considered broken and every subsequent commit
  /// fails with that error until Checkpoint() rebuilds the log —
  /// appending past a torn middle would silently lose the suffix.
  Status CommitDurable() REQUIRES(state_mu_);
  /// One attempt at appending everything pending to the WAL (interns,
  /// program text, facts, watermark) plus the policy fsync. Counts
  /// records into `*records` but mutates no bookkeeping — retries
  /// re-run it from the same state.
  Status AppendPendingToWal(uint64_t universe, uint64_t gen,
                            bool watermark_moved, uint64_t* records)
      REQUIRES(state_mu_);
  /// Drops whatever a failed append attempt left beyond the last
  /// known-good WAL length and reopens the appender there.
  Status ReopenWalTruncated() REQUIRES(state_mu_);
  /// Latches `cause` (every further mutation fails fast), counts the
  /// entry, sets the degraded gauge, and returns the kUnavailable
  /// error the failing mutation reports.
  Status EnterDegradedMode(Status cause) REQUIRES(state_mu_);
  /// The fail-fast error mutations get while degraded.
  Status DegradedError() const REQUIRES_SHARED(state_mu_);
  /// Sleeps `ms` (or calls the injected durability.backoff_sleep).
  void BackoffSleep(uint64_t ms);
  /// Wraps a mutating entry point: preserves `st`, commits the WAL.
  Status FinishMutation(Status st) REQUIRES(state_mu_);
  /// Replaces the WAL with a fresh, empty, synced log (atomic).
  Status ResetWal() REQUIRES(state_mu_);
  /// Loads program text from a WAL record, skipping rules, triggers
  /// and signatures that are already installed (replay after a crash
  /// between checkpoint and WAL reset sees both copies).
  Status ReplayProgramText(const std::string& text) REQUIRES(state_mu_);

  /// Refreshes the pathlog_store_* gauges (universe size, fact count);
  /// no-op without a metrics sink.
  void UpdateStoreGauges() REQUIRES_SHARED(state_mu_);

  /// The query-log sink: engine.obs.query_log, else options.query_log.
  QueryLog* query_log_sink() const;

  /// Closes out one Query/Eval/Holds for observability: records a
  /// "db.<kind>" flight span, auto-dumps the flight ring when the
  /// operation was budget-rejected, and appends `rec` to the query-log
  /// sink. No-op without the corresponding sinks.
  void RecordQueryObs(QueryLogRecord rec);

  /// Best-effort dump of the flight-recorder ring to a timestamped
  /// trace file in the durable directory (durable databases with a
  /// flight sink only). Called on incident boundaries: degraded-mode
  /// entry and budget rejections.
  void MaybeDumpFlightRecorder(std::string_view reason);

  /// Re-runs the semantic analyses over the installed rules and
  /// triggers, refreshing planner_hints_. Called by Materialize() when
  /// options_.use_analysis_hints is set. The proofs are monotone-safe:
  /// a method that is statically underivable stays empty no matter how
  /// many facts the rules derive, so hints computed before a
  /// materialisation remain valid after it.
  void RefreshAnalysisHints() REQUIRES(state_mu_);

  std::string WalPath() const { return durable_dir_ + "/wal.plgwal"; }
  std::string SnapshotPath() const {
    return durable_dir_ + "/snapshot.plgdb";
  }

  /// The snapshot guard: shared for provably read-only entry points,
  /// exclusive for anything that may mutate. Behind a unique_ptr
  /// because Database is movable and std::shared_mutex is not; the
  /// pointer is set at construction and only reseated by move, which
  /// is single-threaded by contract (a moved-from Database may only be
  /// destroyed or assigned to).
  std::unique_ptr<SharedMutex> state_mu_ = std::make_unique<SharedMutex>();

  DatabaseOptions options_;
  // The core state below (store through planner_hints_) is guarded by
  // state_mu_ in the same discipline as the annotated fields, but left
  // unannotated because the public store()/rules()/signatures()/...
  // accessors hand out references without the lock — that escape hatch
  // is part of the documented contract (callers own quiescence there),
  // and annotating the fields would force NO_THREAD_SAFETY_ANALYSIS
  // onto every accessor, silencing more than it checks.
  ObjectStore store_;
  SignatureTable signatures_;
  std::vector<Rule> rules_;
  std::vector<TriggerRule> triggers_;
  uint64_t trigger_watermark_ = 0;
  TriggerStats trigger_stats_;
  /// Declared signatures re-rendered as loadable text (for snapshots).
  std::string signature_text_;
  std::vector<DerivationRecord> provenance_;
  EngineStats last_stats_;
  /// Facts proved by RefreshAnalysisHints(); consulted by Materialize,
  /// RunQuery and ExplainQuery when options_.use_analysis_hints.
  PlannerHints planner_hints_;
  bool dirty_ GUARDED_BY(state_mu_) = false;
  uint64_t type_check_watermark_ = 0;

  // Durability state (all inert unless the database came from Open()).
  // fops_ and durable_dir_ are set once in Open() before the database
  // can be shared and never change after — safe to read lock-free.
  FileOps* fops_ = nullptr;
  std::string durable_dir_;
  std::unique_ptr<WalAppender> wal_ GUARDED_BY(state_mu_);
  /// First WAL write failure; cleared by Checkpoint. Source of truth
  /// for degraded mode under the lock; degraded_ is its atomic mirror.
  Status wal_error_ GUARDED_BY(state_mu_);
  uint64_t wal_objects_ GUARDED_BY(state_mu_) = 0;  ///< universe logged
  uint64_t wal_facts_ GUARDED_BY(state_mu_) = 0;  ///< fact prefix logged
  uint64_t wal_trigger_watermark_ GUARDED_BY(state_mu_) = 0;
  /// Records since the last checkpoint.
  uint64_t wal_records_ GUARDED_BY(state_mu_) = 0;
  /// Known-good WAL length: the recovered valid prefix plus every
  /// fully committed batch since. Retries truncate back to this.
  uint64_t wal_good_bytes_ GUARDED_BY(state_mu_) = 0;
  uint64_t wal_retries_ GUARDED_BY(state_mu_) = 0;    ///< retried writes
  uint64_t wal_rotations_ GUARDED_BY(state_mu_) = 0;  ///< rotations
  uint64_t degraded_entries_ GUARDED_BY(state_mu_) = 0;
  /// Rules/triggers/signatures installed since the last commit,
  /// re-rendered as loadable text.
  std::string pending_program_text_ GUARDED_BY(state_mu_);

  // lock-free: atomic mirrors readable from any thread without the
  // guard. degraded_ mirrors `fops_ && !wal_error_.ok()` (written
  // under the exclusive lock by EnterDegradedMode/CheckpointLocked,
  // read by degraded() — e.g. the stats server's health callback);
  // flight_dumps_ counts incident dumps (bumped by
  // MaybeDumpFlightRecorder, which budget-rejected queries reach
  // outside the guard).
  MovableAtomic<bool> degraded_{false};
  MovableAtomic<uint64_t> flight_dumps_{0};
};

}  // namespace pathlog

#endif  // PATHLOG_QUERY_DATABASE_H_
