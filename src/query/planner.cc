#include "query/planner.h"

#include <algorithm>
#include <map>

#include "ast/analysis.h"
#include "ast/printer.h"
#include "base/strings.h"
#include "eval/engine.h"
#include "semantics/structure.h"

namespace pathlog {

namespace {

const Ref& Deref(const Ref& t) {
  const Ref* p = &t;
  while (p->kind == RefKind::kParen) p = p->base.get();
  return *p;
}

std::optional<Oid> ResolveName(const Ref& t, const ObjectStore& store) {
  switch (t.name_kind) {
    case NameKind::kSymbol:
      return store.FindSymbol(t.text);
    case NameKind::kInt:
      return store.FindInt(t.int_value);
    case NameKind::kString:
      return store.FindString(t.text);
  }
  return std::nullopt;
}

/// True when the analyses proved the method at `m` holds no tuples.
bool HintedEmpty(const PlannerHints* hints, const Ref& m) {
  if (hints == nullptr) return false;
  const Ref& d = Deref(m);
  return d.kind == RefKind::kName && d.name_kind == NameKind::kSymbol &&
         hints->empty_methods.count(d.text) > 0;
}

/// Estimate for probing one inverted-index bucket whose key is bound
/// only at runtime. kSkewAware reads the store's incrementally
/// maintained top-k heavy-hitter stats; kAverageBucket reproduces the
/// pre-stats planner byte for byte (total / distinct, blind to skew).
double RuntimeBoundBucketEstimate(const MethodStats& stats,
                                  PlannerStatsMode stats_mode) {
  return stats_mode == PlannerStatsMode::kSkewAware
             ? SkewAwareBucketEstimate(stats)
             : AverageBucketEstimate(stats);
}

/// Cardinality the evaluator's molecule driver would enumerate for an
/// unbound-variable base with these filters.
double DriverCardinality(const std::vector<Filter>& filters,
                         const std::set<std::string>& bound,
                         const ObjectStore& store, const PlannerHints* hints,
                         PlannerStatsMode stats_mode) {
  auto resolvable = [&](const RefPtr& m) -> std::optional<Oid> {
    const Ref& d = Deref(*m);
    if (d.kind == RefKind::kName) return ResolveName(d, store);
    if (d.kind == RefKind::kVar && bound.count(d.text)) {
      // Bound at runtime, unknown here; assume a typical method.
      return std::nullopt;
    }
    return std::nullopt;
  };
  auto runtime_bound = [&](const RefPtr& m) {
    const Ref& d = Deref(*m);
    return d.kind == RefKind::kVar && bound.count(d.text) > 0;
  };
  // Mirror ref_eval's driver: the cheapest candidate set any filter
  // can supply, with the universe as the fallback.
  double best = static_cast<double>(store.UniverseSize());
  auto consider = [&](double c) { best = std::min(best, c); };
  for (const Filter& f : filters) {
    if (f.kind == FilterKind::kClass) {
      if (std::optional<Oid> c = resolvable(f.value)) {
        consider(static_cast<double>(store.Members(*c).size()));
      }
      continue;
    }
    if (HintedEmpty(hints, *f.method)) {
      // Provably empty: the driver enumerates nothing.
      consider(0.0);
      continue;
    }
    std::optional<Oid> m = resolvable(f.method);
    if (!m) continue;
    // Built-ins (self, guards) have no extent to drive from.
    if (store.kind(*m) == ObjectKind::kSymbol &&
        IsBuiltinMethodName(store.DisplayName(*m))) {
      continue;
    }
    if (f.kind == FilterKind::kScalar) {
      if (std::optional<Oid> v = resolvable(f.value)) {
        // Inverted value→receiver probe: the bucket is the driver.
        consider(static_cast<double>(store.ScalarEntriesByValue(*m, *v).size()));
      } else if (runtime_bound(f.value)) {
        // The value is bound at runtime but unknown here: cost the
        // bucket the probe might hit. Skew-aware mode prices in the
        // heavy hitters so one hot value cannot make this path look
        // cheaper than a smaller guaranteed extent.
        consider(RuntimeBoundBucketEstimate(store.ScalarValueStats(*m),
                                            stats_mode));
      } else {
        consider(static_cast<double>(store.ScalarEntries(*m).size()));
      }
    } else {
      if (f.kind == FilterKind::kSetEnum) {
        for (const RefPtr& e : f.elems) {
          if (std::optional<Oid> v = resolvable(e)) {
            // Inverted member→receiver probe.
            consider(
                static_cast<double>(store.SetGroupsByMember(*m, *v).size()));
          } else if (runtime_bound(e) &&
                     stats_mode == PlannerStatsMode::kSkewAware) {
            // A member bound at runtime probes one member bucket, the
            // exact mirror of the scalar case above. The skew-blind
            // mode deliberately keeps the historical behaviour (no
            // estimate: fall through to the full group count) so the
            // old planner stays reproducible for differential runs.
            consider(RuntimeBoundBucketEstimate(store.SetMemberStats(*m),
                                                stats_mode));
          }
        }
      }
      consider(static_cast<double>(store.SetGroups(*m).size()));
    }
  }
  return best;
}

/// Cost of evaluating `t`'s anchor (its leftmost primary) and walking
/// outward.
double AnchorCost(const Ref& t, const std::set<std::string>& bound,
                  const ObjectStore& store, const PlannerHints* hints,
                  PlannerStatsMode stats_mode) {
  const Ref& d = Deref(t);
  switch (d.kind) {
    case RefKind::kName:
      return 1.0;
    case RefKind::kVar:
      return bound.count(d.text)
                 ? 1.0
                 : static_cast<double>(store.UniverseSize());
    case RefKind::kPath: {
      // A path over an unbound variable is driven by the method extent.
      const Ref& base = Deref(*d.base);
      if (base.kind == RefKind::kVar && !bound.count(base.text)) {
        if (HintedEmpty(hints, *d.method)) return 0.0;
        const Ref& m = Deref(*d.method);
        if (m.kind == RefKind::kName) {
          if (std::optional<Oid> mo = ResolveName(m, store)) {
            return static_cast<double>(
                d.set_valued_path ? store.SetGroups(*mo).size()
                                  : store.ScalarEntries(*mo).size());
          }
          return 1.0;  // unknown method: nothing stored, nothing scanned
        }
        return static_cast<double>(store.UniverseSize());
      }
      return AnchorCost(*d.base, bound, store, hints, stats_mode) + 1.0;
    }
    case RefKind::kMolecule: {
      const Ref& base = Deref(*d.base);
      if (base.kind == RefKind::kVar && !bound.count(base.text)) {
        return DriverCardinality(d.filters, bound, store, hints, stats_mode);
      }
      return AnchorCost(*d.base, bound, store, hints, stats_mode) + 1.0;
    }
    case RefKind::kParen:
      break;  // stripped above
  }
  return static_cast<double>(store.UniverseSize());
}

}  // namespace

double EstimateLiteralCost(const Ref& t, const std::set<std::string>& bound,
                           const ObjectStore& store, const PlannerHints* hints,
                           PlannerStatsMode stats_mode) {
  return AnchorCost(t, bound, store, hints, stats_mode);
}

Status PlanConjunction(std::vector<Literal>* body, const ObjectStore& store,
                       std::vector<std::string>* cost_log,
                       std::vector<double>* estimates,
                       const PlannerHints* hints,
                       PlannerStatsMode stats_mode) {
  std::vector<Literal> remaining = std::move(*body);
  std::vector<Literal> ordered;
  std::set<std::string> bound;

  std::map<std::string, int> occurrences;
  for (const Literal& lit : remaining) {
    for (const std::string& v : VarsOf(*lit.ref)) ++occurrences[v];
  }
  auto admissible = [&](const Literal& lit) {
    std::set<std::string> need;
    if (lit.negated) {
      for (const std::string& v : VarsOf(*lit.ref)) {
        if (occurrences[v] > 1) need.insert(v);
      }
    } else {
      need = SetRefValueVars(*lit.ref);
    }
    for (const std::string& v : need) {
      if (!bound.count(v)) return false;
    }
    return true;
  };

  while (!remaining.empty()) {
    double best_cost = 0;
    size_t best = remaining.size();
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (!admissible(remaining[i])) continue;
      // Negated literals are pure tests: defer them until every
      // positive literal of equal or lower cost has bound variables.
      double cost =
          EstimateLiteralCost(*remaining[i].ref, bound, store, hints,
                              stats_mode) +
          (remaining[i].negated ? 0.5 : 0.0);
      if (best == remaining.size() || cost < best_cost) {
        best = i;
        best_cost = cost;
      }
    }
    if (best == remaining.size()) {
      return UnsafeRule(
          "cannot order the conjunction: a negated literal or `->>` filter "
          "result needs variables no earlier literal can bind");
    }
    if (cost_log != nullptr) {
      cost_log->push_back(StrCat(ToString(remaining[best]),
                                 "   (estimated driver cardinality ",
                                 best_cost, ")"));
    }
    if (estimates != nullptr) {
      // The raw anchor estimate, without the negation tie-break nudge.
      estimates->push_back(best_cost - (remaining[best].negated ? 0.5 : 0.0));
    }
    if (!remaining[best].negated) {
      for (const std::string& v : VarsOf(*remaining[best].ref)) {
        bound.insert(v);
      }
    }
    ordered.push_back(std::move(remaining[best]));
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));
  }
  *body = std::move(ordered);
  return Status::OK();
}

}  // namespace pathlog
