// Annotated mutex wrappers for the thread-safety analysis.
//
// libstdc++'s std::mutex / std::shared_mutex carry no capability
// attributes, so clang's `-Wthread-safety` cannot follow raw standard
// locks. These thin wrappers forward to the standard types and attach
// the capability vocabulary from base/thread_annotations.h; annotate
// shared state with GUARDED_BY against these and the compiler checks
// the discipline.
//
// Lock order (see docs/IMPLEMENTATION.md "Concurrency contract"): a
// Database state lock is always outermost; sink-internal locks
// (MetricsRegistry, QueryLog, Tracer, Profiler) and the StatsServer
// lifecycle lock are leaves — code holding a sink lock never acquires
// another lock.

#ifndef PATHLOG_BASE_MUTEX_H_
#define PATHLOG_BASE_MUTEX_H_

#include <atomic>
#include <mutex>
#include <shared_mutex>

#include "base/thread_annotations.h"

namespace pathlog {

/// Exclusive mutex with capability annotations.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Reader/writer mutex with capability annotations. Writers are
/// exclusive; readers share.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_->ReaderUnlock(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// std::atomic<T> with move semantics, for atomic members of movable
/// classes (std::atomic itself is neither copyable nor movable).
/// Moving is NOT atomic: it is only safe while no other thread can
/// reach either object, which matches how movable owners like
/// Database are built (moved during single-threaded construction,
/// shared only afterwards).
template <typename T>
class MovableAtomic {
 public:
  MovableAtomic() = default;
  explicit MovableAtomic(T v) : v_(v) {}
  MovableAtomic(MovableAtomic&& other) noexcept
      : v_(other.v_.load(std::memory_order_relaxed)) {}
  MovableAtomic& operator=(MovableAtomic&& other) noexcept {
    v_.store(other.v_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
    return *this;
  }
  MovableAtomic(const MovableAtomic&) = delete;
  MovableAtomic& operator=(const MovableAtomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    return v_.load(order);
  }
  void store(T v, std::memory_order order = std::memory_order_seq_cst) {
    v_.store(v, order);
  }
  T fetch_add(T n, std::memory_order order = std::memory_order_seq_cst) {
    return v_.fetch_add(n, order);
  }

 private:
  std::atomic<T> v_{};
};

}  // namespace pathlog

#endif  // PATHLOG_BASE_MUTEX_H_
