// PathLog: status codes and error propagation.
//
// The library never throws for anticipated failures (syntax errors,
// ill-formed references, unstratifiable programs, scalar-method
// conflicts). Every fallible operation returns Status or Result<T>,
// following the idiom of production database codebases.

#ifndef PATHLOG_BASE_STATUS_H_
#define PATHLOG_BASE_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace pathlog {

/// Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  /// Lexical or grammatical error in PathLog source text.
  kParseError,
  /// Reference violates Definition 3 (well-formedness) or a structural
  /// rule such as "no set-valued reference as a rule head".
  kIllFormed,
  /// A rule body cannot be ordered so that every variable is bound
  /// before it is consumed (range restriction / safety violation).
  kUnsafeRule,
  /// The program has a cycle through a needs-complete-set or negated
  /// dependency and cannot be stratified (paper section 6, [NT89]).
  kNotStratifiable,
  /// Two derivations assign different results to one scalar method
  /// invocation (scalar methods are partial *functions*).
  kScalarConflict,
  /// A fact or derived fact violates a declared method signature.
  kTypeError,
  /// Lookup of a name, variable, or experiment that does not exist.
  kNotFound,
  /// Arguments to a library call are invalid (not a program bug).
  kInvalidArgument,
  /// Resource limit exceeded (derivation cap, universe cap).
  kResourceExhausted,
  /// A wall-clock budget (EngineOptions::max_wall_ms) ran out before
  /// the operation completed.
  kDeadlineExceeded,
  /// An invariant the library promised was broken; indicates a bug.
  kInternal,
  /// The operation cannot be served right now but retrying may help:
  /// transient I/O failures (ENOSPC, EIO) and mutations rejected while
  /// the database is in degraded read-only mode.
  kUnavailable,
  /// The operation was cancelled cooperatively via a CancelToken.
  kCancelled,
};

/// Human-readable name of a status code (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a diagnostic message.
///
/// The OK status carries no allocation; error statuses own their
/// message. Statuses are cheap to move and to test with ok().
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message);

  static Status OK() { return Status(); }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Diagnostic message; empty for OK.
  const std::string& message() const;

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Convenience constructors, one per error code.
Status ParseError(std::string message);
Status IllFormed(std::string message);
Status UnsafeRule(std::string message);
Status NotStratifiable(std::string message);
Status ScalarConflict(std::string message);
Status TypeError(std::string message);
Status NotFound(std::string message);
Status InvalidArgument(std::string message);
Status ResourceExhausted(std::string message);
Status DeadlineExceeded(std::string message);
Status Internal(std::string message);
Status Unavailable(std::string message);
Status Cancelled(std::string message);

/// Propagates a non-OK status to the caller.
#define PATHLOG_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::pathlog::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace pathlog

#endif  // PATHLOG_BASE_STATUS_H_
