// Little-endian fixed-width encoding helpers, shared by the snapshot
// and WAL binary formats (src/store/snapshot.cc, src/store/wal.cc).
//
// ByteReader tolerates truncated input: every accessor returns a
// zero value once the buffer runs dry and Ok() flips to false, so
// parsers can decode an entire section and check Ok() once.

#ifndef PATHLOG_BASE_CODING_H_
#define PATHLOG_BASE_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace pathlog {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
inline void PutU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool Ok() const { return ok_; }
  size_t remaining() const { return bytes_.size() - pos_; }

  uint8_t U8() { return Fixed<uint8_t>(1); }
  uint16_t U16() { return Fixed<uint16_t>(2); }
  uint32_t U32() { return Fixed<uint32_t>(4); }
  uint64_t U64() { return Fixed<uint64_t>(8); }
  int64_t I64() { return static_cast<int64_t>(U64()); }

  std::string_view Bytes(size_t n) { return Take(n); }

 private:
  template <typename T>
  T Fixed(size_t n) {
    std::string_view s = Take(n);
    T v = 0;
    for (size_t i = 0; i < s.size(); ++i) {
      v |= static_cast<T>(static_cast<uint8_t>(s[i])) << (8 * i);
    }
    return v;
  }

  std::string_view Take(size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return std::string_view();
    }
    std::string_view s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace pathlog

#endif  // PATHLOG_BASE_CODING_H_
