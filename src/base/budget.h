// ResourceBudget: cooperative resource governance for evaluation.
//
// A budget bounds one logical operation (a materialisation, a query, a
// trigger cascade) along three dimensions — store bytes, derivations,
// and wall-clock — and carries a CancelToken so a caller on another
// thread can abort the operation between check points. Checks are
// cooperative: the engine, the reference evaluator, and the trigger
// engine poll the budget at loop boundaries (per rule evaluation, every
// ~1k enumeration steps), so a trip is detected within one polling
// interval, never mid-assertion.
//
// The wall clock is injectable so tests can drive deadlines
// deterministically without real sleeps.

#ifndef PATHLOG_BASE_BUDGET_H_
#define PATHLOG_BASE_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "base/status.h"

namespace pathlog {

/// Cooperative cancellation flag. Copies share the underlying flag, so
/// a token handed to another thread observes Cancel() calls made on
/// any copy.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  void Reset() { flag_->store(false, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Limits for one ResourceBudget. 0 means unlimited for that dimension.
struct ResourceLimits {
  /// Absolute ceiling on the ObjectStore's approximate heap footprint
  /// (ObjectStore::ApproxBytes()). Checked against the store the
  /// operation mutates, so it bounds total retained memory, not growth.
  uint64_t max_store_bytes = 0;
  /// Ceiling on derivations charged since the last Arm().
  uint64_t max_derivations = 0;
  /// Wall-clock ceiling in milliseconds since the last Arm().
  uint64_t max_wall_ms = 0;
};

/// A reusable budget for one operation at a time: Arm() starts a fresh
/// accounting window (deadline, derivation count); Check()/CheckControl()
/// return the typed error for the first exceeded dimension. Rejections
/// are counted at most once per armed window so metrics reflect
/// rejected *operations*, not polling frequency.
class ResourceBudget {
 public:
  ResourceBudget() = default;
  explicit ResourceBudget(ResourceLimits limits) : limits_(limits) {}

  const ResourceLimits& limits() const { return limits_; }
  void set_limits(ResourceLimits limits) { limits_ = limits; }

  /// Replaces the wall clock (milliseconds, monotone). Null restores
  /// the real steady clock. Tests inject a fake to trip deadlines
  /// deterministically.
  void set_clock(std::function<uint64_t()> now_ms) {
    now_ms_ = std::move(now_ms);
  }

  CancelToken& token() { return token_; }
  const CancelToken& token() const { return token_; }

  /// Starts a fresh accounting window: stamps the deadline origin,
  /// zeroes the derivation count, and re-enables rejection counting.
  void Arm();

  void ChargeDerivations(uint64_t n = 1) { derivations_ += n; }
  uint64_t derivations() const { return derivations_; }

  /// Full check: cancellation, then bytes, then derivations, then
  /// wall clock. Bytes outrank the wall clock so a memory-budgeted
  /// runaway reports kResourceExhausted naming the byte dimension even
  /// if a deadline also lapsed.
  Status Check(uint64_t store_bytes) const;

  /// Cancellation + wall clock only — the cheap probe for read-only
  /// evaluation loops that cannot grow the store.
  Status CheckControl() const;

  /// Operations rejected by this budget since construction (counted
  /// once per armed window).
  uint64_t rejections() const { return rejections_; }

 private:
  uint64_t NowMs() const;
  Status Reject(Status st) const;

  ResourceLimits limits_;
  CancelToken token_;
  std::function<uint64_t()> now_ms_;  // null == std::chrono::steady_clock
  bool armed_ = false;
  uint64_t armed_at_ms_ = 0;
  uint64_t derivations_ = 0;
  mutable bool rejected_this_window_ = false;
  mutable uint64_t rejections_ = 0;
};

}  // namespace pathlog

#endif  // PATHLOG_BASE_BUDGET_H_
