#include "base/budget.h"

#include <chrono>

#include "base/strings.h"

namespace pathlog {

uint64_t ResourceBudget::NowMs() const {
  if (now_ms_) return now_ms_();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ResourceBudget::Arm() {
  armed_ = true;
  armed_at_ms_ = NowMs();
  derivations_ = 0;
  rejected_this_window_ = false;
}

Status ResourceBudget::Reject(Status st) const {
  if (!rejected_this_window_) {
    rejected_this_window_ = true;
    ++rejections_;
  }
  return st;
}

Status ResourceBudget::Check(uint64_t store_bytes) const {
  if (token_.cancelled()) {
    return Reject(Cancelled("evaluation cancelled via CancelToken"));
  }
  if (limits_.max_store_bytes > 0 && store_bytes > limits_.max_store_bytes) {
    return Reject(ResourceExhausted(StrCat(
        "resource budget exceeded: bytes dimension (store holds ~",
        store_bytes, " of ", limits_.max_store_bytes, " budgeted bytes)")));
  }
  if (limits_.max_derivations > 0 && derivations_ > limits_.max_derivations) {
    return Reject(ResourceExhausted(
        StrCat("resource budget exceeded: derivations dimension (",
               derivations_, " of ", limits_.max_derivations, ")")));
  }
  return CheckControl();
}

Status ResourceBudget::CheckControl() const {
  if (token_.cancelled()) {
    return Reject(Cancelled("evaluation cancelled via CancelToken"));
  }
  if (armed_ && limits_.max_wall_ms > 0) {
    const uint64_t elapsed = NowMs() - armed_at_ms_;
    if (elapsed > limits_.max_wall_ms) {
      return Reject(DeadlineExceeded(
          StrCat("resource budget exceeded: wall-ms dimension (", elapsed,
                 " of ", limits_.max_wall_ms, " ms elapsed)")));
    }
  }
  return Status::OK();
}

}  // namespace pathlog
