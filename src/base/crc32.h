// CRC-32 (IEEE 802.3 polynomial, reflected) over byte strings.
//
// Used by the durability layer: WAL records and snapshot-v2 bodies
// carry a CRC so a torn or bit-flipped file is detected before any of
// its content reaches the store. The implementation is the classic
// table-driven byte-at-a-time loop; throughput is far above what the
// fsync-bound write path can consume.

#ifndef PATHLOG_BASE_CRC32_H_
#define PATHLOG_BASE_CRC32_H_

#include <cstdint>
#include <string_view>

namespace pathlog {

/// CRC-32 of `bytes`, optionally chaining a previous CRC (pass the
/// prior result as `seed` to checksum a logical stream in pieces).
uint32_t Crc32(std::string_view bytes, uint32_t seed = 0);

}  // namespace pathlog

#endif  // PATHLOG_BASE_CRC32_H_
