#include "base/strings.h"

namespace pathlog {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace pathlog
