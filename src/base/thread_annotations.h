// Clang thread-safety analysis macros.
//
// These expand to clang's `capability` attribute family when compiling
// under clang (where `-Wthread-safety` turns them into compile-time
// lock-discipline errors) and to nothing everywhere else, so annotated
// headers stay portable to gcc/msvc. The vocabulary follows the
// standard names from the clang documentation so the annotations read
// the same here as in any other annotated codebase:
//
//   GUARDED_BY(mu)      field may only be touched while `mu` is held
//   PT_GUARDED_BY(mu)   pointee (not the pointer) is guarded by `mu`
//   REQUIRES(mu)        caller must hold `mu` exclusively
//   REQUIRES_SHARED(mu) caller must hold `mu` at least shared
//   ACQUIRE / RELEASE   function takes / drops the capability itself
//   EXCLUDES(mu)        caller must NOT hold `mu` (deadlock guard)
//
// The annotated wrappers in base/mutex.h exist because libstdc++'s
// std::mutex carries no capability attributes, so the analysis cannot
// see raw standard-library locks; annotate against pathlog::Mutex /
// pathlog::SharedMutex instead.
//
// ci/check.sh builds the tree with clang `-Wthread-safety -Werror`
// when a clang++ is available, and tools/lock_lint.py statically
// requires every mutex member in src/ headers to have annotated peers
// or an explicit `// lock-free:` contract.

#ifndef PATHLOG_BASE_THREAD_ANNOTATIONS_H_
#define PATHLOG_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define PATHLOG_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define PATHLOG_THREAD_ANNOTATION__(x)  // no-op off clang
#endif

#define CAPABILITY(x) PATHLOG_THREAD_ANNOTATION__(capability(x))

#define SCOPED_CAPABILITY PATHLOG_THREAD_ANNOTATION__(scoped_lockable)

#define GUARDED_BY(x) PATHLOG_THREAD_ANNOTATION__(guarded_by(x))

#define PT_GUARDED_BY(x) PATHLOG_THREAD_ANNOTATION__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  PATHLOG_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  PATHLOG_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  PATHLOG_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  PATHLOG_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  PATHLOG_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  PATHLOG_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  PATHLOG_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  PATHLOG_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  PATHLOG_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  PATHLOG_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  PATHLOG_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) PATHLOG_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) PATHLOG_THREAD_ANNOTATION__(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  PATHLOG_THREAD_ANNOTATION__(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) PATHLOG_THREAD_ANNOTATION__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  PATHLOG_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // PATHLOG_BASE_THREAD_ANNOTATIONS_H_
