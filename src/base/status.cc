#include "base/status.h"

namespace pathlog {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIllFormed:
      return "IllFormed";
    case StatusCode::kUnsafeRule:
      return "UnsafeRule";
    case StatusCode::kNotStratifiable:
      return "NotStratifiable";
    case StatusCode::kScalarConflict:
      return "ScalarConflict";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_shared<const Rep>(Rep{code, std::move(message)});
  }
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return rep_ ? rep_->message : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status IllFormed(std::string message) {
  return Status(StatusCode::kIllFormed, std::move(message));
}
Status UnsafeRule(std::string message) {
  return Status(StatusCode::kUnsafeRule, std::move(message));
}
Status NotStratifiable(std::string message) {
  return Status(StatusCode::kNotStratifiable, std::move(message));
}
Status ScalarConflict(std::string message) {
  return Status(StatusCode::kScalarConflict, std::move(message));
}
Status TypeError(std::string message) {
  return Status(StatusCode::kTypeError, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status Unavailable(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status Cancelled(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}

}  // namespace pathlog
