// Small string helpers used across the library (no std::format on the
// reference toolchain, so we provide StrCat-style concatenation).

#ifndef PATHLOG_BASE_STRINGS_H_
#define PATHLOG_BASE_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace pathlog {

namespace internal {
inline void StrAppendOne(std::ostringstream& os, const std::string& v) {
  os << v;
}
inline void StrAppendOne(std::ostringstream& os, std::string_view v) {
  os << v;
}
inline void StrAppendOne(std::ostringstream& os, const char* v) { os << v; }
inline void StrAppendOne(std::ostringstream& os, char v) { os << v; }
inline void StrAppendOne(std::ostringstream& os, bool v) {
  os << (v ? "true" : "false");
}
template <typename T>
inline void StrAppendOne(std::ostringstream& os, const T& v) {
  os << v;
}
}  // namespace internal

/// Concatenates the string forms of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (internal::StrAppendOne(os, args), ...);
  return os.str();
}

/// Joins the elements of `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if every character of `s` is an ASCII digit (and s not empty).
bool IsAllDigits(std::string_view s);

}  // namespace pathlog

#endif  // PATHLOG_BASE_STRINGS_H_
