// Result<T>: value-or-Status, the return type of fallible producers.

#ifndef PATHLOG_BASE_RESULT_H_
#define PATHLOG_BASE_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "base/status.h"

namespace pathlog {

/// Holds either a value of type T or a non-OK Status.
///
/// Usage:
///   Result<Program> p = Parse(text);
///   if (!p.ok()) return p.status();
///   Use(*p);
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, like arrow::Result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Passing an OK status is a
  /// programming error and is normalised to kInternal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or a fallback if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates the error of a Result expression, else assigns its value.
#define PATHLOG_ASSIGN_OR_RETURN(lhs, expr)      \
  auto PATHLOG_CONCAT_(_res, __LINE__) = (expr); \
  if (!PATHLOG_CONCAT_(_res, __LINE__).ok())     \
    return PATHLOG_CONCAT_(_res, __LINE__).status(); \
  lhs = std::move(PATHLOG_CONCAT_(_res, __LINE__)).value()

#define PATHLOG_CONCAT_(a, b) PATHLOG_CONCAT_IMPL_(a, b)
#define PATHLOG_CONCAT_IMPL_(a, b) a##b

}  // namespace pathlog

#endif  // PATHLOG_BASE_RESULT_H_
