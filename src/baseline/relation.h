// A minimal column-named relation for the baseline evaluators.
//
// The paper's comparison targets (GEM, O2SQL, XSQL, ESQL) evaluate path
// expressions by *decomposing* them into explicit joins over flat
// relations — "we have to break one path into two and in general, into
// many pieces". The baseline module reproduces that execution model so
// benchmarks can compare it against PathLog's navigational evaluation.

#ifndef PATHLOG_BASELINE_RELATION_H_
#define PATHLOG_BASELINE_RELATION_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "store/oid.h"

namespace pathlog {

class ObjectStore;

class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<Oid>>& rows() const { return rows_; }
  size_t NumRows() const { return rows_.size(); }
  size_t NumCols() const { return columns_.size(); }

  /// Index of a column by name, or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  void AddRow(std::vector<Oid> row) { rows_.push_back(std::move(row)); }

  /// Sorts rows and removes duplicates (set semantics).
  void Dedup();

  /// Renders a bounded ASCII table using the store's display names.
  std::string ToString(const ObjectStore& store, size_t max_rows = 20) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Oid>> rows_;
};

}  // namespace pathlog

#endif  // PATHLOG_BASELINE_RELATION_H_
