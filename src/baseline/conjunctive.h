// Flat conjunctive queries: the decomposition target of path
// expressions in one-dimensional languages.
//
// Example — the paper's query (1.4): "colors of the 4-cylinder
// automobiles of employees" must be broken into pieces:
//
//   member(X, employee), setmember(vehicles, X, Y),
//   member(Y, automobile), scalar(cylinders, Y, 4),
//   scalar(color, Y, Z)                                 select Z
//
// Two evaluators reproduce the two classic execution models:
//   EvalJoinPlan   — set-at-a-time: scan each atom into a relation and
//                    hash-join left-deep (O2SQL/relational style);
//   EvalNestedLoop — tuple-at-a-time backtracking using the store's
//                    receiver indexes (XSQL/navigational style, but
//                    still over decomposed atoms).

#ifndef PATHLOG_BASELINE_CONJUNCTIVE_H_
#define PATHLOG_BASELINE_CONJUNCTIVE_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "baseline/relation.h"
#include "store/object_store.h"

namespace pathlog {

/// A variable or a constant in a flat atom.
struct BTerm {
  bool is_var = false;
  std::string var;
  Oid constant = kNilOid;

  static BTerm Var(std::string name) {
    BTerm t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static BTerm Const(Oid o) {
    BTerm t;
    t.constant = o;
    return t;
  }
};

struct BAtom {
  enum class Kind {
    kMember,     ///< recv <=_U class (method_or_class is the class)
    kScalar,     ///< method(recv) = value
    kSetMember,  ///< value in method(recv)
    kEq,         ///< recv == value
  };
  Kind kind;
  Oid method_or_class = kNilOid;
  BTerm recv;
  BTerm value;  // unused for kMember
};

struct FlatQuery {
  std::vector<BAtom> atoms;
  std::vector<std::string> select;
};

Result<Relation> EvalJoinPlan(const ObjectStore& store, const FlatQuery& q);
Result<Relation> EvalNestedLoop(const ObjectStore& store, const FlatQuery& q);

}  // namespace pathlog

#endif  // PATHLOG_BASELINE_CONJUNCTIVE_H_
