#include "baseline/relation.h"

#include <algorithm>

#include "base/strings.h"
#include "store/object_store.h"

namespace pathlog {

std::optional<size_t> Relation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return std::nullopt;
}

void Relation::Dedup() {
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

std::string Relation::ToString(const ObjectStore& store,
                               size_t max_rows) const {
  std::string out = StrJoin(columns_, " | ");
  out += "\n";
  size_t shown = 0;
  for (const std::vector<Oid>& row : rows_) {
    if (shown++ >= max_rows) {
      out += StrCat("... (", rows_.size() - max_rows, " more rows)\n");
      break;
    }
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (Oid o : row) cells.push_back(store.DisplayName(o));
    out += StrJoin(cells, " | ");
    out += "\n";
  }
  return out;
}

}  // namespace pathlog
