// Decomposition of PathLog references into flat conjunctive atoms —
// exactly the translation the paper argues one-dimensional languages
// force on the user (section 1/2), and the bridge by which the
// benchmarks give every baseline the *same* query as PathLog.
//
// Each path step becomes an atom with a fresh intermediate variable
// ($p0, $p1, ...); each filter becomes an atom on its receiver; `self`
// filters become equality atoms. Supported fragment: argumentless
// methods, ground names at method/class position, scalar and set
// paths, class/scalar/set-enum filters. Set-reference filters,
// `@(...)` arguments, variables at method position and negation are
// outside the relational fragment and yield kInvalidArgument — they
// are precisely the PathLog features with no direct flat counterpart.

#ifndef PATHLOG_BASELINE_TRANSLATE_H_
#define PATHLOG_BASELINE_TRANSLATE_H_

#include <vector>

#include "ast/program.h"
#include "base/result.h"
#include "baseline/conjunctive.h"
#include "store/object_store.h"

namespace pathlog {

/// Translates a conjunction of (positive) literals into a flat query
/// whose select list is every user variable (names not starting '$'),
/// interning names through `store`.
Result<FlatQuery> FlattenLiterals(const std::vector<Literal>& body,
                                  ObjectStore* store);

/// Convenience: translate a single reference used as a formula.
Result<FlatQuery> FlattenRef(const RefPtr& ref, ObjectStore* store);

}  // namespace pathlog

#endif  // PATHLOG_BASELINE_TRANSLATE_H_
