// Relational operators over the object store: the "flat relations"
// execution model the paper contrasts PathLog with. Scans expose the
// store as binary relations; joins are hash joins; selection and
// projection are the usual set-at-a-time operators.

#ifndef PATHLOG_BASELINE_OPERATORS_H_
#define PATHLOG_BASELINE_OPERATORS_H_

#include <string>

#include "baseline/relation.h"
#include "store/object_store.h"

namespace pathlog {

/// member(x, c): one column `col` listing the extent of class `c`.
Relation ScanClass(const ObjectStore& store, Oid klass, std::string col);

/// m(recv) = value as a binary relation (argumentless invocations only).
Relation ScanScalar(const ObjectStore& store, Oid method,
                    std::string recv_col, std::string value_col);

/// value in m(recv) as a binary relation (argumentless invocations).
Relation ScanSet(const ObjectStore& store, Oid method, std::string recv_col,
                 std::string member_col);

/// sigma_{col = value}(rel).
Relation Select(const Relation& rel, const std::string& col, Oid value);

/// Natural hash join on all shared column names (cross product when
/// none are shared). Column order: left columns, then right-only.
Relation HashJoin(const Relation& left, const Relation& right);

/// pi_{cols}(rel), deduplicated.
Relation Project(const Relation& rel, const std::vector<std::string>& cols);

}  // namespace pathlog

#endif  // PATHLOG_BASELINE_OPERATORS_H_
