#include "baseline/operators.h"

#include <unordered_map>

namespace pathlog {

Relation ScanClass(const ObjectStore& store, Oid klass, std::string col) {
  Relation rel({std::move(col)});
  for (Oid o : store.Members(klass)) {
    rel.AddRow({o});
  }
  return rel;
}

Relation ScanScalar(const ObjectStore& store, Oid method,
                    std::string recv_col, std::string value_col) {
  Relation rel({std::move(recv_col), std::move(value_col)});
  for (const ScalarEntry& e : store.ScalarEntries(method)) {
    if (!e.args.empty()) continue;
    rel.AddRow({e.recv, e.value});
  }
  return rel;
}

Relation ScanSet(const ObjectStore& store, Oid method, std::string recv_col,
                 std::string member_col) {
  Relation rel({std::move(recv_col), std::move(member_col)});
  for (const SetGroup& g : store.SetGroups(method)) {
    if (!g.args.empty()) continue;
    for (Oid m : g.members) {
      rel.AddRow({g.recv, m});
    }
  }
  return rel;
}

Relation Select(const Relation& rel, const std::string& col, Oid value) {
  Relation out(rel.columns());
  std::optional<size_t> idx = rel.ColumnIndex(col);
  if (!idx) return out;
  for (const std::vector<Oid>& row : rel.rows()) {
    if (row[*idx] == value) out.AddRow(row);
  }
  return out;
}

Relation HashJoin(const Relation& left, const Relation& right) {
  // Shared columns and the right-only columns.
  std::vector<std::pair<size_t, size_t>> key_cols;  // (left idx, right idx)
  std::vector<size_t> right_only;
  for (size_t j = 0; j < right.NumCols(); ++j) {
    if (std::optional<size_t> li = left.ColumnIndex(right.columns()[j])) {
      key_cols.push_back({*li, j});
    } else {
      right_only.push_back(j);
    }
  }
  std::vector<std::string> out_cols = left.columns();
  for (size_t j : right_only) out_cols.push_back(right.columns()[j]);
  Relation out(std::move(out_cols));

  // Build on the smaller side conceptually; for clarity build on right.
  std::unordered_map<size_t, std::vector<const std::vector<Oid>*>> table;
  auto key_of_right = [&](const std::vector<Oid>& row) {
    size_t h = 1469598103934665603ull;
    for (auto [li, rj] : key_cols) h = HashCombine(h, row[rj]);
    return h;
  };
  auto key_of_left = [&](const std::vector<Oid>& row) {
    size_t h = 1469598103934665603ull;
    for (auto [li, rj] : key_cols) h = HashCombine(h, row[li]);
    return h;
  };
  for (const std::vector<Oid>& row : right.rows()) {
    table[key_of_right(row)].push_back(&row);
  }
  for (const std::vector<Oid>& lrow : left.rows()) {
    auto it = table.find(key_of_left(lrow));
    if (it == table.end()) continue;
    for (const std::vector<Oid>* rrow : it->second) {
      bool match = true;
      for (auto [li, rj] : key_cols) {
        if (lrow[li] != (*rrow)[rj]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::vector<Oid> out_row = lrow;
      for (size_t j : right_only) out_row.push_back((*rrow)[j]);
      out.AddRow(std::move(out_row));
    }
  }
  return out;
}

Relation Project(const Relation& rel, const std::vector<std::string>& cols) {
  Relation out(cols);
  std::vector<size_t> idxs;
  idxs.reserve(cols.size());
  for (const std::string& c : cols) {
    std::optional<size_t> i = rel.ColumnIndex(c);
    if (!i) return out;  // unknown column: empty result
    idxs.push_back(*i);
  }
  for (const std::vector<Oid>& row : rel.rows()) {
    std::vector<Oid> out_row;
    out_row.reserve(idxs.size());
    for (size_t i : idxs) out_row.push_back(row[i]);
    out.AddRow(std::move(out_row));
  }
  out.Dedup();
  return out;
}

}  // namespace pathlog
