#include "baseline/conjunctive.h"

#include <unordered_map>

#include "base/strings.h"
#include "baseline/operators.h"

namespace pathlog {

namespace {

/// Builds the relation of one non-kEq atom, with variable names as
/// columns (constants selected away, duplicate variables equated).
Relation AtomRelation(const ObjectStore& store, const BAtom& atom) {
  Relation raw;
  switch (atom.kind) {
    case BAtom::Kind::kMember:
      raw = ScanClass(store, atom.method_or_class, "$0");
      break;
    case BAtom::Kind::kScalar:
      raw = ScanScalar(store, atom.method_or_class, "$0", "$1");
      break;
    case BAtom::Kind::kSetMember:
      raw = ScanSet(store, atom.method_or_class, "$0", "$1");
      break;
    case BAtom::Kind::kEq:
      return Relation();  // handled separately
  }
  const bool binary = atom.kind != BAtom::Kind::kMember;

  if (!atom.recv.is_var) raw = Select(raw, "$0", atom.recv.constant);
  if (binary && !atom.value.is_var) {
    raw = Select(raw, "$1", atom.value.constant);
  }
  if (binary && atom.recv.is_var && atom.value.is_var &&
      atom.recv.var == atom.value.var) {
    Relation eq(raw.columns());
    for (const std::vector<Oid>& row : raw.rows()) {
      if (row[0] == row[1]) eq.AddRow(row);
    }
    raw = std::move(eq);
  }

  std::vector<std::string> keep;
  std::vector<std::string> renamed;
  if (atom.recv.is_var) {
    keep.push_back("$0");
    renamed.push_back(atom.recv.var);
  }
  if (binary && atom.value.is_var && atom.value.var != atom.recv.var) {
    keep.push_back("$1");
    renamed.push_back(atom.value.var);
  }
  Relation out(renamed);
  std::vector<size_t> idxs;
  for (const std::string& c : keep) idxs.push_back(*raw.ColumnIndex(c));
  for (const std::vector<Oid>& row : raw.rows()) {
    std::vector<Oid> out_row;
    for (size_t i : idxs) out_row.push_back(row[i]);
    out.AddRow(std::move(out_row));
  }
  out.Dedup();
  return out;
}

}  // namespace

Result<Relation> EvalJoinPlan(const ObjectStore& store, const FlatQuery& q) {
  Relation acc(std::vector<std::string>{});
  acc.AddRow({});  // unit relation
  std::vector<const BAtom*> eqs;
  for (const BAtom& atom : q.atoms) {
    if (atom.kind == BAtom::Kind::kEq) {
      eqs.push_back(&atom);
      continue;
    }
    acc = HashJoin(acc, AtomRelation(store, atom));
  }
  // Equality constraints: filter when both sides are bound, extend the
  // relation with a new column when exactly one side is an unbound
  // variable (the `[Z]` selector shape: Z := value of the path).
  for (const BAtom* eq : eqs) {
    auto col_of = [&](const BTerm& t) -> std::optional<size_t> {
      if (!t.is_var) return std::nullopt;
      return acc.ColumnIndex(t.var);
    };
    std::optional<size_t> lcol = col_of(eq->recv);
    std::optional<size_t> rcol = col_of(eq->value);
    const bool l_free = eq->recv.is_var && !lcol;
    const bool r_free = eq->value.is_var && !rcol;
    if (l_free && r_free) {
      return Status(InvalidArgument(
          "kEq between two variables not bound by any atom"));
    }
    if (l_free || r_free) {
      const BTerm& free_term = l_free ? eq->recv : eq->value;
      const BTerm& bound_term = l_free ? eq->value : eq->recv;
      std::optional<size_t> bcol = col_of(bound_term);
      std::vector<std::string> cols = acc.columns();
      cols.push_back(free_term.var);
      Relation extended(std::move(cols));
      for (const std::vector<Oid>& row : acc.rows()) {
        std::vector<Oid> out_row = row;
        out_row.push_back(bound_term.is_var ? row[*bcol]
                                            : bound_term.constant);
        extended.AddRow(std::move(out_row));
      }
      acc = std::move(extended);
      continue;
    }
    Relation kept(acc.columns());
    for (const std::vector<Oid>& row : acc.rows()) {
      Oid a = eq->recv.is_var ? row[*lcol] : eq->recv.constant;
      Oid b = eq->value.is_var ? row[*rcol] : eq->value.constant;
      if (a == b) kept.AddRow(row);
    }
    acc = std::move(kept);
  }
  return Project(acc, q.select);
}

Result<Relation> EvalNestedLoop(const ObjectStore& store, const FlatQuery& q) {
  std::unordered_map<std::string, Oid> bindings;
  Relation out(q.select);
  Status failure;

  auto value_of = [&](const BTerm& t) -> std::optional<Oid> {
    if (!t.is_var) return t.constant;
    auto it = bindings.find(t.var);
    if (it == bindings.end()) return std::nullopt;
    return it->second;
  };
  // Binds `t` to `o` if possible; returns whether consistent, and
  // whether a new binding was made (for undo).
  auto bind = [&](const BTerm& t, Oid o, std::vector<std::string>* trail) {
    if (!t.is_var) return t.constant == o;
    auto it = bindings.find(t.var);
    if (it != bindings.end()) return it->second == o;
    bindings.emplace(t.var, o);
    trail->push_back(t.var);
    return true;
  };

  std::function<void(size_t)> go = [&](size_t i) {
    if (i == q.atoms.size()) {
      std::vector<Oid> row;
      for (const std::string& v : q.select) {
        auto it = bindings.find(v);
        if (it == bindings.end()) {
          failure = InvalidArgument(
              StrCat("select variable ", v, " not bound by any atom"));
          return;
        }
        row.push_back(it->second);
      }
      out.AddRow(std::move(row));
      return;
    }
    const BAtom& atom = q.atoms[i];
    std::vector<std::string> trail;
    auto undo = [&]() {
      for (const std::string& v : trail) bindings.erase(v);
      trail.clear();
    };
    switch (atom.kind) {
      case BAtom::Kind::kEq: {
        std::optional<Oid> a = value_of(atom.recv);
        if (a && bind(atom.value, *a, &trail)) {
          go(i + 1);
        } else if (!a) {
          std::optional<Oid> v = value_of(atom.value);
          if (v && bind(atom.recv, *v, &trail)) go(i + 1);
        }
        undo();
        return;
      }
      case BAtom::Kind::kMember: {
        std::optional<Oid> r = value_of(atom.recv);
        if (r) {
          if (store.IsA(*r, atom.method_or_class)) go(i + 1);
          return;
        }
        for (Oid o : store.Members(atom.method_or_class)) {
          if (bind(atom.recv, o, &trail)) go(i + 1);
          undo();
          if (!failure.ok()) return;
        }
        return;
      }
      case BAtom::Kind::kScalar: {
        std::optional<Oid> r = value_of(atom.recv);
        if (r) {
          std::optional<Oid> v = store.GetScalar(atom.method_or_class, *r, {});
          if (v && bind(atom.value, *v, &trail)) go(i + 1);
          undo();
          return;
        }
        for (const ScalarEntry& e :
             store.ScalarEntries(atom.method_or_class)) {
          if (!e.args.empty()) continue;
          if (bind(atom.recv, e.recv, &trail) &&
              bind(atom.value, e.value, &trail)) {
            go(i + 1);
          }
          undo();
          if (!failure.ok()) return;
        }
        return;
      }
      case BAtom::Kind::kSetMember: {
        std::optional<Oid> r = value_of(atom.recv);
        if (r) {
          const SetGroup* g = store.GetSetGroup(atom.method_or_class, *r, {});
          if (!g) return;
          std::optional<Oid> v = value_of(atom.value);
          if (v) {
            if (g->Contains(*v)) go(i + 1);
            return;
          }
          for (Oid m : g->members) {
            if (bind(atom.value, m, &trail)) go(i + 1);
            undo();
            if (!failure.ok()) return;
          }
          return;
        }
        for (const SetGroup& g : store.SetGroups(atom.method_or_class)) {
          if (!g.args.empty()) continue;
          for (Oid m : g.members) {
            if (bind(atom.recv, g.recv, &trail) &&
                bind(atom.value, m, &trail)) {
              go(i + 1);
            }
            undo();
            if (!failure.ok()) return;
          }
        }
        return;
      }
    }
  };
  go(0);
  if (!failure.ok()) return failure;
  out.Dedup();
  return out;
}

}  // namespace pathlog
