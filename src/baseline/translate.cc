#include "baseline/translate.h"

#include <set>

#include "ast/analysis.h"
#include "ast/printer.h"
#include "base/strings.h"

namespace pathlog {

namespace {

class Flattener {
 public:
  explicit Flattener(ObjectStore* store) : store_(store) {}

  Result<FlatQuery> Run(const std::vector<Literal>& body) {
    for (const Literal& lit : body) {
      if (lit.negated) {
        return Status(InvalidArgument(
            "negation has no counterpart in the flat baseline fragment"));
      }
      Result<BTerm> t = Flatten(*lit.ref);
      if (!t.ok()) return t.status();
    }
    std::set<std::string> user_vars;
    for (const Literal& lit : body) {
      for (const std::string& v : VarsOf(*lit.ref)) user_vars.insert(v);
    }
    query_.select.assign(user_vars.begin(), user_vars.end());
    return std::move(query_);
  }

 private:
  BTerm Fresh() { return BTerm::Var(StrCat("$p", fresh_counter_++)); }

  Result<Oid> GroundName(const Ref& r, const char* role) {
    const Ref* d = &r;
    while (d->kind == RefKind::kParen) d = d->base.get();
    if (d->kind != RefKind::kName) {
      return Status(InvalidArgument(
          StrCat("flat baseline requires a ground name at ", role,
                 " position, got: ", ToString(r))));
    }
    switch (d->name_kind) {
      case NameKind::kSymbol:
        return store_->InternSymbol(d->text);
      case NameKind::kInt:
        return store_->InternInt(d->int_value);
      case NameKind::kString:
        return store_->InternString(d->text);
    }
    return Status(Internal("GroundName: unknown name kind"));
  }

  /// Emits atoms constraining a term to denote `t`; returns the term.
  Result<BTerm> Flatten(const Ref& t) {
    switch (t.kind) {
      case RefKind::kName: {
        PATHLOG_ASSIGN_OR_RETURN(Oid o, GroundName(t, "object"));
        return BTerm::Const(o);
      }
      case RefKind::kVar:
        return BTerm::Var(t.text);
      case RefKind::kParen:
        return Flatten(*t.base);
      case RefKind::kPath: {
        if (!t.args.empty()) {
          return Status(InvalidArgument(
              "method arguments have no flat binary-relation counterpart"));
        }
        PATHLOG_ASSIGN_OR_RETURN(BTerm base, Flatten(*t.base));
        PATHLOG_ASSIGN_OR_RETURN(Oid m, GroundName(*t.method, "method"));
        BTerm result = Fresh();
        BAtom atom;
        atom.kind = t.set_valued_path ? BAtom::Kind::kSetMember
                                      : BAtom::Kind::kScalar;
        atom.method_or_class = m;
        atom.recv = base;
        atom.value = result;
        query_.atoms.push_back(std::move(atom));
        return result;
      }
      case RefKind::kMolecule: {
        PATHLOG_ASSIGN_OR_RETURN(BTerm base, Flatten(*t.base));
        for (const Filter& f : t.filters) {
          if (f.kind == FilterKind::kClass) {
            PATHLOG_ASSIGN_OR_RETURN(Oid c, GroundName(*f.value, "class"));
            BAtom atom;
            atom.kind = BAtom::Kind::kMember;
            atom.method_or_class = c;
            atom.recv = base;
            query_.atoms.push_back(std::move(atom));
            continue;
          }
          if (!f.args.empty()) {
            return Status(InvalidArgument(
                "filter arguments have no flat counterpart"));
          }
          PATHLOG_ASSIGN_OR_RETURN(Oid m, GroundName(*f.method, "method"));
          std::optional<Oid> self = store_->FindSymbol(kSelfMethodName);
          const bool is_self = self.has_value() && *self == m;
          switch (f.kind) {
            case FilterKind::kScalar: {
              PATHLOG_ASSIGN_OR_RETURN(BTerm v, Flatten(*f.value));
              BAtom atom;
              atom.kind = is_self ? BAtom::Kind::kEq : BAtom::Kind::kScalar;
              atom.method_or_class = m;
              atom.recv = base;
              atom.value = v;
              query_.atoms.push_back(std::move(atom));
              break;
            }
            case FilterKind::kSetEnum: {
              for (const RefPtr& e : f.elems) {
                PATHLOG_ASSIGN_OR_RETURN(BTerm v, Flatten(*e));
                BAtom atom;
                atom.kind = BAtom::Kind::kSetMember;
                atom.method_or_class = m;
                atom.recv = base;
                atom.value = v;
                query_.atoms.push_back(std::move(atom));
              }
              break;
            }
            case FilterKind::kSetRef:
              return Status(InvalidArgument(
                  "set-reference filters have no flat counterpart"));
            case FilterKind::kClass:
              break;  // unreachable
          }
        }
        return base;
      }
    }
    return Status(Internal("Flatten: unknown reference kind"));
  }

  ObjectStore* store_;
  FlatQuery query_;
  int fresh_counter_ = 0;
};

}  // namespace

Result<FlatQuery> FlattenLiterals(const std::vector<Literal>& body,
                                  ObjectStore* store) {
  return Flattener(store).Run(body);
}

Result<FlatQuery> FlattenRef(const RefPtr& ref, ObjectStore* store) {
  std::vector<Literal> body;
  body.push_back(Literal{ref, false});
  return FlattenLiterals(body, store);
}

}  // namespace pathlog
