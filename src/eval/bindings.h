// Variable bindings with a backtracking trail.
//
// The reference evaluator explores the space of valuations by binding
// variables as it walks a reference left-to-right and undoing those
// bindings on backtrack. Mark()/Undo() give O(1)-amortised rollback.

#ifndef PATHLOG_EVAL_BINDINGS_H_
#define PATHLOG_EVAL_BINDINGS_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "semantics/valuation.h"
#include "store/oid.h"

namespace pathlog {

class Bindings {
 public:
  /// Current value of a variable, if bound.
  std::optional<Oid> Get(const std::string& var) const {
    auto it = map_.find(var);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool IsBound(const std::string& var) const { return map_.count(var) > 0; }

  /// Binds `var` (which must be unbound) and records it on the trail.
  void Bind(const std::string& var, Oid value) {
    map_.emplace(var, value);
    trail_.push_back(var);
  }

  /// Snapshot of the trail position; pass to Undo to roll back.
  size_t Mark() const { return trail_.size(); }

  /// Unbinds every variable bound since `mark`.
  void Undo(size_t mark) {
    while (trail_.size() > mark) {
      map_.erase(trail_.back());
      trail_.pop_back();
    }
  }

  size_t size() const { return map_.size(); }

  /// The variable bound at trail position i (0 <= i < Mark()), oldest
  /// first. With Get(), this exposes every binding made since a mark —
  /// the evaluator keys duplicate-solution suppression on it.
  const std::string& TrailVar(size_t i) const { return trail_[i]; }

  /// The current bindings as a Definition-4 style valuation.
  VarValuation ToValuation() const {
    return VarValuation(map_.begin(), map_.end());
  }

 private:
  std::unordered_map<std::string, Oid> map_;
  std::vector<std::string> trail_;
};

}  // namespace pathlog

#endif  // PATHLOG_EVAL_BINDINGS_H_
