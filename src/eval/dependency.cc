#include "eval/dependency.h"

#include "ast/analysis.h"

namespace pathlog {

namespace {

/// Collects definition/read sets of a single rule.
class Collector {
 public:
  Collector(ObjectStore* store, RuleDeps* deps, HeadValueMode mode)
      : store_(store), deps_(deps),
        value_creates_(mode == HeadValueMode::kSkolemize) {}

  /// Entry point for rule heads: everything read while walking the
  /// head is an assert-time read (see RuleDeps::head_reads).
  void WalkHeadTop(const Ref& t) {
    in_head_ = true;
    WalkHead(t, /*create=*/true);
    in_head_ = false;
  }

  /// `create` is true on the head spine (paths there always define
  /// virtual objects) and mode-dependent at value positions.
  void WalkHead(const Ref& t, bool create) {
    switch (t.kind) {
      case RefKind::kName:
      case RefKind::kVar:
        return;
      case RefKind::kParen:
        WalkHead(*t.base, create);
        return;
      case RefKind::kPath: {
        if (create || value_creates_) {
          DefineMethod(*t.method);
        }
        // The assert-time lookup is also a read (change tracking).
        ReadMethod(*t.method, /*complete=*/false);
        WalkHead(*t.base, create);
        for (const RefPtr& a : t.args) WalkHead(*a, value_creates_);
        return;
      }
      case RefKind::kMolecule: {
        WalkHead(*t.base, create);
        for (const Filter& f : t.filters) {
          if (f.kind == FilterKind::kClass) {
            deps_->defines_isa = true;
            WalkHead(*f.value, value_creates_);
            continue;
          }
          DefineMethod(*f.method);
          for (const RefPtr& a : f.args) WalkHead(*a, value_creates_);
          switch (f.kind) {
            case FilterKind::kScalar:
              WalkHead(*f.value, value_creates_);
              break;
            case FilterKind::kSetRef:
              // Referenced, not asserted: a needs-complete body read.
              WalkBody(*f.value, /*complete=*/true);
              break;
            case FilterKind::kSetEnum:
              for (const RefPtr& e : f.elems) WalkHead(*e, value_creates_);
              break;
            case FilterKind::kClass:
              break;
          }
        }
        return;
      }
    }
  }

  void WalkBody(const Ref& t, bool complete) {
    switch (t.kind) {
      case RefKind::kName:
      case RefKind::kVar:
        return;
      case RefKind::kParen:
        WalkBody(*t.base, complete);
        return;
      case RefKind::kPath:
        ReadMethod(*t.method, complete);
        WalkBody(*t.base, complete);
        for (const RefPtr& a : t.args) WalkBody(*a, complete);
        return;
      case RefKind::kMolecule: {
        WalkBody(*t.base, complete);
        for (const Filter& f : t.filters) {
          if (f.kind == FilterKind::kClass) {
            deps_->reads_isa = true;
            if (complete) deps_->reads_isa_complete = true;
            WalkBody(*f.value, complete);
            continue;
          }
          ReadMethod(*f.method, complete);
          for (const RefPtr& a : f.args) WalkBody(*a, complete);
          switch (f.kind) {
            case FilterKind::kScalar:
              WalkBody(*f.value, complete);
              break;
            case FilterKind::kSetRef:
              // The specified set must be final before the subset test
              // is meaningful (paper section 6, [NT89]).
              WalkBody(*f.value, /*complete=*/true);
              break;
            case FilterKind::kSetEnum:
              for (const RefPtr& e : f.elems) WalkBody(*e, complete);
              break;
            case FilterKind::kClass:
              break;
          }
        }
        return;
      }
    }
  }

 private:
  void DefineMethod(const Ref& m) {
    const Ref* d = &m;
    while (d->kind == RefKind::kParen) d = d->base.get();
    if (d->kind == RefKind::kName && d->name_kind == NameKind::kSymbol) {
      deps_->defines.insert(store_->InternSymbol(d->text));
      return;
    }
    // Variable or complex method: may define any method (and a complex
    // method path's own steps are defined as virtual method objects).
    deps_->defines_any = true;
    if (d->kind == RefKind::kPath || d->kind == RefKind::kMolecule) {
      WalkHead(*d, /*create=*/true);
    }
  }

  void ReadMethod(const Ref& m, bool complete) {
    const Ref* d = &m;
    while (d->kind == RefKind::kParen) d = d->base.get();
    if (d->kind == RefKind::kName && d->name_kind == NameKind::kSymbol) {
      Oid o = store_->InternSymbol(d->text);
      deps_->reads.insert(o);
      if (complete) deps_->reads_complete.insert(o);
      if (in_head_) deps_->head_reads.insert(o);
      return;
    }
    deps_->reads_any = true;
    if (complete) deps_->reads_any_complete = true;
    if (in_head_) deps_->head_reads_any = true;
    if (d->kind == RefKind::kPath || d->kind == RefKind::kMolecule) {
      WalkBody(*d, complete);
    }
  }

  ObjectStore* store_;
  RuleDeps* deps_;
  bool value_creates_;
  bool in_head_ = false;
};

}  // namespace

uint32_t DependencyGraph::NodeOf(Oid method, const ObjectStore& store) {
  auto it = method_nodes_.find(method);
  if (it != method_nodes_.end()) return it->second;
  uint32_t node = static_cast<uint32_t>(node_names_.size());
  node_names_.push_back(store.DisplayName(method));
  method_nodes_.emplace(method, node);
  return node;
}

Result<DependencyGraph> DependencyGraph::Build(const std::vector<Rule>& rules,
                                               ObjectStore* store,
                                               HeadValueMode mode) {
  DependencyGraph g;
  g.node_names_ = {"<any-method>", "<hierarchy>"};

  bool any_defines_any = false;
  bool any_reads_any = false;
  for (const Rule& rule : rules) {
    RuleDeps deps;
    Collector c(store, &deps, mode);
    c.WalkHeadTop(*rule.head);
    for (const Literal& lit : rule.body) {
      c.WalkBody(*lit.ref, /*complete=*/lit.negated);
    }
    any_defines_any |= deps.defines_any;
    any_reads_any |= deps.reads_any;
    g.rule_deps_.push_back(std::move(deps));
  }

  // Materialise nodes and per-rule define-node lists.
  for (size_t r = 0; r < rules.size(); ++r) {
    const RuleDeps& deps = g.rule_deps_[r];
    std::vector<uint32_t> defs;
    if (deps.defines_any) defs.push_back(kAnyNode);
    if (deps.defines_isa) defs.push_back(kIsaNode);
    for (Oid m : deps.defines) defs.push_back(g.NodeOf(m, *store));
    for (Oid m : deps.reads) g.NodeOf(m, *store);
    for (Oid m : deps.reads_complete) g.NodeOf(m, *store);
    g.rule_define_nodes_.push_back(std::move(defs));
  }

  // A molecule head may define several symbols at once; the rule must
  // run in one stratum, so co-defined symbols are cycle-linked to force
  // them into the same SCC (hence the same stratum).
  for (size_t r = 0; r < g.rule_define_nodes_.size(); ++r) {
    const std::vector<uint32_t>& defs = g.rule_define_nodes_[r];
    for (size_t i = 0; defs.size() > 1 && i < defs.size(); ++i) {
      g.edges_.push_back(Edge{defs[i], defs[(i + 1) % defs.size()], false,
                              static_cast<int32_t>(r)});
    }
  }

  // Edges: every defined symbol depends on every read symbol.
  for (size_t r = 0; r < rules.size(); ++r) {
    const RuleDeps& deps = g.rule_deps_[r];
    std::vector<std::pair<uint32_t, bool>> read_nodes;
    for (Oid m : deps.reads) {
      bool complete = deps.reads_complete.count(m) > 0;
      read_nodes.push_back({g.NodeOf(m, *store), complete});
    }
    if (deps.reads_isa) {
      read_nodes.push_back({kIsaNode, deps.reads_isa_complete});
    }
    if (deps.reads_any) {
      read_nodes.push_back({kAnyNode, deps.reads_any_complete});
    }
    for (uint32_t d : g.rule_define_nodes_[r]) {
      for (auto [to, complete] : read_nodes) {
        g.edges_.push_back(Edge{d, to, complete, static_cast<int32_t>(r)});
      }
    }
  }

  // Wildcard coupling: a rule that may define any method makes every
  // method's derivation depend on the wildcard node; a rule that may
  // read any method makes the wildcard depend on every method.
  if (any_defines_any || any_reads_any) {
    for (uint32_t n = 2; n < g.node_names_.size(); ++n) {
      if (any_defines_any) g.edges_.push_back(Edge{n, kAnyNode, false, -1});
      if (any_reads_any) g.edges_.push_back(Edge{kAnyNode, n, false, -1});
    }
  }
  return g;
}

}  // namespace pathlog
