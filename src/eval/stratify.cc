#include "eval/stratify.h"

#include <algorithm>

#include "base/strings.h"

namespace pathlog {

namespace {

/// Iterative Tarjan SCC. Returns the SCC index of each node; SCCs are
/// numbered in reverse topological order (every edge goes from a
/// higher-or-equal SCC index to a lower-or-equal one... precisely: for
/// an edge u->v in different SCCs, scc[v] < scc[u]).
std::vector<int> TarjanScc(size_t n,
                           const std::vector<std::vector<uint32_t>>& adj,
                           int* num_sccs) {
  std::vector<int> index(n, -1), low(n, 0), scc(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  int next_index = 0;
  int next_scc = 0;

  struct Frame {
    uint32_t node;
    size_t child;
  };
  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      uint32_t u = f.node;
      if (f.child < adj[u].size()) {
        uint32_t v = adj[u][f.child++];
        if (index[v] == -1) {
          index[v] = low[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          frames.push_back({v, 0});
        } else if (on_stack[v]) {
          low[u] = std::min(low[u], index[v]);
        }
      } else {
        if (low[u] == index[u]) {
          for (;;) {
            uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc[w] = next_scc;
            if (w == u) break;
          }
          ++next_scc;
        }
        frames.pop_back();
        if (!frames.empty()) {
          uint32_t parent = frames.back().node;
          low[parent] = std::min(low[parent], low[u]);
        }
      }
    }
  }
  *num_sccs = next_scc;
  return scc;
}

/// BFS from `from` to `to` over edges whose endpoints both lie in SCC
/// `component`, returning the traversed edge chain (empty when from ==
/// to and no self-edge is needed). All nodes of one SCC are mutually
/// reachable, so the search always succeeds.
std::vector<DependencyGraph::Edge> FindPathInScc(
    const DependencyGraph& graph, const std::vector<int>& scc, int component,
    uint32_t from, uint32_t to) {
  std::vector<std::vector<const DependencyGraph::Edge*>> out(
      graph.num_nodes());
  for (const DependencyGraph::Edge& e : graph.edges()) {
    if (scc[e.from] == component && scc[e.to] == component) {
      out[e.from].push_back(&e);
    }
  }
  std::vector<const DependencyGraph::Edge*> via(graph.num_nodes(), nullptr);
  std::vector<bool> seen(graph.num_nodes(), false);
  std::vector<uint32_t> queue{from};
  seen[from] = true;
  for (size_t i = 0; i < queue.size(); ++i) {
    uint32_t u = queue[i];
    if (u == to && i > 0) break;
    for (const DependencyGraph::Edge* e : out[u]) {
      if (seen[e->to]) continue;
      seen[e->to] = true;
      via[e->to] = e;
      queue.push_back(e->to);
    }
  }
  std::vector<DependencyGraph::Edge> path;
  for (uint32_t u = to; via[u] != nullptr; u = via[u]->from) {
    path.push_back(*via[u]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

Result<Stratification> Stratify(const DependencyGraph& graph,
                                size_t num_rules,
                                CycleExplanation* cycle) {
  const size_t n = graph.num_nodes();
  std::vector<std::vector<uint32_t>> adj(n);
  for (const DependencyGraph::Edge& e : graph.edges()) {
    adj[e.from].push_back(e.to);
  }
  int num_sccs = 0;
  std::vector<int> scc = TarjanScc(n, adj, &num_sccs);

  // Reject needs-complete edges inside an SCC.
  for (const DependencyGraph::Edge& e : graph.edges()) {
    if (e.needs_complete && scc[e.from] == scc[e.to]) {
      if (cycle != nullptr) {
        cycle->edges.clear();
        cycle->edges.push_back(e);
        std::vector<DependencyGraph::Edge> back =
            FindPathInScc(graph, scc, scc[e.from], e.to, e.from);
        cycle->edges.insert(cycle->edges.end(), back.begin(), back.end());
      }
      return Status(NotStratifiable(StrCat(
          "method '", graph.NodeName(e.from),
          "' recursively depends on the *complete* result set of '",
          graph.NodeName(e.to),
          "' (a set-valued reference or negation in a recursive cycle); "
          "the program cannot be stratified")));
    }
  }

  // Node strata via longest paths over the condensation. Tarjan's
  // numbering is reverse-topological, so ascending SCC order visits
  // successors first.
  std::vector<int> scc_stratum(num_sccs, 0);
  std::vector<std::vector<const DependencyGraph::Edge*>> by_from_scc(num_sccs);
  for (const DependencyGraph::Edge& e : graph.edges()) {
    if (scc[e.from] != scc[e.to]) {
      by_from_scc[scc[e.from]].push_back(&e);
    }
  }
  for (int s = 0; s < num_sccs; ++s) {
    for (const DependencyGraph::Edge* e : by_from_scc[s]) {
      int need = scc_stratum[scc[e->to]] + (e->needs_complete ? 1 : 0);
      scc_stratum[s] = std::max(scc_stratum[s], need);
    }
  }

  Stratification out;
  out.rule_stratum.resize(num_rules, 0);
  int max_stratum = 0;
  for (size_t r = 0; r < num_rules; ++r) {
    int stratum = 0;
    for (uint32_t d : graph.rule_define_nodes()[r]) {
      stratum = std::max(stratum, scc_stratum[scc[d]]);
    }
    out.rule_stratum[r] = stratum;
    max_stratum = std::max(max_stratum, stratum);
  }
  out.num_strata = max_stratum + 1;
  return out;
}

}  // namespace pathlog
