#include "eval/stratify.h"

#include <algorithm>

#include "base/strings.h"

namespace pathlog {

namespace {

/// Iterative Tarjan SCC. Returns the SCC index of each node; SCCs are
/// numbered in reverse topological order (every edge goes from a
/// higher-or-equal SCC index to a lower-or-equal one... precisely: for
/// an edge u->v in different SCCs, scc[v] < scc[u]).
std::vector<int> TarjanScc(size_t n,
                           const std::vector<std::vector<uint32_t>>& adj,
                           int* num_sccs) {
  std::vector<int> index(n, -1), low(n, 0), scc(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  int next_index = 0;
  int next_scc = 0;

  struct Frame {
    uint32_t node;
    size_t child;
  };
  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      uint32_t u = f.node;
      if (f.child < adj[u].size()) {
        uint32_t v = adj[u][f.child++];
        if (index[v] == -1) {
          index[v] = low[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          frames.push_back({v, 0});
        } else if (on_stack[v]) {
          low[u] = std::min(low[u], index[v]);
        }
      } else {
        if (low[u] == index[u]) {
          for (;;) {
            uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc[w] = next_scc;
            if (w == u) break;
          }
          ++next_scc;
        }
        frames.pop_back();
        if (!frames.empty()) {
          uint32_t parent = frames.back().node;
          low[parent] = std::min(low[parent], low[u]);
        }
      }
    }
  }
  *num_sccs = next_scc;
  return scc;
}

}  // namespace

Result<Stratification> Stratify(const DependencyGraph& graph,
                                size_t num_rules) {
  const size_t n = graph.num_nodes();
  std::vector<std::vector<uint32_t>> adj(n);
  for (const DependencyGraph::Edge& e : graph.edges()) {
    adj[e.from].push_back(e.to);
  }
  int num_sccs = 0;
  std::vector<int> scc = TarjanScc(n, adj, &num_sccs);

  // Reject needs-complete edges inside an SCC.
  for (const DependencyGraph::Edge& e : graph.edges()) {
    if (e.needs_complete && scc[e.from] == scc[e.to]) {
      return Status(NotStratifiable(StrCat(
          "method '", graph.NodeName(e.from),
          "' recursively depends on the *complete* result set of '",
          graph.NodeName(e.to),
          "' (a set-valued reference or negation in a recursive cycle); "
          "the program cannot be stratified")));
    }
  }

  // Node strata via longest paths over the condensation. Tarjan's
  // numbering is reverse-topological, so ascending SCC order visits
  // successors first.
  std::vector<int> scc_stratum(num_sccs, 0);
  std::vector<std::vector<const DependencyGraph::Edge*>> by_from_scc(num_sccs);
  for (const DependencyGraph::Edge& e : graph.edges()) {
    if (scc[e.from] != scc[e.to]) {
      by_from_scc[scc[e.from]].push_back(&e);
    }
  }
  for (int s = 0; s < num_sccs; ++s) {
    for (const DependencyGraph::Edge* e : by_from_scc[s]) {
      int need = scc_stratum[scc[e->to]] + (e->needs_complete ? 1 : 0);
      scc_stratum[s] = std::max(scc_stratum[s], need);
    }
  }

  Stratification out;
  out.rule_stratum.resize(num_rules, 0);
  int max_stratum = 0;
  for (size_t r = 0; r < num_rules; ++r) {
    int stratum = 0;
    for (uint32_t d : graph.rule_define_nodes()[r]) {
      stratum = std::max(stratum, scc_stratum[scc[d]]);
    }
    out.rule_stratum[r] = stratum;
    max_stratum = std::max(max_stratum, stratum);
  }
  out.num_strata = max_stratum + 1;
  return out;
}

}  // namespace pathlog
