#include "eval/engine.h"

#include <algorithm>

#include "ast/analysis.h"
#include "ast/printer.h"
#include "base/budget.h"
#include "base/strings.h"
#include "eval/ref_eval.h"
#include "obs/metrics.h"
#include "query/planner.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "semantics/structure.h"

namespace pathlog {

namespace {

void CollectSetRefValueVars(const Ref& t, std::set<std::string>* out) {
  switch (t.kind) {
    case RefKind::kName:
    case RefKind::kVar:
      return;
    case RefKind::kParen:
      CollectSetRefValueVars(*t.base, out);
      return;
    case RefKind::kPath:
      CollectSetRefValueVars(*t.base, out);
      CollectSetRefValueVars(*t.method, out);
      for (const RefPtr& a : t.args) CollectSetRefValueVars(*a, out);
      return;
    case RefKind::kMolecule:
      CollectSetRefValueVars(*t.base, out);
      for (const Filter& f : t.filters) {
        if (f.kind == FilterKind::kClass) {
          CollectSetRefValueVars(*f.value, out);
          continue;
        }
        CollectSetRefValueVars(*f.method, out);
        for (const RefPtr& a : f.args) CollectSetRefValueVars(*a, out);
        if (f.kind == FilterKind::kSetRef) {
          CollectVars(*f.value, out);  // everything inside must be bound
        } else if (f.kind == FilterKind::kScalar) {
          CollectSetRefValueVars(*f.value, out);
        } else {
          for (const RefPtr& e : f.elems) CollectSetRefValueVars(*e, out);
        }
      }
      return;
  }
}

}  // namespace

std::set<std::string> SetRefValueVars(const Ref& t) {
  std::set<std::string> out;
  CollectSetRefValueVars(t, &out);
  return out;
}

Status OrderLiteralsForSafety(std::vector<Literal>* body,
                              std::set<std::string>* bound_out) {
  std::vector<Literal> remaining = std::move(*body);
  std::vector<Literal> ordered;
  std::set<std::string> bound;

  // Variables occurring in more than one literal. A variable local to a
  // single negated literal is existentially quantified inside the
  // negation (not-exists) and need not be bound.
  std::map<std::string, int> occurrences;
  for (const Literal& lit : remaining) {
    for (const std::string& v : VarsOf(*lit.ref)) ++occurrences[v];
  }

  auto admissible = [&](const Literal& lit) {
    std::set<std::string> need;
    if (lit.negated) {
      for (const std::string& v : VarsOf(*lit.ref)) {
        if (occurrences[v] > 1) need.insert(v);
      }
    } else {
      need = SetRefValueVars(*lit.ref);
    }
    for (const std::string& v : need) {
      if (!bound.count(v)) return false;
    }
    return true;
  };

  while (!remaining.empty()) {
    size_t pick = remaining.size();
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (admissible(remaining[i])) {
        pick = i;
        break;
      }
    }
    if (pick == remaining.size()) {
      return UnsafeRule(
          "cannot order the conjunction: a negated literal or `->>` filter "
          "result needs variables no earlier literal can bind");
    }
    if (!remaining[pick].negated) {
      // Negated literals are tests; they bind nothing.
      for (const std::string& v : VarsOf(*remaining[pick].ref)) {
        bound.insert(v);
      }
    }
    ordered.push_back(std::move(remaining[pick]));
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick));
  }
  *body = std::move(ordered);
  if (bound_out) *bound_out = std::move(bound);
  return Status::OK();
}

Status Engine::PlanBody(Rule* rule) const {
  std::set<std::string> bound;
  Status st;
  if (options_.planner_hints != nullptr) {
    // Analysis-informed mode: the cost-based planner orders the body
    // (still subject to the same safety constraints), consulting the
    // proven hints. Identical answer set, different literal order.
    st = PlanConjunction(&rule->body, *store_, nullptr, nullptr,
                         options_.planner_hints, options_.planner_stats);
    if (st.ok()) {
      for (const Literal& lit : rule->body) {
        if (lit.negated) continue;
        for (const std::string& v : VarsOf(*lit.ref)) bound.insert(v);
      }
    }
  } else {
    st = OrderLiteralsForSafety(&rule->body, &bound);
  }
  if (!st.ok()) {
    return UnsafeRule(StrCat("in rule `", ToString(*rule), "`: ",
                             st.message()));
  }

  for (const std::string& v : VarsOf(*rule->head)) {
    if (!bound.count(v)) {
      return UnsafeRule(StrCat("head variable ", v, " of rule `",
                               ToString(*rule),
                               "` is not bound by any positive body literal "
                               "(range restriction)"));
    }
  }
  return Status::OK();
}

Status Engine::AddRule(const Rule& rule) {
  PATHLOG_RETURN_IF_ERROR(CheckRuleWellFormed(rule));
  PlannedRule pr;
  pr.rule = rule;
  pr.index = rules_.size();
  PATHLOG_RETURN_IF_ERROR(PlanBody(&pr.rule));
  pr.head_vars = VarsOf(*pr.rule.head);
  rules_.push_back(std::move(pr));
  return Status::OK();
}

Status Engine::AddRules(const std::vector<Rule>& rules) {
  for (const Rule& r : rules) {
    PATHLOG_RETURN_IF_ERROR(AddRule(r));
  }
  return Status::OK();
}

void Engine::ScanNewFacts() {
  const uint64_t end = store_->generation();
  for (uint64_t g = scan_watermark_; g < end; ++g) {
    const Fact& f = store_->FactAt(g);
    if (f.kind == FactKind::kIsa) {
      isa_gen_ = g + 1;
    } else {
      uint64_t& mg = method_gen_[f.method];
      mg = std::max(mg, g + 1);
    }
    any_gen_ = g + 1;
  }
  scan_watermark_ = end;
}

bool Engine::RuleAffected(const PlannedRule& pr, const RuleDeps& deps) const {
  const uint64_t since = pr.last_eval_gen;
  if (deps.reads_any && any_gen_ > since) return true;
  if ((deps.reads_isa || deps.defines_isa) && isa_gen_ > since) return true;
  for (Oid m : deps.reads) {
    auto it = method_gen_.find(m);
    if (it != method_gen_.end() && it->second > since) return true;
  }
  for (Oid m : deps.reads_complete) {
    auto it = method_gen_.find(m);
    if (it != method_gen_.end() && it->second > since) return true;
  }
  return false;
}

bool Engine::HeadReadsChanged(const PlannedRule& pr,
                              const RuleDeps& deps) const {
  const uint64_t since = pr.last_eval_gen;
  if (deps.head_reads_any && any_gen_ > since) return true;
  // Class filters in heads interact with the hierarchy.
  if (deps.defines_isa && isa_gen_ > since) return true;
  for (Oid m : deps.head_reads) {
    auto it = method_gen_.find(m);
    if (it != method_gen_.end() && it->second > since) return true;
  }
  return false;
}

Status Engine::CheckLimits() {
  // Where evaluation currently stands, for limit diagnostics: without
  // it, a tripped deadline on a large program gives no hint which rule
  // was running away.
  auto record_context = [&]() -> std::string {
    stats_.limit_stratum = current_stratum_;
    stats_.limit_rule =
        current_rule_ != nullptr ? ToString(current_rule_->rule) : "";
    if (stats_.limit_rule.empty()) return "";
    return StrCat(" in stratum ", stats_.limit_stratum,
                  " while evaluating rule `", stats_.limit_rule, "`");
  };
  if (store_->FactCount() > options_.max_facts) {
    return ResourceExhausted(StrCat(
        "fact limit exceeded (", options_.max_facts, ")", record_context(),
        "; the program likely creates virtual objects unboundedly"));
  }
  if (store_->UniverseSize() > options_.max_objects) {
    return ResourceExhausted(StrCat(
        "object limit exceeded (", options_.max_objects, ")",
        record_context(),
        "; the program likely creates virtual objects unboundedly"));
  }
  if (options_.max_wall_ms > 0 &&
      std::chrono::steady_clock::now() > deadline_) {
    return DeadlineExceeded(StrCat(
        "materialisation exceeded the wall-clock budget (",
        options_.max_wall_ms, " ms)", record_context()));
  }
  return CheckBudget();
}

Status Engine::CheckBudget() {
  if (options_.budget == nullptr) return Status::OK();
  Status st = options_.budget->Check(store_->ApproxBytes());
  if (st.ok()) return st;
  stats_.limit_stratum = current_stratum_;
  stats_.limit_rule =
      current_rule_ != nullptr ? ToString(current_rule_->rule) : "";
  if (stats_.limit_rule.empty()) return st;
  return Status(st.code(),
                StrCat(st.message(), " in stratum ", stats_.limit_stratum,
                       " while evaluating rule `", stats_.limit_rule, "`"));
}

Status Engine::EvaluateRule(PlannedRule* pr, HeadAsserter* asserter,
                            std::optional<uint64_t> delta_from) {
  SemanticStructure I(*store_);
  RefEvaluator eval(I, options_.use_inverted_indexes);
  eval.set_budget(options_.budget);
  Status st = EvaluateRuleBody(pr, asserter, delta_from, &eval);
  // Flush the evaluator's route counters on every path (including
  // errors — a tripped deadline still wants its profile).
  stats_.duplicates_suppressed += eval.duplicates_suppressed();
  if (options_.obs.profiler != nullptr) {
    Profiler::RouteTotals routes;
    routes.inverted_probes = eval.inverted_probes();
    routes.extent_scans = eval.extent_scans();
    routes.universe_scans = eval.universe_scans();
    routes.duplicates_suppressed = eval.duplicates_suppressed();
    options_.obs.profiler->RecordRoutes(routes);
  }
  return st;
}

Status Engine::EvaluateRuleBody(PlannedRule* pr, HeadAsserter* asserter,
                                std::optional<uint64_t> delta_from,
                                RefEvaluator* eval_ptr) {
  RefEvaluator& eval = *eval_ptr;
  Bindings b;

  // Body enumeration must not mutate the store (iterator stability), so
  // solutions are batched — projected onto the head's variables and
  // deduplicated — and asserted afterwards.
  std::set<VarValuation> batch;
  const std::vector<Literal>& body = pr->rule.body;

  // Index of the literal currently under delta restriction, or one
  // past the end for a full (unrestricted) evaluation.
  size_t delta_idx = body.size();

  std::function<Result<bool>(size_t)> go =
      [&](size_t i) -> Result<bool> {
    if (i == body.size()) {
      VarValuation v;
      for (const std::string& hv : pr->head_vars) {
        v.emplace(hv, *b.Get(hv));
      }
      batch.insert(std::move(v));
      return true;
    }
    const Literal& lit = body[i];
    if (lit.negated) {
      Result<bool> sat = eval.Satisfiable(*lit.ref, &b);
      if (!sat.ok()) return sat.status();
      if (*sat) return true;  // negated literal fails: backtrack
      return go(i + 1);
    }
    if (i != delta_idx) {
      return eval.Enumerate(*lit.ref, &b, [&](Oid) { return go(i + 1); });
    }
    // The designated literal: delta counting is active only while this
    // literal matches — earlier literals ran before EnterDelta, later
    // ones run with counting suspended. A solution survives only if
    // this literal consumed a fact newer than the rule's previous
    // evaluation.
    eval.EnterDelta(*delta_from);
    Result<bool> res =
        eval.Enumerate(*lit.ref, &b, [&](Oid) -> Result<bool> {
          if (!eval.DeltaSeen()) return true;
          bool saved = eval.SuspendDelta();
          Result<bool> r = go(i + 1);
          eval.ResumeDelta(saved);
          return r;
        });
    eval.ExitDelta();
    return res;
  };

  if (!delta_from.has_value()) {
    Result<bool> r = go(0);
    if (!r.ok()) return r.status();
  } else {
    for (size_t p = 0; p < body.size(); ++p) {
      if (body[p].negated) continue;  // monotone store: no new matches
      delta_idx = p;
      ++stats_.delta_passes;
      TraceSpan delta_span(options_.obs.tracer, "delta_pass", "engine",
                           StrCat("{\"literal\":", p, "}"));
      Result<bool> r = go(0);
      if (!r.ok()) return r.status();
    }
  }

  for (const VarValuation& v : batch) {
    Bindings hb;
    for (const auto& [var, oid] : v) hb.Bind(var, oid);
    const uint64_t before = store_->generation();
    PATHLOG_RETURN_IF_ERROR(asserter->Assert(*pr->rule.head, &hb));
    ++stats_.derivations;
    if (options_.budget != nullptr) {
      options_.budget->ChargeDerivations();
      // Poll mid-batch so a huge assertion batch cannot blow far past
      // the byte or derivation ceiling before the per-rule check.
      if ((stats_.derivations & 0x3FF) == 0) {
        PATHLOG_RETURN_IF_ERROR(CheckBudget());
      }
    }
    if (options_.trace_provenance && store_->generation() > before) {
      provenance_.push_back(
          DerivationRecord{before, store_->generation(), pr->index, v});
    }
  }
  return CheckLimits();
}

Status Engine::RunStratum(int stratum, const std::vector<size_t>& rule_idxs,
                          const std::vector<RuleDeps>& deps) {
  TraceSpan stratum_span(options_.obs.tracer, "stratum", "engine",
                         StrCat("{\"stratum\":", stratum, "}"));
  current_stratum_ = stratum;
  HeadAsserter asserter(store_, options_.head_value_mode);
  bool first = true;
  for (;;) {
    ++stats_.iterations;
    ++stats_.stratum_iterations[static_cast<size_t>(stratum)];
    if (stats_.iterations > options_.max_iterations) {
      return ResourceExhausted(
          StrCat("iteration limit exceeded (", options_.max_iterations, ")"));
    }
    TraceSpan iter_span(
        options_.obs.tracer, "iteration", "engine",
        StrCat("{\"n\":", stats_.stratum_iterations[static_cast<size_t>(
                              stratum)],
               "}"));
    const uint64_t start_gen = store_->generation();
    for (size_t idx : rule_idxs) {
      PlannedRule& pr = rules_[idx];
      const bool semi = options_.strategy != EvalStrategy::kNaive;
      if (semi && !first && !RuleAffected(pr, deps[idx])) {
        continue;
      }
      std::optional<uint64_t> delta_from;
      if (options_.strategy == EvalStrategy::kSemiNaiveDelta && !first &&
          !HeadReadsChanged(pr, deps[idx])) {
        delta_from = pr.last_eval_gen;
      }
      pr.last_eval_gen = store_->generation();
      ++stats_.rule_evaluations;
      current_rule_ = &pr;
      Profiler* profiler = options_.obs.profiler;
      const uint64_t delta_passes_before = stats_.delta_passes;
      const uint64_t derivations_before = stats_.derivations;
      std::chrono::steady_clock::time_point rule_t0;
      if (profiler != nullptr) rule_t0 = std::chrono::steady_clock::now();
      Status rule_status;
      {
        TraceSpan rule_span(options_.obs.tracer, "rule.evaluate", "engine",
                            StrCat("{\"rule\":", idx, "}"));
        rule_status = EvaluateRule(&pr, &asserter, delta_from);
      }
      if (profiler != nullptr) {
        const uint64_t wall_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - rule_t0)
                .count());
        profiler->RecordRuleEvaluation(
            ToString(pr.rule), wall_ns,
            stats_.delta_passes - delta_passes_before,
            stats_.derivations - derivations_before);
      }
      current_rule_ = nullptr;
      PATHLOG_RETURN_IF_ERROR(rule_status);
    }
    ScanNewFacts();
    first = false;
    if (store_->generation() == start_gen) break;
  }
  stats_.skolems_created += asserter.skolems_created();
  return Status::OK();
}

Status Engine::Run() {
  TraceSpan run_span(options_.obs.tracer, "engine.run", "engine");
  const EngineStats before = stats_;
  const uint64_t rejections_before =
      options_.budget != nullptr ? options_.budget->rejections() : 0;
  const auto t0 = std::chrono::steady_clock::now();
  Status st = RunImpl();
  const double run_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  // Recorded even when RunImpl fails: a kDeadlineExceeded run with no
  // elapsed time would be undiagnosable.
  stats_.elapsed_ms += run_ms;
  PublishMetrics(before, run_ms);
  if (options_.budget != nullptr) {
    CountBudgetRejections(
        options_.obs.metrics,
        options_.budget->rejections() - rejections_before);
  }
  return st;
}

void Engine::PublishMetrics(const EngineStats& before, double run_ms) {
  MetricsRegistry* m = options_.obs.metrics;
  if (m == nullptr) return;
  auto bump = [&](const char* name, const char* help, uint64_t now_v,
                  uint64_t before_v) {
    Counter* c = m->GetCounter(name, help);
    if (c != nullptr && now_v > before_v) c->Inc(now_v - before_v);
  };
  Counter* runs = m->GetCounter("pathlog_engine_runs_total",
                                "materialisation runs started");
  if (runs != nullptr) runs->Inc();
  bump("pathlog_engine_iterations_total", "fixpoint rounds",
       stats_.iterations, before.iterations);
  bump("pathlog_engine_rule_evaluations_total", "rule body evaluations",
       stats_.rule_evaluations, before.rule_evaluations);
  bump("pathlog_engine_delta_passes_total",
       "delta-restricted literal passes", stats_.delta_passes,
       before.delta_passes);
  bump("pathlog_engine_derivations_total", "head instances asserted",
       stats_.derivations, before.derivations);
  bump("pathlog_engine_facts_added_total", "store growth from Run()",
       stats_.facts_added, before.facts_added);
  bump("pathlog_engine_skolems_total", "virtual objects created",
       stats_.skolems_created, before.skolems_created);
  bump("pathlog_engine_duplicates_suppressed_total",
       "duplicate path emissions suppressed", stats_.duplicates_suppressed,
       before.duplicates_suppressed);
  Histogram* h =
      m->GetHistogram("pathlog_engine_run_ms", DefaultLatencyBoundsMs(),
                      "Run() wall time in milliseconds");
  if (h != nullptr) h->Observe(run_ms);
}

Status Engine::RunImpl() {
  const uint64_t start_facts = store_->generation();
  if (options_.budget != nullptr) options_.budget->Arm();
  if (options_.max_wall_ms > 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(options_.max_wall_ms);
  }

  std::vector<Rule> plain;
  plain.reserve(rules_.size());
  for (const PlannedRule& pr : rules_) plain.push_back(pr.rule);
  Result<DependencyGraph> graph_result = [&] {
    TraceSpan span(options_.obs.tracer, "engine.stratify", "engine");
    return DependencyGraph::Build(plain, store_, options_.head_value_mode);
  }();
  PATHLOG_ASSIGN_OR_RETURN(DependencyGraph graph, std::move(graph_result));
  PATHLOG_ASSIGN_OR_RETURN(Stratification strata,
                           Stratify(graph, rules_.size()));
  stats_.num_strata = strata.num_strata;
  stats_.stratum_iterations.assign(
      static_cast<size_t>(strata.num_strata), 0);

  // Account for facts loaded before Run() in the change tracker.
  ScanNewFacts();

  for (int s = 0; s < strata.num_strata; ++s) {
    std::vector<size_t> idxs;
    for (size_t r = 0; r < rules_.size(); ++r) {
      if (strata.rule_stratum[r] == s) idxs.push_back(r);
    }
    if (idxs.empty()) continue;
    PATHLOG_RETURN_IF_ERROR(RunStratum(s, idxs, graph.rule_deps()));
  }
  stats_.facts_added += store_->generation() - start_facts;
  return Status::OK();
}

}  // namespace pathlog
