// Making rule heads true: assertion of derived facts, including the
// paper's virtual-object mechanism (section 6).
//
// A scalar path on the head's spine whose method is undefined for the
// receiver *defines a virtual object*: a fresh anonymous oid is
// allocated and recorded as the method's result, so the path
// deterministically references the same virtual object on every
// re-derivation (the skolem cache *is* the store). Example (6.1):
//
//   X.boss[worksFor->D] <- X : employee[worksFor->D].
//
// derives, for p1 without an extensional boss, a fresh object `_boss(p1)`
// with boss(p1) = _boss(p1) and worksFor(_boss(p1)) = cs1.
//
// Methods are used instead of function symbols (the paper's key
// simplification over F-logic / XSQL views), so method positions in
// heads may themselves be paths: the generic transitive closure
//   X[(M.tc)->>{Y}] <- X[M->>{Y}].
// allocates one virtual *method object* `_tc(kids)` per closed method.

#ifndef PATHLOG_EVAL_HEAD_ASSERT_H_
#define PATHLOG_EVAL_HEAD_ASSERT_H_

#include <cstdint>

#include "ast/ref.h"
#include "base/result.h"
#include "eval/bindings.h"
#include "store/object_store.h"

namespace pathlog {

/// What to do when a scalar path at a *value* position of a head (a
/// filter result, a method argument, or a class position — anything
/// off the spine) is undefined for its receiver.
enum class HeadValueMode : uint8_t {
  /// Skip this head instance entirely: the rule derives nothing for
  /// bindings under which a value path is undefined. (Default: value
  /// positions reference, only the spine defines.)
  kRequireDefined,
  /// Uniformly skolemise: value paths also create virtual objects,
  /// giving the full existential "make the head true" semantics.
  kSkolemize,
};

class HeadAsserter {
 public:
  HeadAsserter(ObjectStore* store, HeadValueMode mode)
      : store_(store), mode_(mode) {}

  /// Asserts one instance of `head` under `b` (every variable of the
  /// head must be bound). Adds facts to the store; creation of virtual
  /// objects is counted in skolems_created(). Whether anything changed
  /// is visible through the store's generation().
  Status Assert(const Ref& head, Bindings* b);

  uint64_t skolems_created() const { return skolems_created_; }

 private:
  class Txn;

  /// Resolves a reference to the single object it must denote, staging
  /// facts into `txn` and creating virtual objects for undefined
  /// scalar-path steps when `create` is true (spine and method
  /// positions, or kSkolemize mode). Returns kNilOid as a "skip this
  /// head instance" marker when `create` is false and a path step is
  /// undefined.
  Result<Oid> Resolve(const Ref& t, bool create, Bindings* b, Txn* txn);

  Result<Oid> ResolveFilterPart(const RefPtr& r, Bindings* b, Txn* txn);

  ObjectStore* store_;
  HeadValueMode mode_;
  uint64_t skolems_created_ = 0;
};

}  // namespace pathlog

#endif  // PATHLOG_EVAL_HEAD_ASSERT_H_
