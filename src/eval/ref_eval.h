// Binding-enumeration evaluation of references.
//
// Where semantics/valuation.h checks a reference under one *total*
// valuation (Definition 4), this evaluator answers queries: given a
// reference with free variables and a partial Bindings, it enumerates
// every pair (object, extended bindings) such that the object belongs
// to the reference's valuation under the extension. Variables are
// bound as the reference is walked left-to-right — the "sideways
// information passing" that makes the paper's second dimension cheap:
// filters apply to an intermediate object in place instead of being
// re-joined against the path afterwards.
//
// Deviation from the literal Definition 4, by design (documented in
// DESIGN.md): evaluation is *active-domain* — a `->>` filter with a
// reference result only holds if the specified set is non-empty, and
// every explicit set element must denote. The literal definition's
// vacuous corner ({} is a subset of everything) would make query
// answers explode with irrelevant bindings.

#ifndef PATHLOG_EVAL_REF_EVAL_H_
#define PATHLOG_EVAL_REF_EVAL_H_

#include <functional>
#include <vector>

#include "ast/ref.h"
#include "base/budget.h"
#include "base/result.h"
#include "eval/bindings.h"
#include "semantics/structure.h"

namespace pathlog {

class RefEvaluator {
 public:
  /// Invoked once per denoted object; the extended bindings are visible
  /// through the Bindings object passed to Enumerate. Return true to
  /// continue enumeration, false to stop early.
  using EmitFn = std::function<Result<bool>(Oid)>;

  /// `use_inverted_indexes` selects whether path matching against a
  /// bound target and molecule driving may probe the store's inverted
  /// value→receiver / member→receiver indexes. Answers are identical
  /// either way (the differential tests prove it); disabling exists for
  /// that proof and for benchmarking the enumerate-and-compare cost.
  explicit RefEvaluator(const SemanticStructure& I,
                        bool use_inverted_indexes = true)
      : I_(I), use_inverted_(use_inverted_indexes) {}

  /// Enumerates all (object, bindings-extension) solutions of `t`.
  /// On return, `b` is restored to its entry state.
  /// The Result is true unless some emit callback stopped enumeration.
  Result<bool> Enumerate(const Ref& t, Bindings* b, const EmitFn& emit);

  /// True iff `t` has at least one solution under (an extension of) `b`.
  /// Bindings are restored either way — use for negation / existence.
  Result<bool> Satisfiable(const Ref& t, Bindings* b);

  /// Evaluates `t` under `b` requiring every variable of `t` bound;
  /// returns the denoted objects (sorted, deduplicated). Fails with
  /// kUnsafeRule when an unbound variable is encountered.
  Result<std::vector<Oid>> EvalGround(const Ref& t, Bindings* b);

  /// Statistics for benchmarks: how many emit calls happened.
  uint64_t emit_count() const { return emit_count_; }

  /// How many duplicate path emissions (same object, same bindings,
  /// different derivations) were suppressed at the emit boundary.
  uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }

  // Index-route counters: how matching and molecule driving reached
  // the store. Always-on cheap member increments (like emit_count_);
  // callers flush them into the profiler by differencing.

  /// Probes of the inverted value→receiver / member→receiver indexes.
  uint64_t inverted_probes() const { return inverted_probes_; }
  /// Scans of a method extent or class extent.
  uint64_t extent_scans() const { return extent_scans_; }
  /// Whole-universe scans (undriven variables or molecules).
  uint64_t universe_scans() const { return universe_scans_; }

  /// Attaches a cooperative budget (null detaches). Enumeration polls
  /// budget->CheckControl() — cancellation and wall clock only, since
  /// enumeration never grows the store — on the first recursion step
  /// and every ~1k steps after, closing the "very long single
  /// enumerations can overshoot the deadline" gap the engine-level
  /// per-rule checks leave open.
  void set_budget(const ResourceBudget* budget) { budget_ = budget; }

  // --- Delta-restricted mode (literal-level semi-naive) --------------
  //
  // While active, every fact consumption site compares the fact's
  // generation against `from`; DeltaSeen() tells whether at least one
  // fact with generation >= from is on the current derivation path.
  // The engine activates the mode for exactly one body literal per
  // pass and suspends it while continuing into later literals, so a
  // solution is kept iff the designated literal used a new fact.

  void EnterDelta(uint64_t from) {
    delta_from_ = from;
    delta_active_ = true;
    delta_count_ = 0;
  }
  void ExitDelta() { delta_active_ = false; }
  bool DeltaSeen() const { return delta_count_ > 0; }
  /// Deactivates counting (guards already open stay counted); returns
  /// the previous state for ResumeDelta.
  bool SuspendDelta() {
    bool was = delta_active_;
    delta_active_ = false;
    return was;
  }
  void ResumeDelta(bool state) { delta_active_ = state; }

 private:
  /// RAII: counts a fact consumption on the current derivation path
  /// when delta mode is active and the fact is new enough.
  class DeltaGuard {
   public:
    DeltaGuard(RefEvaluator* eval, uint64_t gen) : eval_(eval) {
      counted_ = eval_->delta_active_ && gen != UINT64_MAX &&
                 gen >= eval_->delta_from_;
      if (counted_) ++eval_->delta_count_;
    }
    ~DeltaGuard() {
      if (counted_) --eval_->delta_count_;
    }
    DeltaGuard(const DeltaGuard&) = delete;
    DeltaGuard& operator=(const DeltaGuard&) = delete;

   private:
    RefEvaluator* eval_;
    bool counted_;
  };
  using Cont = std::function<Result<bool>()>;

  /// Succeeds once for every way `t` can denote `target`.
  Result<bool> MatchRef(const Ref& t, Oid target, Bindings* b,
                        const Cont& cont);
  /// MatchRef for paths: drives backwards from the bound target through
  /// the store's inverted indexes (value→receiver for `.m`,
  /// member→receiver for `..m`) instead of enumerating the path's whole
  /// denotation and comparing. Built-ins (`self`, guards), which have
  /// no stored extent, keep their computed semantics.
  Result<bool> MatchPath(const Ref& t, Oid target, Bindings* b,
                         const Cont& cont);
  /// Pairwise MatchRef over parallel vectors.
  Result<bool> MatchArgs(const std::vector<RefPtr>& refs,
                         const std::vector<Oid>& oids, size_t i, Bindings* b,
                         const Cont& cont);

  /// Enumerates method objects a simple method reference can denote,
  /// using the store's method lists when the reference is an unbound
  /// variable. `set_flavor` selects which method list to use then.
  Result<bool> EnumMethod(const Ref& m, bool set_flavor, Bindings* b,
                          const std::function<Result<bool>(Oid)>& fn);

  /// Enumerates value combinations for an argument list (cartesian
  /// product of the arguments' denotations, binding variables).
  Result<bool> EnumArgValues(const std::vector<RefPtr>& args, size_t i,
                             std::vector<Oid>* argv, Bindings* b,
                             const Cont& cont);

  Result<bool> EnumPath(const Ref& t, Bindings* b, const EmitFn& emit);
  /// EnumPath wrapped in duplicate suppression: a path may denote the
  /// same object through several derivations (e.g. `mary..vehicles.color`
  /// with two same-colour vehicles); emissions that repeat both the
  /// object and every binding made since entry are dropped.
  Result<bool> EnumPathDeduped(const Ref& t, Bindings* b, const EmitFn& emit);
  Result<bool> EnumMolecule(const Ref& t, Bindings* b, const EmitFn& emit);
  Result<bool> CheckFilters(const std::vector<Filter>& filters, size_t i,
                            Oid u0, Bindings* b, const Cont& cont);
  Result<bool> CheckFilter(const Filter& f, Oid u0, Bindings* b,
                           const Cont& cont);
  Result<bool> MatchSetElems(const std::vector<RefPtr>& elems, size_t i,
                             const SetGroup& group, Bindings* b,
                             const Cont& cont);

  /// Scalar-path body: for one method object, enumerate (receiver,
  /// args, result) solutions.
  Result<bool> EnumScalarInvocations(Oid um, const Ref& base,
                                     const std::vector<RefPtr>& args,
                                     Bindings* b, const EmitFn& emit);
  Result<bool> EnumSetInvocations(Oid um, const Ref& base,
                                  const std::vector<RefPtr>& args,
                                  Bindings* b, const EmitFn& emit);

  bool AllVarsBound(const Ref& t, const Bindings& b) const;

  /// Budget poll at enumeration boundaries: OK (and nearly free) on
  /// all but every 1024th call, where the attached budget's control
  /// dimensions (cancellation, deadline) are checked.
  Status TickBudget() {
    if (budget_ == nullptr || (budget_probe_++ & 0x3FF) != 0) {
      return Status::OK();
    }
    return budget_->CheckControl();
  }

  const SemanticStructure& I_;
  bool use_inverted_ = true;
  uint64_t emit_count_ = 0;
  uint64_t duplicates_suppressed_ = 0;
  uint64_t inverted_probes_ = 0;
  uint64_t extent_scans_ = 0;
  uint64_t universe_scans_ = 0;
  bool delta_active_ = false;
  uint64_t delta_from_ = 0;
  int delta_count_ = 0;
  const ResourceBudget* budget_ = nullptr;
  uint64_t budget_probe_ = 0;
};

}  // namespace pathlog

#endif  // PATHLOG_EVAL_REF_EVAL_H_
