#include "eval/ref_eval.h"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <utility>

#include "ast/analysis.h"
#include "ast/printer.h"
#include "base/strings.h"

namespace pathlog {

namespace {

/// Strips grouping brackets; they affect parsing, not denotation.
const Ref& Deref(const Ref& t) {
  const Ref* p = &t;
  while (p->kind == RefKind::kParen) p = p->base.get();
  return *p;
}

std::optional<Oid> LookupName(const ObjectStore& store, const Ref& t) {
  switch (t.name_kind) {
    case NameKind::kSymbol:
      return store.FindSymbol(t.text);
    case NameKind::kInt:
      return store.FindInt(t.int_value);
    case NameKind::kString:
      return store.FindString(t.text);
  }
  return std::nullopt;
}

}  // namespace

bool RefEvaluator::AllVarsBound(const Ref& t, const Bindings& b) const {
  for (const std::string& v : VarsOf(t)) {
    if (!b.IsBound(v)) return false;
  }
  return true;
}

Result<bool> RefEvaluator::Enumerate(const Ref& t, Bindings* b,
                                     const EmitFn& emit) {
  PATHLOG_RETURN_IF_ERROR(TickBudget());
  switch (t.kind) {
    case RefKind::kName: {
      std::optional<Oid> o = LookupName(I_.store(), t);
      if (!o) return true;  // nothing denoted in this store
      ++emit_count_;
      return emit(*o);
    }
    case RefKind::kVar: {
      if (std::optional<Oid> v = b->Get(t.text)) {
        ++emit_count_;
        return emit(*v);
      }
      // Fallback: a variable with no driving context ranges over the
      // whole universe (active domain). The molecule/path evaluators
      // avoid this with index-driven enumeration.
      ++universe_scans_;
      const size_t n = I_.store().UniverseSize();
      for (Oid o = 0; o < n; ++o) {
        size_t mark = b->Mark();
        b->Bind(t.text, o);
        ++emit_count_;
        Result<bool> r = emit(o);
        b->Undo(mark);
        if (!r.ok() || !*r) return r;
      }
      return true;
    }
    case RefKind::kParen:
      return Enumerate(*t.base, b, emit);
    case RefKind::kPath:
      return EnumPathDeduped(t, b, emit);
    case RefKind::kMolecule:
      return EnumMolecule(t, b, emit);
  }
  return Status(Internal("Enumerate: unknown reference kind"));
}

Result<bool> RefEvaluator::Satisfiable(const Ref& t, Bindings* b) {
  bool found = false;
  Result<bool> r = Enumerate(t, b, [&](Oid) -> Result<bool> {
    found = true;
    return false;  // stop at the first witness
  });
  if (!r.ok()) return r.status();
  return found;
}

Result<std::vector<Oid>> RefEvaluator::EvalGround(const Ref& t, Bindings* b) {
  if (!AllVarsBound(t, *b)) {
    return Status(UnsafeRule(
        StrCat("reference must be ground at this point, but has unbound "
               "variables: ",
               ToString(t))));
  }
  std::vector<Oid> out;
  Result<bool> r = Enumerate(t, b, [&](Oid o) -> Result<bool> {
    out.push_back(o);
    return true;
  });
  if (!r.ok()) return r.status();
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<bool> RefEvaluator::MatchRef(const Ref& t, Oid target, Bindings* b,
                                    const Cont& cont) {
  PATHLOG_RETURN_IF_ERROR(TickBudget());
  const Ref& d = Deref(t);
  switch (d.kind) {
    case RefKind::kVar: {
      if (std::optional<Oid> v = b->Get(d.text)) {
        return *v == target ? cont() : Result<bool>(true);
      }
      size_t mark = b->Mark();
      b->Bind(d.text, target);
      Result<bool> r = cont();
      b->Undo(mark);
      return r;
    }
    case RefKind::kName: {
      std::optional<Oid> o = LookupName(I_.store(), d);
      return (o && *o == target) ? cont() : Result<bool>(true);
    }
    case RefKind::kMolecule:
      // Push the known target through: the molecule denotes `target`
      // iff its base does and `target` satisfies the filters. This is
      // what makes matching a pattern like {Y:automobile} against a
      // set member O(1) instead of a scan of automobile's extent.
      return MatchRef(*d.base, target, b, [&]() -> Result<bool> {
        return CheckFilters(d.filters, 0, target, b, cont);
      });
    default:
      if (use_inverted_ && d.kind == RefKind::kPath) {
        return MatchPath(d, target, b, cont);
      }
      // Indexes disabled: enumerate the path and compare.
      return Enumerate(t, b, [&](Oid o) -> Result<bool> {
        if (o != target) return true;
        return cont();
      });
  }
}

Result<bool> RefEvaluator::MatchPath(const Ref& t, Oid target, Bindings* b,
                                     const Cont& cont) {
  return EnumMethod(
      *t.method, t.set_valued_path, b, [&](Oid um) -> Result<bool> {
        if (!t.set_valued_path) {
          if (I_.IsSelf(um) && t.args.empty()) {
            // base.self denotes whatever base denotes.
            return MatchRef(*t.base, target, b, cont);
          }
          if (I_.IsGuard(um)) {
            // Guards are identity-preserving partial functions: the
            // path denotes the target iff the base does and the guard
            // holds on the target.
            return MatchRef(*t.base, target, b, [&]() -> Result<bool> {
              std::vector<Oid> argv(t.args.size());
              return EnumArgValues(t.args, 0, &argv, b, [&]() -> Result<bool> {
                if (I_.Scalar(um, target, argv)) return cont();
                return true;
              });
            });
          }
          // Stored scalar facts: walk value→receiver backwards. Every
          // fact with this value is one candidate derivation; the base
          // pattern and argument patterns prune the rest.
          ++inverted_probes_;
          const std::vector<uint32_t>& idxs =
              I_.store().ScalarEntriesByValue(um, target);
          const std::vector<ScalarEntry>& entries = I_.store().ScalarEntries(um);
          for (uint32_t i : idxs) {
            const ScalarEntry& e = entries[i];
            if (e.args.size() != t.args.size()) continue;
            DeltaGuard guard(this, e.gen);
            Result<bool> r =
                MatchRef(*t.base, e.recv, b, [&]() -> Result<bool> {
                  return MatchArgs(t.args, e.args, 0, b, cont);
                });
            if (!r.ok() || !*r) return r;
          }
          return true;
        }
        // Set-valued: walk member→receiver backwards.
        ++inverted_probes_;
        const std::vector<SetMemberRef>& refs =
            I_.store().SetGroupsByMember(um, target);
        const std::vector<SetGroup>& groups = I_.store().SetGroups(um);
        for (const SetMemberRef& mr : refs) {
          const SetGroup& g = groups[mr.group];
          if (g.args.size() != t.args.size()) continue;
          DeltaGuard guard(this, g.member_gens[mr.pos]);
          Result<bool> r = MatchRef(*t.base, g.recv, b, [&]() -> Result<bool> {
            return MatchArgs(t.args, g.args, 0, b, cont);
          });
          if (!r.ok() || !*r) return r;
        }
        return true;
      });
}

Result<bool> RefEvaluator::MatchArgs(const std::vector<RefPtr>& refs,
                                     const std::vector<Oid>& oids, size_t i,
                                     Bindings* b, const Cont& cont) {
  if (i == refs.size()) return cont();
  return MatchRef(*refs[i], oids[i], b, [&]() -> Result<bool> {
    return MatchArgs(refs, oids, i + 1, b, cont);
  });
}

Result<bool> RefEvaluator::EnumMethod(
    const Ref& m, bool set_flavor, Bindings* b,
    const std::function<Result<bool>(Oid)>& fn) {
  const Ref& d = Deref(m);
  switch (d.kind) {
    case RefKind::kName: {
      std::optional<Oid> o = LookupName(I_.store(), d);
      if (!o) return true;
      return fn(*o);
    }
    case RefKind::kVar: {
      if (std::optional<Oid> v = b->Get(d.text)) return fn(*v);
      // An unbound method variable ranges over the *named* methods that
      // have stored facts of the required flavour — never the built-in
      // `self` (which applies to every object) and never anonymous
      // derived method objects such as `_tc(kids)`. Without the latter
      // restriction the paper's generic tc program would be
      // non-terminating bottom-up: closing `kids` creates the method
      // object `_tc(kids)`, whose facts would re-bind M and demand
      // `_tc(_tc(kids))`, ad infinitum (documented in DESIGN.md).
      std::vector<Oid> methods =
          set_flavor ? I_.store().SetMethods() : I_.store().ScalarMethods();
      for (Oid um : methods) {
        if (I_.store().kind(um) == ObjectKind::kAnonymous) continue;
        size_t mark = b->Mark();
        b->Bind(d.text, um);
        Result<bool> r = fn(um);
        b->Undo(mark);
        if (!r.ok() || !*r) return r;
      }
      return true;
    }
    default:
      // A complex method reference (e.g. the generic `(M.tc)`): any
      // object it denotes acts as the method.
      return Enumerate(d, b, fn);
  }
}

Result<bool> RefEvaluator::EnumArgValues(const std::vector<RefPtr>& args,
                                         size_t i, std::vector<Oid>* argv,
                                         Bindings* b, const Cont& cont) {
  if (i == args.size()) return cont();
  return Enumerate(*args[i], b, [&](Oid o) -> Result<bool> {
    (*argv)[i] = o;
    return EnumArgValues(args, i + 1, argv, b, cont);
  });
}

Result<bool> RefEvaluator::EnumPath(const Ref& t, Bindings* b,
                                    const EmitFn& emit) {
  return EnumMethod(*t.method, t.set_valued_path, b,
                    [&](Oid um) -> Result<bool> {
                      if (!t.set_valued_path) {
                        return EnumScalarInvocations(um, *t.base, t.args, b,
                                                     emit);
                      }
                      return EnumSetInvocations(um, *t.base, t.args, b, emit);
                    });
}

Result<bool> RefEvaluator::EnumPathDeduped(const Ref& t, Bindings* b,
                                           const EmitFn& emit) {
  if (delta_active_) {
    // In delta mode every derivation must surface so its fact
    // generations are seen; suppression would hide whether the
    // designated literal consumed a new fact.
    return EnumPath(t, b, emit);
  }
  // A path can denote one object through several derivations (two
  // receivers sharing a value, one member in two groups). When the
  // repeat also carries identical bindings it is the same solution, so
  // it is suppressed here — the one place every path emission passes.
  const size_t entry_mark = b->Mark();
  std::set<std::pair<Oid, std::vector<std::pair<std::string, Oid>>>> seen;
  return EnumPath(t, b, [&](Oid o) -> Result<bool> {
    std::vector<std::pair<std::string, Oid>> extension;
    const size_t mark = b->Mark();
    extension.reserve(mark - entry_mark);
    for (size_t i = entry_mark; i < mark; ++i) {
      const std::string& var = b->TrailVar(i);
      extension.emplace_back(var, *b->Get(var));
    }
    if (!seen.emplace(o, std::move(extension)).second) {
      // The enumeration site already counted this emission; it is not
      // delivered, so it must not count.
      --emit_count_;
      ++duplicates_suppressed_;
      return true;
    }
    return emit(o);
  });
}

Result<bool> RefEvaluator::EnumScalarInvocations(
    Oid um, const Ref& base, const std::vector<RefPtr>& args, Bindings* b,
    const EmitFn& emit) {
  if (I_.IsSelf(um) && args.empty()) {
    // self denotes the receiver itself, for every object.
    return Enumerate(base, b, [&](Oid u0) -> Result<bool> {
      ++emit_count_;
      return emit(u0);
    });
  }
  if (I_.IsGuard(um)) {
    // Comparison guards compute from values; there is no extent to
    // drive from, so receiver and arguments enumerate normally.
    return Enumerate(base, b, [&](Oid u0) -> Result<bool> {
      std::vector<Oid> argv(args.size());
      return EnumArgValues(args, 0, &argv, b, [&]() -> Result<bool> {
        if (std::optional<Oid> r = I_.Scalar(um, u0, argv)) {
          ++emit_count_;
          return emit(*r);
        }
        return true;
      });
    });
  }
  const Ref& d = Deref(base);
  if (d.kind == RefKind::kVar && !b->IsBound(d.text)) {
    // Drive from the method's extent: bind the receiver variable.
    ++extent_scans_;
    for (const ScalarEntry& e : I_.store().ScalarEntries(um)) {
      if (e.args.size() != args.size()) continue;
      size_t mark = b->Mark();
      b->Bind(d.text, e.recv);
      DeltaGuard guard(this, e.gen);
      Result<bool> r = MatchArgs(args, e.args, 0, b, [&]() -> Result<bool> {
        ++emit_count_;
        return emit(e.value);
      });
      b->Undo(mark);
      if (!r.ok() || !*r) return r;
    }
    return true;
  }
  return Enumerate(base, b, [&](Oid u0) -> Result<bool> {
    const std::vector<uint32_t>& idxs = I_.store().ScalarEntriesByRecv(um, u0);
    const std::vector<ScalarEntry>& entries = I_.store().ScalarEntries(um);
    for (uint32_t i : idxs) {
      const ScalarEntry& e = entries[i];
      if (e.args.size() != args.size()) continue;
      DeltaGuard guard(this, e.gen);
      Result<bool> r = MatchArgs(args, e.args, 0, b, [&]() -> Result<bool> {
        ++emit_count_;
        return emit(e.value);
      });
      if (!r.ok() || !*r) return r;
    }
    return true;
  });
}

Result<bool> RefEvaluator::EnumSetInvocations(
    Oid um, const Ref& base, const std::vector<RefPtr>& args, Bindings* b,
    const EmitFn& emit) {
  auto emit_group = [&](const SetGroup& g) -> Result<bool> {
    return MatchArgs(args, g.args, 0, b, [&]() -> Result<bool> {
      for (size_t i = 0; i < g.members.size(); ++i) {
        DeltaGuard guard(this, g.member_gens[i]);
        ++emit_count_;
        Result<bool> r = emit(g.members[i]);
        if (!r.ok() || !*r) return r;
      }
      return true;
    });
  };
  const Ref& d = Deref(base);
  if (d.kind == RefKind::kVar && !b->IsBound(d.text)) {
    ++extent_scans_;
    for (const SetGroup& g : I_.store().SetGroups(um)) {
      if (g.args.size() != args.size()) continue;
      size_t mark = b->Mark();
      b->Bind(d.text, g.recv);
      Result<bool> r = emit_group(g);
      b->Undo(mark);
      if (!r.ok() || !*r) return r;
    }
    return true;
  }
  return Enumerate(base, b, [&](Oid u0) -> Result<bool> {
    const std::vector<uint32_t>& idxs = I_.store().SetGroupsByRecv(um, u0);
    const std::vector<SetGroup>& groups = I_.store().SetGroups(um);
    for (uint32_t i : idxs) {
      const SetGroup& g = groups[i];
      if (g.args.size() != args.size()) continue;
      Result<bool> r = emit_group(g);
      if (!r.ok() || !*r) return r;
    }
    return true;
  });
}

Result<bool> RefEvaluator::EnumMolecule(const Ref& t, Bindings* b,
                                        const EmitFn& emit) {
  const Ref& base = Deref(*t.base);
  if (!(base.kind == RefKind::kVar && !b->IsBound(base.text))) {
    return Enumerate(*t.base, b, [&](Oid u0) -> Result<bool> {
      return CheckFilters(t.filters, 0, u0, b, [&]() -> Result<bool> {
        ++emit_count_;
        return emit(u0);
      });
    });
  }

  // The base is an unbound variable: choose the cheapest index-driven
  // candidate set any filter can supply instead of scanning the
  // universe. Every option over-approximates the molecule's solutions
  // (all filters are re-checked below, with delta guards at the
  // consumption sites), so smaller is merely faster, never wrong.
  const ObjectStore& store = I_.store();
  std::vector<Oid> candidates;
  bool driven = false;

  auto method_oid = [&](const RefPtr& m) -> std::optional<Oid> {
    const Ref& dm = Deref(*m);
    if (dm.kind == RefKind::kName) return LookupName(store, dm);
    if (dm.kind == RefKind::kVar) return b->Get(dm.text);
    return std::nullopt;
  };

  enum class Drive {
    kNone,
    kClassExtent,   // members of a resolvable class filter
    kScalarValue,   // inverted probe: receivers yielding a known value
    kSetMember,     // inverted probe: receivers containing a known elem
    kScalarRecvs,   // all receivers of a scalar filter's method
    kSetRecvs,      // all receivers of a set filter's method
  };
  Drive drive = Drive::kNone;
  size_t best_cost = 0;
  Oid drive_m = kNilOid;
  Oid drive_v = kNilOid;
  auto consider = [&](Drive d, size_t cost, Oid m, Oid v) {
    if (drive == Drive::kNone || cost < best_cost) {
      drive = d;
      best_cost = cost;
      drive_m = m;
      drive_v = v;
    }
  };

  for (const Filter& f : t.filters) {
    if (f.kind == FilterKind::kClass) {
      std::optional<Oid> c = method_oid(f.value);
      if (c) {
        consider(Drive::kClassExtent, store.Members(*c).size(), *c, kNilOid);
      } else if (Deref(*f.value).kind == RefKind::kName) {
        return true;  // class name not interned: empty extent
      }
      continue;
    }
    std::optional<Oid> m = method_oid(f.method);
    // Built-ins (self, guards) have no stored extent to drive from;
    // treating them as drivers would wrongly yield zero candidates.
    if (!m || I_.IsBuiltinScalar(*m)) continue;
    if (f.kind == FilterKind::kScalar) {
      if (use_inverted_) {
        if (std::optional<Oid> v = method_oid(f.value)) {
          consider(Drive::kScalarValue,
                   store.ScalarEntriesByValue(*m, *v).size(), *m, *v);
          continue;
        }
        if (Deref(*f.value).kind == RefKind::kName) {
          return true;  // value name not interned: filter unsatisfiable
        }
      }
      consider(Drive::kScalarRecvs, store.ScalarEntries(*m).size(), *m,
               kNilOid);
    } else {
      if (use_inverted_ && f.kind == FilterKind::kSetEnum) {
        for (const RefPtr& e : f.elems) {
          if (std::optional<Oid> v = method_oid(e)) {
            consider(Drive::kSetMember, store.SetGroupsByMember(*m, *v).size(),
                     *m, *v);
          } else if (Deref(*e).kind == RefKind::kName) {
            return true;  // element not interned: cannot be a member
          }
        }
      }
      consider(Drive::kSetRecvs, store.SetGroups(*m).size(), *m, kNilOid);
    }
  }

  switch (drive) {
    case Drive::kClassExtent:
      ++extent_scans_;
      candidates = store.Members(drive_m);
      driven = true;
      break;
    case Drive::kScalarValue: {
      ++inverted_probes_;
      std::unordered_set<Oid> seen;
      const std::vector<ScalarEntry>& entries = store.ScalarEntries(drive_m);
      for (uint32_t i : store.ScalarEntriesByValue(drive_m, drive_v)) {
        if (seen.insert(entries[i].recv).second) {
          candidates.push_back(entries[i].recv);
        }
      }
      driven = true;
      break;
    }
    case Drive::kSetMember: {
      ++inverted_probes_;
      std::unordered_set<Oid> seen;
      const std::vector<SetGroup>& groups = store.SetGroups(drive_m);
      for (const SetMemberRef& mr : store.SetGroupsByMember(drive_m, drive_v)) {
        if (seen.insert(groups[mr.group].recv).second) {
          candidates.push_back(groups[mr.group].recv);
        }
      }
      driven = true;
      break;
    }
    case Drive::kScalarRecvs: {
      ++extent_scans_;
      std::unordered_set<Oid> seen;
      for (const ScalarEntry& e : store.ScalarEntries(drive_m)) {
        if (seen.insert(e.recv).second) candidates.push_back(e.recv);
      }
      driven = true;
      break;
    }
    case Drive::kSetRecvs: {
      ++extent_scans_;
      std::unordered_set<Oid> seen;
      for (const SetGroup& g : store.SetGroups(drive_m)) {
        if (seen.insert(g.recv).second) candidates.push_back(g.recv);
      }
      driven = true;
      break;
    }
    case Drive::kNone:
      break;
  }

  // Fallback: a self filter with a fully bound value — its denotation
  // is the candidate set (e.g. X[self->mary]).
  if (!driven) {
    for (const Filter& f : t.filters) {
      if (f.kind != FilterKind::kScalar || !f.args.empty()) continue;
      std::optional<Oid> m = method_oid(f.method);
      if (!m || !I_.IsSelf(*m)) continue;
      if (!AllVarsBound(*f.value, *b)) continue;
      Result<std::vector<Oid>> vals = EvalGround(*f.value, b);
      if (!vals.ok()) return vals.status();
      candidates = std::move(*vals);
      driven = true;
      break;
    }
  }
  if (!driven) {
    ++universe_scans_;
    candidates.resize(I_.store().UniverseSize());
    for (Oid o = 0; o < candidates.size(); ++o) candidates[o] = o;
  }

  for (Oid u0 : candidates) {
    size_t mark = b->Mark();
    b->Bind(base.text, u0);
    Result<bool> r = CheckFilters(t.filters, 0, u0, b, [&]() -> Result<bool> {
      ++emit_count_;
      return emit(u0);
    });
    b->Undo(mark);
    if (!r.ok() || !*r) return r;
  }
  return true;
}

Result<bool> RefEvaluator::CheckFilters(const std::vector<Filter>& filters,
                                        size_t i, Oid u0, Bindings* b,
                                        const Cont& cont) {
  PATHLOG_RETURN_IF_ERROR(TickBudget());
  if (i == filters.size()) return cont();
  return CheckFilter(filters[i], u0, b, [&]() -> Result<bool> {
    return CheckFilters(filters, i + 1, u0, b, cont);
  });
}

Result<bool> RefEvaluator::CheckFilter(const Filter& f, Oid u0, Bindings* b,
                                       const Cont& cont) {
  if (f.kind == FilterKind::kClass) {
    const Ref& c = Deref(*f.value);
    if (c.kind == RefKind::kVar && !b->IsBound(c.text)) {
      const std::vector<Oid>& ancestors = I_.store().Ancestors(u0);
      const std::vector<uint64_t>& gens = I_.store().AncestorGens(u0);
      for (size_t i = 0; i < ancestors.size(); ++i) {
        size_t mark = b->Mark();
        b->Bind(c.text, ancestors[i]);
        DeltaGuard guard(this, gens[i]);
        Result<bool> r = cont();
        b->Undo(mark);
        if (!r.ok() || !*r) return r;
      }
      return true;
    }
    return Enumerate(*f.value, b, [&](Oid uc) -> Result<bool> {
      if (!I_.IsA(u0, uc)) return true;
      DeltaGuard guard(this, I_.store().IsaGen(u0, uc));
      return cont();
    });
  }

  return EnumMethod(*f.method, f.kind != FilterKind::kScalar, b,
                    [&](Oid um) -> Result<bool> {
    switch (f.kind) {
      case FilterKind::kScalar: {
        if (I_.IsSelf(um) && f.args.empty()) {
          return MatchRef(*f.value, u0, b, cont);
        }
        if (I_.IsGuard(um)) {
          std::vector<Oid> argv(f.args.size());
          return EnumArgValues(f.args, 0, &argv, b, [&]() -> Result<bool> {
            if (std::optional<Oid> r = I_.Scalar(um, u0, argv)) {
              return MatchRef(*f.value, *r, b, cont);
            }
            return true;
          });
        }
        const std::vector<uint32_t>& idxs =
            I_.store().ScalarEntriesByRecv(um, u0);
        const std::vector<ScalarEntry>& entries = I_.store().ScalarEntries(um);
        for (uint32_t i : idxs) {
          const ScalarEntry& e = entries[i];
          if (e.args.size() != f.args.size()) continue;
          DeltaGuard guard(this, e.gen);
          Result<bool> r =
              MatchArgs(f.args, e.args, 0, b, [&]() -> Result<bool> {
                return MatchRef(*f.value, e.value, b, cont);
              });
          if (!r.ok() || !*r) return r;
        }
        return true;
      }
      case FilterKind::kSetRef: {
        // Active-domain semantics: the specified set must be ground
        // here and non-empty; stratification guarantees the producing
        // methods are complete (engine/stratify).
        if (!AllVarsBound(*f.value, *b)) {
          return Status(UnsafeRule(StrCat(
              "the result of a `->>` filter must be ground when checked; ",
              ToString(*f.value),
              " has unbound variables (reorder the rule body)")));
        }
        Result<std::vector<Oid>> spec = EvalGround(*f.value, b);
        if (!spec.ok()) return spec.status();
        if (spec->empty()) return true;  // no witness: filter fails
        const std::vector<uint32_t>& idxs = I_.store().SetGroupsByRecv(um, u0);
        const std::vector<SetGroup>& groups = I_.store().SetGroups(um);
        for (uint32_t i : idxs) {
          const SetGroup& g = groups[i];
          if (g.args.size() != f.args.size()) continue;
          Result<bool> r =
              MatchArgs(f.args, g.args, 0, b, [&]() -> Result<bool> {
                uint64_t newest = 0;
                for (Oid s : *spec) {
                  uint64_t mg = g.MemberGen(s);
                  if (mg == UINT64_MAX) return true;  // not a subset
                  newest = std::max(newest, mg);
                }
                // The subset test consumed |spec| membership facts; the
                // newest one decides delta-ness.
                DeltaGuard guard(this, newest);
                return cont();
              });
          if (!r.ok() || !*r) return r;
        }
        return true;
      }
      case FilterKind::kSetEnum: {
        const std::vector<uint32_t>& idxs = I_.store().SetGroupsByRecv(um, u0);
        const std::vector<SetGroup>& groups = I_.store().SetGroups(um);
        for (uint32_t i : idxs) {
          const SetGroup& g = groups[i];
          if (g.args.size() != f.args.size()) continue;
          Result<bool> r =
              MatchArgs(f.args, g.args, 0, b, [&]() -> Result<bool> {
                return MatchSetElems(f.elems, 0, g, b, cont);
              });
          if (!r.ok() || !*r) return r;
        }
        return true;
      }
      case FilterKind::kClass:
        break;  // unreachable
    }
    return Status(Internal("CheckFilter: unreachable"));
  });
}

Result<bool> RefEvaluator::MatchSetElems(const std::vector<RefPtr>& elems,
                                         size_t i, const SetGroup& group,
                                         Bindings* b, const Cont& cont) {
  if (i == elems.size()) return cont();
  const Ref& e = Deref(*elems[i]);

  // Fast path: the element resolves to one known object — a direct
  // membership probe instead of a member scan.
  std::optional<Oid> known;
  if (e.kind == RefKind::kName) {
    known = LookupName(I_.store(), e);
    if (!known) return true;  // name denotes nothing here
  } else if (e.kind == RefKind::kVar) {
    known = b->Get(e.text);
  }
  if (known) {
    uint64_t gen = group.MemberGen(*known);
    if (gen == UINT64_MAX) return true;  // not a member
    DeltaGuard guard(this, gen);
    return MatchSetElems(elems, i + 1, group, b, cont);
  }

  // General case: drive from the group's members and match the element
  // pattern against each — MatchRef pushes the member through molecule
  // patterns like {Y:automobile[cylinders->4]} in O(filters), not
  // O(extent).
  for (size_t m = 0; m < group.members.size(); ++m) {
    DeltaGuard guard(this, group.member_gens[m]);
    Result<bool> r =
        MatchRef(*elems[i], group.members[m], b, [&]() -> Result<bool> {
          return MatchSetElems(elems, i + 1, group, b, cont);
        });
    if (!r.ok() || !*r) return r;
  }
  return true;
}

}  // namespace pathlog
