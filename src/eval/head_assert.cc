#include "eval/head_assert.h"

#include <unordered_map>

#include "ast/analysis.h"
#include "ast/printer.h"
#include "base/strings.h"
#include "eval/ref_eval.h"
#include "semantics/structure.h"

namespace pathlog {

namespace {
/// Skip marker: this head instance derives nothing (kRequireDefined
/// mode hit an undefined value path).
constexpr Oid kSkip = kNilOid;

struct PendingKey {
  Oid method;
  Oid recv;
  std::vector<Oid> args;
  friend bool operator==(const PendingKey&, const PendingKey&) = default;
};
struct PendingKeyHash {
  size_t operator()(const PendingKey& k) const {
    size_t h = HashCombine(HashCombine(14695981039346656037ull, k.method),
                           k.recv);
    return HashOidSpan(k.args.data(), k.args.size(), h);
  }
};
}  // namespace

/// Assertion is two-phase so that a skipped head instance leaves no
/// partial side effects: Resolve stages facts (consulting an overlay so
/// later steps of the same instance see earlier skolems), and Assert
/// applies the staged facts only when nothing skipped. The only
/// store-visible effect of a skipped instance is possibly-unused
/// anonymous oids, which carry no facts.
class HeadAsserter::Txn {
 public:
  explicit Txn(ObjectStore* store) : store_(store) {}

  std::optional<Oid> GetScalar(Oid m, Oid recv, const std::vector<Oid>& args) {
    auto it = overlay_.find(PendingKey{m, recv, args});
    if (it != overlay_.end()) return it->second;
    return store_->GetScalar(m, recv, args);
  }

  void StageScalar(Oid m, Oid recv, std::vector<Oid> args, Oid value) {
    overlay_.emplace(PendingKey{m, recv, args}, value);
    facts_.push_back(Fact{FactKind::kScalar, m, recv, std::move(args), value});
  }

  void StageSetMember(Oid m, Oid recv, const std::vector<Oid>& args,
                      Oid value) {
    facts_.push_back(Fact{FactKind::kSetMember, m, recv, args, value});
  }

  void StageIsa(Oid sub, Oid super) {
    facts_.push_back(Fact{FactKind::kIsa, super, sub, {}, kNilOid});
  }

  void CountSkolem() { ++skolems_; }
  uint64_t skolems() const { return skolems_; }

  Status Apply() {
    for (const Fact& f : facts_) {
      switch (f.kind) {
        case FactKind::kIsa:
          PATHLOG_RETURN_IF_ERROR(store_->AddIsa(f.recv, f.method));
          break;
        case FactKind::kScalar:
          PATHLOG_RETURN_IF_ERROR(
              store_->SetScalar(f.method, f.recv, f.args, f.value));
          break;
        case FactKind::kSetMember:
          store_->AddSetMember(f.method, f.recv, f.args, f.value);
          break;
      }
    }
    return Status::OK();
  }

 private:
  ObjectStore* store_;
  std::vector<Fact> facts_;
  std::unordered_map<PendingKey, Oid, PendingKeyHash> overlay_;
  uint64_t skolems_ = 0;
};

Result<Oid> HeadAsserter::ResolveFilterPart(const RefPtr& r, Bindings* b,
                                            Txn* txn) {
  return Resolve(*r, mode_ == HeadValueMode::kSkolemize, b, txn);
}

Result<Oid> HeadAsserter::Resolve(const Ref& t, bool create, Bindings* b,
                                  Txn* txn) {
  switch (t.kind) {
    case RefKind::kName:
      switch (t.name_kind) {
        case NameKind::kSymbol:
          return store_->InternSymbol(t.text);
        case NameKind::kInt:
          return store_->InternInt(t.int_value);
        case NameKind::kString:
          return store_->InternString(t.text);
      }
      return Status(Internal("Resolve: unknown name kind"));
    case RefKind::kVar: {
      std::optional<Oid> v = b->Get(t.text);
      if (!v) {
        return Status(UnsafeRule(StrCat(
            "head variable ", t.text,
            " is not bound by the rule body (range restriction)")));
      }
      return *v;
    }
    case RefKind::kParen:
      return Resolve(*t.base, create, b, txn);
    case RefKind::kPath: {
      if (t.set_valued_path) {
        return Status(IllFormed(StrCat(
            "set-valued path cannot be asserted in a rule head: ",
            ToString(t))));
      }
      // Method position: always in create mode — paths at method
      // position define virtual method objects (generic tc).
      PATHLOG_ASSIGN_OR_RETURN(Oid um, Resolve(*t.method, true, b, txn));
      if (um == kSkip) return kSkip;
      PATHLOG_ASSIGN_OR_RETURN(Oid u0, Resolve(*t.base, create, b, txn));
      if (u0 == kSkip) return kSkip;
      std::vector<Oid> argv;
      argv.reserve(t.args.size());
      for (const RefPtr& a : t.args) {
        PATHLOG_ASSIGN_OR_RETURN(Oid ua, ResolveFilterPart(a, b, txn));
        if (ua == kSkip) return kSkip;
        argv.push_back(ua);
      }
      if (std::optional<Oid> r = txn->GetScalar(um, u0, argv)) {
        return *r;
      }
      if (!create) return kSkip;
      // Define a virtual object; the stored fact is the skolem cache.
      std::string name =
          StrCat("_", store_->DisplayName(um), "(", store_->DisplayName(u0));
      for (Oid a : argv) name = StrCat(name, ",", store_->DisplayName(a));
      name += ")";
      Oid fresh = store_->NewAnonymous(std::move(name));
      txn->StageScalar(um, u0, std::move(argv), fresh);
      txn->CountSkolem();
      return fresh;
    }
    case RefKind::kMolecule: {
      PATHLOG_ASSIGN_OR_RETURN(Oid u0, Resolve(*t.base, create, b, txn));
      if (u0 == kSkip) return kSkip;
      for (const Filter& f : t.filters) {
        if (f.kind == FilterKind::kClass) {
          PATHLOG_ASSIGN_OR_RETURN(Oid c, ResolveFilterPart(f.value, b, txn));
          if (c == kSkip) return kSkip;
          txn->StageIsa(u0, c);
          continue;
        }
        // Method position: create mode (virtual method objects).
        PATHLOG_ASSIGN_OR_RETURN(Oid um, Resolve(*f.method, true, b, txn));
        if (um == kSkip) return kSkip;
        if (store_->kind(um) == ObjectKind::kSymbol &&
            IsBuiltinMethodName(store_->DisplayName(um))) {
          return Status(IllFormed(
              StrCat("the built-in method ", store_->DisplayName(um),
                     " cannot be defined in a rule head")));
        }
        std::vector<Oid> argv;
        argv.reserve(f.args.size());
        for (const RefPtr& a : f.args) {
          PATHLOG_ASSIGN_OR_RETURN(Oid ua, ResolveFilterPart(a, b, txn));
          if (ua == kSkip) return kSkip;
          argv.push_back(ua);
        }
        switch (f.kind) {
          case FilterKind::kScalar: {
            PATHLOG_ASSIGN_OR_RETURN(Oid v, ResolveFilterPart(f.value, b, txn));
            if (v == kSkip) return kSkip;
            txn->StageScalar(um, u0, std::move(argv), v);
            break;
          }
          case FilterKind::kSetRef: {
            // The specified set is *referenced*, not asserted into:
            // evaluate it against the current store and insert its
            // members (paper example 4.4: the assistants of p1 become
            // friends of p2). Stratification guarantees the producing
            // methods are complete by now.
            SemanticStructure I(*store_);
            RefEvaluator eval(I);
            Result<std::vector<Oid>> members = eval.EvalGround(*f.value, b);
            if (!members.ok()) return members.status();
            for (Oid mo : *members) {
              txn->StageSetMember(um, u0, argv, mo);
            }
            break;
          }
          case FilterKind::kSetEnum: {
            for (const RefPtr& e : f.elems) {
              PATHLOG_ASSIGN_OR_RETURN(Oid eo, ResolveFilterPart(e, b, txn));
              if (eo == kSkip) return kSkip;
              txn->StageSetMember(um, u0, argv, eo);
            }
            break;
          }
          case FilterKind::kClass:
            break;  // unreachable
        }
      }
      return u0;
    }
  }
  return Status(Internal("Resolve: unknown reference kind"));
}

Status HeadAsserter::Assert(const Ref& head, Bindings* b) {
  Txn txn(store_);
  Result<Oid> r = Resolve(head, /*create=*/true, b, &txn);
  if (!r.ok()) return r.status();
  if (*r == kSkip) return Status::OK();  // derives nothing, no effects
  PATHLOG_RETURN_IF_ERROR(txn.Apply());
  // Skolems count only when their defining facts were committed —
  // skipped instances may have allocated (orphan) anonymous oids, but
  // they define nothing.
  skolems_created_ += txn.skolems();
  return Status::OK();
}

}  // namespace pathlog
