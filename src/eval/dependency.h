// Method dependency analysis for stratification and semi-naive
// change propagation.
//
// Nodes are method symbols, plus two special nodes:
//   kAnyNode — the wildcard: a variable or complex reference at method
//              position may denote *any* method (generic rules like the
//              paper's `tc`);
//   kIsaNode — the whole hierarchy relation <=_U (memberships interact
//              through transitivity, so we conservatively treat all
//              class filters as one symbol).
//
// A rule contributes edges defined-symbol -> read-symbol. A read is
// *needs-complete* when the rule can only be evaluated once the read
// method's result sets are final: the method occurs inside the result
// reference of a `->>` filter in a body literal or head (paper
// section 6, the [NT89]-style condition), or anywhere inside a negated
// literal.

#ifndef PATHLOG_EVAL_DEPENDENCY_H_
#define PATHLOG_EVAL_DEPENDENCY_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/program.h"
#include "base/result.h"
#include "eval/head_assert.h"
#include "store/object_store.h"

namespace pathlog {

/// What one rule defines and reads, at method-Oid granularity (used by
/// the engine for change tracking) plus wildcard/isa flags.
struct RuleDeps {
  std::unordered_set<Oid> defines;
  bool defines_any = false;
  bool defines_isa = false;

  std::unordered_set<Oid> reads;          // normal reads
  std::unordered_set<Oid> reads_complete; // needs-complete reads
  bool reads_any = false;
  bool reads_isa = false;
  bool reads_isa_complete = false;
  bool reads_any_complete = false;

  /// Subset of `reads` consumed at *assert time* by the head (spine
  /// lookups, value paths, head set-reference results). The
  /// literal-level delta strategy must fall back to a full evaluation
  /// when any of these changed, because delta restriction only covers
  /// body literals.
  std::unordered_set<Oid> head_reads;
  bool head_reads_any = false;
};

class DependencyGraph {
 public:
  /// Builds per-rule dependency sets and the symbol graph. Interns
  /// method names through `store` so symbols are Oids. `mode` matters
  /// because kSkolemize turns head value paths into definitions.
  static Result<DependencyGraph> Build(const std::vector<Rule>& rules,
                                       ObjectStore* store,
                                       HeadValueMode mode);

  struct Edge {
    uint32_t from;  // node index of a defined symbol
    uint32_t to;    // node index of a read symbol
    bool needs_complete;
    /// Index of the rule that contributed this edge, or -1 for
    /// synthetic coupling edges (wildcard fan-out). Used to explain
    /// stratification failures rule by rule.
    int32_t rule = -1;
  };

  static constexpr uint32_t kAnyNode = 0;
  static constexpr uint32_t kIsaNode = 1;

  size_t num_nodes() const { return node_names_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  const std::vector<RuleDeps>& rule_deps() const { return rule_deps_; }

  /// Node indexes of the symbols a rule defines (for stratum lookup).
  const std::vector<std::vector<uint32_t>>& rule_define_nodes() const {
    return rule_define_nodes_;
  }

  /// Display name of a node, for diagnostics.
  const std::string& NodeName(uint32_t node) const {
    return node_names_[node];
  }

 private:
  uint32_t NodeOf(Oid method, const ObjectStore& store);

  std::vector<std::string> node_names_;
  std::unordered_map<Oid, uint32_t> method_nodes_;
  std::vector<Edge> edges_;
  std::vector<RuleDeps> rule_deps_;
  std::vector<std::vector<uint32_t>> rule_define_nodes_;
};

}  // namespace pathlog

#endif  // PATHLOG_EVAL_DEPENDENCY_H_
