// The deductive engine: stratified bottom-up fixpoint evaluation of
// PathLog rules (paper section 6: "to evaluate rules in PathLog
// well-known bottom-up techniques may be applied").
//
// Strategies (ablated in bench/bench_tc.cc):
//   kNaive          every rule re-evaluated every iteration until no
//                   new facts — the textbook oracle.
//   kSemiNaiveRules predicate-level change propagation: a rule is only
//                   re-evaluated when a method (or the hierarchy) it
//                   reads gained facts since its last evaluation.
//   kSemiNaiveDelta literal-level delta restriction on top of the
//                   above — the classic semi-naive (see the enum and
//                   docs/IMPLEMENTATION.md).
//
// All strategies are sound and complete for stratified programs; the
// store's set semantics (facts are deduplicated) guarantees
// termination whenever the derivable fact set is finite. Virtual-object
// creation can make it infinite (e.g. a rule deriving a fresh successor
// for every derived object); max_facts/max_objects turn runaway
// programs into kResourceExhausted instead of livelock.

#ifndef PATHLOG_EVAL_ENGINE_H_
#define PATHLOG_EVAL_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ast/program.h"
#include "base/result.h"
#include "eval/dependency.h"
#include "eval/head_assert.h"
#include "eval/stratify.h"
#include "obs/obs.h"
#include "store/object_store.h"

namespace pathlog {

class RefEvaluator;
class ResourceBudget;  // base/budget.h
struct PlannerHints;   // query/planner.h

enum class EvalStrategy : uint8_t {
  /// Every rule re-evaluated every iteration (textbook oracle).
  kNaive,
  /// Predicate-level change propagation: a rule is re-evaluated only
  /// when something it reads changed.
  kSemiNaiveRules,
  /// Literal-level delta restriction (the classic semi-naive): after
  /// the first round, each re-evaluation runs one pass per positive
  /// body literal, keeping only derivations in which that literal
  /// consumed a fact newer than the rule's previous evaluation. Falls
  /// back to a full pass when an assert-time (head) read changed.
  kSemiNaiveDelta,
};

struct EngineOptions {
  EvalStrategy strategy = EvalStrategy::kSemiNaiveRules;
  HeadValueMode head_value_mode = HeadValueMode::kRequireDefined;
  /// Record which rule instance produced each derived fact (see
  /// Engine::provenance and Database::ExplainFact). Off by default:
  /// records cost memory proportional to the number of derivations.
  bool trace_provenance = false;
  /// Drive bound-target path matching and molecule enumeration from
  /// the store's inverted value→receiver / member→receiver indexes.
  /// Answers are identical either way; disabling exists so the
  /// differential tests can prove that, and to measure the win.
  bool use_inverted_indexes = true;
  /// Estimator for filter targets bound only at runtime
  /// (store/method_stats.h): skew-aware top-k heavy-hitter statistics
  /// by default; kAverageBucket restores the historical skew-blind
  /// planner for differential testing. Answers are identical either
  /// way — only literal order and printed estimates change.
  PlannerStatsMode planner_stats = PlannerStatsMode::kSkewAware;
  /// Hard ceilings that turn non-terminating programs into errors.
  uint64_t max_iterations = 1'000'000;
  uint64_t max_facts = 20'000'000;
  uint64_t max_objects = 20'000'000;
  /// Wall-clock budget for one Run(), in milliseconds; 0 = unlimited.
  /// A materialisation that derives slowly (heavy rules over a large
  /// store) can run away long before it trips the fact or iteration
  /// caps — the deadline turns it into kDeadlineExceeded instead.
  /// Checked at the same boundaries as the other limits (after each
  /// rule evaluation), so very long single enumerations can overshoot.
  uint64_t max_wall_ms = 0;
  /// Observability sinks (all null by default — disabled cost is one
  /// branch per instrumentation site). Borrowed; the caller keeps them
  /// alive for the engine's lifetime.
  ObsSinks obs;
  /// Facts proved by the semantic analyses (query/planner.h). When
  /// non-null, rule bodies are ordered by the cost-based planner with
  /// these hints instead of the first-admissible safety order — the
  /// answer set is identical (differential-tested), only literal order
  /// changes. Borrowed; the caller keeps it alive for the engine's
  /// lifetime.
  const PlannerHints* planner_hints = nullptr;
  /// Cooperative resource budget (base/budget.h): store bytes,
  /// derivations, wall clock, and a CancelToken, governing the whole
  /// operation this engine runs for. Armed by Run() (the wall window
  /// covers one materialisation); checked beside the engine's own
  /// limits and polled inside enumeration via the reference
  /// evaluator. Borrowed; null disables budget governance.
  ResourceBudget* budget = nullptr;
};

/// One head-instance assertion that added facts: the facts with
/// generation in [first_gen, end_gen) were derived by rule
/// `rule_index` under `bindings` (projected onto the head variables).
struct DerivationRecord {
  uint64_t first_gen;
  uint64_t end_gen;
  size_t rule_index;
  VarValuation bindings;
};

struct EngineStats {
  uint64_t iterations = 0;        ///< fixpoint rounds across all strata
  uint64_t rule_evaluations = 0;  ///< rule body evaluations
  uint64_t delta_passes = 0;      ///< delta-restricted literal passes
  uint64_t derivations = 0;       ///< head instances asserted
  uint64_t facts_added = 0;       ///< store growth caused by Run()
  uint64_t skolems_created = 0;   ///< virtual objects defined
  /// Duplicate path emissions suppressed at the emit boundary,
  /// summed over every rule evaluation.
  uint64_t duplicates_suppressed = 0;
  /// Wall-clock time spent in Run(), cumulative across calls.
  /// Recorded on error returns too (kDeadlineExceeded diagnosis).
  double elapsed_ms = 0;
  /// Fixpoint rounds per stratum, indexed by stratum number (strata
  /// with no rules stay 0). Filled by Run().
  std::vector<uint64_t> stratum_iterations;
  int num_strata = 1;
  /// Where a kDeadlineExceeded (or other limit) error tripped:
  /// stratum number and the printed rule under evaluation. -1/empty
  /// when no limit tripped.
  int limit_stratum = -1;
  std::string limit_rule;
};

class Engine {
 public:
  explicit Engine(ObjectStore* store, EngineOptions options = {})
      : store_(store), options_(options) {}

  /// Validates (Definition 3, head restrictions, body safety) and adds
  /// a rule. Body literals are reordered so that every needs-ground
  /// position (set-reference results, negated literals) is reached with
  /// its variables bound; kUnsafeRule if impossible.
  Status AddRule(const Rule& rule);

  /// Adds every rule of a parsed program (queries/signatures ignored).
  Status AddRules(const std::vector<Rule>& rules);

  /// Runs stratified fixpoint evaluation to completion.
  Status Run();

  const EngineStats& stats() const { return stats_; }
  size_t num_rules() const { return rules_.size(); }
  /// The i-th rule as planned (body in evaluation order).
  const Rule& rule(size_t i) const { return rules_[i].rule; }

  /// Derivation records (empty unless options.trace_provenance),
  /// ordered by first_gen.
  const std::vector<DerivationRecord>& provenance() const {
    return provenance_;
  }

 private:
  struct PlannedRule {
    Rule rule;                    // body already in evaluation order
    size_t index = 0;             // position in the rules_ vector
    std::set<std::string> head_vars;
    uint64_t last_eval_gen = 0;   // store generation at last evaluation
  };

  Status PlanBody(Rule* rule) const;
  /// Run() minus the timing/metrics wrapper.
  Status RunImpl();
  Status RunStratum(int stratum, const std::vector<size_t>& rule_idxs,
                    const std::vector<RuleDeps>& deps);
  /// Evaluates a rule body and asserts the head for every solution.
  /// With `delta_from` set, runs one delta-restricted pass per positive
  /// body literal instead of one full evaluation.
  Status EvaluateRule(PlannedRule* pr, HeadAsserter* asserter,
                      std::optional<uint64_t> delta_from);
  /// EvaluateRule minus the route-counter flush wrapper.
  Status EvaluateRuleBody(PlannedRule* pr, HeadAsserter* asserter,
                          std::optional<uint64_t> delta_from,
                          RefEvaluator* eval);
  bool RuleAffected(const PlannedRule& pr, const RuleDeps& deps) const;
  bool HeadReadsChanged(const PlannedRule& pr, const RuleDeps& deps) const;
  void ScanNewFacts();
  /// Non-const: a tripped limit records its context (stratum, rule)
  /// into stats_ for diagnosability.
  Status CheckLimits();
  /// Polls options_.budget (no-op when null), splicing the stratum/rule
  /// context into the error exactly like CheckLimits does.
  Status CheckBudget();
  /// Bumps the pathlog_engine_* metrics by the growth of stats_ since
  /// `before` (no-op without a registry).
  void PublishMetrics(const EngineStats& before, double run_ms);

  ObjectStore* store_;
  EngineOptions options_;
  /// Deadline for the current Run(); meaningful only when
  /// options_.max_wall_ms is nonzero.
  std::chrono::steady_clock::time_point deadline_;
  std::vector<PlannedRule> rules_;
  std::vector<DerivationRecord> provenance_;
  EngineStats stats_;
  /// Evaluation context for limit/deadline diagnostics: what RunStratum
  /// is currently working on. current_rule_ points into rules_.
  int current_stratum_ = -1;
  const PlannedRule* current_rule_ = nullptr;

  // Change tracking: generation of the most recent fact per method /
  // hierarchy, maintained by ScanNewFacts.
  std::unordered_map<Oid, uint64_t> method_gen_;
  uint64_t isa_gen_ = 0;
  uint64_t any_gen_ = 0;
  uint64_t scan_watermark_ = 0;
};

/// Variables that occur inside the result reference of a `->>` filter
/// anywhere in `t` — these must be bound before the literal containing
/// them is evaluated. Exposed for tests.
std::set<std::string> SetRefValueVars(const Ref& t);

/// Reorders a conjunction so every literal is admissible when reached:
/// negated literals after all their variables are bound, `->>` filter
/// results after everything inside them is bound. On success `*bound`
/// (if non-null) receives the variables bound by the positive
/// literals. kUnsafeRule when no admissible order exists. Used by the
/// engine for rule bodies and by Database for ad-hoc queries.
Status OrderLiteralsForSafety(std::vector<Literal>* body,
                              std::set<std::string>* bound);

}  // namespace pathlog

#endif  // PATHLOG_EVAL_ENGINE_H_
