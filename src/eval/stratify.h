// Stratification (paper section 6, cf. [NT89]).
//
// A program is stratifiable iff no strongly connected component of the
// method dependency graph contains a needs-complete edge: a method may
// not (transitively) contribute to the very set whose completion its
// derivation awaits. Programs that never use a set-valued reference as
// the result of a `->>` filter in a body (and never negate) are always
// stratifiable in a single stratum — "in all other cases the treatment
// of sets in PathLog does not imply stratification".

#ifndef PATHLOG_EVAL_STRATIFY_H_
#define PATHLOG_EVAL_STRATIFY_H_

#include <vector>

#include "base/result.h"
#include "eval/dependency.h"

namespace pathlog {

struct Stratification {
  /// Stratum of each rule (parallel to the rule vector the graph was
  /// built from). Rules are evaluated stratum by stratum, fixpoint
  /// within each.
  std::vector<int> rule_stratum;
  int num_strata = 1;
};

/// Why a program is not stratifiable: a cycle of dependency edges in
/// one strongly connected component. `edges.front()` is the closing
/// needs-complete edge (the `->>` filter result or negation); the
/// remaining edges chain `edges.front().to` back to
/// `edges.front().from` through ordinary dependencies. Each edge
/// carries the index of the contributing rule (-1 for synthetic
/// wildcard-coupling edges), so a linter can print the offending rule
/// chain verbatim.
struct CycleExplanation {
  std::vector<DependencyGraph::Edge> edges;
};

/// Computes strata, or kNotStratifiable naming the offending cycle.
/// On failure, `cycle` (if non-null) receives the offending edge
/// chain for diagnostics.
Result<Stratification> Stratify(const DependencyGraph& graph,
                                size_t num_rules,
                                CycleExplanation* cycle = nullptr);

}  // namespace pathlog

#endif  // PATHLOG_EVAL_STRATIFY_H_
