// Structured evaluation tracing: span events in the Chrome
// trace-event JSON format, loadable in chrome://tracing and Perfetto.
//
// The tracer buffers duration events ("ph":"B"/"E") in memory and
// renders the whole buffer as `{"traceEvents":[...]}` on demand. The
// engine, database, WAL, and trigger engine open spans around their
// phases (load → stratify → stratum → iteration → rule evaluation →
// delta pass; WAL append/fsync/checkpoint; trigger firing), so a
// trace of a materialisation is a tree whose nesting the tests
// validate: every E closes the most recent B, strata contain
// iterations contain rule evaluations.
//
// Null-sink discipline: instrumentation sites hold a Tracer* that may
// be null and guard with one branch — TraceSpan does that guard, so
// `TraceSpan span(tracer, "name");` is the entire instrumentation.
// Appending takes a mutex (tracing is for diagnosis, not for the
// disabled fast path).

#ifndef PATHLOG_OBS_TRACE_H_
#define PATHLOG_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.h"
#include "base/result.h"
#include "base/thread_annotations.h"
#include "store/file_ops.h"

namespace pathlog {

/// One buffered trace event. `args_json` is either empty or a
/// complete JSON object rendered by the caller (e.g. R"({"rule":3})").
struct TraceEvent {
  char phase;            ///< 'B' begin, 'E' end, 'i' instant
  std::string name;
  std::string category;
  uint64_t ts_us;        ///< microseconds since the tracer's epoch
  std::string args_json;
};

class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Begin(std::string_view name, std::string_view category = "pathlog",
             std::string_view args_json = "");
  void End();
  /// A zero-duration marker (rendered with "s":"t" thread scope).
  void Instant(std::string_view name,
               std::string_view category = "pathlog",
               std::string_view args_json = "");

  size_t event_count() const;
  /// Open B spans minus E closes so far (0 for a quiesced tracer).
  int open_spans() const;

  /// The whole buffer as a Chrome trace: {"traceEvents":[...]}.
  /// Unbalanced B spans are closed at render time so the file is
  /// always loadable.
  std::string ToJson() const;

  /// ToJson() written atomically to `path` (nullptr fops = real FS).
  Status WriteTo(const std::string& path, FileOps* fops = nullptr) const;

  /// Drops every buffered event and restarts the clock.
  void Reset();

 private:
  // Reads epoch_, which Reset() rewrites, so timestamps are taken
  // under the same lock that orders them into the buffer.
  uint64_t NowUs() const REQUIRES(mu_) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  mutable Mutex mu_;
  std::chrono::steady_clock::time_point epoch_ GUARDED_BY(mu_);
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);
  /// Names of currently open B spans (E events replay the name so the
  /// trace viewer can match them without relying on stack order).
  std::vector<std::string> open_ GUARDED_BY(mu_);
};

/// RAII span: no-op when `tracer` is null.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, std::string_view name,
            std::string_view category = "pathlog",
            std::string_view args_json = "")
      : tracer_(tracer) {
    if (tracer_ != nullptr) tracer_->Begin(name, category, args_json);
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) tracer_->End();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;
};

}  // namespace pathlog

#endif  // PATHLOG_OBS_TRACE_H_
