// A minimal JSON reader/writer for the observability layer.
//
// The exporters (metrics JSON, Chrome trace-event files) must produce
// output that external consumers parse, so the tests — and the CI
// trace gate — need to parse it back and check structure. Rather than
// pull a dependency into the build, this is a small self-contained
// JSON value type with a strict recursive-descent parser. It is not a
// general-purpose library: numbers are doubles, objects preserve
// insertion order, and inputs beyond a sane nesting depth are
// rejected (observability files are machine-written and shallow).

#ifndef PATHLOG_OBS_JSON_H_
#define PATHLOG_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/result.h"

namespace pathlog {

class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in input/insertion order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  void Append(JsonValue v) { items_.push_back(std::move(v)); }
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error). kInvalidArgument on malformed input.
Result<JsonValue> ParseJson(std::string_view text);

/// Appends the JSON string-literal form of `s` (quotes included,
/// control characters and quotes escaped) to `out`.
void AppendJsonString(std::string* out, std::string_view s);

/// Appends a JSON number: integers render without exponent or
/// fraction, everything else with enough digits to round-trip.
void AppendJsonNumber(std::string* out, double v);

}  // namespace pathlog

#endif  // PATHLOG_OBS_JSON_H_
