#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/strings.h"

namespace pathlog {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    PATHLOG_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status(Error("trailing characters after JSON document"));
    }
    return v;
  }

 private:
  Status Error(std::string_view what) const {
    return InvalidArgument(
        StrCat("json parse error at offset ", pos_, ": ", what));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Status(Error("nesting too deep"));
    SkipWhitespace();
    if (pos_ >= text_.size()) return Status(Error("unexpected end of input"));
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        PATHLOG_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return JsonValue(true);
        return Status(Error("invalid literal"));
      case 'f':
        if (ConsumeWord("false")) return JsonValue(false);
        return Status(Error("invalid literal"));
      case 'n':
        if (ConsumeWord("null")) return JsonValue();
        return Status(Error("invalid literal"));
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status(Error("expected object key string"));
      }
      PATHLOG_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Status(Error("expected ':' after key"));
      PATHLOG_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      obj.Set(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Status(Error("expected ',' or '}' in object"));
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    for (;;) {
      PATHLOG_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      arr.Append(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Status(Error("expected ',' or ']' in array"));
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Status(Error("raw control character in string"));
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status(Error("truncated \\u escape"));
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Status(Error("invalid \\u escape"));
          }
          // The writers only escape control characters; decode BMP
          // code points as UTF-8 and leave surrogate pairs unpaired
          // (observability payloads never contain them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status(Error("invalid escape character"));
      }
    }
    return Status(Error("unterminated string"));
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Status(Error("expected a value"));
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) {
      return Status(Error("malformed number"));
    }
    return JsonValue(v);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; clamp to null-ish zero rather than emit an
    // unparsable token (histogram +Inf bounds are rendered as labels,
    // never as values).
    out->append("0");
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    out->append(std::to_string(static_cast<int64_t>(v)));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace pathlog
