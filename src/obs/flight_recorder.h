// FlightRecorder: an always-on black-box recorder of recent engine
// activity.
//
// A fixed-capacity ring buffer of completed spans and instant events
// (the Tracer's span shapes, but with a duration instead of B/E
// pairing) that the database, the WAL appender, and the shell feed
// continuously. Unlike the Tracer — which buffers everything and is
// attached only when someone asks for a trace — the recorder is cheap
// enough to leave on in production: recording never blocks (one
// fetch_add to claim a slot, a try-only per-slot lock to publish it)
// and memory is bounded by the capacity chosen at construction.
//
// When an incident fires (degraded-mode entry, a budget rejection, a
// WAL commit failure), the database auto-dumps the ring to a
// timestamped file in its durable directory, so the seconds *before*
// the failure survive to explain it. The dump renders as a Chrome
// trace ({"traceEvents":[...]}, "X" complete events + "i" instants),
// loadable in chrome://tracing / Perfetto exactly like Tracer output,
// and also served live at the stats server's /tracez endpoint.
//
// Concurrency contract: Record() never blocks and never allocates
// beyond the event's own strings. Each slot is guarded by a try-only
// spinlock: a writer that finds its claimed slot busy (another writer
// lapped the ring onto it, or a reader is copying it) drops the event
// instead of waiting; a reader that finds a slot busy skips it after
// a brief spin. This is a diagnostic recorder, not an audit log;
// losing a slot under extreme contention is acceptable, blocking the
// serving path is not.

#ifndef PATHLOG_OBS_FLIGHT_RECORDER_H_
#define PATHLOG_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "store/file_ops.h"

namespace pathlog {

/// One recorded event. `dur_us == 0` renders as an instant ("i"),
/// anything else as a complete span ("X"). `args_json` is either
/// empty or a complete JSON object rendered by the caller.
struct FlightEvent {
  uint64_t seq = 0;    ///< global record index (monotone, for ordering)
  uint64_t ts_us = 0;  ///< microseconds since the recorder's epoch
  uint64_t dur_us = 0; ///< span duration; 0 = instant event
  std::string name;
  std::string category;
  std::string args_json;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event. Never blocks: claims a slot with one
  /// fetch_add and try-locks it; a busy slot drops the event.
  void Record(std::string_view name, std::string_view category = "pathlog",
              uint64_t dur_us = 0, std::string_view args_json = "");

  /// Microseconds since the recorder's epoch — callers stamp a span's
  /// start with this and pass `NowUs() - start` as the duration. The
  /// epoch is an atomic so a concurrent Reset() moves the clock
  /// without a data race (a span straddling the Reset records a
  /// clamped duration, see FlightSpan).
  uint64_t NowUs() const {
    const int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    const int64_t since = now_ns - epoch_ns_.load(std::memory_order_relaxed);
    return since <= 0 ? 0 : static_cast<uint64_t>(since / 1000);
  }

  size_t capacity() const { return capacity_; }
  /// Events recorded since construction (>= capacity() means the ring
  /// has wrapped and older events were overwritten).
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// A consistent copy of the surviving events, oldest first. Slots
  /// being overwritten at snapshot time are skipped, so the result
  /// holds at most capacity() events.
  std::vector<FlightEvent> Snapshot() const;

  /// The ring as a Chrome trace: {"traceEvents":[...]} with "X"
  /// complete events (spans) and "i" instants, same field shapes the
  /// Tracer renders, so any trace tooling loads a flight dump.
  std::string ToTraceJson() const;

  /// ToTraceJson() written atomically to `path` (nullptr fops = real
  /// file system).
  Status WriteTo(const std::string& path, FileOps* fops = nullptr) const;

  /// Drops every recorded event and restarts the clock.
  void Reset();

 private:
  // lock-free: the ring never takes a mutex. The happens-before
  // contract per slot:
  //
  //   writer: TryLock(busy)        CAS 0→1, memory_order_acquire
  //           write event fields   (plain writes, slot owned)
  //           filled.store(true)   relaxed — meaningful only once the
  //                                release below publishes it
  //           Unlock(busy)         store 0, memory_order_release
  //
  //   reader: filled.load(relaxed) pre-filter only, may be stale
  //           TryLock(busy)        CAS 0→1, memory_order_acquire —
  //                                synchronises-with the writer's
  //                                release, so every event field
  //                                written before that Unlock is
  //                                visible here
  //           copy event, Unlock
  //
  // A slot's plain `event` fields are therefore only ever touched by
  // the thread currently holding its busy flag; a CAS that loses
  // drops (writer) or skips (reader) instead of waiting, so no path
  // through Record/Snapshot ever blocks. next_ is a relaxed counter:
  // seq values are unique and monotone, nothing else is inferred from
  // its ordering. epoch_ns_ is relaxed too — Reset() only needs the
  // new epoch to become visible eventually, not to order other writes.
  struct Slot {
    /// Try-only spinlock (0 = free, 1 = held) and a published flag so
    /// readers skip slots that were never written.
    std::atomic<uint32_t> busy{0};
    std::atomic<bool> filled{false};
    FlightEvent event;  // owned by whoever holds `busy`
  };

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
  /// Epoch as steady-clock nanoseconds (atomic: Reset() races NowUs()).
  std::atomic<int64_t> epoch_ns_{0};
};

/// RAII span recorder: stamps the start on construction and records
/// one complete event with the measured duration on destruction.
/// No-op when `recorder` is null — same null-sink discipline as
/// TraceSpan.
class FlightSpan {
 public:
  FlightSpan(FlightRecorder* recorder, std::string_view name,
             std::string_view category = "pathlog")
      : recorder_(recorder), name_(name), category_(category),
        start_us_(recorder != nullptr ? recorder->NowUs() : 0) {}
  ~FlightSpan() {
    if (recorder_ != nullptr) {
      const uint64_t now = recorder_->NowUs();
      // now < start happens when a concurrent Reset() moved the epoch
      // forward mid-span; clamp instead of recording a wrapped
      // duration.
      uint64_t dur = now > start_us_ ? now - start_us_ : 0;
      recorder_->Record(name_, category_, dur == 0 ? 1 : dur, args_json_);
    }
  }
  FlightSpan(const FlightSpan&) = delete;
  FlightSpan& operator=(const FlightSpan&) = delete;

  /// Attaches a complete JSON object rendered by the caller to the
  /// event recorded at destruction.
  void set_args_json(std::string args_json) {
    args_json_ = std::move(args_json);
  }

 private:
  FlightRecorder* recorder_;
  std::string name_;
  std::string category_;
  std::string args_json_;
  uint64_t start_us_;
};

}  // namespace pathlog

#endif  // PATHLOG_OBS_FLIGHT_RECORDER_H_
