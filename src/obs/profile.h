// The query/materialisation profiler: per-rule cumulative wall time
// and work counts, planner estimated-vs-actual cardinality per driver
// literal, and index-route totals.
//
// The engine records one row per rule *evaluation* (keyed by the
// rule's printed form, which is stable across Engine instances — the
// Database builds a fresh Engine per materialisation); the query
// front end records one row per planned driver literal. Recording is
// mutex-protected but happens per rule evaluation / per query, never
// per tuple, so the profiler adds no per-binding cost. Disabled is a
// null pointer at every instrumentation site.

#ifndef PATHLOG_OBS_PROFILE_H_
#define PATHLOG_OBS_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace pathlog {

class Profiler {
 public:
  /// One rule's accumulated evaluation cost.
  struct RuleProfile {
    std::string rule;           ///< printed form (body in plan order)
    uint64_t evaluations = 0;   ///< body evaluations (full or delta)
    uint64_t delta_passes = 0;  ///< delta-restricted literal passes
    uint64_t derivations = 0;   ///< head instances asserted
    uint64_t wall_ns = 0;       ///< cumulative wall time in EvaluateRule
  };

  /// One planned driver literal's estimate-vs-actual record. `actual`
  /// is the number of solutions the literal produced across the
  /// queries that planned it and `invocations` how many outer binding
  /// tuples entered it, so actual / invocations is the observed
  /// per-probe cardinality — the quantity `estimated` (the planner's
  /// per-probe driver cardinality, summed per query) predicts. A
  /// literal that runs first in its plan has one invocation per query;
  /// a later literal is re-entered once per surviving outer tuple.
  struct LiteralProfile {
    std::string literal;        ///< printed form
    uint64_t queries = 0;       ///< times this literal was planned
    double estimated = 0;       ///< summed planner estimates
    uint64_t actual = 0;        ///< summed produced solution count
    uint64_t invocations = 0;   ///< summed outer tuples entering it

    /// Observed per-probe cardinality, the number `estimated` (divided
    /// by `queries`) should match: actual / invocations.
    double ActualPerInvocation() const {
      return invocations == 0
                 ? 0.0
                 : static_cast<double>(actual) /
                       static_cast<double>(invocations);
    }
  };

  /// How path matching and molecule driving reached the store.
  struct RouteTotals {
    uint64_t inverted_probes = 0;   ///< value→recv / member→recv buckets
    uint64_t extent_scans = 0;      ///< method-extent / class-extent scans
    uint64_t universe_scans = 0;    ///< undriven whole-universe scans
    uint64_t duplicates_suppressed = 0;  ///< dedup at the emit boundary
  };

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void RecordRuleEvaluation(std::string_view rule, uint64_t wall_ns,
                            uint64_t delta_passes, uint64_t derivations);
  void RecordDriverLiteral(std::string_view literal, double estimated,
                           uint64_t actual, uint64_t invocations = 1);
  void RecordRoutes(const RouteTotals& delta);

  /// Rules with nonzero evaluations, sorted by cumulative wall time,
  /// most expensive first (ties: more evaluations first, then name).
  std::vector<RuleProfile> RuleProfiles() const;
  /// Driver literals in lexicographic order.
  std::vector<LiteralProfile> LiteralProfiles() const;
  RouteTotals routes() const;

  /// Human-readable report: the rule table, route totals, and the
  /// estimate-vs-actual table. Empty sections are elided.
  std::string Report() const;

  void Reset();

 private:
  mutable Mutex mu_;
  std::map<std::string, RuleProfile, std::less<>> rules_ GUARDED_BY(mu_);
  std::map<std::string, LiteralProfile, std::less<>> literals_
      GUARDED_BY(mu_);
  RouteTotals routes_ GUARDED_BY(mu_);
};

}  // namespace pathlog

#endif  // PATHLOG_OBS_PROFILE_H_
