#include "obs/profile.h"

#include <algorithm>
#include <cstdio>

#include "base/strings.h"

namespace pathlog {

void Profiler::RecordRuleEvaluation(std::string_view rule, uint64_t wall_ns,
                                    uint64_t delta_passes,
                                    uint64_t derivations) {
  MutexLock lock(&mu_);
  auto it = rules_.find(rule);
  if (it == rules_.end()) {
    RuleProfile p;
    p.rule = std::string(rule);
    it = rules_.emplace(p.rule, std::move(p)).first;
  }
  RuleProfile& p = it->second;
  ++p.evaluations;
  p.wall_ns += wall_ns;
  p.delta_passes += delta_passes;
  p.derivations += derivations;
}

void Profiler::RecordDriverLiteral(std::string_view literal, double estimated,
                                   uint64_t actual, uint64_t invocations) {
  MutexLock lock(&mu_);
  auto it = literals_.find(literal);
  if (it == literals_.end()) {
    LiteralProfile p;
    p.literal = std::string(literal);
    it = literals_.emplace(p.literal, std::move(p)).first;
  }
  LiteralProfile& p = it->second;
  ++p.queries;
  p.estimated += estimated;
  p.actual += actual;
  p.invocations += invocations;
}

void Profiler::RecordRoutes(const RouteTotals& delta) {
  MutexLock lock(&mu_);
  routes_.inverted_probes += delta.inverted_probes;
  routes_.extent_scans += delta.extent_scans;
  routes_.universe_scans += delta.universe_scans;
  routes_.duplicates_suppressed += delta.duplicates_suppressed;
}

std::vector<Profiler::RuleProfile> Profiler::RuleProfiles() const {
  MutexLock lock(&mu_);
  std::vector<RuleProfile> out;
  out.reserve(rules_.size());
  for (const auto& [_, p] : rules_) {
    if (p.evaluations > 0) out.push_back(p);
  }
  std::sort(out.begin(), out.end(),
            [](const RuleProfile& a, const RuleProfile& b) {
              if (a.wall_ns != b.wall_ns) return a.wall_ns > b.wall_ns;
              if (a.evaluations != b.evaluations) {
                return a.evaluations > b.evaluations;
              }
              return a.rule < b.rule;
            });
  return out;
}

std::vector<Profiler::LiteralProfile> Profiler::LiteralProfiles() const {
  MutexLock lock(&mu_);
  std::vector<LiteralProfile> out;
  out.reserve(literals_.size());
  for (const auto& [_, p] : literals_) out.push_back(p);
  return out;
}

Profiler::RouteTotals Profiler::routes() const {
  MutexLock lock(&mu_);
  return routes_;
}

std::string Profiler::Report() const {
  const std::vector<RuleProfile> rules = RuleProfiles();
  const std::vector<LiteralProfile> literals = LiteralProfiles();
  const RouteTotals r = routes();

  std::string out;
  if (rules.empty() && literals.empty() && r.inverted_probes == 0 &&
      r.extent_scans == 0 && r.universe_scans == 0) {
    return "profile: no activity recorded\n";
  }
  if (!rules.empty()) {
    out += StrCat("rule profile (", rules.size(),
                  " rules, sorted by cumulative time):\n");
    out += "      cum_ms     evals     delta    derivs  rule\n";
    for (const RuleProfile& p : rules) {
      char line[128];
      std::snprintf(line, sizeof(line), "  %10.3f %9llu %9llu %9llu  ",
                    static_cast<double>(p.wall_ns) / 1e6,
                    static_cast<unsigned long long>(p.evaluations),
                    static_cast<unsigned long long>(p.delta_passes),
                    static_cast<unsigned long long>(p.derivations));
      out += line;
      out += p.rule;
      out += "\n";
    }
  }
  out += StrCat("index routes: ", r.inverted_probes, " inverted probes, ",
                r.extent_scans, " extent scans, ", r.universe_scans,
                " universe scans, ", r.duplicates_suppressed,
                " duplicates suppressed\n");
  if (!literals.empty()) {
    out += "driver literals (planner estimate vs actual solutions; "
           "act/inv is per outer tuple, the estimate's unit):\n";
    out += "     queries  estimated     actual    act/inv  literal\n";
    for (const LiteralProfile& p : literals) {
      char line[112];
      std::snprintf(line, sizeof(line), "  %10llu %10.1f %10llu %10.1f  ",
                    static_cast<unsigned long long>(p.queries), p.estimated,
                    static_cast<unsigned long long>(p.actual),
                    p.ActualPerInvocation());
      out += line;
      out += p.literal;
      out += "\n";
    }
  }
  return out;
}

void Profiler::Reset() {
  MutexLock lock(&mu_);
  rules_.clear();
  literals_.clear();
  routes_ = RouteTotals{};
}

}  // namespace pathlog
