#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "base/strings.h"
#include "obs/json.h"

namespace pathlog {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  // Snapshot the buckets once; relaxed loads mean the rank and the
  // counts may be skewed by in-flight observations, which is fine for
  // a diagnostic estimate.
  std::vector<uint64_t> counts(bounds_.size() + 1);
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    const uint64_t prev = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      if (counts[i] == 0) return upper;
      const double frac =
          (rank - static_cast<double>(prev)) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, frac));
    }
  }
  // Rank fell in the +Inf bucket: the highest finite bound is the best
  // bounded answer (Prometheus does the same).
  return bounds_.empty() ? 0 : bounds_.back();
}

std::vector<double> DefaultLatencyBoundsMs() {
  return {0.25, 1, 4, 16, 64, 256, 1024, 4096, 16384, 65536};
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.help = std::string(help);
    e.counter = std::make_unique<Counter>();
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.help = std::string(help);
    e.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds,
                                         std::string_view help) {
  MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.help = std::string(help);
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  return it->second.histogram.get();
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, e] : entries_) {
    if (e.counter) {
      if (!counters.empty()) counters += ",";
      AppendJsonString(&counters, name);
      counters += ":";
      AppendJsonNumber(&counters, static_cast<double>(e.counter->value()));
    } else if (e.gauge) {
      if (!gauges.empty()) gauges += ",";
      AppendJsonString(&gauges, name);
      gauges += ":";
      AppendJsonNumber(&gauges, e.gauge->value());
    } else if (e.histogram) {
      const Histogram& h = *e.histogram;
      if (!histograms.empty()) histograms += ",";
      AppendJsonString(&histograms, name);
      histograms += ":{\"buckets\":[";
      uint64_t cumulative = 0;
      for (size_t i = 0; i <= h.bounds().size(); ++i) {
        if (i > 0) histograms += ",";
        cumulative += h.bucket_count(i);
        histograms += "{\"le\":";
        if (i < h.bounds().size()) {
          AppendJsonNumber(&histograms, h.bounds()[i]);
        } else {
          histograms += "\"+Inf\"";
        }
        histograms += ",\"count\":";
        AppendJsonNumber(&histograms, static_cast<double>(cumulative));
        histograms += "}";
      }
      histograms += "],\"sum\":";
      AppendJsonNumber(&histograms, h.sum());
      histograms += ",\"count\":";
      AppendJsonNumber(&histograms, static_cast<double>(h.total_count()));
      histograms += "}";
    }
  }
  return StrCat("{\"counters\":{", counters, "},\"gauges\":{", gauges,
                "},\"histograms\":{", histograms, "}}");
}

namespace {

/// Renders a bucket bound the way Prometheus does: shortest form that
/// round-trips (our bounds are small decimals, %g is enough).
std::string LeLabel(double bound) {
  std::string out;
  AppendJsonNumber(&out, bound);
  return out;
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, e] : entries_) {
    if (!e.help.empty()) {
      out += StrCat("# HELP ", name, " ", e.help, "\n");
    }
    if (e.counter) {
      out += StrCat("# TYPE ", name, " counter\n", name, " ",
                    e.counter->value(), "\n");
    } else if (e.gauge) {
      std::string v;
      AppendJsonNumber(&v, e.gauge->value());
      out += StrCat("# TYPE ", name, " gauge\n", name, " ", v, "\n");
    } else if (e.histogram) {
      const Histogram& h = *e.histogram;
      out += StrCat("# TYPE ", name, " histogram\n");
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h.bounds().size(); ++i) {
        cumulative += h.bucket_count(i);
        out += StrCat(name, "_bucket{le=\"", LeLabel(h.bounds()[i]), "\"} ",
                      cumulative, "\n");
      }
      cumulative += h.bucket_count(h.bounds().size());
      out += StrCat(name, "_bucket{le=\"+Inf\"} ", cumulative, "\n");
      std::string sum;
      AppendJsonNumber(&sum, h.sum());
      out += StrCat(name, "_sum ", sum, "\n");
      out += StrCat(name, "_count ", h.total_count(), "\n");
    }
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::HistogramEntries() const {
  MutexLock lock(&mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  for (const auto& [name, e] : entries_) {
    if (e.histogram) out.emplace_back(name, e.histogram.get());
  }
  return out;
}

Result<MetricsSamples> ParseMetricsJson(std::string_view json) {
  PATHLOG_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (!root.is_object()) {
    return Status(InvalidArgument("metrics json: root is not an object"));
  }
  MetricsSamples samples;
  for (const char* section : {"counters", "gauges"}) {
    const JsonValue* sec = root.Find(section);
    if (sec == nullptr || !sec->is_object()) {
      return Status(InvalidArgument(
          StrCat("metrics json: missing \"", section, "\" object")));
    }
    for (const auto& [name, v] : sec->members()) {
      if (!v.is_number()) {
        return Status(InvalidArgument(
            StrCat("metrics json: non-numeric sample ", name)));
      }
      samples[name] = v.as_number();
    }
  }
  const JsonValue* hists = root.Find("histograms");
  if (hists == nullptr || !hists->is_object()) {
    return Status(InvalidArgument("metrics json: missing histograms"));
  }
  for (const auto& [name, h] : hists->members()) {
    const JsonValue* buckets = h.Find("buckets");
    const JsonValue* sum = h.Find("sum");
    const JsonValue* count = h.Find("count");
    if (buckets == nullptr || !buckets->is_array() || sum == nullptr ||
        !sum->is_number() || count == nullptr || !count->is_number()) {
      return Status(InvalidArgument(
          StrCat("metrics json: malformed histogram ", name)));
    }
    for (const JsonValue& b : buckets->items()) {
      const JsonValue* le = b.Find("le");
      const JsonValue* c = b.Find("count");
      if (le == nullptr || c == nullptr || !c->is_number()) {
        return Status(InvalidArgument(
            StrCat("metrics json: malformed bucket in ", name)));
      }
      std::string label =
          le->is_string() ? le->as_string() : LeLabel(le->as_number());
      samples[StrCat(name, "_bucket{le=\"", label, "\"}")] = c->as_number();
    }
    samples[name + "_sum"] = sum->as_number();
    samples[name + "_count"] = count->as_number();
  }
  return samples;
}

Result<MetricsSamples> ParseMetricsPrometheusText(std::string_view text) {
  MetricsSamples samples;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty() || line[0] == '#') continue;
    // `name{labels} value` or `name value`; the value is the suffix
    // after the last space (label values never contain spaces here).
    size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0 ||
        space + 1 >= line.size()) {
      return Status(InvalidArgument(
          StrCat("prometheus text: malformed sample line: ", line)));
    }
    std::string name(line.substr(0, space));
    std::string value_str(line.substr(space + 1));
    char* end = nullptr;
    double v = std::strtod(value_str.c_str(), &end);
    if (end != value_str.c_str() + value_str.size()) {
      return Status(InvalidArgument(
          StrCat("prometheus text: malformed value: ", line)));
    }
    samples[name] = v;
  }
  return samples;
}

void CountBudgetRejections(MetricsRegistry* metrics, uint64_t n) {
  if (metrics == nullptr || n == 0) return;
  Counter* c =
      metrics->GetCounter("pathlog_budget_rejections_total",
                          "operations rejected by a resource budget");
  if (c != nullptr) c->Inc(n);
}

}  // namespace pathlog
