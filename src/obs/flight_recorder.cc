#include "obs/flight_recorder.h"

#include <algorithm>

#include "obs/json.h"

namespace pathlog {

namespace {

/// Acquires a slot's try-lock, spinning at most `spins` times.
bool TryLock(std::atomic<uint32_t>* busy, int spins) {
  for (int i = 0; i < spins; ++i) {
    uint32_t expected = 0;
    if (busy->compare_exchange_strong(expected, 1,
                                      std::memory_order_acquire)) {
      return true;
    }
  }
  return false;
}

void Unlock(std::atomic<uint32_t>* busy) {
  busy->store(0, std::memory_order_release);
}

}  // namespace

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(std::make_unique<Slot[]>(capacity == 0 ? 1 : capacity)),
      epoch_ns_(SteadyNowNs()) {}

void FlightRecorder::Record(std::string_view name, std::string_view category,
                            uint64_t dur_us, std::string_view args_json) {
  const uint64_t ts = NowUs();
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % capacity_];
  // One attempt only: the slot is busy exactly when another writer
  // lapped the ring onto it or a reader is copying it — dropping this
  // event beats stalling the caller.
  if (!TryLock(&slot.busy, 1)) return;
  slot.event.seq = seq;
  slot.event.ts_us = ts;
  slot.event.dur_us = dur_us;
  slot.event.name.assign(name);
  slot.event.category.assign(category);
  slot.event.args_json.assign(args_json);
  slot.filled.store(true, std::memory_order_relaxed);
  Unlock(&slot.busy);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    if (!slot.filled.load(std::memory_order_relaxed)) continue;
    if (!TryLock(&slot.busy, 64)) continue;  // being overwritten: skip
    out.push_back(slot.event);
    Unlock(&slot.busy);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::string FlightRecorder::ToTraceJson() const {
  std::vector<FlightEvent> events = Snapshot();
  // Chrome trace viewers sort by ts; rendering in ts order keeps the
  // file human-scannable too.
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const FlightEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, e.name);
    out += ",\"cat\":";
    AppendJsonString(&out, e.category);
    if (e.dur_us == 0) {
      out += ",\"ph\":\"i\"";
    } else {
      out += ",\"ph\":\"X\",\"dur\":";
      AppendJsonNumber(&out, static_cast<double>(e.dur_us));
    }
    out += ",\"ts\":";
    AppendJsonNumber(&out, static_cast<double>(e.ts_us));
    out += ",\"pid\":1,\"tid\":1";
    if (e.dur_us == 0) out += ",\"s\":\"t\"";
    if (!e.args_json.empty()) {
      out += ",\"args\":";
      out += e.args_json;
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status FlightRecorder::WriteTo(const std::string& path, FileOps* fops) const {
  if (fops == nullptr) fops = DefaultFileOps();
  return WriteFileAtomic(fops, path, ToTraceJson());
}

void FlightRecorder::Reset() {
  for (size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    if (!TryLock(&slot.busy, 1024)) continue;
    slot.filled.store(false, std::memory_order_relaxed);
    slot.event = FlightEvent{};
    Unlock(&slot.busy);
  }
  next_.store(0, std::memory_order_relaxed);
  epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
}

}  // namespace pathlog
