#include "obs/trace.h"

#include "obs/json.h"

namespace pathlog {

// Timestamps are taken under mu_ (NowUs reads epoch_, which Reset()
// rewrites), which also guarantees buffer order matches timestamp
// order within one tracer.

void Tracer::Begin(std::string_view name, std::string_view category,
                   std::string_view args_json) {
  MutexLock lock(&mu_);
  events_.push_back(TraceEvent{'B', std::string(name), std::string(category),
                               NowUs(), std::string(args_json)});
  open_.push_back(std::string(name));
}

void Tracer::End() {
  MutexLock lock(&mu_);
  if (open_.empty()) return;  // unmatched E: drop rather than corrupt
  events_.push_back(TraceEvent{'E', open_.back(), "pathlog", NowUs(), ""});
  open_.pop_back();
}

void Tracer::Instant(std::string_view name, std::string_view category,
                     std::string_view args_json) {
  MutexLock lock(&mu_);
  events_.push_back(TraceEvent{'i', std::string(name), std::string(category),
                               NowUs(), std::string(args_json)});
}

size_t Tracer::event_count() const {
  MutexLock lock(&mu_);
  return events_.size();
}

int Tracer::open_spans() const {
  MutexLock lock(&mu_);
  return static_cast<int>(open_.size());
}

std::string Tracer::ToJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto append = [&](const TraceEvent& e) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, e.name);
    out += ",\"cat\":";
    AppendJsonString(&out, e.category);
    out += ",\"ph\":";
    AppendJsonString(&out, std::string_view(&e.phase, 1));
    out += ",\"ts\":";
    AppendJsonNumber(&out, static_cast<double>(e.ts_us));
    out += ",\"pid\":1,\"tid\":1";
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (!e.args_json.empty()) {
      out += ",\"args\":";
      out += e.args_json;
    }
    out += "}";
  };
  for (const TraceEvent& e : events_) append(e);
  // Close any spans still open (e.g. a trace dumped mid-run) so the
  // file stays balanced and loadable.
  const uint64_t now = NowUs();
  for (size_t i = open_.size(); i > 0; --i) {
    append(TraceEvent{'E', open_[i - 1], "pathlog", now, ""});
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status Tracer::WriteTo(const std::string& path, FileOps* fops) const {
  if (fops == nullptr) fops = DefaultFileOps();
  return WriteFileAtomic(fops, path, ToJson());
}

void Tracer::Reset() {
  MutexLock lock(&mu_);
  events_.clear();
  open_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

}  // namespace pathlog
