// QueryLog: a structured, per-query JSONL log for serving forensics.
//
// Every query (conjunctive `?-`, Eval, Holds) appends exactly one JSON
// object on its own line: wall latency, answer rows, the evaluation
// strategy, a fingerprint hash of the planner's chosen literal order
// (the same hash ExplainQuery prints, so a slow record links straight
// to its plan), budget spend per dimension, index-route counters, and
// a slow-query flag set above a configurable threshold. The schema is
// documented in docs/IMPLEMENTATION.md ("Serving diagnostics") and
// validated by ci/check.sh.
//
// Records are written with one Append() call each — an atomic append
// at these sizes — through an injectable FileOps, and the segment
// rotates (current file renamed to `<path>.1`, fresh file opened) once
// it exceeds `rotate_bytes`. The last few records are also kept in an
// in-memory ring so the stats server's /querylogz endpoint serves
// recent activity without re-reading the file.
//
// Append() takes a mutex: query logging happens once per query, never
// per tuple, so this is far off the evaluation hot path (the paired
// bench gate in ci/bench_smoke.sh holds the enabled/disabled ratio to
// 5%).

#ifndef PATHLOG_OBS_QUERY_LOG_H_
#define PATHLOG_OBS_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.h"
#include "base/result.h"
#include "base/thread_annotations.h"
#include "store/file_ops.h"

namespace pathlog {

struct QueryLogOptions {
  /// JSONL output path. Empty = in-memory only (the recent ring still
  /// fills, nothing reaches disk) — used by tests and /querylogz-only
  /// setups.
  std::string path;
  /// Records with latency above this are flagged `"slow":true`.
  double slow_query_ms = 100.0;
  /// Rotate (rename to `<path>.1`, reopen fresh) past this many bytes;
  /// 0 = never rotate.
  uint64_t rotate_bytes = 16ull << 20;
  /// fsync after every record. Off by default: the query log is a
  /// diagnostic stream, not a ledger.
  bool sync_every_record = false;
  /// Recent records kept in memory for /querylogz and \querylog.
  size_t recent_capacity = 128;
  /// Injectable file system; nullptr = the real one.
  FileOps* fops = nullptr;
};

/// One query's structured record. `budget_*` report the spend the
/// operation's ResourceBudget observed (0 when no budget is attached,
/// except store_bytes which is always the store's footprint).
struct QueryLogRecord {
  uint64_t ts_ms = 0;            ///< unix epoch milliseconds
  std::string kind;              ///< "query" | "eval" | "holds"
  std::string query;             ///< printed form
  std::string status = "ok";     ///< "ok" or the error code name
  double latency_ms = 0;
  uint64_t rows = 0;             ///< answer rows / oids / 0|1 for holds
  std::string strategy;          ///< engine strategy name
  std::string plan_fingerprint;  ///< hex CRC32 of the planned order
  uint64_t budget_derivations = 0;
  uint64_t budget_store_bytes = 0;
  double budget_wall_ms = 0;
  bool budget_rejected = false;
  uint64_t route_inverted_probes = 0;
  uint64_t route_extent_scans = 0;
  uint64_t route_universe_scans = 0;
  uint64_t route_duplicates_suppressed = 0;
  bool slow = false;             ///< latency_ms > options.slow_query_ms
};

/// Serialises one record as a single-line JSON object (no trailing
/// newline). Stable key order; the CI schema validator and the
/// /querylogz endpoint both rely on this shape.
std::string QueryLogRecordToJson(const QueryLogRecord& rec);

class QueryLog {
 public:
  explicit QueryLog(QueryLogOptions options);
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;
  ~QueryLog();

  /// Stamps the slow flag, serialises, appends one line to the file
  /// (rotating first if the segment is over budget), and remembers the
  /// line in the recent ring. The first failing file operation latches:
  /// later appends keep filling the ring but stop touching the file.
  Status Append(QueryLogRecord rec);

  /// The most recent `n` serialised records, oldest first.
  std::vector<std::string> Recent(size_t n = 50) const;

  const QueryLogOptions& options() const { return options_; }
  const std::string& path() const { return options_.path; }
  uint64_t records_written() const;
  uint64_t rotations() const;
  /// First file error, or OK. Latched until destruction.
  Status file_error() const;

 private:
  Status EnsureOpenLocked() REQUIRES(mu_);
  Status AppendLineLocked(const std::string& line) REQUIRES(mu_);

  QueryLogOptions options_;  ///< immutable after construction
  FileOps* fops_;  ///< options_.fops or DefaultFileOps()

  // One leaf mutex covers the file, its rotation state, and the recent
  // ring, so a rotation (close → rename → reopen) is atomic with
  // respect to concurrent Append()s and /querylogz reads.
  mutable Mutex mu_;
  std::unique_ptr<FileOps::WritableFile> file_ GUARDED_BY(mu_);
  uint64_t file_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t records_written_ GUARDED_BY(mu_) = 0;
  uint64_t rotations_ GUARDED_BY(mu_) = 0;
  Status file_error_ GUARDED_BY(mu_);
  std::deque<std::string> recent_ GUARDED_BY(mu_);
};

}  // namespace pathlog

#endif  // PATHLOG_OBS_QUERY_LOG_H_
