#include "obs/query_log.h"

#include <algorithm>
#include <utility>

#include "base/strings.h"
#include "obs/json.h"

namespace pathlog {

std::string QueryLogRecordToJson(const QueryLogRecord& rec) {
  std::string out = "{\"ts_ms\":";
  AppendJsonNumber(&out, static_cast<double>(rec.ts_ms));
  out += ",\"kind\":";
  AppendJsonString(&out, rec.kind);
  out += ",\"query\":";
  AppendJsonString(&out, rec.query);
  out += ",\"status\":";
  AppendJsonString(&out, rec.status);
  out += ",\"latency_ms\":";
  AppendJsonNumber(&out, rec.latency_ms);
  out += ",\"rows\":";
  AppendJsonNumber(&out, static_cast<double>(rec.rows));
  out += ",\"strategy\":";
  AppendJsonString(&out, rec.strategy);
  out += ",\"plan_fingerprint\":";
  AppendJsonString(&out, rec.plan_fingerprint);
  out += ",\"slow\":";
  out += rec.slow ? "true" : "false";
  out += ",\"budget\":{\"derivations\":";
  AppendJsonNumber(&out, static_cast<double>(rec.budget_derivations));
  out += ",\"store_bytes\":";
  AppendJsonNumber(&out, static_cast<double>(rec.budget_store_bytes));
  out += ",\"wall_ms\":";
  AppendJsonNumber(&out, rec.budget_wall_ms);
  out += ",\"rejected\":";
  out += rec.budget_rejected ? "true" : "false";
  out += "},\"routes\":{\"inverted_probes\":";
  AppendJsonNumber(&out, static_cast<double>(rec.route_inverted_probes));
  out += ",\"extent_scans\":";
  AppendJsonNumber(&out, static_cast<double>(rec.route_extent_scans));
  out += ",\"universe_scans\":";
  AppendJsonNumber(&out, static_cast<double>(rec.route_universe_scans));
  out += ",\"duplicates_suppressed\":";
  AppendJsonNumber(&out,
                   static_cast<double>(rec.route_duplicates_suppressed));
  out += "}}";
  return out;
}

QueryLog::QueryLog(QueryLogOptions options)
    : options_(std::move(options)),
      fops_(options_.fops != nullptr ? options_.fops : DefaultFileOps()) {}

QueryLog::~QueryLog() {
  MutexLock lock(&mu_);
  if (file_ != nullptr) (void)file_->Close();
}

Status QueryLog::EnsureOpenLocked() {
  if (file_ != nullptr) return Status::OK();
  Result<std::unique_ptr<FileOps::WritableFile>> file =
      fops_->OpenForWrite(options_.path, /*truncate=*/false);
  if (!file.ok()) return file.status();
  file_ = std::move(*file);
  return Status::OK();
}

Status QueryLog::AppendLineLocked(const std::string& line) {
  if (options_.rotate_bytes > 0 && file_ != nullptr &&
      file_bytes_ + line.size() > options_.rotate_bytes &&
      file_bytes_ > 0) {
    PATHLOG_RETURN_IF_ERROR(file_->Close());
    file_.reset();
    PATHLOG_RETURN_IF_ERROR(
        fops_->Rename(options_.path, options_.path + ".1"));
    file_bytes_ = 0;
    ++rotations_;
  }
  PATHLOG_RETURN_IF_ERROR(EnsureOpenLocked());
  PATHLOG_RETURN_IF_ERROR(file_->Append(line));
  file_bytes_ += line.size();
  if (options_.sync_every_record) {
    PATHLOG_RETURN_IF_ERROR(file_->Sync());
  }
  return Status::OK();
}

Status QueryLog::Append(QueryLogRecord rec) {
  rec.slow = rec.latency_ms > options_.slow_query_ms;
  std::string line = QueryLogRecordToJson(rec);
  line += "\n";

  MutexLock lock(&mu_);
  recent_.push_back(line.substr(0, line.size() - 1));
  while (recent_.size() > options_.recent_capacity) recent_.pop_front();
  ++records_written_;
  if (options_.path.empty() || !file_error_.ok()) return file_error_;
  Status st = AppendLineLocked(line);
  if (!st.ok()) file_error_ = st;  // latch: keep serving, stop writing
  return st;
}

std::vector<std::string> QueryLog::Recent(size_t n) const {
  MutexLock lock(&mu_);
  const size_t count = std::min(n, recent_.size());
  return std::vector<std::string>(recent_.end() - count, recent_.end());
}

uint64_t QueryLog::records_written() const {
  MutexLock lock(&mu_);
  return records_written_;
}

uint64_t QueryLog::rotations() const {
  MutexLock lock(&mu_);
  return rotations_;
}

Status QueryLog::file_error() const {
  MutexLock lock(&mu_);
  return file_error_;
}

}  // namespace pathlog
