// ObsSinks: the observability layer's plumbing type.
//
// A bundle of three optional, borrowed sinks — metrics registry,
// tracer, profiler — threaded through EngineOptions, TriggerOptions,
// and DatabaseOptions into every subsystem. All null by default: the
// disabled cost at an instrumentation site is one pointer test. The
// caller owns the sink objects and keeps them alive for as long as
// any component holds the ObsSinks (the shell and benches own them
// for the session; tests own them on the stack).
//
// This header is deliberately tiny (forward declarations only) so the
// option structs that embed ObsSinks do not drag the exporters into
// every translation unit.

#ifndef PATHLOG_OBS_OBS_H_
#define PATHLOG_OBS_OBS_H_

namespace pathlog {

class MetricsRegistry;
class Tracer;
class Profiler;
class FlightRecorder;
class QueryLog;

struct ObsSinks {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  Profiler* profiler = nullptr;
  /// Always-on ring of recent spans/events, auto-dumped on incidents
  /// (obs/flight_recorder.h).
  FlightRecorder* flight = nullptr;
  /// Per-query structured JSONL log (obs/query_log.h).
  QueryLog* query_log = nullptr;

  bool enabled() const {
    return metrics != nullptr || tracer != nullptr || profiler != nullptr ||
           flight != nullptr || query_log != nullptr;
  }
};

}  // namespace pathlog

#endif  // PATHLOG_OBS_OBS_H_
