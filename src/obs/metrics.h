// MetricsRegistry: named counters, gauges, and fixed-bucket
// histograms with cheap thread-safe increments.
//
// Design constraints, in order:
//   1. Disabled must be one branch: every instrumentation site holds a
//      Counter*/Histogram* (or a MetricsRegistry* that may be null)
//      and does nothing when it is null. No locks, no lookups on the
//      hot path.
//   2. Increments are lock-free: counters and histogram buckets are
//      std::atomic with relaxed ordering (the exporters take a
//      snapshot; exact cross-metric consistency is not promised).
//   3. Registration is rare and takes a mutex; Get* returns a stable
//      pointer for the registry's lifetime, so callers cache it.
//
// Export formats:
//   ToJson()            {"counters":{...},"gauges":{...},
//                        "histograms":{name:{buckets,sum,count}}}
//   ToPrometheusText()  the Prometheus text exposition format
//                       (# HELP/# TYPE lines, histogram _bucket/_sum/
//                       _count samples with le labels).
// Both round-trip through the Parse* helpers below — the tests and CI
// gates rely on that.

#ifndef PATHLOG_OBS_METRICS_H_
#define PATHLOG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/mutex.h"
#include "base/result.h"
#include "base/thread_annotations.h"

namespace pathlog {

/// A monotonically increasing count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  // lock-free: a single relaxed atomic. Inc/value never block; readers
  // may observe a count that is mid-update relative to other metrics
  // (exporters snapshot, exact cross-metric consistency is not
  // promised).
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (object counts, watermarks).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  // lock-free: Set is one relaxed store; Add is a CAS loop over the
  // same atomic, so concurrent Adds never lose an increment.
  std::atomic<double> value_{0};
};

/// A fixed-bucket histogram: `bounds` are the inclusive upper bounds
/// of the finite buckets; one implicit +Inf bucket catches the rest.
/// Observe() is lock-free (binary search over the immutable bounds,
/// one atomic add, one CAS loop for the sum).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the +Inf bucket).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t total_count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Interpolated quantile estimate over the fixed buckets, the same
  /// way Prometheus' histogram_quantile() computes it: find the bucket
  /// holding the q-th ranked observation and interpolate linearly
  /// inside it (lower edge = previous bound, or 0 for the first
  /// bucket). A rank landing in the +Inf bucket returns the highest
  /// finite bound. Returns 0 when the histogram is empty. `q` is
  /// clamped to [0, 1].
  double Quantile(double q) const;

 private:
  // lock-free: bounds_ is immutable after construction; each bucket,
  // the count, and the sum are independent relaxed atomics (the sum is
  // a CAS loop). A concurrent export may observe a bucket increment
  // before the matching count/sum update — each series is individually
  // exact once writers quiesce, which is what the TSan hammer test
  // asserts (exported count == sum of per-thread observations).
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Default histogram bounds for durations in milliseconds: sub-ms to
/// minutes in roughly 4x steps.
std::vector<double> DefaultLatencyBoundsMs();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric. The returned pointer is valid
  /// for the registry's lifetime. A name must keep one metric kind for
  /// the registry's whole life; asking for it as another kind returns
  /// nullptr (callers treat that exactly like "metrics disabled").
  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds,
                          std::string_view help = "");

  /// One JSON object holding every registered metric (see header
  /// comment for the shape). Stable key order (lexicographic).
  std::string ToJson() const;

  /// Prometheus text exposition format, one family per metric.
  std::string ToPrometheusText() const;

  /// Every registered histogram, name-sorted. Pointers are valid for
  /// the registry's lifetime — this powers quantile summaries in the
  /// shell's \metrics and the stats server's /statusz.
  std::vector<std::pair<std::string, const Histogram*>> HistogramEntries()
      const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_ GUARDED_BY(mu_);
};

/// Flattened sample values of an exported registry: counters and
/// gauges under their own name; histograms contribute
/// `name_bucket{le="…"}`, `name_sum`, and `name_count` entries —
/// exactly the Prometheus sample names, so both exporters flatten to
/// the same map and round-trip equality is a simple map compare.
using MetricsSamples = std::map<std::string, double>;

/// Parses the output of MetricsRegistry::ToJson().
Result<MetricsSamples> ParseMetricsJson(std::string_view json);

/// Parses the output of MetricsRegistry::ToPrometheusText(). Ignores
/// comment lines; kInvalidArgument on malformed sample lines.
Result<MetricsSamples> ParseMetricsPrometheusText(std::string_view text);

/// Bumps pathlog_budget_rejections_total by n. One definition point so
/// the engine, trigger engine, and database all feed the same series.
/// No-op when metrics is null or n is 0.
void CountBudgetRejections(MetricsRegistry* metrics, uint64_t n);

}  // namespace pathlog

#endif  // PATHLOG_OBS_METRICS_H_
