#!/usr/bin/env bash
# Bench smoke gate: builds the two headline benchmarks and runs their
# bound-target rows at small scale, archiving machine-readable JSON
# (one BENCH_<name>.json per binary) for trend tracking.
#
#   ci/bench_smoke.sh [build-dir] [out-dir]
#
# The build directory defaults to build-bench (Release — benchmark
# numbers from a Debug tree are meaningless); JSON lands in out-dir
# (default: bench-results/).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"
OUT_DIR="${2:-bench-results}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target bench_nested_refs bench_second_dimension bench_store bench_tc \
  bench_planner

mkdir -p "${OUT_DIR}"

# The BoundTarget rows pair an indexed run with its NoIndex twin; the
# IndexAgreementCheck rows abort the binary if the two evaluation
# modes ever disagree, so a clean exit doubles as a correctness probe.
"${BUILD_DIR}/bench/bench_nested_refs" \
  --benchmark_filter='BoundTarget|IndexAgreementCheck' \
  --benchmark_min_time=0.05 \
  --benchmark_out="${OUT_DIR}/BENCH_nested_refs.json" \
  --benchmark_out_format=json

"${BUILD_DIR}/bench/bench_second_dimension" \
  --benchmark_filter='BoundTarget|IndexAgreementCheck' \
  --benchmark_min_time=0.05 \
  --benchmark_out="${OUT_DIR}/BENCH_second_dimension.json" \
  --benchmark_out_format=json

# Durability rows: WAL append throughput and recovery (scan + replay).
"${BUILD_DIR}/bench/bench_store" \
  --benchmark_filter='Wal' \
  --benchmark_min_time=0.05 \
  --benchmark_out="${OUT_DIR}/BENCH_store.json" \
  --benchmark_out_format=json

# Overhead gates: the ObsOn/ObsOff and BudgetChecksOn/Off twins run
# the same materialisation with the metrics registry / a never-tripping
# ResourceBudget attached vs detached, and report absolute times for
# trend tracking. The 5% agreement gates run on the *Paired rows
# instead: a shared CI core drifts faster than two separately-timed
# twin blocks run, so only a paired measurement (both variants timed
# back-to-back inside one iteration, ABBA order, thread-CPU clock)
# can resolve 5% reliably. The enabled run also exports its metrics
# registry as JSON next to the benchmark JSON.
PATHLOG_METRICS_OUT="${OUT_DIR}/METRICS_tc.json" \
  "${BUILD_DIR}/bench/bench_tc" \
  --benchmark_filter='ObsOn|ObsOff|ObsPaired|DiagPaired|BudgetChecks|LockPaired|ConcurrentReaders' \
  --benchmark_min_time=0.05 \
  --benchmark_repetitions=7 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_out="${OUT_DIR}/BENCH_tc.json" \
  --benchmark_out_format=json

python3 -m json.tool "${OUT_DIR}/METRICS_tc.json" >/dev/null

# Instrumentation is per-run (never per-tuple) and budget polls sit at
# rule-evaluation boundaries (and every ~1k enumeration steps), so the
# true overhead of either is far below 5%; the gates catch obs or
# governance checks creeping into the evaluation hot loop, and a
# disabled path that got *slower* than the enabled one (the fast path
# is gone). The median paired ratio across repetitions sheds the
# occasional preempted repetition that min-of-N absolute times cannot.
python3 - "${OUT_DIR}/BENCH_tc.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)

def iters(pred):
    return [b for b in data["benchmarks"]
            if b.get("run_type") == "iteration" and pred(b["name"])]

def best(suffix):
    times = [b["cpu_time"] for b in iters(lambda n: suffix in n)]
    if not times:
        sys.exit(f"overhead gate: no repetitions for {suffix} in "
                 f"{sys.argv[1]}")
    return min(times)

def paired_ratio(name):
    ratios = sorted(b["on_off_ratio"]
                    for b in iters(lambda n: name in n))
    if not ratios:
        sys.exit(f"overhead gate: no {name} rows in {sys.argv[1]}")
    return ratios[len(ratios) // 2]

# Twin bests are informational (absolute cost at a glance); the pass /
# fail decision uses the drift-immune paired ratios only.
for twin in ("ObsOff", "ObsOn", "BudgetChecksOff", "BudgetChecksOn"):
    print(f"overhead gate: {twin} best {best(twin):.3f} ms cpu")

failed = False
for name, what, crept, gate_below in (
    ("ObsPaired", "obs",
     "instrumentation has crept into the evaluation hot loop", True),
    ("BudgetChecksPaired", "budget",
     "governance checks have crept into the evaluation hot loop", True),
    ("DiagPaired", "serving diagnostics",
     "the stats-server sinks (flight recorder / query log) have crept "
     "into the evaluation hot loop", True),
    # No lower gate for the lock twin: guard-on and guard-off run
    # identical code apart from the shared_mutex ops, so on-faster-
    # than-off is timer noise, not a lost fast path.
    ("LockPaired", "the concurrency guard",
     "the Database snapshot guard costs an uncontended reader >5% — "
     "the shared-lock fast path has regressed", False),
):
    ratio = paired_ratio(name)
    print(f"overhead gate: {name} median on/off ratio {ratio:.3f}")
    if ratio > 1.05:
        print(f"overhead gate FAILED: enabling {what} costs >5% — {crept}")
        failed = True
    if gate_below and ratio < 1 / 1.05:
        print(f"overhead gate FAILED: the {what}-disabled path is >5% "
              f"slower than the enabled path — the fast path is gone")
        failed = True
# Concurrent-reader scaling is informational: thread counts beyond the
# CI box's free cores make a hard gate flaky, but the per-thread-count
# throughput belongs in the log (and in history.jsonl) for trend eyes.
for b in iters(lambda n: "ConcurrentReaders" in n):
    ips = b.get("items_per_second")
    if ips is not None:
        print(f"concurrent readers: {b['name']}: {ips:,.0f} lookups/s")

if failed:
    sys.exit(1)
EOF

# Planner skew gate: the SkewAware/SkewBlind twins evaluate the same
# hot-bucket query in the order each statistics mode picks. The
# skew-aware plan drives the small resident extent instead of the hot
# city bucket, so it must never be slower than the skew-blind plan;
# both twins abort the binary if their answer counts diverge, so a
# clean exit doubles as a correctness probe.
"${BUILD_DIR}/bench/bench_planner" \
  --benchmark_filter='SkewAware|SkewBlind' \
  --benchmark_min_time=0.05 \
  --benchmark_repetitions=3 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_out="${OUT_DIR}/BENCH_planner.json" \
  --benchmark_out_format=json

python3 - "${OUT_DIR}/BENCH_planner.json" <<'EOF3'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)

# Best-of-repetitions per (twin, scale): min-of-N sheds scheduler
# noise. The skew-aware order must be at least as fast as the
# skew-blind one at every scale (10% head-room for timer jitter).
best = {}
for b in data["benchmarks"]:
    if b.get("run_type") != "iteration":
        continue
    name = b["name"].split("/")  # BM_Planner_SkewAware/2000[/repeat]
    key = (name[0], name[1])
    best[key] = min(best.get(key, float("inf")), b["cpu_time"])

scales = sorted({k[1] for k in best}, key=int)
if not scales:
    sys.exit("planner skew gate: no SkewAware/SkewBlind rows found")
failed = False
for scale in scales:
    aware = best.get(("BM_Planner_SkewAware", scale))
    blind = best.get(("BM_Planner_SkewBlind", scale))
    if aware is None or blind is None:
        sys.exit(f"planner skew gate: missing twin at scale {scale}")
    ratio = aware / blind if blind > 0 else float("inf")
    print(f"planner skew gate: scale {scale}: aware best {aware:.0f}, "
          f"blind best {blind:.0f}, aware/blind {ratio:.3f}")
    if aware > blind * 1.10:
        failed = True
if failed:
    sys.exit("planner skew gate FAILED: the skew-aware plan is slower "
             "than the skew-blind plan on the hot-bucket workload — "
             "the heavy-hitter statistics are misleading the planner")
EOF3

# Build-type gate: every BENCH_*.json must carry the
# pathlog_build_type custom context key (stamped by bench/bench_main.cc
# from the NDEBUG state of the code under test) and it must say
# "release". The stock library_build_type key is useless here — it
# describes the distro's libbenchmark build (always "debug"), not ours.
python3 - "${OUT_DIR}"/BENCH_*.json <<'EOF2'
import json, sys

bad = []
for path in sys.argv[1:]:
    with open(path) as f:
        ctx = json.load(f).get("context", {})
    stamped = ctx.get("pathlog_build_type")
    if stamped != "release":
        bad.append(f"{path}: pathlog_build_type={stamped!r}")
    else:
        print(f"build-type gate: {path}: release")
if bad:
    sys.exit("build-type gate FAILED (benchmark numbers from a "
             "non-release tree are meaningless):\n" + "\n".join(bad))
EOF2

# Trend history: one JSONL row per headline benchmark per run, keyed
# by commit sha. The BENCH_*.json files above are overwritten each run
# and gitignored; history.jsonl is append-only and tracked, so the
# per-commit throughput trend survives in the repo itself.
GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
GIT_SHA="${GIT_SHA}" python3 - "${OUT_DIR}" "${OUT_DIR}"/BENCH_*.json <<'EOF4'
import datetime, json, os, sys

out_dir, paths = sys.argv[1], sys.argv[2:]
utc = datetime.datetime.now(datetime.timezone.utc).isoformat(
    timespec="seconds")
sha = os.environ.get("GIT_SHA", "unknown")
rows = []
for path in paths:
    with open(path) as f:
        data = json.load(f)
    build = data.get("context", {}).get("pathlog_build_type", "unknown")
    # Best-of-repetitions throughput per benchmark row: min-of-N times
    # sheds scheduler noise, so max-of-N items/s is the matching pick.
    best = {}
    for b in data["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        ips = b.get("items_per_second")
        if ips is None:
            continue
        best[b["name"]] = max(best.get(b["name"], 0.0), ips)
    for name, ips in sorted(best.items()):
        rows.append({"git_sha": sha, "utc": utc, "benchmark": name,
                     "items_per_second": ips,
                     "pathlog_build_type": build})
history = os.path.join(out_dir, "history.jsonl")
with open(history, "a") as f:
    for row in rows:
        f.write(json.dumps(row, sort_keys=True) + "\n")
print(f"bench history: appended {len(rows)} rows to {history}")
EOF4

echo "ci/bench_smoke.sh: benchmark JSON written to ${OUT_DIR}/"
