#!/usr/bin/env bash
# Bench smoke gate: builds the two headline benchmarks and runs their
# bound-target rows at small scale, archiving machine-readable JSON
# (one BENCH_<name>.json per binary) for trend tracking.
#
#   ci/bench_smoke.sh [build-dir] [out-dir]
#
# The build directory defaults to build-bench (Release — benchmark
# numbers from a Debug tree are meaningless); JSON lands in out-dir
# (default: bench-results/).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"
OUT_DIR="${2:-bench-results}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target bench_nested_refs bench_second_dimension bench_store

mkdir -p "${OUT_DIR}"

# The BoundTarget rows pair an indexed run with its NoIndex twin; the
# IndexAgreementCheck rows abort the binary if the two evaluation
# modes ever disagree, so a clean exit doubles as a correctness probe.
"${BUILD_DIR}/bench/bench_nested_refs" \
  --benchmark_filter='BoundTarget|IndexAgreementCheck' \
  --benchmark_min_time=0.05 \
  --benchmark_out="${OUT_DIR}/BENCH_nested_refs.json" \
  --benchmark_out_format=json

"${BUILD_DIR}/bench/bench_second_dimension" \
  --benchmark_filter='BoundTarget|IndexAgreementCheck' \
  --benchmark_min_time=0.05 \
  --benchmark_out="${OUT_DIR}/BENCH_second_dimension.json" \
  --benchmark_out_format=json

# Durability rows: WAL append throughput and recovery (scan + replay).
"${BUILD_DIR}/bench/bench_store" \
  --benchmark_filter='Wal' \
  --benchmark_min_time=0.05 \
  --benchmark_out="${OUT_DIR}/BENCH_store.json" \
  --benchmark_out_format=json

echo "ci/bench_smoke.sh: benchmark JSON written to ${OUT_DIR}/"
