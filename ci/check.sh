#!/usr/bin/env bash
# CI gate: one combined ASan+UBSan Debug build, the full test suite
# under both sanitizers, and an analyzer-enabled lint pass over every
# shipped example and workload scenario program.
#
#   ci/check.sh [build-dir]
#
# The build directory defaults to build-asan (kept separate from the
# regular build/ so the sanitizer flags never leak into it).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

# -fno-sanitize-recover=all already makes any UB report fatal; the
# options below make the report actionable (symbolised stack) and keep
# ASan strict about lifetime issues the tests might otherwise miss.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_stack_use_after_return=1:strict_string_checks=1"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
  -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# The recovery torture tests run as part of ctest above, but they are
# the one gate crash-safety rests on, so run them again by name: a
# filter typo or discovery failure must not silently skip them under
# the sanitizers.
"${BUILD_DIR}/tests/durability_test" \
  --gtest_filter='DurabilityTortureTest.*'

# Same reasoning for the chaos harness: the scripted fault schedules
# (transient retries, ENOSPC windows, degraded-mode entry/exit,
# crash-mid-commit) are the gate for resource governance and degraded
# serving, so run the whole binary by name under the sanitizers.
"${BUILD_DIR}/tests/chaos_test"

# Shipped programs must be lint-clean with the semantic analyses
# (PL014-PL019) enabled: pathlog_lint exits 1 on any diagnostic,
# warning or error, and that fails the gate.
"${BUILD_DIR}/tools/pathlog_lint" --analyze \
  examples/programs/*.plg src/workload/programs/*.plg
"${BUILD_DIR}/tools/pathlog_lint" --analyze --json \
  examples/programs/*.plg src/workload/programs/*.plg >/dev/null

# Observability smoke: a traced shell session (load, materialise,
# query) must emit valid chrome://tracing JSON and valid metrics JSON.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "${OBS_TMP}"' EXIT
printf '%s\n' \
  'a[kids->>{b}].' \
  'b[kids->>{c}].' \
  'X[desc->>{Y}] <- X[kids->>{Y}].' \
  'X[desc->>{Y}] <- X..desc[kids->>{Y}].' \
  '?- a[desc->>{D}].' \
  '\quit' | \
  "${BUILD_DIR}/tools/pathlog" \
    --trace-out="${OBS_TMP}/trace.json" \
    --metrics-out="${OBS_TMP}/metrics.json" >/dev/null
python3 -m json.tool "${OBS_TMP}/trace.json" >/dev/null
python3 -m json.tool "${OBS_TMP}/metrics.json" >/dev/null

echo "ci/check.sh: all checks passed"
