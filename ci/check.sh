#!/usr/bin/env bash
# CI gate: one combined ASan+UBSan Debug build, the full test suite
# under both sanitizers, and an analyzer-enabled lint pass over every
# shipped example and workload scenario program.
#
#   ci/check.sh [build-dir]
#
# The build directory defaults to build-asan (kept separate from the
# regular build/ so the sanitizer flags never leak into it).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

# Lock-discipline lint: every mutex member in a src/ header must have a
# GUARDED_BY peer and every atomic a `// lock-free:` contract comment.
# Structural, compiler-independent, and cheap — run it first.
python3 tools/lock_lint.py

# Clang thread-safety analysis over the annotated serving core. The
# annotations in base/thread_annotations.h are no-ops under GCC, so
# this gate only has teeth where clang exists; skipping silently would
# hide a hole in CI, so say so out loud.
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety"
  cmake --build build-tsa -j "${JOBS}" \
    --target pathlog pathlog_shell pathlog_lint
else
  echo "ci/check.sh: clang++ not found; skipping -Wthread-safety build" \
    "(annotations still lint-checked by tools/lock_lint.py)" >&2
fi

# -fno-sanitize-recover=all already makes any UB report fatal; the
# options below make the report actionable (symbolised stack) and keep
# ASan strict about lifetime issues the tests might otherwise miss.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_stack_use_after_return=1:strict_string_checks=1"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
  -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# The recovery torture tests run as part of ctest above, but they are
# the one gate crash-safety rests on, so run them again by name: a
# filter typo or discovery failure must not silently skip them under
# the sanitizers.
"${BUILD_DIR}/tests/durability_test" \
  --gtest_filter='DurabilityTortureTest.*'

# Same reasoning for the chaos harness: the scripted fault schedules
# (transient retries, ENOSPC windows, degraded-mode entry/exit,
# crash-mid-commit) are the gate for resource governance and degraded
# serving, so run the whole binary by name under the sanitizers.
"${BUILD_DIR}/tests/chaos_test"

# TSan gate for the concurrency contract: the dedicated race suite
# (readers vs writer with checkpoints, degrade/heal under concurrent
# scrapes, flight-recorder span storms, query-log rotation races,
# histogram export) plus the stats-server lifecycle tests run under
# ThreadSanitizer. halt_on_error makes the first report fatal — races
# get fixed, not suppressed.
TSAN_BUILD_DIR="build-tsan"
TSAN_FLAGS="-fsanitize=thread"
cmake -B "${TSAN_BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="${TSAN_FLAGS}" \
  -DCMAKE_EXE_LINKER_FLAGS="${TSAN_FLAGS}"
cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" \
  --target concurrency_test stats_server_test
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
  "${TSAN_BUILD_DIR}/tests/concurrency_test"
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
  "${TSAN_BUILD_DIR}/tests/stats_server_test"

# Shipped programs must be lint-clean with the semantic analyses
# (PL014-PL019) enabled: pathlog_lint exits 1 on any diagnostic,
# warning or error, and that fails the gate.
"${BUILD_DIR}/tools/pathlog_lint" --analyze \
  examples/programs/*.plg src/workload/programs/*.plg
"${BUILD_DIR}/tools/pathlog_lint" --analyze --json \
  examples/programs/*.plg src/workload/programs/*.plg >/dev/null

# Observability smoke: a traced shell session (load, materialise,
# query) must emit valid chrome://tracing JSON and valid metrics JSON.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "${OBS_TMP}"' EXIT
printf '%s\n' \
  'a[kids->>{b}].' \
  'b[kids->>{c}].' \
  'X[desc->>{Y}] <- X[kids->>{Y}].' \
  'X[desc->>{Y}] <- X..desc[kids->>{Y}].' \
  '?- a[desc->>{D}].' \
  '\quit' | \
  "${BUILD_DIR}/tools/pathlog" \
    --trace-out="${OBS_TMP}/trace.json" \
    --metrics-out="${OBS_TMP}/metrics.json" >/dev/null
python3 -m json.tool "${OBS_TMP}/trace.json" >/dev/null
python3 -m json.tool "${OBS_TMP}/metrics.json" >/dev/null

# Serving-diagnostics smoke: a live shell with the embedded stats
# server (ephemeral port) and the structured query log on. Every HTTP
# endpoint must answer while the shell is still serving, and the query
# log must hold schema-valid JSONL once the session ends. stdin rides
# a fifo so the session stays open across the curl probes.
SHELL_PID=""
trap 'kill "${SHELL_PID}" 2>/dev/null || true; rm -rf "${OBS_TMP}"' EXIT
mkfifo "${OBS_TMP}/shell.in"
"${BUILD_DIR}/tools/pathlog" \
  --stats-port=0 \
  --query-log="${OBS_TMP}/query_log.jsonl" \
  < "${OBS_TMP}/shell.in" > "${OBS_TMP}/shell.out" &
SHELL_PID=$!
exec 3> "${OBS_TMP}/shell.in"
printf '%s\n' \
  'a[kids->>{b}].' \
  'b[kids->>{c}].' \
  'X[desc->>{Y}] <- X[kids->>{Y}].' \
  'X[desc->>{Y}] <- X..desc[kids->>{Y}].' \
  '?- a[desc->>{D}].' >&3

STATS_PORT=""
for _ in $(seq 100); do
  STATS_PORT="$(sed -n \
    's/.*stats server listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
    "${OBS_TMP}/shell.out" | head -n1)"
  [ -n "${STATS_PORT}" ] && break
  sleep 0.1
done
[ -n "${STATS_PORT}" ] || {
  echo "diag smoke FAILED: shell never announced a stats port" >&2
  cat "${OBS_TMP}/shell.out" >&2
  exit 1
}

for endpoint in metrics healthz varz statusz tracez querylogz; do
  curl -fsS "http://127.0.0.1:${STATS_PORT}/${endpoint}" \
    > "${OBS_TMP}/http_${endpoint}.out"
done
grep -q '^pathlog_' "${OBS_TMP}/http_metrics.out"
grep -q '^ok$' "${OBS_TMP}/http_healthz.out"
python3 -m json.tool "${OBS_TMP}/http_varz.out" >/dev/null
python3 -m json.tool "${OBS_TMP}/http_tracez.out" >/dev/null
python3 -m json.tool "${OBS_TMP}/http_querylogz.out" >/dev/null

printf '\\quit\n' >&3
exec 3>&-
wait "${SHELL_PID}"
SHELL_PID=""

python3 - "${OBS_TMP}/query_log.jsonl" <<'EOF5'
import json, sys

with open(sys.argv[1]) as f:
    lines = [l for l in f.read().splitlines() if l.strip()]
if not lines:
    sys.exit("query-log smoke FAILED: no records written")
for i, line in enumerate(lines, 1):
    rec = json.loads(line)
    for key in ("ts_ms", "latency_ms", "rows"):
        if not isinstance(rec.get(key), (int, float)):
            sys.exit(f"query-log smoke FAILED: record {i}: bad {key}")
    for key in ("kind", "query", "status", "strategy", "plan_fingerprint"):
        if not isinstance(rec.get(key), str):
            sys.exit(f"query-log smoke FAILED: record {i}: bad {key}")
    if rec["kind"] not in ("query", "eval", "holds"):
        sys.exit(f"query-log smoke FAILED: record {i}: kind={rec['kind']!r}")
    if not isinstance(rec.get("slow"), bool):
        sys.exit(f"query-log smoke FAILED: record {i}: bad slow flag")
    for key in ("budget", "routes"):
        if not isinstance(rec.get(key), dict):
            sys.exit(f"query-log smoke FAILED: record {i}: bad {key}")
print(f"query-log smoke: {len(lines)} records validated")
EOF5

echo "ci/check.sh: all checks passed"
