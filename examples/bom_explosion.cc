// Bill-of-materials explosion: a classic deductive-database workload
// expressed in PathLog — subpart closure via the generic tc operator,
// typed methods, comparison guards, and a containment check with a
// set-reference filter.
//
//   $ ./bom_explosion

#include <cstdio>
#include <cstdlib>

#include "pathlog/pathlog.h"

namespace {

void Check(const pathlog::Status& st, const char* what) {
  if (!st.ok()) {
    fprintf(stderr, "error in %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  pathlog::Database db;

  Check(db.Load(R"(
    part[subparts =>> part; unitCost => integer].

    bike : part[unitCost->900].
    bike[subparts->>{frame, wheel, drivetrain}].
    frame : part[unitCost->300].
    wheel : part[unitCost->80].
    wheel[subparts->>{rim, spoke, hub}].
    rim : part[unitCost->25].   spoke : part[unitCost->1].
    hub : part[unitCost->30].
    drivetrain : part[unitCost->200].
    drivetrain[subparts->>{chain, crank, cassette}].
    chain : part[unitCost->20]. crank : part[unitCost->90].
    cassette : part[unitCost->60].

    % generic transitive closure: subparts.tc is the full explosion
    X[(M.tc)->>{Y}] <- X[M->>{Y}].
    X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].
  )"), "load");

  // Full explosion of the bike.
  pathlog::Result<std::vector<pathlog::Oid>> all =
      db.Eval("bike..(subparts.tc)");
  Check(all.status(), "explosion");
  printf("bike explodes into %zu parts:", all->size());
  for (pathlog::Oid o : *all) printf(" %s", db.DisplayName(o).c_str());
  printf("\n\n");

  // Deep components costing 50 or more — a guard in the middle of a
  // two-dimensional path.
  pathlog::Result<pathlog::ResultSet> pricey = db.Query(
      "?- bike[(subparts.tc)->>{P}], P[unitCost->C], C.geq@(50).");
  Check(pricey.status(), "pricey query");
  printf("components costing >= 50:\n%s\n",
         pricey->ToString(db.store()).c_str());

  // Containment: is every wheel component also a bike component?
  // A set-reference filter states exactly that.
  pathlog::Result<bool> contained =
      db.Holds("bike[(subparts.tc)->>wheel..(subparts.tc)]");
  Check(contained.status(), "containment");
  printf("wheel explosion contained in bike explosion? %s\n",
         *contained ? "yes" : "no");

  // The signatures hold for every derived fact too.
  std::vector<pathlog::TypeViolation> violations;
  Check(db.TypeCheck(&violations), "type check");
  printf("type violations: %zu\n", violations.size());
  return violations.empty() ? 0 : 1;
}
