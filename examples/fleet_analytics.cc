// Fleet analytics at scale: the section-2 manager query over a
// generated company database, evaluated three ways — PathLog's single
// navigational reference, a set-at-a-time join plan, and a
// tuple-at-a-time nested loop over the decomposed flat atoms — with
// wall-clock timings, a miniature of bench/bench_manager.cc.
//
//   $ ./fleet_analytics [num_employees]   (default 5000)

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "baseline/conjunctive.h"
#include "baseline/translate.h"
#include "pathlog/pathlog.h"
#include "workload/company.h"

namespace {

void Check(const pathlog::Status& st, const char* what) {
  if (!st.ok()) {
    fprintf(stderr, "error in %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t employees = 5000;
  if (argc > 1) employees = static_cast<uint32_t>(std::atoi(argv[1]));

  pathlog::Database db;
  pathlog::CompanyConfig cfg;
  cfg.num_employees = employees;
  cfg.num_companies = std::max<uint32_t>(2, employees / 50);
  pathlog::GenerateCompany(&db.store(), cfg);
  pathlog::ObjectStore::Stats stats = db.store().ComputeStats();
  printf("fleet database: %zu objects, %zu isa + %zu scalar + %zu set "
         "facts\n\n",
         stats.objects, stats.isa_facts, stats.scalar_facts, stats.set_facts);

  const char* kSingleRef =
      "?- X:manager..vehicles[color->red]"
      ".producedBy[city->detroit; president->X].";
  const char* kDecomposed =
      "?- X:manager, X[vehicles->>{Y}], Y[color->red], Y[producedBy->P], "
      "P[city->detroit], P[president->X].";

  // 1. PathLog: one two-dimensional reference.
  auto t0 = std::chrono::steady_clock::now();
  pathlog::Result<pathlog::ResultSet> rs = db.Query(kSingleRef);
  Check(rs.status(), "PathLog query");
  size_t pathlog_answers = rs->Column("X", db.store()).size();
  double pathlog_ms = MillisSince(t0);

  // 2. Baselines over the decomposed flat atoms.
  pathlog::Result<pathlog::Query> q = pathlog::ParseQuery(kDecomposed);
  Check(q.status(), "parse");
  pathlog::Result<pathlog::FlatQuery> fq =
      pathlog::FlattenLiterals(q->body, &db.store());
  Check(fq.status(), "flatten");
  fq->select = {"X"};

  t0 = std::chrono::steady_clock::now();
  pathlog::Result<pathlog::Relation> join =
      pathlog::EvalJoinPlan(db.store(), *fq);
  Check(join.status(), "join plan");
  double join_ms = MillisSince(t0);

  t0 = std::chrono::steady_clock::now();
  pathlog::Result<pathlog::Relation> loop =
      pathlog::EvalNestedLoop(db.store(), *fq);
  Check(loop.status(), "nested loop");
  double loop_ms = MillisSince(t0);

  printf("managers with a red Detroit-built vehicle of a company they "
         "preside over:\n");
  printf("  %-34s %6zu answers  %9.3f ms\n", "PathLog (single reference)",
         pathlog_answers, pathlog_ms);
  printf("  %-34s %6zu answers  %9.3f ms\n", "baseline hash-join plan",
         join->NumRows(), join_ms);
  printf("  %-34s %6zu answers  %9.3f ms\n", "baseline nested loop",
         loop->NumRows(), loop_ms);

  if (pathlog_answers != join->NumRows() ||
      pathlog_answers != loop->NumRows()) {
    fprintf(stderr, "evaluators disagree!\n");
    return 1;
  }
  printf("\nall three evaluators agree.\n");
  return 0;
}
