// Transitive closure and generic methods (paper section 6): the
// specialised `desc` rules, then the generic `tc` operator that closes
// *any* set-valued method — methods are objects, so `kids.tc` is a
// path denoting a derived method object.
//
//   $ ./genealogy_tc

#include <cstdio>
#include <cstdlib>

#include "pathlog/pathlog.h"

namespace {

void Check(const pathlog::Status& st, const char* what) {
  if (!st.ok()) {
    fprintf(stderr, "error in %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

void PrintSet(pathlog::Database& db, const char* ref) {
  pathlog::Result<std::vector<pathlog::Oid>> r = db.Eval(ref);
  Check(r.status(), ref);
  printf("   %-22s = {", ref);
  bool first = true;
  for (pathlog::Oid o : *r) {
    printf("%s%s", first ? "" : ", ", db.DisplayName(o).c_str());
    first = false;
  }
  printf("}\n");
}

}  // namespace

int main() {
  pathlog::Database db;

  Check(db.Load(R"(
    % the paper's family
    peter[kids->>{tim,mary}].
    tim[kids->>{sally}].
    mary[kids->>{tom,paul}].

    % and a second set-valued relation to showcase genericity
    peter[mentors->>{ada}].
    ada[mentors->>{grace}].

    % specialised transitive closure (program 6.4)
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Y}] <- X..desc[kids->>{Y}].

    % generic transitive closure: M.tc names the closure of method M
    X[(M.tc)->>{Y}] <- X[M->>{Y}].
    X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].
  )"), "load");

  Check(db.Materialize(), "materialize");
  printf("materialized in %llu iteration(s), %llu derivation(s)\n\n",
         static_cast<unsigned long long>(db.engine_stats().iterations),
         static_cast<unsigned long long>(db.engine_stats().derivations));

  printf("-- specialised desc\n");
  PrintSet(db, "peter..desc");
  PrintSet(db, "mary..desc");

  printf("\n-- generic closure: kids.tc and mentors.tc\n");
  PrintSet(db, "peter..(kids.tc)");
  PrintSet(db, "peter..(mentors.tc)");

  // The paper's exact claim:
  pathlog::Result<bool> claim =
      db.Holds("peter[(kids.tc)->>{tim,mary,sally,tom,paul}]");
  Check(claim.status(), "holds");
  printf("\npeter[(kids.tc)->>{tim,mary,sally,tom,paul}] holds? %s\n",
         *claim ? "yes" : "no");

  // desc and kids.tc agree on every person.
  pathlog::Result<pathlog::ResultSet> people = db.Query("?- X[kids->>{Y}].");
  Check(people.status(), "people");
  for (const std::string& name : people->Column("X", db.store())) {
    pathlog::Result<std::vector<pathlog::Oid>> a =
        db.Eval(name + "..desc");
    pathlog::Result<std::vector<pathlog::Oid>> b =
        db.Eval(name + "..(kids.tc)");
    Check(a.status(), "desc");
    Check(b.status(), "kids.tc");
    if (*a != *b) {
      fprintf(stderr, "mismatch for %s\n", name.c_str());
      return 1;
    }
  }
  printf("specialised and generic closures agree on all persons.\n");
  return 0;
}
