// Active rules in action: a fleet monitor built from ECA triggers
// (`head <~ event, conditions.`), demonstrating the paper's claim
// (sections 1 and 7) that path expressions and molecules carry over to
// production/active rule languages unchanged.
//
//   $ ./active_monitoring

#include <cstdio>
#include <cstdlib>

#include "pathlog/pathlog.h"

namespace {

void Check(const pathlog::Status& st, const char* what) {
  if (!st.ok()) {
    fprintf(stderr, "error in %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

void ShowAlerts(pathlog::Database& db) {
  pathlog::Result<pathlog::ResultSet> rs =
      db.Query("?- ops[alerts->>{A}], A[about->V; kind->K].");
  Check(rs.status(), "alert query");
  printf("%s", rs->ToString(db.store()).c_str());
  printf("firings so far: %llu\n\n",
         static_cast<unsigned long long>(db.trigger_stats().firings));
}

}  // namespace

int main() {
  pathlog::Database db;

  // The monitor. Alert objects are *virtual*: the head spine
  // ops.alertFor@(V,kind) creates one anonymous alert object per
  // (vehicle, kind) — idempotently, because the stored fact is the
  // skolem cache.
  Check(db.Load(R"(
    % E1: gas guzzlers — an eight-cylinder automobile enters the fleet.
    ops.alertFor@(V,guzzler)[about->V; kind->guzzler]
        <~ V:automobile[cylinders->C], C.geq@(8).

    % E2: service due — an odometer reading crosses 100000.
    ops.alertFor@(V,service)[about->V; kind->service]
        <~ V[readings->>{M}], M.geq@(100000).

    % E3: cascade — a new alert lands in the ops inbox and raises the
    % vehicle's attention level.
    ops[alerts->>{A}] <~ A[about->V].
    V[attention->high] <~ A[about->V].
  )"), "load triggers");

  printf("== day 1: two vehicles arrive\n");
  Check(db.Load(R"(
    car1 : automobile[cylinders->8].
    car1[readings->>{42000}].
    car2 : automobile[cylinders->4].
    car2[readings->>{99000}].
  )"), "day 1 facts");
  Check(db.FireTriggers(), "fire 1");
  ShowAlerts(db);

  printf("== day 2: car2's odometer rolls past the service threshold\n");
  Check(db.Load("car2[readings->>{101000}]."), "day 2 facts");
  Check(db.FireTriggers(), "fire 2");
  ShowAlerts(db);

  printf("== day 3: nothing new — firing is quiescent\n");
  unsigned long long before = db.trigger_stats().firings;
  Check(db.FireTriggers(), "fire 3");
  printf("firings unchanged: %s\n\n",
         before == db.trigger_stats().firings ? "yes" : "NO (bug)");

  // The cascade from E3 marked alerted vehicles.
  pathlog::Result<pathlog::ResultSet> hot =
      db.Query("?- V:automobile[attention->high].");
  Check(hot.status(), "attention query");
  printf("vehicles needing attention:\n%s",
         hot->ToString(db.store()).c_str());
  return 0;
}
