// Virtual objects as views (paper sections 2 and 6, after [AB91]):
// restructuring person attributes into address objects, deriving
// virtual bosses, and type-checking the results through signatures.
//
//   $ ./company_views

#include <cstdio>
#include <cstdlib>

#include "pathlog/pathlog.h"

namespace {

void Check(const pathlog::Status& st, const char* what) {
  if (!st.ok()) {
    fprintf(stderr, "error in %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  pathlog::Database db;

  Check(db.Load(R"(
    % signatures: methods are typed per class, and since virtual
    % objects are defined by methods, the same machinery types them.
    person[street => street; city => city; address => address].
    % the boss view objects get their own class: were virtual bosses
    % employees themselves, rule (6.1) below would demand bosses for
    % them too and never terminate.
    employee[worksFor => department; boss => staff].
    staff[worksFor => department].

    % extensional part
    ann : person[street->elmStreet; city->springfield].
    bob : person[street->mainStreet; city->shelbyville].
    elmStreet : street.  mainStreet : street.
    springfield : city.  shelbyville : city.
    cs1 : department.    cs2 : department.

    p1 : employee[worksFor->cs1].
    p2 : employee[worksFor->cs2].

    % rule (2.4): one virtual address object per person
    X.address[street->X.street; city->X.city] : address <- X : person.

    % rule (6.1): employees and their (virtual) bosses work for the
    % same department
    X.boss[worksFor->D] : staff <- X : employee[worksFor->D].
  )"), "load");

  Check(db.Materialize(), "materialize");
  printf("materialized: %llu derivations, %llu virtual objects created\n\n",
         static_cast<unsigned long long>(db.engine_stats().derivations),
         static_cast<unsigned long long>(db.engine_stats().skolems_created));

  // The addresses are first-class: query them like stored objects.
  pathlog::Result<pathlog::ResultSet> addresses =
      db.Query("?- X:person.address[street->S; city->C].");
  Check(addresses.status(), "address query");
  printf("-- virtual addresses\n%s\n",
         addresses->ToString(db.store()).c_str());

  // Every employee now reaches a boss; p1's boss is virtual.
  pathlog::Result<pathlog::ResultSet> bosses =
      db.Query("?- X:employee[worksFor->D], X.boss[B].");
  Check(bosses.status(), "boss query");
  printf("-- bosses (virtual objects have _boss(...) display names)\n%s\n",
         bosses->ToString(db.store()).c_str());

  // The virtual objects satisfy the declared signatures.
  std::vector<pathlog::TypeViolation> violations;
  Check(db.TypeCheck(&violations), "type check");
  printf("-- type check: %zu violation(s)\n", violations.size());
  for (const pathlog::TypeViolation& v : violations) {
    printf("   %s\n", v.message.c_str());
  }
  if (!violations.empty()) return 1;

  // Contrast with the XSQL approach the paper discusses: no view-class
  // EmployeeBoss(...) function symbols were needed — `boss` is an
  // ordinary method, so X.boss.worksFor composes like anything else.
  pathlog::Result<std::vector<pathlog::Oid>> depts =
      db.Eval("p1.boss.worksFor");
  Check(depts.status(), "eval");
  printf("\n-- p1.boss.worksFor =");
  for (pathlog::Oid o : *depts) printf(" %s", db.DisplayName(o).c_str());
  printf("\n");
  return 0;
}
