// Quickstart: the paper's running example end to end.
//
//   $ ./quickstart
//
// Loads the employee/vehicle universe of sections 1-2, runs the
// numbered queries, and prints the answers.

#include <cstdio>
#include <cstdlib>

#include "pathlog/pathlog.h"

namespace {

void Check(const pathlog::Status& st, const char* what) {
  if (!st.ok()) {
    fprintf(stderr, "error in %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

void RunQuery(pathlog::Database& db, const char* title, const char* query) {
  printf("-- %s\n   %s\n", title, query);
  pathlog::Result<pathlog::ResultSet> rs = db.Query(query);
  Check(rs.status(), "query");
  printf("%s\n", rs->ToString(db.store()).c_str());
}

}  // namespace

int main() {
  pathlog::Database db;

  // The schema-less object base: classes, members, attributes, links.
  Check(db.Load(R"(
    % hierarchy (one partial order covers subclassing and membership)
    manager :: employee.
    automobile :: vehicle.

    % employees and their vehicles
    mary : employee[age->30; city->newYork].
    mary[vehicles->>{car1, bike1}].
    jim  : manager[age->30; city->newYork].
    jim[vehicles->>{car2}].
    sue  : manager[age->45; city->detroit].
    sue[vehicles->>{car3}].
    mary[boss->jim].

    % the vehicles
    car1 : automobile[cylinders->4; color->red;  producedBy->acme].
    car2 : automobile[cylinders->4; color->red;  producedBy->detroitMotors].
    car3 : automobile[cylinders->8; color->blue; producedBy->detroitMotors].
    bike1 : vehicle[color->green].

    % the companies
    acme          : company[city->newYork; president->sue].
    detroitMotors : company[city->detroit; president->jim].
  )"), "load facts");

  printf("loaded %zu facts over %zu objects\n\n",
         db.store().FactCount(), db.store().UniverseSize());

  RunQuery(db, "(1.1) colors of employees' automobiles (O2SQL style)",
           "?- X:employee, X[vehicles->>{Y:automobile}], Y.color[C].");

  RunQuery(db, "(1.2) the same with XSQL-style selectors",
           "?- X:employee..vehicles[Y]:automobile.color[Z].");

  RunQuery(db,
           "(2.1) the two-dimensional path: 4-cylinder automobiles of "
           "30-year-old New Yorkers",
           "?- X:employee[age->30; city->newYork]"
           "..vehicles:automobile[cylinders->4].color[Z].");

  RunQuery(db, "(2.3) employees living in the same city as their boss",
           "?- X:employee[city->X.boss.city].");

  RunQuery(db,
           "(section 2) managers with a red vehicle built in Detroit by "
           "a company they preside over — one reference",
           "?- X:manager..vehicles[color->red]"
           ".producedBy[city->detroit; president->X].");

  // References evaluate to objects directly, too.
  pathlog::Result<std::vector<pathlog::Oid>> colors =
      db.Eval("mary..vehicles.color");
  Check(colors.status(), "eval");
  printf("-- mary..vehicles.color evaluates to:");
  for (pathlog::Oid o : *colors) {
    printf(" %s", db.DisplayName(o).c_str());
  }
  printf("\n\n");

  // And references are formulas: entailment is emptiness of valuation.
  pathlog::Result<bool> bachelor = db.Holds("mary.spouse");
  Check(bachelor.status(), "holds");
  printf("-- mary.spouse holds? %s (mary has no spouse: the path denotes "
         "nothing, hence is false)\n",
         *bachelor ? "yes" : "no");
  return 0;
}
