// Property-based tests over randomly generated references and stores:
//
//  1. Printer/parser round-trip: Parse(Print(t)) is structurally equal
//     to t for every generated reference.
//  2. Scalarity/well-formedness analyses are deterministic under
//     round-trip.
//  3. Semantics/evaluator agreement: on ground well-formed references,
//     the active-domain evaluator implies the literal Definition 4
//     semantics, and the two coincide exactly when the reference has
//     no `->>`-reference filters (whose empty-set corner is the one
//     documented divergence).

#include <gtest/gtest.h>

#include <random>

#include "ast/analysis.h"
#include "ast/printer.h"
#include "eval/ref_eval.h"
#include "parser/parser.h"
#include "semantics/structure.h"
#include "semantics/valuation.h"
#include "store/object_store.h"

namespace pathlog {
namespace {

const char* const kObjects[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
const char* const kClasses[] = {"t0", "t1", "t2", "t3"};
const char* const kScalarMethods[] = {"sm0", "sm1", "sm2"};
const char* const kSetMethods[] = {"pm0", "pm1"};

class RefGen {
 public:
  explicit RefGen(uint64_t seed, bool with_vars)
      : rng_(seed), with_vars_(with_vars) {}

  RefPtr Gen(int depth) { return GenRef(depth); }

 private:
  size_t Pick(size_t n) { return static_cast<size_t>(rng_() % n); }
  bool Chance(int pct) { return static_cast<int>(rng_() % 100) < pct; }

  /// Canonical molecule construction mirroring the parser: a filter
  /// attached to a molecule extends its filter list (t[f1][f2] and
  /// t[f1; f2] are the same molecule).
  static RefPtr AttachFilters(RefPtr base, std::vector<Filter> filters) {
    if (base->kind == RefKind::kMolecule) {
      std::vector<Filter> combined = base->filters;
      for (Filter& f : filters) combined.push_back(std::move(f));
      return Ref::Molecule(base->base, std::move(combined));
    }
    return Ref::Molecule(std::move(base), std::move(filters));
  }

  RefPtr GenSimple(int depth) {
    if (with_vars_ && Chance(20)) {
      return Ref::Var(std::string("V") + std::to_string(Pick(3)));
    }
    if (depth > 0 && Chance(15)) return Ref::Paren(GenRef(depth - 1));
    switch (Pick(4)) {
      case 0:
        return Ref::Name(kObjects[Pick(std::size(kObjects))]);
      case 1:
        return Ref::Name(kClasses[Pick(std::size(kClasses))]);
      case 2:
        return Ref::Int(static_cast<int64_t>(Pick(4)));
      default:
        return Ref::Name(kScalarMethods[Pick(std::size(kScalarMethods))]);
    }
  }

  RefPtr GenMethod(bool set_flavor) {
    if (set_flavor) return Ref::Name(kSetMethods[Pick(std::size(kSetMethods))]);
    return Ref::Name(kScalarMethods[Pick(std::size(kScalarMethods))]);
  }

  /// Generates a *scalar* reference (for filter values, args, elems).
  RefPtr GenScalar(int depth) {
    RefPtr r = GenSimple(depth);
    while (IsSetValued(*r)) r = GenSimple(depth);  // parens may be set
    if (depth <= 0) return r;
    // Optionally extend with scalar paths/filters.
    for (int i = 0; i < 2 && Chance(40); ++i) {
      if (Chance(60)) {
        r = Ref::ScalarPath(std::move(r), GenMethod(false));
      } else {
        r = AttachFilters(std::move(r), {GenFilter(depth - 1)});
      }
    }
    return r;
  }

  /// Generates a set-valued reference.
  RefPtr GenSetValued(int depth) {
    RefPtr r = Ref::SetPath(GenScalar(depth > 0 ? depth - 1 : 0),
                            GenMethod(true));
    if (depth > 0 && Chance(30)) {
      r = AttachFilters(std::move(r), {GenFilter(depth - 1)});
    }
    return r;
  }

  Filter GenFilter(int depth) {
    int d = depth > 0 ? depth - 1 : 0;
    switch (Pick(4)) {
      case 0:
        return Ref::ScalarFilter(GenMethod(false), GenScalar(d));
      case 1: {
        std::vector<RefPtr> elems;
        size_t n = 1 + Pick(2);
        for (size_t i = 0; i < n; ++i) elems.push_back(GenScalar(d));
        return Ref::SetEnumFilter(GenMethod(true), std::move(elems));
      }
      case 2:
        return Ref::SetRefFilter(GenMethod(true), GenSetValued(d));
      default:
        return Ref::ClassFilter(
            Ref::Name(kClasses[Pick(std::size(kClasses))]));
    }
  }

  RefPtr GenRef(int depth) {
    if (depth <= 0) return GenSimple(0);
    RefPtr r = GenSimple(depth - 1);
    int steps = 1 + static_cast<int>(Pick(3));
    for (int i = 0; i < steps; ++i) {
      switch (Pick(3)) {
        case 0:
          r = Ref::ScalarPath(std::move(r), GenMethod(false));
          break;
        case 1:
          r = Ref::SetPath(std::move(r), GenMethod(true));
          break;
        default: {
          std::vector<Filter> filters;
          size_t n = 1 + Pick(2);
          for (size_t j = 0; j < n; ++j) filters.push_back(GenFilter(depth - 1));
          r = AttachFilters(std::move(r), std::move(filters));
          break;
        }
      }
    }
    return r;
  }

  std::mt19937_64 rng_;
  bool with_vars_;
};

/// A random store over the same vocabulary the generator draws from.
ObjectStore RandomStore(uint64_t seed) {
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  std::mt19937_64 rng(seed);
  auto pick = [&](size_t n) { return static_cast<size_t>(rng() % n); };

  std::vector<Oid> objects;
  for (const char* o : kObjects) objects.push_back(store.InternSymbol(o));
  std::vector<Oid> classes;
  for (const char* c : kClasses) classes.push_back(store.InternSymbol(c));
  std::vector<Oid> scalars;
  for (const char* m : kScalarMethods) scalars.push_back(store.InternSymbol(m));
  std::vector<Oid> sets;
  for (const char* m : kSetMethods) sets.push_back(store.InternSymbol(m));
  for (int64_t i = 0; i < 4; ++i) store.InternInt(i);

  // Everything interned above plus ints forms the value pool.
  std::vector<Oid> pool = objects;
  for (int64_t i = 0; i < 4; ++i) pool.push_back(*store.FindInt(i));

  // Acyclic hierarchy: class i under class j>i; objects under classes.
  for (size_t i = 0; i + 1 < classes.size(); ++i) {
    if (pick(2) == 0) {
      (void)store.AddIsa(classes[i], classes[i + pick(classes.size() - i - 1) + 1]);
    }
  }
  for (Oid o : objects) {
    if (pick(3) != 0) (void)store.AddIsa(o, classes[pick(classes.size())]);
  }
  for (int i = 0; i < 25; ++i) {
    Oid m = scalars[pick(scalars.size())];
    Oid recv = objects[pick(objects.size())];
    Oid value = pool[pick(pool.size())];
    (void)store.SetScalar(m, recv, {}, value);  // conflicts ignored
  }
  for (int i = 0; i < 25; ++i) {
    Oid m = sets[pick(sets.size())];
    Oid recv = objects[pick(objects.size())];
    Oid value = pool[pick(pool.size())];
    store.AddSetMember(m, recv, {}, value);
  }
  return store;
}

/// True when `t` can exercise one of the two documented divergences
/// between the literal Definition 4 and the active-domain evaluator:
/// a `->>`-reference filter (vacuous when the specified set is empty),
/// or an explicit-set filter with a *complex* element (the literal
/// semantics silently drops elements that denote nothing; the
/// evaluator requires every element to denote).
bool MayDivergeFromDefinition4(const Ref& t) {
  switch (t.kind) {
    case RefKind::kName:
    case RefKind::kVar:
      return false;
    case RefKind::kParen:
      return MayDivergeFromDefinition4(*t.base);
    case RefKind::kPath: {
      if (MayDivergeFromDefinition4(*t.base)) return true;
      if (MayDivergeFromDefinition4(*t.method)) return true;
      for (const RefPtr& a : t.args) {
        if (MayDivergeFromDefinition4(*a)) return true;
      }
      return false;
    }
    case RefKind::kMolecule: {
      if (MayDivergeFromDefinition4(*t.base)) return true;
      for (const Filter& f : t.filters) {
        if (f.kind == FilterKind::kSetRef) return true;
        if (f.method && MayDivergeFromDefinition4(*f.method)) return true;
        if (f.value && MayDivergeFromDefinition4(*f.value)) return true;
        for (const RefPtr& e : f.elems) {
          const Ref* d = e.get();
          while (d->kind == RefKind::kParen) d = d->base.get();
          if (d->kind != RefKind::kName) return true;
          if (MayDivergeFromDefinition4(*e)) return true;
        }
      }
      return false;
    }
  }
  return false;
}

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertyTest, PrinterParserRoundTrip) {
  RefGen gen(GetParam(), /*with_vars=*/true);
  for (int i = 0; i < 40; ++i) {
    RefPtr ref = gen.Gen(3);
    std::string printed = ToString(*ref);
    Result<RefPtr> reparsed = ParseRef(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << " -> " << reparsed.status();
    EXPECT_TRUE(RefEquals(*ref, **reparsed)) << printed;
    EXPECT_EQ(printed, ToString(**reparsed));
  }
}

TEST_P(PropertyTest, AnalysesStableUnderRoundTrip) {
  RefGen gen(GetParam() + 1000, /*with_vars=*/true);
  for (int i = 0; i < 40; ++i) {
    RefPtr ref = gen.Gen(3);
    Result<RefPtr> reparsed = ParseRef(ToString(*ref));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(IsSetValued(*ref), IsSetValued(**reparsed));
    EXPECT_EQ(CheckWellFormed(*ref).code(),
              CheckWellFormed(**reparsed).code());
  }
}

TEST_P(PropertyTest, EvaluatorSoundWrtDefinition4) {
  ObjectStore store = RandomStore(GetParam());
  SemanticStructure I(store);
  RefEvaluator eval(I);
  RefGen gen(GetParam() + 5000, /*with_vars=*/false);

  int checked = 0;
  for (int i = 0; i < 120; ++i) {
    RefPtr ref = gen.Gen(2);
    if (!CheckWellFormed(*ref).ok()) continue;
    ASSERT_TRUE(IsGround(*ref)) << ToString(*ref);

    Bindings b;
    Result<std::vector<Oid>> eval_set = eval.EvalGround(*ref, &b);
    ASSERT_TRUE(eval_set.ok()) << ToString(*ref) << ": "
                               << eval_set.status();
    Result<std::vector<Oid>> sem_set = Valuate(I, *ref, {});
    ASSERT_TRUE(sem_set.ok()) << ToString(*ref) << ": " << sem_set.status();

    // Soundness: everything the evaluator derives is in rho_I.
    for (Oid o : *eval_set) {
      EXPECT_TRUE(std::binary_search(sem_set->begin(), sem_set->end(), o))
          << ToString(*ref) << " evaluator over-derives "
          << store.DisplayName(o);
    }
    // Completeness holds whenever the documented divergences cannot
    // occur in the reference.
    if (!MayDivergeFromDefinition4(*ref)) {
      EXPECT_EQ(*eval_set, *sem_set) << ToString(*ref);
    }
    ++checked;
  }
  EXPECT_GT(checked, 60);  // most generated references are well-formed
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace pathlog
