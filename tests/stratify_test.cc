// Unit tests for dependency analysis and stratification in isolation.

#include "eval/stratify.h"

#include <gtest/gtest.h>

#include "eval/dependency.h"
#include "parser/parser.h"

namespace pathlog {
namespace {

struct Built {
  ObjectStore store;
  std::vector<Rule> rules;
  Result<DependencyGraph> graph = Status(Internal("unset"));
};

Built Build(std::initializer_list<const char*> rule_srcs,
            HeadValueMode mode = HeadValueMode::kRequireDefined) {
  Built b;
  for (const char* src : rule_srcs) {
    Result<Rule> r = ParseRule(src);
    EXPECT_TRUE(r.ok()) << src << ": " << r.status();
    b.rules.push_back(*r);
  }
  b.graph = DependencyGraph::Build(b.rules, &b.store, mode);
  return b;
}

TEST(DependencyTest, DefinesAndReads) {
  Built b = Build({"X[power->Y] <- X:automobile.engine[power->Y]."});
  ASSERT_TRUE(b.graph.ok());
  const RuleDeps& deps = b.graph->rule_deps()[0];
  Oid power = *b.store.FindSymbol("power");
  Oid engine = *b.store.FindSymbol("engine");
  EXPECT_TRUE(deps.defines.count(power));
  EXPECT_TRUE(deps.reads.count(engine));
  EXPECT_TRUE(deps.reads.count(power));  // body filter reads power too
  EXPECT_TRUE(deps.reads_isa);
  EXPECT_FALSE(deps.defines_any);
  EXPECT_TRUE(deps.reads_complete.empty());
}

TEST(DependencyTest, ClassHeadDefinesIsa) {
  Built b = Build({"X:adult <- X[age->30]."});
  ASSERT_TRUE(b.graph.ok());
  EXPECT_TRUE(b.graph->rule_deps()[0].defines_isa);
}

TEST(DependencyTest, SetRefInBodyIsCompleteRead) {
  Built b = Build({"X[ok->1] <- X[friends->>p1..assistants]."});
  ASSERT_TRUE(b.graph.ok());
  const RuleDeps& deps = b.graph->rule_deps()[0];
  Oid assistants = *b.store.FindSymbol("assistants");
  Oid friends = *b.store.FindSymbol("friends");
  EXPECT_TRUE(deps.reads_complete.count(assistants));
  EXPECT_FALSE(deps.reads_complete.count(friends));
  EXPECT_TRUE(deps.reads.count(friends));
}

TEST(DependencyTest, NegatedLiteralIsCompleteRead) {
  Built b = Build({"X[ok->1] <- X:thing, not X[bad->1]."});
  ASSERT_TRUE(b.graph.ok());
  const RuleDeps& deps = b.graph->rule_deps()[0];
  Oid bad = *b.store.FindSymbol("bad");
  EXPECT_TRUE(deps.reads_complete.count(bad));
}

TEST(DependencyTest, VariableMethodIsWildcard) {
  Built b = Build({"X[(M.tc)->>{Y}] <- X[M->>{Y}]."});
  ASSERT_TRUE(b.graph.ok());
  const RuleDeps& deps = b.graph->rule_deps()[0];
  EXPECT_TRUE(deps.defines_any);
  EXPECT_TRUE(deps.reads_any);
}

TEST(DependencyTest, HeadValuePathReadVsDefineByMode) {
  Built req = Build({"X.addr[c->X.city] <- X:person."},
                    HeadValueMode::kRequireDefined);
  ASSERT_TRUE(req.graph.ok());
  Oid city = *req.store.FindSymbol("city");
  EXPECT_FALSE(req.graph->rule_deps()[0].defines.count(city));
  EXPECT_TRUE(req.graph->rule_deps()[0].reads.count(city));

  Built sko = Build({"X.addr[c->X.city] <- X:person."},
                    HeadValueMode::kSkolemize);
  ASSERT_TRUE(sko.graph.ok());
  Oid city2 = *sko.store.FindSymbol("city");
  EXPECT_TRUE(sko.graph->rule_deps()[0].defines.count(city2));
}

TEST(StratifyTest, PositiveRecursionSingleStratum) {
  Built b = Build({
      "X[desc->>{Y}] <- X[kids->>{Y}].",
      "X[desc->>{Y}] <- X..desc[kids->>{Y}].",
  });
  ASSERT_TRUE(b.graph.ok());
  Result<Stratification> s = Stratify(*b.graph, b.rules.size());
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->num_strata, 1);
}

TEST(StratifyTest, CompleteReadForcesHigherStratum) {
  Built b = Build({
      "X[assistants->>{Y}] <- X[helpers->>{Y}].",
      "X[friends->>p1..assistants] <- X:person.",
  });
  ASSERT_TRUE(b.graph.ok());
  Result<Stratification> s = Stratify(*b.graph, b.rules.size());
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->num_strata, 2);
  EXPECT_LT(s->rule_stratum[0], s->rule_stratum[1]);
}

TEST(StratifyTest, CompleteCycleRejectedWithDiagnostic) {
  Built b = Build({
      "X[assistants->>p1..assistants] <- X:person.",
  });
  ASSERT_TRUE(b.graph.ok());
  Result<Stratification> s = Stratify(*b.graph, b.rules.size());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNotStratifiable);
  EXPECT_NE(s.status().message().find("assistants"), std::string::npos);
}

TEST(StratifyTest, MutualRecursionThroughNegationRejected) {
  Built b = Build({
      "X[a->1] <- X:thing, not X[b->1].",
      "X[b->1] <- X:thing, not X[a->1].",
  });
  ASSERT_TRUE(b.graph.ok());
  EXPECT_EQ(Stratify(*b.graph, b.rules.size()).status().code(),
            StatusCode::kNotStratifiable);
}

TEST(StratifyTest, NegationChainGetsAscendingStrata) {
  Built b = Build({
      "X[a->1] <- X:thing.",
      "X[b->1] <- X:thing, not X[a->1].",
      "X[c->1] <- X:thing, not X[b->1].",
  });
  ASSERT_TRUE(b.graph.ok());
  Result<Stratification> s = Stratify(*b.graph, b.rules.size());
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->num_strata, 3);
  EXPECT_LT(s->rule_stratum[0], s->rule_stratum[1]);
  EXPECT_LT(s->rule_stratum[1], s->rule_stratum[2]);
}

TEST(StratifyTest, CoDefinedSymbolsShareAStratum) {
  // One head defines both `a` and `b`; a second rule needs complete
  // `a`, and a third defines `b` from it. If a and b were stratified
  // independently this would wedge; co-definition links them.
  Built b = Build({
      "X[a->>{Y}; b->>{Y}] <- X[base->>{Y}].",
      "X[c->>q..a] <- X:thing.",
  });
  ASSERT_TRUE(b.graph.ok());
  Result<Stratification> s = Stratify(*b.graph, b.rules.size());
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->rule_stratum[0], 0);
  EXPECT_EQ(s->rule_stratum[1], 1);
}

TEST(StratifyTest, WildcardPlusCompleteReadIsConservativelyRejected) {
  // Rule 1 may define *any* method (variable method position) and read
  // any method, which collapses every symbol into one SCC; rule 2's
  // needs-complete read of `friends` then sits on a cycle. The
  // analysis is deliberately conservative here (DESIGN.md): generic
  // wildcard rules cannot be combined with completion-dependent rules.
  Built b = Build({
      "X[(M.aux)->>{Y}] <- X[M->>{Y}].",
      "X[ok->1] <- X[sub->>q..friends].",
  });
  ASSERT_TRUE(b.graph.ok());
  Result<Stratification> s = Stratify(*b.graph, b.rules.size());
  EXPECT_EQ(s.status().code(), StatusCode::kNotStratifiable);
}

TEST(StratifyTest, FactsAreStratumZero) {
  Built b = Build({
      "p[kids->>{q}].",
      "X[b->1] <- X:thing, not X[kids->>{q}].",
  });
  ASSERT_TRUE(b.graph.ok());
  Result<Stratification> s = Stratify(*b.graph, b.rules.size());
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->rule_stratum[0], 0);
  EXPECT_GT(s->rule_stratum[1], 0);
}

}  // namespace
}  // namespace pathlog
