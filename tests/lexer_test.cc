#include "parser/lexer.h"

#include <gtest/gtest.h>

namespace pathlog {
namespace {

std::vector<TokenKind> KindsOf(std::string_view src) {
  Result<std::vector<Token>> toks = Tokenize(src);
  EXPECT_TRUE(toks.ok()) << toks.status();
  std::vector<TokenKind> kinds;
  if (toks.ok()) {
    for (const Token& t : *toks) kinds.push_back(t.kind);
  }
  return kinds;
}

using TK = TokenKind;

TEST(LexerTest, NamesAndVariables) {
  auto kinds = KindsOf("mary X _anon boss Zebra");
  EXPECT_EQ(kinds, (std::vector<TK>{TK::kName, TK::kVar, TK::kVar, TK::kName,
                                    TK::kVar, TK::kEof}));
}

TEST(LexerTest, DotDisambiguation) {
  // Path dots before identifiers/parens, terminator otherwise.
  auto kinds = KindsOf("mary.spouse.age.");
  EXPECT_EQ(kinds, (std::vector<TK>{TK::kName, TK::kPathDot, TK::kName,
                                    TK::kPathDot, TK::kName, TK::kTermDot,
                                    TK::kEof}));
}

TEST(LexerTest, DotBeforeParenIsPathDot) {
  auto kinds = KindsOf("X..(M.tc)");
  EXPECT_EQ(kinds, (std::vector<TK>{TK::kVar, TK::kDotDot, TK::kLParen,
                                    TK::kVar, TK::kPathDot, TK::kName,
                                    TK::kRParen, TK::kEof}));
}

TEST(LexerTest, TerminatorAfterBracketsAndInts) {
  auto kinds = KindsOf("X[age->30]. Y.");
  EXPECT_EQ(kinds,
            (std::vector<TK>{TK::kVar, TK::kLBracket, TK::kName, TK::kArrow,
                             TK::kInt, TK::kRBracket, TK::kTermDot, TK::kVar,
                             TK::kTermDot, TK::kEof}));
}

TEST(LexerTest, Arrows) {
  auto kinds = KindsOf("-> ->> => =>> <- :- ?-");
  EXPECT_EQ(kinds,
            (std::vector<TK>{TK::kArrow, TK::kDArrow, TK::kSigArrow,
                             TK::kSigDArrow, TK::kIf, TK::kIf, TK::kQuery,
                             TK::kEof}));
}

TEST(LexerTest, ColonAndDoubleColonBothLexAsColon) {
  auto kinds = KindsOf("a : b :: c");
  EXPECT_EQ(kinds, (std::vector<TK>{TK::kName, TK::kColon, TK::kName,
                                    TK::kColon, TK::kName, TK::kEof}));
}

TEST(LexerTest, IntegersIncludingNegative) {
  Result<std::vector<Token>> toks = Tokenize("30 -5 0");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].int_value, 30);
  EXPECT_EQ((*toks)[1].int_value, -5);
  EXPECT_EQ((*toks)[2].int_value, 0);
}

TEST(LexerTest, IntegerOverflowIsAnErrorNotACrash) {
  EXPECT_FALSE(Tokenize("99999999999999999999999999").ok());
  EXPECT_FALSE(Tokenize("-99999999999999999999999999").ok());
  // The extremes are fine.
  Result<std::vector<Token>> max = Tokenize("9223372036854775807");
  ASSERT_TRUE(max.ok());
  EXPECT_EQ((*max)[0].int_value, INT64_MAX);
  Result<std::vector<Token>> min = Tokenize("-9223372036854775808");
  ASSERT_TRUE(min.ok());
  EXPECT_EQ((*min)[0].int_value, INT64_MIN);
  // One past the extremes is rejected.
  EXPECT_FALSE(Tokenize("9223372036854775808").ok());
  EXPECT_FALSE(Tokenize("-9223372036854775809").ok());
}

TEST(LexerTest, Strings) {
  Result<std::vector<Token>> toks = Tokenize(R"("hello world" "a\"b\n")");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TK::kString);
  EXPECT_EQ((*toks)[0].text, "hello world");
  EXPECT_EQ((*toks)[1].text, "a\"b\n");
}

TEST(LexerTest, UnterminatedStringFails) {
  Result<std::vector<Token>> toks = Tokenize("\"oops");
  EXPECT_FALSE(toks.ok());
  EXPECT_EQ(toks.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, Comments) {
  auto kinds = KindsOf(
      "a % line comment\n"
      "b // another\n"
      "/* block\n comment */ c");
  EXPECT_EQ(kinds,
            (std::vector<TK>{TK::kName, TK::kName, TK::kName, TK::kEof}));
}

TEST(LexerTest, NotKeyword) {
  auto kinds = KindsOf("not nothing");
  // `nothing` is an identifier, `not` the keyword.
  EXPECT_EQ(kinds, (std::vector<TK>{TK::kNot, TK::kName, TK::kEof}));
}

TEST(LexerTest, PunctuationInventory) {
  auto kinds = KindsOf("@ ( ) [ ] { } , ;");
  EXPECT_EQ(kinds, (std::vector<TK>{TK::kAt, TK::kLParen, TK::kRParen,
                                    TK::kLBracket, TK::kRBracket, TK::kLBrace,
                                    TK::kRBrace, TK::kComma, TK::kSemicolon,
                                    TK::kEof}));
}

TEST(LexerTest, UnexpectedCharacterReportsPosition) {
  Result<std::vector<Token>> toks = Tokenize("abc\n  #");
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("line 2"), std::string::npos);
}

TEST(LexerTest, BareMinusFails) {
  EXPECT_FALSE(Tokenize("a - b").ok());
}

TEST(LexerTest, LineAndColumnTracking) {
  Result<std::vector<Token>> toks = Tokenize("a\n  bcd");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].line, 1);
  EXPECT_EQ((*toks)[1].line, 2);
  EXPECT_EQ((*toks)[1].column, 3);
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto kinds = KindsOf("   \n\t ");
  EXPECT_EQ(kinds, (std::vector<TK>{TK::kEof}));
}

}  // namespace
}  // namespace pathlog
