// Sanity of the synthetic workload generators.

#include <gtest/gtest.h>

#include "store/fact.h"
#include "parser/parser.h"
#include "workload/company.h"
#include "workload/kinship.h"
#include "workload/people.h"

namespace pathlog {
namespace {

TEST(CompanyGenTest, SizesMatchConfig) {
  ObjectStore s;
  CompanyConfig cfg;
  cfg.num_employees = 200;
  cfg.manager_fraction = 0.1;
  CompanyData data = GenerateCompany(&s, cfg);
  EXPECT_EQ(data.employees.size(), 200u);
  EXPECT_EQ(data.managers.size(), 20u);
  EXPECT_EQ(data.companies.size(), cfg.num_companies);
  EXPECT_EQ(s.Members(data.employee_class).size(),
            201u);  // 200 employees + the manager class object
  EXPECT_EQ(s.Members(data.manager_class).size(), 20u);
  EXPECT_FALSE(data.vehicles.empty());
  EXPECT_GT(data.automobiles.size(), data.vehicles.size() / 3);
}

TEST(CompanyGenTest, PaperNamesPresent) {
  ObjectStore s;
  CompanyConfig cfg;
  cfg.num_employees = 10;
  GenerateCompany(&s, cfg);
  EXPECT_TRUE(s.FindSymbol("newYork").has_value());
  EXPECT_TRUE(s.FindSymbol("detroit").has_value());
  EXPECT_TRUE(s.FindSymbol("red").has_value());
}

TEST(CompanyGenTest, DeterministicInSeed) {
  ObjectStore s1, s2, s3;
  CompanyConfig cfg;
  cfg.num_employees = 50;
  GenerateCompany(&s1, cfg);
  GenerateCompany(&s2, cfg);
  cfg.seed = 43;
  GenerateCompany(&s3, cfg);
  EXPECT_EQ(s1.FactCount(), s2.FactCount());
  for (uint64_t g = 0; g < s1.generation(); ++g) {
    ASSERT_EQ(s1.FactAt(g), s2.FactAt(g)) << g;
  }
  EXPECT_NE(s1.FactCount(), s3.FactCount());
}

TEST(CompanyGenTest, EveryVehicleHasColorAndProducer) {
  ObjectStore s;
  CompanyConfig cfg;
  cfg.num_employees = 100;
  CompanyData data = GenerateCompany(&s, cfg);
  Oid color = *s.FindSymbol("color");
  Oid produced_by = *s.FindSymbol("producedBy");
  Oid cylinders = *s.FindSymbol("cylinders");
  for (Oid v : data.vehicles) {
    EXPECT_TRUE(s.GetScalar(color, v, {}).has_value());
    EXPECT_TRUE(s.GetScalar(produced_by, v, {}).has_value());
  }
  for (Oid a : data.automobiles) {
    std::optional<Oid> cyl = s.GetScalar(cylinders, a, {});
    ASSERT_TRUE(cyl.has_value());
    int64_t value = s.IntValue(*cyl);
    EXPECT_TRUE(value == 4 || value == 6 || value == 8);
  }
}

TEST(PeopleGenTest, StreetFractionRespected) {
  ObjectStore s;
  PeopleConfig cfg;
  cfg.num_persons = 400;
  cfg.has_street_fraction = 0.5;
  PeopleData data = GeneratePeople(&s, cfg);
  Oid street = *s.FindSymbol("street");
  size_t with_street = 0;
  for (Oid p : data.persons) {
    with_street += s.GetScalar(street, p, {}).has_value() ? 1 : 0;
  }
  EXPECT_GT(with_street, 120u);
  EXPECT_LT(with_street, 280u);
}

TEST(PeopleGenTest, SpousesAreSymmetric) {
  ObjectStore s;
  PeopleConfig cfg;
  cfg.num_persons = 100;
  cfg.married_fraction = 1.0;
  PeopleData data = GeneratePeople(&s, cfg);
  Oid spouse = *s.FindSymbol("spouse");
  for (Oid p : data.persons) {
    std::optional<Oid> sp = s.GetScalar(spouse, p, {});
    ASSERT_TRUE(sp.has_value());
    EXPECT_EQ(s.GetScalar(spouse, *sp, {}), p);
  }
}

TEST(KinshipGenTest, ChainShape) {
  ObjectStore s;
  KinshipData data = GenerateChain(&s, 10);
  EXPECT_EQ(data.people.size(), 10u);
  EXPECT_EQ(data.num_edges, 9u);
  Oid kids = *s.FindSymbol("kids");
  const SetGroup* g = s.GetSetGroup(kids, data.people[3], {});
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->members, std::vector<Oid>{data.people[4]});
  EXPECT_EQ(s.GetSetGroup(kids, data.people[9], {}), nullptr);
}

TEST(KinshipGenTest, TreeShape) {
  ObjectStore s;
  KinshipData data = GenerateTree(&s, 15, 2);  // perfect binary tree
  EXPECT_EQ(data.num_edges, 14u);
  Oid kids = *s.FindSymbol("kids");
  const SetGroup* root = s.GetSetGroup(kids, data.people[0], {});
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->members.size(), 2u);
  // Leaves have no kids.
  EXPECT_EQ(s.GetSetGroup(kids, data.people[14], {}), nullptr);
}

TEST(KinshipGenTest, RandomDagIsAcyclicByConstruction) {
  ObjectStore s;
  KinshipData data = GenerateRandomDag(&s, 100, 2.5, 11);
  EXPECT_GT(data.num_edges, 100u);
  Oid kids = *s.FindSymbol("kids");
  // Every edge goes to a strictly later node (indices encode order).
  for (const SetGroup& g : s.SetGroups(kids)) {
    for (Oid m : g.members) {
      EXPECT_GT(m, g.recv);
    }
  }
}

TEST(StoreToProgramTextTest, RoundTripsThroughParser) {
  ObjectStore s;
  CompanyConfig cfg;
  cfg.num_employees = 20;
  GenerateCompany(&s, cfg);
  std::string text = StoreToProgramText(s);
  Result<Program> p = ParseProgram(text);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->rules.size(), s.FactCount());
  for (const Rule& r : p->rules) {
    EXPECT_TRUE(r.IsFact());
  }
}

}  // namespace
}  // namespace pathlog
