#include "ast/analysis.h"

#include <gtest/gtest.h>

#include "ast/program.h"
#include "parser/parser.h"

namespace pathlog {
namespace {

bool SetValued(std::string_view src) {
  Result<RefPtr> r = ParseRef(src);
  EXPECT_TRUE(r.ok()) << src << ": " << r.status();
  return r.ok() && IsSetValued(**r);
}

Status WellFormed(std::string_view src) {
  Result<RefPtr> r = ParseRef(src);
  EXPECT_TRUE(r.ok()) << src << ": " << r.status();
  if (!r.ok()) return r.status();
  return CheckWellFormed(**r);
}

// --- Definition 2 (scalarity), on the paper's own examples ----------

TEST(ScalarityTest, SimpleReferencesAreScalar) {
  EXPECT_FALSE(SetValued("mary"));
  EXPECT_FALSE(SetValued("X"));
  EXPECT_FALSE(SetValued("30"));
  EXPECT_FALSE(SetValued("(mary)"));
}

TEST(ScalarityTest, ScalarPathStaysScalar) {
  EXPECT_FALSE(SetValued("p1.age"));                  // (4.1 context)
  EXPECT_FALSE(SetValued("mary.spouse.age"));
}

TEST(ScalarityTest, SetPathIsSetValued) {
  EXPECT_TRUE(SetValued("p1..assistants"));           // (4.1)
}

TEST(ScalarityTest, MoleculeOnSetPathIsSetValued) {
  EXPECT_TRUE(SetValued("p1..assistants[salary->1000]"));  // (4.2)
}

TEST(ScalarityTest, ScalarMethodOnSetBaseIsSetValued) {
  // "p1..assistants.salary also is set-valued".
  EXPECT_TRUE(SetValued("p1..assistants.salary"));
  EXPECT_TRUE(SetValued("p1..assistants..projects"));
}

TEST(ScalarityTest, SetValuedArgumentMakesScalarPathSetValued) {
  // p1.paidFor@(p1..vehicles): a set passed as a parameter.
  EXPECT_TRUE(SetValued("p1.paidFor@(p1..vehicles)"));
  EXPECT_FALSE(SetValued("p1.paidFor@(v1)"));
}

TEST(ScalarityTest, MoleculeScalarityComesFromFirstSubreferenceOnly) {
  // (4.4): p2[friends->>p1..assistants] is *scalar* — it specifies a
  // property of p2 even though it contains a set-valued sub-reference.
  EXPECT_FALSE(SetValued("p2[friends->>p1..assistants]"));
  EXPECT_FALSE(SetValued("p2[friends->>{p3,p4}]"));
  EXPECT_TRUE(SetValued("p1..assistants[salary->1000]"));
}

TEST(ScalarityTest, ParensPreserveScalarity) {
  EXPECT_TRUE(SetValued("(p1..assistants)"));
  EXPECT_FALSE(SetValued("(p1.age)"));
}

TEST(ScalarityTest, SetValuedMethodReferenceMakesPathSetValued) {
  // A `.` path whose *method* is set-valued is set-valued (Def. 2).
  EXPECT_TRUE(SetValued("x.(a..ms)"));
}

// --- Definition 3 (well-formedness) ---------------------------------

TEST(WellFormedTest, PaperExamplesAccepted) {
  EXPECT_TRUE(WellFormed("p1..assistants[salary->1000]").ok());
  EXPECT_TRUE(WellFormed("p2[friends->>{p3,p4}]").ok());
  EXPECT_TRUE(WellFormed("p2[friends->>p1..assistants]").ok());
  EXPECT_TRUE(WellFormed("p1..assistants.salary").ok());
  EXPECT_TRUE(WellFormed("p1..assistants..projects").ok());
  EXPECT_TRUE(WellFormed("p1.paidFor@(p1..vehicles)").ok());
}

TEST(WellFormedTest, Formula45Rejected) {
  // (4.5): a set-valued reference as the result of a *scalar* method.
  Status st = WellFormed("p2[boss->p1..assistants]");
  EXPECT_EQ(st.code(), StatusCode::kIllFormed);
}

TEST(WellFormedTest, ScalarRefAfterDoubleArrowRejected) {
  // `->>` needs a set-valued reference or an explicit set.
  Status st = WellFormed("p2[friends->>p3]");
  EXPECT_EQ(st.code(), StatusCode::kIllFormed);
  EXPECT_NE(st.message().find("->>{"), std::string::npos);
}

TEST(WellFormedTest, SetValuedMethodInMoleculeRejected) {
  EXPECT_EQ(WellFormed("x[(a..ms)->y]").code(), StatusCode::kIllFormed);
}

TEST(WellFormedTest, SetValuedClassRejected) {
  EXPECT_EQ(WellFormed("x:(a..classes)").code(), StatusCode::kIllFormed);
}

TEST(WellFormedTest, SetValuedFilterArgumentRejected) {
  EXPECT_EQ(WellFormed("x[m@(a..bs)->y]").code(), StatusCode::kIllFormed);
}

TEST(WellFormedTest, SetValuedSetElementRejected) {
  EXPECT_EQ(WellFormed("x[m->>{a..bs}]").code(), StatusCode::kIllFormed);
}

TEST(WellFormedTest, PathsAreLiberal) {
  // "well-formedness only restricts ... molecules, but not paths".
  EXPECT_TRUE(WellFormed("p1..assistants.salary.boss").ok());
  EXPECT_TRUE(WellFormed("x.m@(a..bs, c..ds)").ok());
}

// --- Rule-level checks ------------------------------------------------

TEST(RuleWellFormedTest, SetValuedHeadRejected) {
  Result<Rule> rule = ParseRule("X..friends[a->1] <- X:person.");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(CheckRuleWellFormed(*rule).code(), StatusCode::kIllFormed);
}

TEST(RuleWellFormedTest, BareNameHeadRejected) {
  Result<Rule> rule = ParseRule("mary <- X:person.");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(CheckRuleWellFormed(*rule).code(), StatusCode::kIllFormed);
}

TEST(RuleWellFormedTest, NonGroundFactRejected) {
  Result<Rule> rule = ParseRule("X[age->30].");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(CheckRuleWellFormed(*rule).code(), StatusCode::kIllFormed);
}

TEST(RuleWellFormedTest, GoodRulesAccepted) {
  for (const char* src : {
           "mary[age->30].",
           "X[power->Y] <- X:automobile.engine[power->Y].",
           "X.boss[worksFor->D] <- X:employee[worksFor->D].",
           "X[(M.tc)->>{Y}] <- X[M->>{Y}].",
           "p2[friends->>p1..assistants].",
       }) {
    Result<Rule> rule = ParseRule(src);
    ASSERT_TRUE(rule.ok()) << src;
    EXPECT_TRUE(CheckRuleWellFormed(*rule).ok()) << src;
  }
}

// --- Variable collection ---------------------------------------------

TEST(VarsTest, CollectsFromEveryPosition) {
  Result<RefPtr> r =
      ParseRef("X[M@(A)->>B..ms]:C.n@(D)");
  ASSERT_TRUE(r.ok());
  std::set<std::string> vars = VarsOf(**r);
  EXPECT_EQ(vars, (std::set<std::string>{"X", "M", "A", "B", "C", "D"}));
}

TEST(VarsTest, GroundDetection) {
  Result<RefPtr> g = ParseRef("mary.spouse[age->30]");
  Result<RefPtr> v = ParseRef("mary.spouse[age->X]");
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(IsGround(**g));
  EXPECT_FALSE(IsGround(**v));
}

TEST(SimpleRefTest, Definition1MethodPositions) {
  Result<RefPtr> name = ParseRef("m");
  Result<RefPtr> var = ParseRef("M");
  Result<RefPtr> paren = ParseRef("(kids.tc)");
  Result<RefPtr> path = ParseRef("kids.tc");
  ASSERT_TRUE(name.ok() && var.ok() && paren.ok() && path.ok());
  EXPECT_TRUE(IsSimpleRef(**name));
  EXPECT_TRUE(IsSimpleRef(**var));
  EXPECT_TRUE(IsSimpleRef(**paren));
  EXPECT_FALSE(IsSimpleRef(**path));
}

}  // namespace
}  // namespace pathlog
