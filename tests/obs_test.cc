// Tests for the observability layer: the JSON helper, the metrics
// registry and its two export formats (which must flatten to the same
// samples), the tracer's balance and nesting over a real
// materialisation, the profiler's report, and the store counters.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/budget.h"
#include "base/strings.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "query/database.h"
#include "store/file_ops.h"

namespace pathlog {
namespace {

// ---------------------------------------------------------------------------
// JSON helper.

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->as_bool());
  EXPECT_FALSE(ParseJson("false")->as_bool());
  EXPECT_DOUBLE_EQ(ParseJson("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-2.5e2")->as_number(), -250.0);
  EXPECT_EQ(ParseJson(R"("hi\n\"there\"")")->as_string(), "hi\n\"there\"");
}

TEST(JsonTest, ParsesNestedStructure) {
  Result<JsonValue> v = ParseJson(R"({"a":[1,2,{"b":true}],"c":null})");
  ASSERT_TRUE(v.ok()) << v.status();
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[0].as_number(), 1.0);
  const JsonValue* b = a->items()[2].Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->as_bool());
  EXPECT_TRUE(v->Find("c")->is_null());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("'single'").ok());
}

TEST(JsonTest, StringEscaping) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\n\t");
  // The escaped form must parse back to the original.
  Result<JsonValue> v = ParseJson(out);
  ASSERT_TRUE(v.ok()) << out << ": " << v.status();
  EXPECT_EQ(v->as_string(), "a\"b\\c\n\t");
}

TEST(JsonTest, NumberFormatting) {
  std::string out;
  AppendJsonNumber(&out, 7);
  EXPECT_EQ(out, "7");
  out.clear();
  AppendJsonNumber(&out, 2.5);
  EXPECT_DOUBLE_EQ(ParseJson(out)->as_number(), 2.5);
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsTest, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c_total", "a counter");
  ASSERT_NE(c, nullptr);
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(c->value(), 5u);
  // Same name, same pointer.
  EXPECT_EQ(reg.GetCounter("c_total"), c);

  Gauge* g = reg.GetGauge("g");
  ASSERT_NE(g, nullptr);
  g->Set(10);
  g->Add(-2.5);
  EXPECT_DOUBLE_EQ(g->value(), 7.5);
}

TEST(MetricsTest, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("x"), nullptr);
  EXPECT_EQ(reg.GetGauge("x"), nullptr);
  EXPECT_EQ(reg.GetHistogram("x", DefaultLatencyBoundsMs()), nullptr);
}

TEST(MetricsTest, HistogramBucketsAreCumulativeInPrometheus) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lat_ms", {1.0, 10.0}, "latency");
  ASSERT_NE(h, nullptr);
  h->Observe(0.5);   // le=1
  h->Observe(5.0);   // le=10
  h->Observe(50.0);  // +Inf
  EXPECT_EQ(h->bucket_count(0), 1u);
  EXPECT_EQ(h->bucket_count(1), 1u);
  EXPECT_EQ(h->bucket_count(2), 1u);
  EXPECT_EQ(h->total_count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 55.5);

  Result<MetricsSamples> samples =
      ParseMetricsPrometheusText(reg.ToPrometheusText());
  ASSERT_TRUE(samples.ok()) << samples.status();
  EXPECT_DOUBLE_EQ((*samples)["lat_ms_bucket{le=\"1\"}"], 1.0);
  EXPECT_DOUBLE_EQ((*samples)["lat_ms_bucket{le=\"10\"}"], 2.0);
  EXPECT_DOUBLE_EQ((*samples)["lat_ms_bucket{le=\"+Inf\"}"], 3.0);
  EXPECT_DOUBLE_EQ((*samples)["lat_ms_count"], 3.0);
  EXPECT_DOUBLE_EQ((*samples)["lat_ms_sum"], 55.5);
}

TEST(MetricsTest, JsonAndPrometheusRoundTripToSameSamples) {
  MetricsRegistry reg;
  reg.GetCounter("requests_total", "requests")->Inc(17);
  reg.GetGauge("temperature", "degrees")->Set(-3.25);
  Histogram* h = reg.GetHistogram("dur_ms", DefaultLatencyBoundsMs(), "d");
  h->Observe(0.1);
  h->Observe(300);

  Result<MetricsSamples> from_json = ParseMetricsJson(reg.ToJson());
  ASSERT_TRUE(from_json.ok()) << from_json.status();
  Result<MetricsSamples> from_prom =
      ParseMetricsPrometheusText(reg.ToPrometheusText());
  ASSERT_TRUE(from_prom.ok()) << from_prom.status();

  EXPECT_EQ(*from_json, *from_prom);
  EXPECT_DOUBLE_EQ((*from_json)["requests_total"], 17.0);
  EXPECT_DOUBLE_EQ((*from_json)["temperature"], -3.25);
  EXPECT_DOUBLE_EQ((*from_json)["dur_ms_count"], 2.0);
}

TEST(MetricsTest, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseMetricsJson("not json").ok());
  EXPECT_FALSE(ParseMetricsJson("[1,2]").ok());
  EXPECT_FALSE(ParseMetricsPrometheusText("name_without_value\n").ok());
}

// ---------------------------------------------------------------------------
// Tracer.

TEST(TraceTest, BalancesAndCounts) {
  Tracer t;
  t.Begin("outer", "test");
  t.Begin("inner", "test");
  EXPECT_EQ(t.open_spans(), 2);
  t.End();
  t.Instant("marker", "test");
  EXPECT_EQ(t.open_spans(), 1);
  EXPECT_EQ(t.event_count(), 4u);

  // ToJson closes still-open spans so output is always balanced.
  Result<JsonValue> doc = ParseJson(t.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  int depth = 0;
  for (const JsonValue& e : events->items()) {
    const std::string& ph = e.Find("ph")->as_string();
    if (ph == "B") ++depth;
    if (ph == "E") --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0) << "unbalanced trace: " << t.ToJson();

  t.Reset();
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_EQ(t.open_spans(), 0);
}

// Nesting over a real materialisation: rule evaluations sit inside
// iterations inside strata inside engine.run inside db.materialize.
TEST(TraceTest, MaterializationSpansNestProperly) {
  Tracer tracer;
  Database db;
  ObsSinks sinks;
  sinks.tracer = &tracer;
  db.SetObsSinks(sinks);
  ASSERT_TRUE(db.Load(R"(
    a[kids->>{b}]. b[kids->>{c}]. c[kids->>{d}].
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Y}] <- X..desc[kids->>{Y}].
  )").ok());
  ASSERT_TRUE(db.Materialize().ok());
  EXPECT_EQ(tracer.open_spans(), 0);

  Result<JsonValue> doc = ParseJson(tracer.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);

  // Expected parent for each span kind (E events replay the name).
  auto expected_parent = [](const std::string& name) -> const char* {
    if (name == "rule.evaluate") return "iteration";
    if (name == "iteration") return "stratum";
    if (name == "stratum") return "engine.run";
    if (name == "engine.run") return "db.materialize";
    if (name == "delta_pass") return "rule.evaluate";
    return nullptr;  // unconstrained
  };
  std::vector<std::string> stack;
  size_t rule_spans = 0;
  for (const JsonValue& e : events->items()) {
    const std::string& ph = e.Find("ph")->as_string();
    const std::string& name = e.Find("name")->as_string();
    if (ph == "B") {
      if (const char* parent = expected_parent(name)) {
        ASSERT_FALSE(stack.empty()) << name << " opened at top level";
        EXPECT_EQ(stack.back(), parent) << "bad parent for " << name;
      }
      if (name == "rule.evaluate") ++rule_spans;
      stack.push_back(name);
    } else if (ph == "E") {
      ASSERT_FALSE(stack.empty());
      EXPECT_EQ(stack.back(), name) << "E closes the most recent B";
      stack.pop_back();
    }
  }
  EXPECT_TRUE(stack.empty());
  EXPECT_GT(rule_spans, 0u) << "no rule.evaluate spans recorded";
}

// ---------------------------------------------------------------------------
// Profiler.

TEST(ProfileTest, AccumulatesAndSorts) {
  Profiler p;
  p.RecordRuleEvaluation("cheap.", 100, 0, 1);
  p.RecordRuleEvaluation("dear.", 9000, 2, 5);
  p.RecordRuleEvaluation("dear.", 1000, 1, 3);
  std::vector<Profiler::RuleProfile> rules = p.RuleProfiles();
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].rule, "dear.");
  EXPECT_EQ(rules[0].evaluations, 2u);
  EXPECT_EQ(rules[0].delta_passes, 3u);
  EXPECT_EQ(rules[0].derivations, 8u);
  EXPECT_EQ(rules[0].wall_ns, 10000u);
  EXPECT_EQ(rules[1].rule, "cheap.");
}

TEST(ProfileTest, EmptyReportSaysSo) {
  Profiler p;
  EXPECT_EQ(p.Report(), "profile: no activity recorded\n");
}

// End-to-end: materialise and query with the profiler attached; every
// rule with nonzero evaluations appears, sorted by cumulative time.
TEST(ProfileTest, DatabaseProfileReportListsRules) {
  Profiler profiler;
  Database db;
  ObsSinks sinks;
  sinks.profiler = &profiler;
  db.SetObsSinks(sinks);
  ASSERT_TRUE(db.Load(R"(
    a[kids->>{b}]. b[kids->>{c}].
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Y}] <- X..desc[kids->>{Y}].
  )").ok());
  Result<ResultSet> rs = db.Query("?- a[desc->>{D}].");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->size(), 2u);

  std::vector<Profiler::RuleProfile> rules = profiler.RuleProfiles();
  ASSERT_EQ(rules.size(), 2u);
  for (const Profiler::RuleProfile& r : rules) {
    EXPECT_GT(r.evaluations, 0u);
  }
  EXPECT_TRUE(std::is_sorted(
      rules.begin(), rules.end(),
      [](const Profiler::RuleProfile& x, const Profiler::RuleProfile& y) {
        return x.wall_ns > y.wall_ns;
      }));

  std::string report = db.ProfileReport();
  EXPECT_NE(report.find("rule profile (2 rules"), std::string::npos) << report;
  EXPECT_NE(report.find("X[desc->>{Y}] <- X[kids->>{Y}]."), std::string::npos)
      << report;
  EXPECT_NE(report.find("driver literals"), std::string::npos) << report;
  // The query drove at least one literal with recorded cardinalities.
  std::vector<Profiler::LiteralProfile> lits = profiler.LiteralProfiles();
  ASSERT_FALSE(lits.empty());
  uint64_t total_actual = 0;
  for (const Profiler::LiteralProfile& l : lits) total_actual += l.actual;
  EXPECT_GT(total_actual, 0u);
}

TEST(ProfileTest, ReportWithoutProfilerExplains) {
  Database db;
  EXPECT_EQ(db.ProfileReport(),
            "profile: no profiler attached (enable profiling first)\n");
}

// ---------------------------------------------------------------------------
// Store counters and engine metrics through the Database front end.

TEST(ObsEndToEndTest, StoreAndEngineMetricsAccumulate) {
  MetricsRegistry reg;
  Database db;
  ObsSinks sinks;
  sinks.metrics = &reg;
  db.SetObsSinks(sinks);
  ASSERT_TRUE(db.Load(R"(
    mary : employee[age->30].
    john : employee[age->40].
    mary[friends->>{john}].
    X[peer->Y] <- X:employee[age->A], Y:employee[age->A].
  )").ok());
  Result<ResultSet> rs = db.Query("?- X:employee[age->A].");
  ASSERT_TRUE(rs.ok()) << rs.status();

  Result<MetricsSamples> samples = ParseMetricsJson(reg.ToJson());
  ASSERT_TRUE(samples.ok()) << samples.status();
  EXPECT_GE((*samples)["pathlog_store_isa_facts_total"], 2.0);
  EXPECT_GE((*samples)["pathlog_store_scalar_facts_total"], 2.0);
  EXPECT_GE((*samples)["pathlog_store_set_facts_total"], 1.0);
  EXPECT_GT((*samples)["pathlog_store_objects_total"], 0.0);
  EXPECT_GE((*samples)["pathlog_engine_runs_total"], 1.0);
  EXPECT_GE((*samples)["pathlog_engine_rule_evaluations_total"], 1.0);
  EXPECT_GE((*samples)["pathlog_engine_derivations_total"], 1.0);
  EXPECT_GE((*samples)["pathlog_queries_total"], 1.0);
  EXPECT_GE((*samples)["pathlog_query_ms_count"], 1.0);
  EXPECT_GE((*samples)["pathlog_engine_run_ms_count"], 1.0);
  // Gauges reflect the store after materialisation.
  EXPECT_GT((*samples)["pathlog_store_objects"], 0.0);
  EXPECT_GT((*samples)["pathlog_store_facts"], 0.0);
}

TEST(ObsEndToEndTest, DetachStopsRecording) {
  MetricsRegistry reg;
  Database db;
  ObsSinks sinks;
  sinks.metrics = &reg;
  db.SetObsSinks(sinks);
  ASSERT_TRUE(db.Load("a : thing.").ok());
  Result<MetricsSamples> before = ParseMetricsJson(reg.ToJson());
  ASSERT_TRUE(before.ok());

  db.SetObsSinks(ObsSinks{});  // detach
  ASSERT_TRUE(db.Load("b : thing. c : thing.").ok());
  Result<MetricsSamples> after = ParseMetricsJson(reg.ToJson());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*before)["pathlog_store_isa_facts_total"],
            (*after)["pathlog_store_isa_facts_total"]);
}

TEST(ObsEndToEndTest, TriggerMetricsAccumulate) {
  MetricsRegistry reg;
  DatabaseOptions opts;
  opts.fire_triggers_on_materialize = true;
  Database db(opts);
  ObsSinks sinks;
  sinks.metrics = &reg;
  db.SetObsSinks(sinks);
  ASSERT_TRUE(db.Load(R"(
    audit[saw->>{X}] <~ X:employee.
    mary : employee.
  )").ok());
  ASSERT_TRUE(db.Materialize().ok());
  Result<MetricsSamples> samples = ParseMetricsJson(reg.ToJson());
  ASSERT_TRUE(samples.ok()) << samples.status();
  EXPECT_GE((*samples)["pathlog_trigger_rounds_total"], 1.0);
  EXPECT_GE((*samples)["pathlog_trigger_firings_total"], 1.0);
  EXPECT_GE((*samples)["pathlog_trigger_facts_total"], 1.0);
}

TEST(ObsEndToEndTest, GovernanceMetricsExportOnBothFormatsIdentically) {
  // Drive every resource-governance metric at least once — a retried
  // transient WAL fault, a size-triggered rotation, a degraded-mode
  // entry and exit, and a budget rejection — then require the JSON and
  // Prometheus exports to flatten to the same samples.
  using FaultKind = FaultInjectingFileOps::FaultKind;
  using FaultOp = FaultInjectingFileOps::FaultOp;
  MetricsRegistry reg;
  FaultInjectingFileOps fs;
  ResourceBudget budget;
  DatabaseOptions opts;
  opts.engine.budget = &budget;
  opts.durability.rotate_wal_bytes = 1;  // every commit rotates
  opts.durability.backoff_sleep = [](uint64_t) {};
  Result<Database> db = Database::Open("/db", opts, &fs);
  ASSERT_TRUE(db.ok()) << db.status();
  ObsSinks sinks;
  sinks.metrics = &reg;
  db->SetObsSinks(sinks);

  // One transient fsync failure: retried, then the commit rotates.
  FaultInjectingFileOps::FaultSchedule sched;
  sched.events.push_back({FaultOp::kSync, 1, 1, FaultKind::kFail,
                          StatusCode::kUnavailable});
  fs.SetSchedule(sched);
  ASSERT_TRUE(db->Load("a[v->1].").ok());

  // A persistent failure degrades; the checkpoint probe recovers.
  sched.events[0] = {FaultOp::kAppend, 1, 1, FaultKind::kFail,
                     StatusCode::kInternal};
  fs.SetSchedule(sched);
  ASSERT_FALSE(db->Load("b[v->2].").ok());
  ASSERT_TRUE(db->degraded());
  fs.SetSchedule({});
  ASSERT_TRUE(db->Checkpoint().ok());

  // A cancelled query is a budget rejection.
  budget.token().Cancel();
  ASSERT_FALSE(db->Query("?- X[v->V].").ok());
  budget.token().Reset();

  Result<MetricsSamples> from_json = ParseMetricsJson(reg.ToJson());
  ASSERT_TRUE(from_json.ok()) << from_json.status();
  Result<MetricsSamples> from_prom =
      ParseMetricsPrometheusText(reg.ToPrometheusText());
  ASSERT_TRUE(from_prom.ok()) << from_prom.status();
  EXPECT_EQ(*from_json, *from_prom);

  EXPECT_DOUBLE_EQ((*from_json)["pathlog_wal_retries_total"], 1.0);
  EXPECT_GE((*from_json)["pathlog_wal_rotations_total"], 1.0);
  EXPECT_DOUBLE_EQ((*from_json)["pathlog_db_degraded_entries_total"], 1.0);
  EXPECT_DOUBLE_EQ((*from_json)["pathlog_db_degraded"], 0.0)
      << "the recovery checkpoint must clear the gauge";
  EXPECT_GE((*from_json)["pathlog_budget_rejections_total"], 1.0);
}

// ---------------------------------------------------------------------------
// Histogram quantiles.

TEST(HistogramQuantileTest, ExactValuesOnSyntheticObservations) {
  // Buckets (0,1], (1,2], (2,4], +Inf. Ten observations: 0.5 lands in
  // the first bucket, 1.5 x4 in the second, 3 x5 in the third.
  Histogram h({1, 2, 4});
  h.Observe(0.5);
  for (int i = 0; i < 4; ++i) h.Observe(1.5);
  for (int i = 0; i < 5; ++i) h.Observe(3.0);

  // rank = q * 10. p50: rank 5 -> cumulative 1, 5, 10, so it is the
  // (5-1)=4th of 4 observations inside (1,2]: 1 + 4/4 * 1 = 2.
  EXPECT_DOUBLE_EQ(h.Quantile(0.50), 2.0);
  // p90: rank 9 -> (9-5)=4th of 5 inside (2,4]: 2 + 4/5 * 2 = 3.6.
  EXPECT_DOUBLE_EQ(h.Quantile(0.90), 3.6);
  // p10: rank 1 -> first bucket, 0 + 1/1 * 1 = 1.
  EXPECT_DOUBLE_EQ(h.Quantile(0.10), 1.0);
  // p100 stays on the highest finite edge.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 4.0);
}

TEST(HistogramQuantileTest, InfBucketClampsToHighestFiniteBound) {
  Histogram h({1, 2});
  h.Observe(100);  // +Inf bucket
  h.Observe(0.5);
  // p99: rank lands in +Inf; the estimate is clamped to 2, the highest
  // finite bound (Prometheus histogram_quantile semantics).
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 2.0);
}

TEST(HistogramQuantileTest, EdgeCases) {
  Histogram empty({1, 2});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  Histogram h({10});
  h.Observe(5);
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), h.Quantile(0.0)) << "q is clamped";
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Quantile(1.0));
}

TEST(HistogramQuantileTest, RegistryEnumeratesHistogramsNameSorted) {
  MetricsRegistry reg;
  reg.GetHistogram("zzz_ms", {1, 2})->Observe(1);
  reg.GetHistogram("aaa_ms", {1, 2})->Observe(1);
  reg.GetCounter("not_a_histogram")->Inc();
  std::vector<std::pair<std::string, const Histogram*>> entries =
      reg.HistogramEntries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "aaa_ms");
  EXPECT_EQ(entries[1].first, "zzz_ms");
  EXPECT_EQ(entries[0].second->total_count(), 1u);
}

// ---------------------------------------------------------------------------
// FlightRecorder.

TEST(FlightRecorderTest, RecordsAndSnapshotsInOrder) {
  FlightRecorder rec(4);
  rec.Record("a", "t", 10);
  rec.Record("b", "t");  // instant
  rec.Record("c", "t", 30, R"({"k":1})");
  EXPECT_EQ(rec.recorded(), 3u);

  std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[1].dur_us, 0u);
  EXPECT_EQ(events[2].name, "c");
  EXPECT_EQ(events[2].args_json, R"({"k":1})");
  EXPECT_LT(events[0].seq, events[2].seq);
}

TEST(FlightRecorderTest, RingWrapsKeepingTheNewest) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.Record(StrCat("e", i), "t", 1);
  }
  EXPECT_EQ(rec.recorded(), 10u);
  std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e6") << "oldest survivor";
  EXPECT_EQ(events.back().name, "e9") << "newest";
}

TEST(FlightRecorderTest, TraceJsonParsesAndKeepsEventShapes) {
  FlightRecorder rec(8);
  rec.Record("span", "cat", 42, R"({"rows":3})");
  rec.Record("instant", "cat");
  Result<JsonValue> trace = ParseJson(rec.ToTraceJson());
  ASSERT_TRUE(trace.ok()) << trace.status();
  const JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 2u);
  const JsonValue& span = events->items()[0];
  EXPECT_EQ(span.Find("ph")->as_string(), "X");
  EXPECT_DOUBLE_EQ(span.Find("dur")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(span.Find("args")->Find("rows")->as_number(), 3.0);
  const JsonValue& instant = events->items()[1];
  EXPECT_EQ(instant.Find("ph")->as_string(), "i");
  EXPECT_EQ(instant.Find("s")->as_string(), "t");
}

TEST(FlightRecorderTest, WriteToGoesThroughInjectedFileOps) {
  FaultInjectingFileOps fs;
  ASSERT_TRUE(fs.CreateDir("/dir").ok());
  FlightRecorder rec(4);
  rec.Record("e", "t", 1);
  ASSERT_TRUE(rec.WriteTo("/dir/f.trace.json", &fs).ok());
  Result<std::string> bytes = fs.ReadFile("/dir/f.trace.json");
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  EXPECT_TRUE(ParseJson(*bytes).ok());
}

TEST(FlightRecorderTest, ResetDropsEverything) {
  FlightRecorder rec(4);
  rec.Record("e", "t", 1);
  rec.Reset();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.Snapshot().empty());
}

TEST(FlightRecorderTest, FlightSpanRecordsMeasuredDuration) {
  FlightRecorder rec(4);
  {
    FlightSpan span(&rec, "scoped", "t");
    span.set_args_json(R"({"tag":true})");
  }
  FlightSpan no_op(nullptr, "never");  // null recorder: no crash, no record
  std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "scoped");
  EXPECT_GE(events[0].dur_us, 1u) << "spans never render as instants";
  EXPECT_EQ(events[0].args_json, R"({"tag":true})");
}

// ---------------------------------------------------------------------------
// QueryLog.

QueryLogRecord MakeRecord(const std::string& query) {
  QueryLogRecord rec;
  rec.ts_ms = 1700000000000ull;
  rec.kind = "query";
  rec.query = query;
  rec.latency_ms = 1.25;
  rec.rows = 2;
  rec.strategy = "semi-naive-delta";
  rec.plan_fingerprint = "deadbeef";
  return rec;
}

TEST(QueryLogTest, AppendsOneJsonLinePerRecord) {
  FaultInjectingFileOps fs;
  QueryLogOptions opts;
  opts.path = "/ql.jsonl";
  opts.fops = &fs;
  QueryLog log(opts);
  ASSERT_TRUE(log.Append(MakeRecord("?- a[v->V].")).ok());
  ASSERT_TRUE(log.Append(MakeRecord("?- b[v->V].")).ok());
  EXPECT_EQ(log.records_written(), 2u);

  Result<std::string> bytes = fs.ReadFile("/ql.jsonl");
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  size_t newline = bytes->find('\n');
  ASSERT_NE(newline, std::string::npos);
  Result<JsonValue> first = ParseJson(bytes->substr(0, newline));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->Find("query")->as_string(), "?- a[v->V].");
  EXPECT_DOUBLE_EQ(first->Find("latency_ms")->as_number(), 1.25);
  EXPECT_EQ(bytes->back(), '\n') << "JSONL: every record ends its line";
}

TEST(QueryLogTest, SlowFlagIsStampedAgainstTheThreshold) {
  QueryLogOptions opts;
  opts.slow_query_ms = 10.0;
  QueryLog log(opts);
  QueryLogRecord fast = MakeRecord("fast");
  fast.latency_ms = 9.9;
  QueryLogRecord slow = MakeRecord("slow");
  slow.latency_ms = 10.1;
  ASSERT_TRUE(log.Append(fast).ok());
  ASSERT_TRUE(log.Append(slow).ok());
  std::vector<std::string> recent = log.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_FALSE(ParseJson(recent[0])->Find("slow")->as_bool());
  EXPECT_TRUE(ParseJson(recent[1])->Find("slow")->as_bool());
}

TEST(QueryLogTest, RotationRenamesAndReopens) {
  FaultInjectingFileOps fs;
  QueryLogOptions opts;
  opts.path = "/ql.jsonl";
  opts.rotate_bytes = 1;  // every record over-fills the segment
  opts.fops = &fs;
  QueryLog log(opts);
  ASSERT_TRUE(log.Append(MakeRecord("first")).ok());
  ASSERT_TRUE(log.Append(MakeRecord("second")).ok());
  EXPECT_EQ(log.rotations(), 1u);
  Result<std::string> rotated = fs.ReadFile("/ql.jsonl.1");
  ASSERT_TRUE(rotated.ok()) << rotated.status();
  EXPECT_NE(rotated->find("first"), std::string::npos);
  Result<std::string> current = fs.ReadFile("/ql.jsonl");
  ASSERT_TRUE(current.ok()) << current.status();
  EXPECT_NE(current->find("second"), std::string::npos);
}

TEST(QueryLogTest, FirstFileErrorLatchesButTheRingKeepsFilling) {
  FaultInjectingFileOps fs;
  QueryLogOptions opts;
  opts.path = "/ql.jsonl";
  opts.fops = &fs;
  QueryLog log(opts);
  ASSERT_TRUE(log.Append(MakeRecord("ok")).ok());

  fs.ArmFault(FaultInjectingFileOps::FaultKind::kFail, 1);
  EXPECT_FALSE(log.Append(MakeRecord("fails")).ok());
  EXPECT_FALSE(log.file_error().ok());

  // Later appends return the latched error but keep the recent ring
  // serving /querylogz.
  EXPECT_FALSE(log.Append(MakeRecord("after")).ok());
  std::vector<std::string> recent = log.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_NE(recent.back().find("after"), std::string::npos);
}

TEST(QueryLogTest, RecentRingIsBoundedOldestFirst) {
  QueryLogOptions opts;
  opts.recent_capacity = 3;
  QueryLog log(opts);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(log.Append(MakeRecord(StrCat("q", i))).ok());
  }
  std::vector<std::string> recent = log.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_NE(recent[0].find("q2"), std::string::npos);
  EXPECT_NE(recent[2].find("q4"), std::string::npos);
  EXPECT_EQ(log.Recent(1).size(), 1u);
}

TEST(QueryLogTest, RecordJsonRoundTripsEveryField) {
  QueryLogRecord rec = MakeRecord("?- x.");
  rec.status = "ResourceExhausted";
  rec.budget_derivations = 7;
  rec.budget_store_bytes = 1024;
  rec.budget_wall_ms = 2.5;
  rec.budget_rejected = true;
  rec.route_inverted_probes = 1;
  rec.route_extent_scans = 2;
  rec.route_universe_scans = 3;
  rec.route_duplicates_suppressed = 4;
  rec.slow = true;
  Result<JsonValue> v = ParseJson(QueryLogRecordToJson(rec));
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->Find("status")->as_string(), "ResourceExhausted");
  const JsonValue* budget = v->Find("budget");
  ASSERT_NE(budget, nullptr);
  EXPECT_DOUBLE_EQ(budget->Find("derivations")->as_number(), 7.0);
  EXPECT_TRUE(budget->Find("rejected")->as_bool());
  const JsonValue* routes = v->Find("routes");
  ASSERT_NE(routes, nullptr);
  EXPECT_DOUBLE_EQ(routes->Find("universe_scans")->as_number(), 3.0);
  EXPECT_TRUE(v->Find("slow")->as_bool());
}

}  // namespace
}  // namespace pathlog
