// Active rules: `head <~ event, conditions.` (ECA triggers over the
// fact log). Reproduces the paper's claim (sections 1 and 7) that the
// reference machinery is independent of the rule-evaluation paradigm.

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "parser/parser.h"
#include "query/database.h"

namespace pathlog {
namespace {

TEST(TriggerParseTest, TriggerClauseRecognised) {
  Result<Program> p = ParseProgram(
      "alert[for->X] <~ X:automobile[color->red], X[cylinders->8].");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->triggers.size(), 1u);
  EXPECT_TRUE(p->rules.empty());
  EXPECT_EQ(ToString(p->triggers[0]),
            "alert[for->X] <~ X:automobile[color->red], X[cylinders->8].");
}

TEST(TriggerParseTest, NegatedEventRejected) {
  Result<Program> p = ParseProgram("a[b->1] <~ not x[c->1].");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(CheckTriggerWellFormed(p->triggers[0]).code(),
            StatusCode::kIllFormed);
}

TEST(TriggerParseTest, EventlessTriggerRejected) {
  TriggerRule t;
  Result<Rule> r = ParseRule("a[b->1].");
  ASSERT_TRUE(r.ok());
  t.rule = *r;
  EXPECT_EQ(CheckTriggerWellFormed(t).code(), StatusCode::kIllFormed);
}

TEST(TriggerTest, FiresOncePerMatchingEvent) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    log[saw->>{X}] <~ X:automobile[color->red].
    car1 : automobile[color->red].
    car2 : automobile[color->blue].
  )").ok());
  ASSERT_TRUE(db.FireTriggers().ok());
  EXPECT_EQ(db.trigger_stats().firings, 1u);
  Result<bool> saw1 = db.Holds("log[saw->>{car1}]");
  ASSERT_TRUE(saw1.ok());
  EXPECT_TRUE(*saw1);
  Result<bool> saw2 = db.Holds("log[saw->>{car2}]");
  ASSERT_TRUE(saw2.ok());
  EXPECT_FALSE(*saw2);

  // Re-firing without new events does nothing.
  uint64_t firings = db.trigger_stats().firings;
  ASSERT_TRUE(db.FireTriggers().ok());
  EXPECT_EQ(db.trigger_stats().firings, firings);

  // A new matching fact fires exactly once more.
  ASSERT_TRUE(db.Load("car3 : automobile[color->red].").ok());
  ASSERT_TRUE(db.FireTriggers().ok());
  EXPECT_EQ(db.trigger_stats().firings, firings + 1);
  Result<bool> saw3 = db.Holds("log[saw->>{car3}]");
  ASSERT_TRUE(saw3.ok());
  EXPECT_TRUE(*saw3);
}

TEST(TriggerTest, ConditionsSeeCurrentState) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    bigRed[is->>{X}] <~ X[color->red], X[cylinders->C], C.geq@(8).
    car1[cylinders->8].
    car1[color->red].
    car2[cylinders->4].
    car2[color->red].
  )").ok());
  ASSERT_TRUE(db.FireTriggers().ok());
  Result<bool> c1 = db.Holds("bigRed[is->>{car1}]");
  Result<bool> c2 = db.Holds("bigRed[is->>{car2}]");
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE(*c1);
  EXPECT_FALSE(*c2);
}

TEST(TriggerTest, CascadesToQuiescence) {
  // Each ping spawns a pong and each pong a final ack: two cascade
  // levels, then quiescence.
  Database db;
  ASSERT_TRUE(db.Load(R"(
    X[pong->1] <~ X[ping->1].
    X[ack->1]  <~ X[pong->1].
    a[ping->1].
  )").ok());
  ASSERT_TRUE(db.FireTriggers().ok());
  Result<bool> ack = db.Holds("a[ack->1]");
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(*ack);
  EXPECT_GE(db.trigger_stats().rounds, 2u);
  EXPECT_EQ(db.trigger_stats().firings, 2u);
}

TEST(TriggerTest, RunawayCascadeHitsBudget) {
  DatabaseOptions opts;
  opts.triggers.max_cascade_rounds = 50;
  Database db(opts);
  // Every spawn event creates a fresh virtual object that spawns again.
  ASSERT_TRUE(db.Load(R"(
    X.next[spawn->1] <~ X[spawn->1].
    seed[spawn->1].
  )").ok());
  EXPECT_EQ(db.FireTriggers().code(), StatusCode::kResourceExhausted);
}

TEST(TriggerTest, DerivedFactsAreEventsToo) {
  DatabaseOptions opts;
  opts.fire_triggers_on_materialize = true;
  Database db(opts);
  ASSERT_TRUE(db.Load(R"(
    audit[grew->>{X}] <~ X[desc->>{Y}].
    X[desc->>{Y}] <- X[kids->>{Y}].
    p0[kids->>{p1}].
  )").ok());
  // Query triggers materialisation, which fires the triggers.
  Result<ResultSet> rs = db.Query("?- audit[grew->>{X}].");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->Column("X", db.store()), (std::vector<std::string>{"p0"}));
}

TEST(TriggerTest, NegatedConditions) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    orphanAlert[for->>{X}] <~ X:vehicle, not X[owner->Y].
    v1 : vehicle.
    v2 : vehicle.
    v2[owner->mary].
  )").ok());
  ASSERT_TRUE(db.FireTriggers().ok());
  Result<bool> a1 = db.Holds("orphanAlert[for->>{v1}]");
  Result<bool> a2 = db.Holds("orphanAlert[for->>{v2}]");
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_TRUE(*a1);
  EXPECT_FALSE(*a2);
}

TEST(TriggerTest, TriggersSurviveDatabaseSnapshot) {
  const std::string path = ::testing::TempDir() + "/pathlog_trig.snap";
  {
    Database db;
    ASSERT_TRUE(db.Load(R"(
      log[saw->>{X}] <~ X:automobile.
      car1 : automobile.
    )").ok());
    ASSERT_TRUE(db.FireTriggers().ok());
    ASSERT_TRUE(db.SaveSnapshotFile(path).ok());
  }
  Result<Database> restored = Database::LoadSnapshotFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->num_triggers(), 1u);
  ASSERT_TRUE(restored->Load("car2 : automobile.").ok());
  ASSERT_TRUE(restored->FireTriggers().ok());
  Result<bool> saw2 = restored->Holds("log[saw->>{car2}]");
  ASSERT_TRUE(saw2.ok());
  EXPECT_TRUE(*saw2);
  std::remove(path.c_str());
}

TEST(TriggerTest, WallDeadlineStopsTheCascadeMidwayAndALaterFireCompletes) {
  // A three-round cascade under a wall deadline driven by a fake clock
  // that burns 30 fake ms per reading against a 50 ms budget: the
  // cascade must stop with kDeadlineExceeded naming the trigger round,
  // and a later fire (with time stalled) must finish the job from the
  // watermark — nothing lost, nothing fired twice.
  uint64_t now = 0;
  uint64_t step = 30;
  DatabaseOptions opts;
  opts.triggers.max_wall_ms = 50;
  opts.triggers.wall_clock = [&now, &step] {
    now += step;
    return now;
  };
  Database db(opts);
  ASSERT_TRUE(db.Load(R"(
    X[lvl2->1] <~ X[lvl1->1].
    X[lvl3->1] <~ X[lvl2->1].
    X[lvl4->1] <~ X[lvl3->1].
    seed[lvl1->1].
  )").ok());
  Status st = db.FireTriggers();
  ASSERT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st;
  EXPECT_NE(st.message().find("during trigger round"), std::string::npos)
      << st;
  Result<bool> last = db.Holds("seed[lvl4->1]");
  ASSERT_TRUE(last.ok());
  EXPECT_FALSE(*last) << "the deadline must interrupt the cascade";

  step = 0;  // the clock stalls: the same deadline can no longer lapse
  ASSERT_TRUE(db.FireTriggers().ok());
  uint64_t firings = db.trigger_stats().firings;
  EXPECT_EQ(firings, 3u) << "each level fires exactly once across fires";
  for (const char* ref : {"seed[lvl2->1]", "seed[lvl3->1]",
                          "seed[lvl4->1]"}) {
    Result<bool> holds = db.Holds(ref);
    ASSERT_TRUE(holds.ok()) << ref;
    EXPECT_TRUE(*holds) << ref;
  }
}

}  // namespace
}  // namespace pathlog
