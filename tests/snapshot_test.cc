// Binary snapshot round-trips, including virtual (anonymous) objects.

#include "store/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "query/database.h"
#include "store/fact.h"
#include "workload/company.h"

namespace pathlog {
namespace {

void ExpectStoresEqual(const ObjectStore& a, const ObjectStore& b) {
  ASSERT_EQ(a.UniverseSize(), b.UniverseSize());
  for (Oid o = 0; o < a.UniverseSize(); ++o) {
    EXPECT_EQ(a.kind(o), b.kind(o)) << o;
    EXPECT_EQ(a.DisplayName(o), b.DisplayName(o)) << o;
  }
  ASSERT_EQ(a.generation(), b.generation());
  for (uint64_t g = 0; g < a.generation(); ++g) {
    EXPECT_EQ(a.FactAt(g), b.FactAt(g)) << g;
  }
}

TEST(SnapshotTest, EmptyStore) {
  ObjectStore store;
  Result<ObjectStore> copy = DeserializeSnapshot(SerializeSnapshot(store));
  ASSERT_TRUE(copy.ok()) << copy.status();
  ExpectStoresEqual(store, *copy);
}

TEST(SnapshotTest, AllValueKindsRoundTrip) {
  ObjectStore store;
  Oid sym = store.InternSymbol("mary");
  Oid neg = store.InternInt(-42);
  Oid str = store.InternString("hello \"world\"\n");
  Oid anon = store.NewAnonymous("_boss(mary)");
  Oid m = store.InternSymbol("m");
  ASSERT_TRUE(store.SetScalar(m, sym, {neg, str}, anon).ok());

  Result<ObjectStore> copy = DeserializeSnapshot(SerializeSnapshot(store));
  ASSERT_TRUE(copy.ok()) << copy.status();
  ExpectStoresEqual(store, *copy);
  EXPECT_EQ(copy->IntValue(neg), -42);
  EXPECT_EQ(copy->kind(anon), ObjectKind::kAnonymous);
  EXPECT_EQ(copy->GetScalar(m, sym, {neg, str}), anon);
}

TEST(SnapshotTest, GeneratedWorkloadRoundTrips) {
  ObjectStore store;
  CompanyConfig cfg;
  cfg.num_employees = 150;
  CompanyData data = GenerateCompany(&store, cfg);

  Result<ObjectStore> copy = DeserializeSnapshot(SerializeSnapshot(store));
  ASSERT_TRUE(copy.ok()) << copy.status();
  ExpectStoresEqual(store, *copy);
  // Derived indexes are rebuilt identically.
  EXPECT_EQ(copy->Members(data.employee_class).size(),
            store.Members(data.employee_class).size());
  EXPECT_EQ(copy->ScalarMethods(), store.ScalarMethods());
  EXPECT_EQ(copy->SetMethods(), store.SetMethods());
}

TEST(SnapshotTest, MaterializedVirtualObjectsSurvive) {
  // The whole point: a store with skolems round-trips, which the text
  // dump cannot do.
  Database db;
  ASSERT_TRUE(db.Load(R"(
    p1 : employee[worksFor->cs1].
    p2 : employee[worksFor->cs2].
    X.boss[worksFor->D] <- X:employee[worksFor->D].
  )").ok());
  ASSERT_TRUE(db.Materialize().ok());

  Result<ObjectStore> copy =
      DeserializeSnapshot(SerializeSnapshot(db.store()));
  ASSERT_TRUE(copy.ok()) << copy.status();
  ExpectStoresEqual(db.store(), *copy);

  Oid boss = *copy->FindSymbol("boss");
  Oid p1 = *copy->FindSymbol("p1");
  std::optional<Oid> vb = copy->GetScalar(boss, p1, {});
  ASSERT_TRUE(vb.has_value());
  EXPECT_EQ(copy->DisplayName(*vb), "_boss(p1)");
  EXPECT_EQ(copy->kind(*vb), ObjectKind::kAnonymous);
}

TEST(SnapshotTest, FileRoundTrip) {
  ObjectStore store;
  CompanyConfig cfg;
  cfg.num_employees = 30;
  GenerateCompany(&store, cfg);
  const std::string path = ::testing::TempDir() + "/pathlog_snapshot.bin";
  ASSERT_TRUE(WriteSnapshotFile(store, path).ok());
  Result<ObjectStore> copy = ReadSnapshotFile(path);
  ASSERT_TRUE(copy.ok()) << copy.status();
  ExpectStoresEqual(store, *copy);
  std::remove(path.c_str());
}

TEST(SnapshotTest, CorruptionDetected) {
  ObjectStore store;
  store.InternSymbol("a");
  std::string bytes = SerializeSnapshot(store);

  // Bad magic.
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_EQ(DeserializeSnapshot(bad).status().code(),
            StatusCode::kInvalidArgument);

  // Truncation at every prefix must error, never crash.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<ObjectStore> r = DeserializeSnapshot(bytes.substr(0, cut));
    EXPECT_FALSE(r.ok()) << cut;
  }

  // Trailing garbage.
  EXPECT_EQ(DeserializeSnapshot(bytes + "junk").status().code(),
            StatusCode::kInvalidArgument);

  // Missing file.
  EXPECT_EQ(ReadSnapshotFile("/nonexistent/path.bin").status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotTest, DatabaseSnapshotRestoresRulesAndSignatures) {
  const std::string path = ::testing::TempDir() + "/pathlog_db.snap";
  {
    Database db;
    ASSERT_TRUE(db.Load(R"(
      person[age => integer].
      ann : person[street->elm; city->ny; age->33].
      X.address[street->X.street; city->X.city] <- X:person.
    )").ok());
    ASSERT_TRUE(db.Materialize().ok());
    ASSERT_TRUE(db.SaveSnapshotFile(path).ok());
  }
  Result<Database> restored = Database::LoadSnapshotFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // Facts (including the virtual address) survived.
  Result<bool> holds = restored->Holds("ann.address[city->ny]");
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
  // Rules survived: new facts trigger new derivations.
  ASSERT_TRUE(restored->Load(
      "bob : person[street->oak; city->berlin].").ok());
  Result<bool> bob = restored->Holds("bob.address[city->berlin]");
  ASSERT_TRUE(bob.ok());
  EXPECT_TRUE(*bob);
  // Signatures survived: violations are still detected.
  ASSERT_TRUE(restored->Load("cleo : person[age->ancient].").ok());
  std::vector<TypeViolation> v;
  ASSERT_TRUE(restored->TypeCheck(&v).ok());
  EXPECT_EQ(v.size(), 1u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, DatabaseSnapshotCorruptionDetected) {
  const std::string path = ::testing::TempDir() + "/pathlog_db_bad.snap";
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  EXPECT_FALSE(Database::LoadSnapshotFile(path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, SnapshotOfSnapshotIsIdentical) {
  ObjectStore store;
  CompanyConfig cfg;
  cfg.num_employees = 40;
  GenerateCompany(&store, cfg);
  std::string once = SerializeSnapshot(store);
  Result<ObjectStore> copy = DeserializeSnapshot(once);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(SerializeSnapshot(*copy), once);
}

}  // namespace
}  // namespace pathlog
