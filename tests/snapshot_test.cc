// Binary snapshot round-trips, including virtual (anonymous) objects.

#include "store/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "base/coding.h"
#include "base/crc32.h"
#include "query/database.h"
#include "store/fact.h"
#include "store/file_ops.h"
#include "workload/company.h"

namespace pathlog {
namespace {

std::string MustSerialize(const ObjectStore& store) {
  Result<std::string> bytes = SerializeSnapshot(store);
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  return bytes.ok() ? *bytes : std::string();
}

void ExpectStoresEqual(const ObjectStore& a, const ObjectStore& b) {
  ASSERT_EQ(a.UniverseSize(), b.UniverseSize());
  for (Oid o = 0; o < a.UniverseSize(); ++o) {
    EXPECT_EQ(a.kind(o), b.kind(o)) << o;
    EXPECT_EQ(a.DisplayName(o), b.DisplayName(o)) << o;
  }
  ASSERT_EQ(a.generation(), b.generation());
  for (uint64_t g = 0; g < a.generation(); ++g) {
    EXPECT_EQ(a.FactAt(g), b.FactAt(g)) << g;
  }
}

TEST(SnapshotTest, EmptyStore) {
  ObjectStore store;
  Result<ObjectStore> copy = DeserializeSnapshot(MustSerialize(store));
  ASSERT_TRUE(copy.ok()) << copy.status();
  ExpectStoresEqual(store, *copy);
}

TEST(SnapshotTest, AllValueKindsRoundTrip) {
  ObjectStore store;
  Oid sym = store.InternSymbol("mary");
  Oid neg = store.InternInt(-42);
  Oid str = store.InternString("hello \"world\"\n");
  Oid anon = store.NewAnonymous("_boss(mary)");
  Oid m = store.InternSymbol("m");
  ASSERT_TRUE(store.SetScalar(m, sym, {neg, str}, anon).ok());

  Result<ObjectStore> copy = DeserializeSnapshot(MustSerialize(store));
  ASSERT_TRUE(copy.ok()) << copy.status();
  ExpectStoresEqual(store, *copy);
  EXPECT_EQ(copy->IntValue(neg), -42);
  EXPECT_EQ(copy->kind(anon), ObjectKind::kAnonymous);
  EXPECT_EQ(copy->GetScalar(m, sym, {neg, str}), anon);
}

TEST(SnapshotTest, GeneratedWorkloadRoundTrips) {
  ObjectStore store;
  CompanyConfig cfg;
  cfg.num_employees = 150;
  CompanyData data = GenerateCompany(&store, cfg);

  Result<ObjectStore> copy = DeserializeSnapshot(MustSerialize(store));
  ASSERT_TRUE(copy.ok()) << copy.status();
  ExpectStoresEqual(store, *copy);
  // Derived indexes are rebuilt identically.
  EXPECT_EQ(copy->Members(data.employee_class).size(),
            store.Members(data.employee_class).size());
  EXPECT_EQ(copy->ScalarMethods(), store.ScalarMethods());
  EXPECT_EQ(copy->SetMethods(), store.SetMethods());
}

TEST(SnapshotTest, MaterializedVirtualObjectsSurvive) {
  // The whole point: a store with skolems round-trips, which the text
  // dump cannot do.
  Database db;
  ASSERT_TRUE(db.Load(R"(
    p1 : employee[worksFor->cs1].
    p2 : employee[worksFor->cs2].
    X.boss[worksFor->D] <- X:employee[worksFor->D].
  )").ok());
  ASSERT_TRUE(db.Materialize().ok());

  Result<ObjectStore> copy =
      DeserializeSnapshot(MustSerialize(db.store()));
  ASSERT_TRUE(copy.ok()) << copy.status();
  ExpectStoresEqual(db.store(), *copy);

  Oid boss = *copy->FindSymbol("boss");
  Oid p1 = *copy->FindSymbol("p1");
  std::optional<Oid> vb = copy->GetScalar(boss, p1, {});
  ASSERT_TRUE(vb.has_value());
  EXPECT_EQ(copy->DisplayName(*vb), "_boss(p1)");
  EXPECT_EQ(copy->kind(*vb), ObjectKind::kAnonymous);
}

TEST(SnapshotTest, FileRoundTrip) {
  ObjectStore store;
  CompanyConfig cfg;
  cfg.num_employees = 30;
  GenerateCompany(&store, cfg);
  const std::string path = ::testing::TempDir() + "/pathlog_snapshot.bin";
  ASSERT_TRUE(WriteSnapshotFile(store, path).ok());
  Result<ObjectStore> copy = ReadSnapshotFile(path);
  ASSERT_TRUE(copy.ok()) << copy.status();
  ExpectStoresEqual(store, *copy);
  std::remove(path.c_str());
}

TEST(SnapshotTest, CorruptionDetected) {
  ObjectStore store;
  store.InternSymbol("a");
  std::string bytes = MustSerialize(store);

  // Bad magic.
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_EQ(DeserializeSnapshot(bad).status().code(),
            StatusCode::kInvalidArgument);

  // Truncation at every prefix must error, never crash.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<ObjectStore> r = DeserializeSnapshot(bytes.substr(0, cut));
    EXPECT_FALSE(r.ok()) << cut;
  }

  // Trailing garbage.
  EXPECT_EQ(DeserializeSnapshot(bytes + "junk").status().code(),
            StatusCode::kInvalidArgument);

  // Missing file.
  EXPECT_EQ(ReadSnapshotFile("/nonexistent/path.bin").status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotTest, DatabaseSnapshotRestoresRulesAndSignatures) {
  const std::string path = ::testing::TempDir() + "/pathlog_db.snap";
  {
    Database db;
    ASSERT_TRUE(db.Load(R"(
      person[age => integer].
      ann : person[street->elm; city->ny; age->33].
      X.address[street->X.street; city->X.city] <- X:person.
    )").ok());
    ASSERT_TRUE(db.Materialize().ok());
    ASSERT_TRUE(db.SaveSnapshotFile(path).ok());
  }
  Result<Database> restored = Database::LoadSnapshotFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // Facts (including the virtual address) survived.
  Result<bool> holds = restored->Holds("ann.address[city->ny]");
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
  // Rules survived: new facts trigger new derivations.
  ASSERT_TRUE(restored->Load(
      "bob : person[street->oak; city->berlin].").ok());
  Result<bool> bob = restored->Holds("bob.address[city->berlin]");
  ASSERT_TRUE(bob.ok());
  EXPECT_TRUE(*bob);
  // Signatures survived: violations are still detected.
  ASSERT_TRUE(restored->Load("cleo : person[age->ancient].").ok());
  std::vector<TypeViolation> v;
  ASSERT_TRUE(restored->TypeCheck(&v).ok());
  EXPECT_EQ(v.size(), 1u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, DatabaseSnapshotCorruptionDetected) {
  const std::string path = ::testing::TempDir() + "/pathlog_db_bad.snap";
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  EXPECT_FALSE(Database::LoadSnapshotFile(path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, RoundTripPreservesGenerationStamps) {
  // Replay order equals log order, so every per-fact generation stamp
  // — scalar entries, set memberships, hierarchy closure — must come
  // back bit-identical; the semi-naive delta evaluator depends on it.
  ObjectStore store;
  CompanyConfig cfg;
  cfg.num_employees = 60;
  GenerateCompany(&store, cfg);

  Result<ObjectStore> copy = DeserializeSnapshot(MustSerialize(store));
  ASSERT_TRUE(copy.ok()) << copy.status();
  for (Oid m : store.ScalarMethods()) {
    const std::vector<ScalarEntry>& a = store.ScalarEntries(m);
    const std::vector<ScalarEntry>& b = copy->ScalarEntries(m);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].gen, b[i].gen);
      EXPECT_EQ(a[i].recv, b[i].recv);
      EXPECT_EQ(a[i].value, b[i].value);
    }
  }
  for (Oid m : store.SetMethods()) {
    const std::vector<SetGroup>& a = store.SetGroups(m);
    const std::vector<SetGroup>& b = copy->SetGroups(m);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].recv, b[i].recv);
      EXPECT_EQ(a[i].members, b[i].members);
      EXPECT_EQ(a[i].member_gens, b[i].member_gens);
    }
  }
  for (Oid o = 0; o < store.UniverseSize(); ++o) {
    EXPECT_EQ(store.Ancestors(o), copy->Ancestors(o));
    EXPECT_EQ(store.AncestorGens(o), copy->AncestorGens(o));
  }
}

TEST(SnapshotTest, RoundTripRebuildsInvertedIndexes) {
  // Inverted indexes are not serialized; replay must rebuild them so
  // every fact is reachable by value/member probe.
  ObjectStore store;
  CompanyConfig cfg;
  cfg.num_employees = 60;
  GenerateCompany(&store, cfg);
  Result<ObjectStore> copy = DeserializeSnapshot(MustSerialize(store));
  ASSERT_TRUE(copy.ok()) << copy.status();

  for (Oid m : copy->ScalarMethods()) {
    EXPECT_EQ(copy->ScalarDistinctValues(m), store.ScalarDistinctValues(m));
    const std::vector<ScalarEntry>& entries = copy->ScalarEntries(m);
    for (uint32_t i = 0; i < entries.size(); ++i) {
      const std::vector<uint32_t>& bucket =
          copy->ScalarEntriesByValue(m, entries[i].value);
      EXPECT_NE(std::find(bucket.begin(), bucket.end(), i), bucket.end());
    }
  }
  for (Oid m : copy->SetMethods()) {
    EXPECT_EQ(copy->SetDistinctMembers(m), store.SetDistinctMembers(m));
    const std::vector<SetGroup>& groups = copy->SetGroups(m);
    for (uint32_t gi = 0; gi < groups.size(); ++gi) {
      for (uint32_t pos = 0; pos < groups[gi].members.size(); ++pos) {
        bool found = false;
        for (const SetMemberRef& r :
             copy->SetGroupsByMember(m, groups[gi].members[pos])) {
          found = found || (r.group == gi && r.pos == pos);
        }
        EXPECT_TRUE(found) << "method " << m << " group " << gi;
      }
    }
  }
}

TEST(SnapshotTest, RoundTripRebuildsMethodStatistics) {
  // The planner's per-method statistics (counters + exact top-k heavy
  // hitters, store/method_stats.h) are not serialized: replay re-runs
  // the mutators, which must rebuild them equal to the incrementally
  // maintained originals — including the generation stamps, since the
  // fact log replays in order.
  ObjectStore store;
  CompanyConfig cfg;
  cfg.num_employees = 60;
  GenerateCompany(&store, cfg);
  // Add deliberate skew on top of the generated workload so the heavy
  // list is non-trivial in both index families.
  Oid city = store.InternSymbol("city");
  Oid likes = store.InternSymbol("likes");
  Oid metro = store.InternSymbol("metro");
  for (int i = 0; i < 25; ++i) {
    const std::string i_str = std::to_string(i);
    Oid r = store.InternSymbol("skew" + i_str);
    ASSERT_TRUE(store.SetScalar(city, r, {}, metro).ok());
    ASSERT_TRUE(store.AddSetMember(likes, r, {}, metro));
    // Repeats after the first three: duplicate memberships add no
    // facts and must leave the stats untouched on both sides.
    const std::string v_str = std::to_string(i % 3);
    Oid v = store.InternSymbol("v" + v_str);
    store.AddSetMember(likes, metro, {}, v);
  }

  Result<ObjectStore> copy = DeserializeSnapshot(MustSerialize(store));
  ASSERT_TRUE(copy.ok()) << copy.status();
  for (Oid m : store.ScalarMethods()) {
    EXPECT_TRUE(copy->ScalarValueStats(m) == store.ScalarValueStats(m))
        << "scalar stats diverge for method " << store.DisplayName(m);
  }
  for (Oid m : store.SetMethods()) {
    EXPECT_TRUE(copy->SetMemberStats(m) == store.SetMemberStats(m))
        << "set stats diverge for method " << store.DisplayName(m);
  }
  // Spot-check the skewed method is actually exercising the sketch.
  const MethodStats& sc = copy->ScalarValueStats(city);
  ASSERT_FALSE(sc.heavy.empty());
  EXPECT_EQ(sc.heavy[0].value, metro);
  EXPECT_EQ(sc.heavy[0].count, 25u);
}

std::set<std::string> AllFacts(const ObjectStore& s) {
  std::set<std::string> out;
  for (uint64_t g = 0; g < s.generation(); ++g) {
    const Fact& f = s.FactAt(g);
    std::string line = std::to_string(static_cast<int>(f.kind)) + "|" +
                       s.DisplayName(f.method) + "|" + s.DisplayName(f.recv);
    for (Oid a : f.args) line += "|" + s.DisplayName(a);
    line += "->";
    line += f.value == kNilOid ? std::string("nil") : s.DisplayName(f.value);
    out.insert(std::move(line));
  }
  return out;
}

TEST(SnapshotTest, SemiNaiveDeltaResumesCorrectlyAfterRestore) {
  // The delta evaluator keys off generation stamps; a restore must not
  // desync them. Extend a recursive program after restoring and check
  // the materialised facts against a from-scratch oracle.
  DatabaseOptions opts;
  opts.engine.strategy = EvalStrategy::kSemiNaiveDelta;
  const char* kRules = R"(
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Z}] <- X[kids->>{Y}], Y[desc->>{Z}].
  )";
  const std::string path = ::testing::TempDir() + "/pathlog_delta.snap";
  {
    Database db(opts);
    ASSERT_TRUE(db.Load(kRules).ok());
    ASSERT_TRUE(db.Load("a[kids->>{b}]. b[kids->>{c}].").ok());
    ASSERT_TRUE(db.Materialize().ok());
    ASSERT_TRUE(db.SaveSnapshotFile(path).ok());
  }
  Result<Database> restored = Database::LoadSnapshotFile(path, opts);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_TRUE(restored->Load("c[kids->>{d}].").ok());
  ASSERT_TRUE(restored->Materialize().ok());

  DatabaseOptions naive;
  naive.engine.strategy = EvalStrategy::kNaive;
  Database fresh(naive);
  ASSERT_TRUE(fresh.Load(kRules).ok());
  ASSERT_TRUE(
      fresh.Load("a[kids->>{b}]. b[kids->>{c}]. c[kids->>{d}].").ok());
  ASSERT_TRUE(fresh.Materialize().ok());
  EXPECT_EQ(AllFacts(restored->store()), AllFacts(fresh.store()));

  Result<bool> deep = restored->Holds("a[desc->>{d}]");
  ASSERT_TRUE(deep.ok());
  EXPECT_TRUE(*deep);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RestoredDatabaseRematerializesWithoutDuplicates) {
  // Re-running the rules over a restored store must derive nothing new:
  // skolem references resolve to the restored anonymous objects (their
  // display names survived) and re-derived facts deduplicate.
  const std::string path = ::testing::TempDir() + "/pathlog_idem.snap";
  uint64_t saved_gen = 0;
  {
    Database db;
    ASSERT_TRUE(db.Load(R"(
      p1 : employee[worksFor->cs1].
      X.boss[worksFor->D] <- X:employee[worksFor->D].
    )").ok());
    ASSERT_TRUE(db.Materialize().ok());
    saved_gen = db.store().generation();
    ASSERT_TRUE(db.SaveSnapshotFile(path).ok());
  }
  Result<Database> restored = Database::LoadSnapshotFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_TRUE(restored->Materialize().ok());
  EXPECT_EQ(restored->store().generation(), saved_gen);
  Oid boss = *restored->store().FindSymbol("boss");
  Oid p1 = *restored->store().FindSymbol("p1");
  std::optional<Oid> vb = restored->store().GetScalar(boss, p1, {});
  ASSERT_TRUE(vb.has_value());
  EXPECT_EQ(restored->store().DisplayName(*vb), "_boss(p1)");
}

TEST(SnapshotTest, FactWithOutOfRangeOidRejected) {
  // A corrupt fact section must not plant invalid oids in the tables.
  ObjectStore store;
  Oid a = store.InternSymbol("a");
  Oid b = store.InternSymbol("b");
  Oid m = store.InternSymbol("m");
  store.AddSetMember(m, a, {}, b);
  std::string bytes = MustSerialize(store);
  // The last four bytes are the value oid of the final (set-member)
  // fact; point it far outside the object table.
  for (size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
    bytes[i] = '\xEE';
  }
  // Re-stamp the v2 checksum so the oid validation itself is reached
  // (an unpatched CRC would reject the file one layer earlier).
  const uint32_t crc = Crc32(std::string_view(bytes).substr(20));
  std::string patched;
  PutU32(&patched, crc);
  bytes.replace(8, 4, patched);
  Result<ObjectStore> r = DeserializeSnapshot(bytes);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("oid"), std::string::npos);
}

TEST(SnapshotTest, ChecksumMismatchDetected) {
  ObjectStore store;
  CompanyConfig cfg;
  cfg.num_employees = 10;
  GenerateCompany(&store, cfg);
  std::string bytes = MustSerialize(store);
  bytes[bytes.size() / 2] ^= 0x01;
  Result<ObjectStore> r = DeserializeSnapshot(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("checksum"), std::string::npos);
}

TEST(SnapshotTest, LegacyV1SnapshotStillLoads) {
  ObjectStore store;
  CompanyConfig cfg;
  cfg.num_employees = 25;
  GenerateCompany(&store, cfg);
  // v1 was the bare body behind a "PLGSNAP1" magic — no checksum, no
  // length. The v2 body is bit-identical, so a v1 image is
  // reconstructible from it.
  std::string v2 = MustSerialize(store);
  std::string v1 = "PLGSNAP1" + v2.substr(8 + 12);
  Result<ObjectStore> copy = DeserializeSnapshot(v1);
  ASSERT_TRUE(copy.ok()) << copy.status();
  ExpectStoresEqual(store, *copy);
}

TEST(SnapshotTest, ArgcOverflowIsTypedErrorNotTruncation) {
  // 65536 arguments cannot be represented in the u16 argc field; the
  // old serializer silently wrote argc mod 65536 and produced a file
  // that replayed to a *different* database.
  ObjectStore store;
  Oid a = store.InternSymbol("a");
  Oid m = store.InternSymbol("m");
  std::vector<Oid> args(65536, a);
  store.AddSetMember(m, a, args, a);
  Result<std::string> bytes = SerializeSnapshot(store);
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bytes.status().ToString().find("65535"), std::string::npos);
}

TEST(SnapshotTest, AtomicWriteNeverExposesAPartialFile) {
  ObjectStore store;
  CompanyConfig cfg;
  cfg.num_employees = 20;
  GenerateCompany(&store, cfg);

  ObjectStore old_store;
  old_store.InternSymbol("previous");
  const std::string old_bytes = MustSerialize(old_store);
  const std::string new_bytes = MustSerialize(store);
  const std::string path = "/db/snapshot.plgdb";

  // Crash at every write-side syscall of the snapshot write: the
  // visible file must be the complete old image or the complete new
  // one, never a prefix and never the temp file.
  FaultInjectingFileOps probe;
  ASSERT_TRUE(probe.CreateDir("/db").ok());
  ASSERT_TRUE(WriteFileAtomic(&probe, path, old_bytes).ok());
  const uint64_t before = probe.WriteOpCount();
  ASSERT_TRUE(WriteFileAtomic(&probe, path, new_bytes).ok());
  const uint64_t ops_per_write = probe.WriteOpCount() - before;
  ASSERT_GT(ops_per_write, 0u);

  for (uint64_t nth = 1; nth <= ops_per_write; ++nth) {
    FaultInjectingFileOps fs;
    ASSERT_TRUE(fs.CreateDir("/db").ok());
    ASSERT_TRUE(WriteFileAtomic(&fs, path, old_bytes).ok());
    fs.ArmFault(FaultInjectingFileOps::FaultKind::kCrash, nth);
    Status st = WriteSnapshotFile(store, path, &fs);
    if (fs.crashed()) {
      EXPECT_FALSE(st.ok()) << nth;
      fs.RecoverAfterCrash();
    }
    Result<std::string> after = fs.ReadFile(path);
    ASSERT_TRUE(after.ok()) << nth;
    EXPECT_TRUE(*after == old_bytes || *after == new_bytes) << nth;
    Result<ObjectStore> replayed = DeserializeSnapshot(*after);
    EXPECT_TRUE(replayed.ok()) << nth << ": " << replayed.status();
  }

  // Fail-fast (non-crash) faults must clean up the temp file.
  FaultInjectingFileOps fs;
  ASSERT_TRUE(fs.CreateDir("/db").ok());
  ASSERT_TRUE(WriteFileAtomic(&fs, path, old_bytes).ok());
  fs.ArmFault(FaultInjectingFileOps::FaultKind::kFail, 2);
  EXPECT_FALSE(WriteSnapshotFile(store, path, &fs).ok());
  EXPECT_FALSE(fs.Exists(path + ".tmp"));
  Result<std::string> after = fs.ReadFile(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, old_bytes);
}

TEST(SnapshotTest, SnapshotOfSnapshotIsIdentical) {
  ObjectStore store;
  CompanyConfig cfg;
  cfg.num_employees = 40;
  GenerateCompany(&store, cfg);
  std::string once = MustSerialize(store);
  Result<ObjectStore> copy = DeserializeSnapshot(once);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(MustSerialize(*copy), once);
}

}  // namespace
}  // namespace pathlog
