// The paper (section 2) contrasts PathLog's *direct* semantics with
// XSQL's semantics-by-transformation into F-logic. This suite checks
// the two views coincide on the transformable fragment: for randomly
// generated conjunctive queries, PathLog's navigational answers equal
// the answers of the flattened atom conjunction under both baseline
// evaluators.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "base/strings.h"
#include "baseline/conjunctive.h"
#include "baseline/translate.h"
#include "parser/parser.h"
#include "query/database.h"
#include "workload/company.h"

namespace pathlog {
namespace {

/// Random conjunctive queries over the company vocabulary, within the
/// flat fragment (no args, no set-reference filters, ground methods).
class QueryGen {
 public:
  explicit QueryGen(uint64_t seed) : rng_(seed) {}

  std::string Gen() {
    var_count_ = 0;
    int literals = 1 + static_cast<int>(rng_() % 3);
    std::vector<std::string> parts;
    std::string root = Fresh();
    parts.push_back(StrCat(root, ":", PickClass()));
    for (int i = 1; i < literals; ++i) {
      parts.push_back(GenLiteral(root));
    }
    return StrCat("?- ", StrJoin(parts, ", "), ".");
  }

 private:
  size_t Pick(size_t n) { return static_cast<size_t>(rng_() % n); }
  std::string Fresh() { return StrCat("V", var_count_++); }
  const char* PickClass() {
    static const char* kClasses[] = {"employee", "manager", "automobile",
                                     "vehicle", "company"};
    return kClasses[Pick(std::size(kClasses))];
  }

  std::string GenLiteral(const std::string& anchor) {
    switch (Pick(4)) {
      case 0:  // scalar chain with a selector
        return StrCat(anchor, ".", PickScalar(), "[", Fresh(), "]");
      case 1: {  // set step plus class plus property
        std::string v = Fresh();
        return StrCat(anchor, "..vehicles[", v, "]:automobile.color[",
                      Fresh(), "]");
      }
      case 2:  // molecule filter with a fresh variable
        return StrCat(anchor, "[", PickScalar(), "->", Fresh(), "]");
      default:  // set-enum member with a nested class pattern
        return StrCat(anchor, "[vehicles->>{", Fresh(), ":vehicle}]");
    }
  }

  const char* PickScalar() {
    static const char* kMethods[] = {"age", "city", "salary", "worksFor"};
    return kMethods[Pick(std::size(kMethods))];
  }

  std::mt19937_64 rng_;
  int var_count_ = 0;
};

std::set<std::vector<std::string>> Rows(const Relation& rel,
                                        const ObjectStore& store,
                                        const std::vector<std::string>& cols) {
  std::set<std::vector<std::string>> out;
  std::vector<size_t> idx;
  for (const std::string& c : cols) {
    auto i = rel.ColumnIndex(c);
    EXPECT_TRUE(i.has_value()) << c;
    idx.push_back(i.value_or(0));
  }
  for (const std::vector<Oid>& row : rel.rows()) {
    std::vector<std::string> named;
    for (size_t i : idx) named.push_back(store.DisplayName(row[i]));
    out.insert(std::move(named));
  }
  return out;
}

std::set<std::vector<std::string>> Rows(const ResultSet& rs,
                                        const ObjectStore& store) {
  std::set<std::vector<std::string>> out;
  for (const std::vector<Oid>& row : rs.rows()) {
    std::vector<std::string> named;
    for (Oid o : row) named.push_back(store.DisplayName(o));
    out.insert(std::move(named));
  }
  return out;
}

class TransformationEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransformationEquivalenceTest, DirectEqualsTransformed) {
  Database db;
  CompanyConfig cfg;
  cfg.num_employees = 120;
  cfg.seed = GetParam();
  GenerateCompany(&db.store(), cfg);

  QueryGen gen(GetParam() * 31 + 7);
  int compared = 0;
  for (int i = 0; i < 25; ++i) {
    std::string query = gen.Gen();

    Result<ResultSet> direct = db.Query(query);
    ASSERT_TRUE(direct.ok()) << query << ": " << direct.status();

    Result<struct Query> parsed = ParseQuery(query);
    ASSERT_TRUE(parsed.ok());
    Result<FlatQuery> flat = FlattenLiterals(parsed->body, &db.store());
    ASSERT_TRUE(flat.ok()) << query << ": " << flat.status();
    // Project the flat result onto the same (sorted) variables.
    flat->select = direct->vars();

    Result<Relation> join = EvalJoinPlan(db.store(), *flat);
    ASSERT_TRUE(join.ok()) << query << ": " << join.status();
    Result<Relation> loop = EvalNestedLoop(db.store(), *flat);
    ASSERT_TRUE(loop.ok()) << query << ": " << loop.status();

    std::set<std::vector<std::string>> direct_rows =
        Rows(*direct, db.store());
    EXPECT_EQ(Rows(*join, db.store(), direct->vars()), direct_rows)
        << query;
    EXPECT_EQ(Rows(*loop, db.store(), direct->vars()), direct_rows)
        << query;
    ++compared;
  }
  EXPECT_EQ(compared, 25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformationEquivalenceTest,
                         ::testing::Values(3, 5, 8, 13, 21));

}  // namespace
}  // namespace pathlog
