// Robustness fuzzing (deterministic): random token soups and mutated
// valid programs must produce Status errors or parses — never crashes
// — and everything that parses must print-and-reparse.

#include <gtest/gtest.h>

#include <random>

#include "ast/printer.h"
#include "parser/parser.h"
#include "query/database.h"

namespace pathlog {
namespace {

const char* const kFragments[] = {
    "mary", "X",    "30",  "-1",  "\"s\"", ".",   "..",  ":",   "::",
    "->",   "->>",  "=>",  "=>>", "<-",    "<~",  "?-",  "@",   "(",
    ")",    "[",    "]",   "{",   "}",     ",",   ";",   "not", " ",
    "self", "kids", "tc",  "%c\n",
};

std::string RandomSoup(std::mt19937_64* rng, int len) {
  std::string out;
  for (int i = 0; i < len; ++i) {
    out += kFragments[(*rng)() % std::size(kFragments)];
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, TokenSoupNeverCrashesParser) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::string soup = RandomSoup(&rng, 1 + static_cast<int>(rng() % 30));
    Result<Program> p = ParseProgram(soup);
    if (!p.ok()) {
      EXPECT_EQ(p.status().code(), StatusCode::kParseError) << soup;
      continue;
    }
    // Whatever parsed must print and reparse.
    std::string printed = ToString(*p);
    Result<Program> again = ParseProgram(printed);
    EXPECT_TRUE(again.ok()) << "printed form failed: " << printed;
  }
}

TEST_P(FuzzTest, TokenSoupNeverCrashesDatabaseLoad) {
  std::mt19937_64 rng(GetParam() + 77);
  Database db;
  for (int i = 0; i < 200; ++i) {
    std::string soup = RandomSoup(&rng, 1 + static_cast<int>(rng() % 20));
    // Any Status outcome is fine; crashing or hanging is not.
    (void)db.Load(soup);
  }
  // The database must still work afterwards.
  ASSERT_TRUE(db.Load("sanity[ok->1].").ok());
  Result<bool> ok = db.Holds("sanity[ok->1]");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_P(FuzzTest, MutatedValidProgramNeverCrashes) {
  const std::string valid = R"(
    manager :: employee.
    mary : employee[age->30; city->newYork].
    mary[vehicles->>{car1, bike1}].
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].
  )";
  std::mt19937_64 rng(GetParam() + 555);
  for (int i = 0; i < 200; ++i) {
    std::string mutated = valid;
    // Flip, delete, or duplicate a few characters.
    for (int k = 0; k < 3; ++k) {
      size_t pos = rng() % mutated.size();
      switch (rng() % 3) {
        case 0:
          mutated[pos] = static_cast<char>(' ' + rng() % 95);
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    Database db;
    (void)db.Load(mutated);  // any Status outcome; no crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace pathlog
