// Robustness fuzzing (deterministic): random token soups and mutated
// valid programs must produce Status errors or parses — never crashes
// — and everything that parses must print-and-reparse.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>

#include "ast/printer.h"
#include "parser/parser.h"
#include "query/database.h"
#include "store/file_ops.h"

namespace pathlog {
namespace {

const char* const kFragments[] = {
    "mary", "X",    "30",  "-1",  "\"s\"", ".",   "..",  ":",   "::",
    "->",   "->>",  "=>",  "=>>", "<-",    "<~",  "?-",  "@",   "(",
    ")",    "[",    "]",   "{",   "}",     ",",   ";",   "not", " ",
    "self", "kids", "tc",  "%c\n",
};

std::string RandomSoup(std::mt19937_64* rng, int len) {
  std::string out;
  for (int i = 0; i < len; ++i) {
    out += kFragments[(*rng)() % std::size(kFragments)];
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, TokenSoupNeverCrashesParser) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::string soup = RandomSoup(&rng, 1 + static_cast<int>(rng() % 30));
    Result<Program> p = ParseProgram(soup);
    if (!p.ok()) {
      EXPECT_EQ(p.status().code(), StatusCode::kParseError) << soup;
      continue;
    }
    // Whatever parsed must print and reparse.
    std::string printed = ToString(*p);
    Result<Program> again = ParseProgram(printed);
    EXPECT_TRUE(again.ok()) << "printed form failed: " << printed;
  }
}

TEST_P(FuzzTest, TokenSoupNeverCrashesDatabaseLoad) {
  std::mt19937_64 rng(GetParam() + 77);
  Database db;
  for (int i = 0; i < 200; ++i) {
    std::string soup = RandomSoup(&rng, 1 + static_cast<int>(rng() % 20));
    // Any Status outcome is fine; crashing or hanging is not.
    (void)db.Load(soup);
  }
  // The database must still work afterwards.
  ASSERT_TRUE(db.Load("sanity[ok->1].").ok());
  Result<bool> ok = db.Holds("sanity[ok->1]");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_P(FuzzTest, MutatedValidProgramNeverCrashes) {
  const std::string valid = R"(
    manager :: employee.
    mary : employee[age->30; city->newYork].
    mary[vehicles->>{car1, bike1}].
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].
  )";
  std::mt19937_64 rng(GetParam() + 555);
  for (int i = 0; i < 200; ++i) {
    std::string mutated = valid;
    // Flip, delete, or duplicate a few characters.
    for (int k = 0; k < 3; ++k) {
      size_t pos = rng() % mutated.size();
      switch (rng() % 3) {
        case 0:
          mutated[pos] = static_cast<char>(' ' + rng() % 95);
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    Database db;
    (void)db.Load(mutated);  // any Status outcome; no crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(11, 22, 33, 44));

// --- Durable-file corruption sweep ------------------------------------

void OverwriteFile(FaultInjectingFileOps* fs, const std::string& path,
                   std::string_view bytes) {
  Result<std::unique_ptr<FileOps::WritableFile>> f =
      fs->OpenForWrite(path, /*truncate=*/true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append(bytes).ok());
  ASSERT_TRUE((*f)->Sync().ok());
}

/// Builds a durable database with both a snapshot and a non-empty WAL,
/// and returns their byte images.
void BuildDurableImages(FaultInjectingFileOps* fs, std::string* snapshot,
                        std::string* wal) {
  Result<Database> db = Database::Open("/db", {}, fs);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->Load(R"(
    emp[salary => integer].
    mary : emp[salary->50; kids->>{ann, bob}].
    X[desc->>{Y}] <- X[kids->>{Y}].
  )").ok());
  ASSERT_TRUE(db->Materialize().ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  ASSERT_TRUE(db->Load("john : emp[salary->60].").ok());
  Result<std::string> snap_bytes = fs->ReadFile("/db/snapshot.plgdb");
  ASSERT_TRUE(snap_bytes.ok());
  *snapshot = *snap_bytes;
  Result<std::string> wal_bytes = fs->ReadFile("/db/wal.plgwal");
  ASSERT_TRUE(wal_bytes.ok());
  *wal = *wal_bytes;
  ASSERT_GT(wal->size(), 8u) << "WAL should hold the post-checkpoint load";
}

TEST(DurableCorruptionSweepTest, SnapshotByteFlipAtEveryOffset) {
  FaultInjectingFileOps fs;
  std::string snapshot, wal;
  BuildDurableImages(&fs, &snapshot, &wal);
  for (size_t i = 0; i < snapshot.size(); ++i) {
    std::string bad = snapshot;
    bad[i] ^= 0x20;
    OverwriteFile(&fs, "/db/snapshot.plgdb", bad);
    // Open must return a typed error or a working database (a flip
    // the checksum happens not to see, e.g. in padding-free equal
    // bytes, cannot occur: CRC32 catches all single-byte flips) —
    // never crash or hang.
    Result<Database> db = Database::Open("/db", {}, &fs);
    EXPECT_FALSE(db.ok()) << "flip at " << i << " went unnoticed";
    if (!db.ok()) {
      EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument) << i;
    }
  }
}

TEST(DurableCorruptionSweepTest, SnapshotTruncationAtEveryLength) {
  FaultInjectingFileOps fs;
  std::string snapshot, wal;
  BuildDurableImages(&fs, &snapshot, &wal);
  for (size_t cut = 0; cut < snapshot.size(); ++cut) {
    OverwriteFile(&fs, "/db/snapshot.plgdb", snapshot.substr(0, cut));
    Result<Database> db = Database::Open("/db", {}, &fs);
    EXPECT_FALSE(db.ok()) << "truncation to " << cut << " loaded";
  }
}

TEST(DurableCorruptionSweepTest, WalByteFlipAtEveryOffset) {
  FaultInjectingFileOps fs;
  std::string snapshot, wal;
  BuildDurableImages(&fs, &snapshot, &wal);
  for (size_t i = 0; i < wal.size(); ++i) {
    std::string bad = wal;
    bad[i] ^= 0x20;
    OverwriteFile(&fs, "/db/snapshot.plgdb", snapshot);
    OverwriteFile(&fs, "/db/wal.plgwal", bad);
    // A flip in the magic is kInvalidArgument; a flip inside a frame
    // is caught by that frame's CRC and handled as a torn tail, so
    // Open succeeds with the prefix. Either way: no crash, and any
    // database that opens still answers queries.
    Result<Database> db = Database::Open("/db", {}, &fs);
    if (db.ok()) {
      Result<bool> h = db->Holds("mary[desc->>{ann}]");
      ASSERT_TRUE(h.ok()) << i;
      EXPECT_TRUE(*h) << i;  // snapshot contents are never at risk
    } else {
      EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument) << i;
    }
  }
}

TEST(DurableCorruptionSweepTest, WalTruncationAtEveryLength) {
  FaultInjectingFileOps fs;
  std::string snapshot, wal;
  BuildDurableImages(&fs, &snapshot, &wal);
  for (size_t cut = 0; cut < wal.size(); ++cut) {
    OverwriteFile(&fs, "/db/snapshot.plgdb", snapshot);
    OverwriteFile(&fs, "/db/wal.plgwal", wal.substr(0, cut));
    // Every truncation is a legal torn tail: recovery must succeed
    // and keep at least the snapshot's contents.
    Result<Database> db = Database::Open("/db", {}, &fs);
    ASSERT_TRUE(db.ok()) << "cut=" << cut << ": " << db.status();
    Result<bool> h = db->Holds("mary[desc->>{ann}]");
    ASSERT_TRUE(h.ok()) << cut;
    EXPECT_TRUE(*h) << cut;
  }
}

}  // namespace
}  // namespace pathlog
