// Golden tests for the lint subsystem: one program per diagnostic
// code, a clean bill of health for the paper's programs and the
// shipped examples, and the report/Status/JSON machinery.

#include "lint/lint.h"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ast/analysis.h"
#include "parser/parser.h"
#include "query/database.h"

namespace pathlog {
namespace {

LintReport Lint(std::string_view source) {
  return ProgramLinter().LintSource(source);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

const Diagnostic* FindCode(const LintReport& report, LintCode code) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// ---- naming ---------------------------------------------------------

TEST(DiagnosticTest, CodeAndSeverityNames) {
  EXPECT_EQ(LintCodeName(LintCode::kParseError), "PL001");
  EXPECT_EQ(LintCodeName(LintCode::kRuleNeverFires), "PL011");
  EXPECT_STREQ(SeverityName(Severity::kError), "error");
  EXPECT_STREQ(SeverityName(Severity::kWarning), "warning");
}

// ---- clean programs -------------------------------------------------

TEST(LintTest, CleanFactsAndRules) {
  LintReport report = Lint(R"(
    manager :: employee.
    mary : employee[age->30; city->newYork].
    mary[vehicles->>{car1, bike1}].
    mary[kids->>{tom}].
    car1 : automobile[cylinders->4; color->red].
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Y}] <- X..desc[kids->>{Y}].
  )");
  EXPECT_TRUE(report.empty()) << report.ToString("<test>");
}

TEST(LintTest, PaperCompanyUniverseIsClean) {
  // The employee/vehicle universe of sections 1-2 plus the queries the
  // paper runs over it.
  LintReport report = Lint(R"(
    manager :: employee.
    automobile :: vehicle.
    mary : employee[age->30; city->newYork].
    mary[vehicles->>{car1, bike1}].
    car1 : automobile[cylinders->4; color->red; producedBy->acme].
    bike1 : vehicle[color->green].
    jim : manager[age->30; city->newYork].
    jim[vehicles->>{car2}].
    car2 : automobile[cylinders->4; color->red; producedBy->detroitMotors].
    sue : manager[age->45; city->detroit].
    sue[vehicles->>{car3}].
    car3 : automobile[cylinders->8; color->red; producedBy->detroitMotors].
    acme : company[city->newYork; president->sue].
    detroitMotors : company[city->detroit; president->jim].
    mary[boss->jim].
    ?- X:employee, X[vehicles->>{Y:automobile}], Y.color[C].
    ?- X:employee..vehicles[Y]:automobile.color[Z].
    ?- X:manager..vehicles[color->red].producedBy[city->detroit; president->X].
  )");
  EXPECT_TRUE(report.empty()) << report.ToString("<paper>");
}

TEST(LintTest, PaperDescendantAndTransitiveClosureClean) {
  // Section 6: specialised and generic transitive closure.
  LintReport report = Lint(R"(
    peter[kids->>{tim, mary}].
    tim[kids->>{anna}].
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Y}] <- X..desc[kids->>{Y}].
    X[(M.tc)->>{Y}] <- X[M->>{Y}].
    X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].
  )");
  EXPECT_TRUE(report.empty()) << report.ToString("<tc>");
}

// ---- one golden program per code ------------------------------------

TEST(LintTest, PL001ParseError) {
  LintReport report = Lint("mary[age->30");
  const Diagnostic* d = FindCode(report, LintCode::kParseError);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_GT(d->line, 0);
  EXPECT_FALSE(report.ok());
}

TEST(LintTest, PL002IllFormedScalarFilterWithSetResult) {
  LintReport report = Lint("mary[friend->tom..kids].\n");
  const Diagnostic* d = FindCode(report, LintCode::kIllFormed);
  ASSERT_NE(d, nullptr) << report.ToString("<test>");
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 1);
  EXPECT_NE(d->message.find("set-valued"), std::string::npos) << d->message;
}

TEST(LintTest, PL003SetValuedHead) {
  LintReport report = Lint(
      "tom[kids->>{anna}].\n"
      "X..kids[happy->yes] <- X[kids->>{anna}].\n");
  const Diagnostic* d = FindCode(report, LintCode::kSetValuedHead);
  ASSERT_NE(d, nullptr) << report.ToString("<test>");
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 2);
}

TEST(LintTest, PL004TrivialHead) {
  LintReport report = Lint("mary <- tom[age->30].\n");
  const Diagnostic* d = FindCode(report, LintCode::kTrivialHead);
  ASSERT_NE(d, nullptr) << report.ToString("<test>");
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 1);
}

TEST(LintTest, PL005UnboundHeadVariable) {
  LintReport report = Lint("X[adult->yes] <- not X[age->3].\n");
  const Diagnostic* d = FindCode(report, LintCode::kUnsafeRule);
  ASSERT_NE(d, nullptr) << report.ToString("<test>");
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("range restriction"), std::string::npos)
      << d->message;
}

TEST(LintTest, PL005NonGroundFact) {
  LintReport report = Lint("mary[age->X].\n");
  const Diagnostic* d = FindCode(report, LintCode::kUnsafeRule);
  ASSERT_NE(d, nullptr) << report.ToString("<test>");
  EXPECT_NE(d->message.find("not ground"), std::string::npos) << d->message;
}

TEST(LintTest, PL006NegationOnlyVariable) {
  LintReport report = Lint(
      "mary : person.\n"
      "mary[friends->>{tom}].\n"
      "mary[lonely->yes] <- mary : person, not mary[friends->>{F}].\n");
  const Diagnostic* d = FindCode(report, LintCode::kNegationOnlyVar);
  ASSERT_NE(d, nullptr) << report.ToString("<test>");
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 3);
  EXPECT_NE(d->message.find("F"), std::string::npos);
  // The variable must not additionally be flagged as a singleton.
  EXPECT_FALSE(report.Has(LintCode::kSingletonVar))
      << report.ToString("<test>");
}

TEST(LintTest, PL007UnstratifiableWithExplainedCycle) {
  LintReport report = Lint(
      "c[items->>{one}].\n"
      "a[m->>{X}] <- b[n->>{X}].\n"
      "b[n->>{X}] <- a[m->>a..m], c[items->>{X}].\n");
  const Diagnostic* d = FindCode(report, LintCode::kNotStratifiable);
  ASSERT_NE(d, nullptr) << report.ToString("<test>");
  EXPECT_EQ(d->severity, Severity::kError);
  ASSERT_GE(d->notes.size(), 2u);
  // The closing edge names the `->>` dependency and its rule...
  EXPECT_NE(d->notes[0].find("->>"), std::string::npos) << d->notes[0];
  EXPECT_NE(d->notes[0].find("b[n->>{X}] <- a[m->>a..m]"),
            std::string::npos)
      << d->notes[0];
  // ...and the chain names the rule that closes the cycle back.
  EXPECT_NE(d->notes[1].find("a[m->>{X}] <- b[n->>{X}]"), std::string::npos)
      << d->notes[1];
}

TEST(LintTest, PL008UndeclaredMethod) {
  LintReport report = Lint(
      "person[age => integer].\n"
      "mary : person.\n"
      "mary[age->A] <- mary[years->A].\n");
  const Diagnostic* d = FindCode(report, LintCode::kUndeclaredMethod);
  ASSERT_NE(d, nullptr) << report.ToString("<test>");
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 3);
  EXPECT_NE(d->message.find("years"), std::string::npos) << d->message;
}

TEST(LintTest, PL008SilentWithoutSignatures) {
  // Without any signature declarations the check would flag everything;
  // it must stay quiet.
  LintReport report = Lint(
      "mary[years->20].\n"
      "mary[age->A] <- mary[years->A].\n");
  EXPECT_FALSE(report.Has(LintCode::kUndeclaredMethod))
      << report.ToString("<test>");
  EXPECT_FALSE(report.Has(LintCode::kUnsignedHeadPath))
      << report.ToString("<test>");
}

TEST(LintTest, PL009FlavourMismatch) {
  LintReport report = Lint(
      "person[kids =>> person].\n"
      "mary : person[kids->tom].\n");
  const Diagnostic* d = FindCode(report, LintCode::kFlavourMismatch);
  ASSERT_NE(d, nullptr) << report.ToString("<test>");
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("kids"), std::string::npos) << d->message;
}

TEST(LintTest, PL010SingletonVariable) {
  LintReport report = Lint(
      "mary[age->30].\n"
      "mary[adult->yes] <- mary[age->A].\n");
  const Diagnostic* d = FindCode(report, LintCode::kSingletonVar);
  ASSERT_NE(d, nullptr) << report.ToString("<test>");
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 2);
  EXPECT_NE(d->message.find("A"), std::string::npos);
}

TEST(LintTest, PL010UnderscoreSilencesSingleton) {
  LintReport report = Lint(
      "mary[age->30].\n"
      "mary[adult->yes] <- mary[age->_A].\n");
  EXPECT_FALSE(report.Has(LintCode::kSingletonVar))
      << report.ToString("<test>");
}

TEST(LintTest, PL011RuleNeverFires) {
  LintReport report = Lint(
      "mary[age->30].\n"
      "mary[paid->yes] <- mary[salary->S], tom[salary->S].\n");
  const Diagnostic* d = FindCode(report, LintCode::kRuleNeverFires);
  ASSERT_NE(d, nullptr) << report.ToString("<test>");
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("salary"), std::string::npos) << d->message;
}

TEST(LintTest, PL011SkippedWhenGenericRulesDefineAnything) {
  // The generic transitive closure defines (M.tc) for *any* M, so no
  // method can be called undefined.
  LintReport report = Lint(
      "peter[kids->>{tim}].\n"
      "X[(M.tc)->>{Y}] <- X[M->>{Y}].\n"
      "X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].\n"
      "peter[ok->yes] <- peter[mystery->Z], tim[mystery->Z].\n");
  EXPECT_FALSE(report.Has(LintCode::kRuleNeverFires))
      << report.ToString("<test>");
}

TEST(LintTest, PL012UnsignedHeadPath) {
  LintReport report = Lint(
      "person[age => integer].\n"
      "mary : person[age->30].\n"
      "X[adult->A] <- X[age->A].\n");
  const Diagnostic* d = FindCode(report, LintCode::kUnsignedHeadPath);
  ASSERT_NE(d, nullptr) << report.ToString("<test>");
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("adult"), std::string::npos) << d->message;
}

TEST(LintTest, PL013NegatedTriggerEvent) {
  LintReport report = Lint(
      "mary[age->30].\n"
      "mary[flag->1] <~ not mary[age->30].\n");
  const Diagnostic* d = FindCode(report, LintCode::kIllFormedTrigger);
  ASSERT_NE(d, nullptr) << report.ToString("<test>");
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 2);
}

// ---- fixture files --------------------------------------------------

struct Fixture {
  const char* file;
  LintCode code;
};

TEST(LintTest, EveryFixtureFiresItsCode) {
  const std::vector<Fixture> fixtures = {
      {"pl001_parse_error.plg", LintCode::kParseError},
      {"pl002_ill_formed.plg", LintCode::kIllFormed},
      {"pl003_set_valued_head.plg", LintCode::kSetValuedHead},
      {"pl004_trivial_head.plg", LintCode::kTrivialHead},
      {"pl005_unsafe_rule.plg", LintCode::kUnsafeRule},
      {"pl006_negation_only_var.plg", LintCode::kNegationOnlyVar},
      {"pl007_unstratifiable.plg", LintCode::kNotStratifiable},
      {"pl008_undeclared_method.plg", LintCode::kUndeclaredMethod},
      {"pl009_flavour_mismatch.plg", LintCode::kFlavourMismatch},
      {"pl010_singleton_var.plg", LintCode::kSingletonVar},
      {"pl011_never_fires.plg", LintCode::kRuleNeverFires},
      {"pl012_unsigned_head_path.plg", LintCode::kUnsignedHeadPath},
      {"pl013_bad_trigger.plg", LintCode::kIllFormedTrigger},
  };
  for (const Fixture& f : fixtures) {
    std::string path = std::string(PATHLOG_LINT_FIXTURES_DIR "/") + f.file;
    LintReport report = Lint(ReadFile(path));
    EXPECT_FALSE(report.empty()) << f.file << " produced no diagnostics";
    const Diagnostic* d = FindCode(report, f.code);
    ASSERT_NE(d, nullptr) << f.file << " did not produce "
                          << LintCodeName(f.code) << ":\n"
                          << report.ToString(f.file);
    EXPECT_GT(d->line, 0) << f.file << " diagnostic lacks a source span";
    EXPECT_GT(d->column, 0) << f.file << " diagnostic lacks a source span";
  }
}

TEST(LintTest, ShippedExamplesAreClean) {
  const std::vector<std::string> examples = {
      "genealogy.plg", "paper_universe.plg", "views.plg"};
  for (const std::string& name : examples) {
    std::string path = std::string(PATHLOG_EXAMPLES_DIR "/") + name;
    LintReport report = Lint(ReadFile(path));
    EXPECT_TRUE(report.empty())
        << name << " should lint clean:\n" << report.ToString(name);
  }
}

// ---- rendering ------------------------------------------------------

TEST(LintTest, HumanRenderingCarriesFileLineColumnAndCode) {
  LintReport report = Lint("X[adult->yes] <- not X[age->3].\n");
  std::string text = report.ToString("bad.plg");
  EXPECT_NE(text.find("bad.plg:1:1: error[PL005]"), std::string::npos)
      << text;
}

TEST(LintTest, JsonRenderingIsWellShaped) {
  LintReport report = Lint("X[adult->yes] <- not X[age->3].\n");
  std::string json = report.ToJson("bad.plg");
  EXPECT_NE(json.find("\"file\":\"bad.plg\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"code\":\"PL005\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
}

TEST(LintTest, JsonEscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ---- Status bridging ------------------------------------------------

TEST(LintTest, ReportToStatusMapsCodes) {
  EXPECT_EQ(ReportToStatus(Lint("mary[age->30")).code(),
            StatusCode::kParseError);
  EXPECT_EQ(ReportToStatus(Lint("X[adult->yes] <- not X[age->3].")).code(),
            StatusCode::kUnsafeRule);
  EXPECT_EQ(ReportToStatus(Lint("c[items->>{one}].\n"
                                "a[m->>{X}] <- b[n->>{X}].\n"
                                "b[n->>{X}] <- a[m->>a..m], "
                                "c[items->>{X}].\n"))
                .code(),
            StatusCode::kNotStratifiable);
  EXPECT_EQ(ReportToStatus(Lint("mary[friend->tom..kids].")).code(),
            StatusCode::kIllFormed);
  // Warnings alone leave the status OK.
  EXPECT_TRUE(ReportToStatus(Lint("mary[age->30].\n"
                                  "mary[adult->yes] <- mary[age->A].\n"))
                  .ok());
}

// ---- Database integration -------------------------------------------

TEST(LintTest, DatabaseLintTreatsStoreFactsAsDefined) {
  Database db;
  ASSERT_TRUE(db.Load("mary[age->30]. mary[kids->>{tom}].").ok());
  ASSERT_TRUE(db.Load("X[minor->no] <- X[age->A], X[age->A].").ok());
  LintReport report = db.Lint();
  EXPECT_FALSE(report.Has(LintCode::kRuleNeverFires))
      << report.ToString("<db>");
}

TEST(LintTest, DatabaseLintSeesInstalledRules) {
  Database db;
  ASSERT_TRUE(db.Load("mary[age->30].").ok());
  ASSERT_TRUE(db.Load("X[paid->yes] <- X[salary->S], X[salary->S].").ok());
  LintReport report = db.Lint();
  EXPECT_TRUE(report.Has(LintCode::kRuleNeverFires))
      << report.ToString("<db>");
}

TEST(LintTest, LintOnLoadRejectsErrorsButAllowsWarnings) {
  DatabaseOptions options;
  options.lint_on_load = true;
  Database db(options);
  // Warning-level findings (singleton variable) must not block a load.
  EXPECT_TRUE(db.Load("mary[age->30]. mary[adult->yes] <- mary[age->A].")
                  .ok());
  Status st = db.Load("X[adult->yes] <- not X[age->3].");
  EXPECT_EQ(st.code(), StatusCode::kUnsafeRule) << st;
}

// ---- variable occurrence counting (ast/analysis) --------------------

TEST(LintTest, VarCountsBackCollectVars) {
  Result<Program> program =
      ParseProgram("X[desc->>{Y}] <- X..desc[kids->>{Y}].");
  ASSERT_TRUE(program.ok());
  const Rule& rule = program->rules[0];
  std::map<std::string, int> counts = VarCountsOf(*rule.head);
  CollectVarCounts(*rule.body[0].ref, &counts);
  EXPECT_EQ(counts["X"], 2);
  EXPECT_EQ(counts["Y"], 2);
  std::set<std::string> vars = VarsOf(*rule.head);
  EXPECT_EQ(vars, (std::set<std::string>{"X", "Y"}));
}

}  // namespace
}  // namespace pathlog
