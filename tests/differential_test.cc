// Differential testing: the three evaluation strategies (naive,
// rule-level semi-naive, literal-level delta semi-naive) must produce
// identical fact sets on every program, and the two semi-naive
// variants must do strictly less work than naive on recursion.

#include <gtest/gtest.h>

#include <set>

#include "base/strings.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "query/database.h"
#include "store/fact.h"
#include "workload/company.h"
#include "workload/kinship.h"
#include "workload/people.h"

namespace pathlog {
namespace {

enum class Workload { kChain, kTree, kDag, kCompany, kPeople };

void Generate(ObjectStore* store, Workload w) {
  switch (w) {
    case Workload::kChain:
      GenerateChain(store, 60);
      break;
    case Workload::kTree:
      GenerateTree(store, 80, 3);
      break;
    case Workload::kDag:
      GenerateRandomDag(store, 70, 2.0, 1234);
      break;
    case Workload::kCompany: {
      CompanyConfig cfg;
      cfg.num_employees = 60;
      cfg.num_companies = 5;
      GenerateCompany(store, cfg);
      break;
    }
    case Workload::kPeople: {
      PeopleConfig cfg;
      cfg.num_persons = 60;
      cfg.has_street_fraction = 0.6;
      GeneratePeople(store, cfg);
      break;
    }
  }
}

/// Runs `rules` over workload `w` under `strategy` and returns the
/// whole store as a canonical set of fact strings, plus stats.
std::set<std::string> RunProgram(Workload w, const char* rules,
                          EvalStrategy strategy, EngineStats* stats,
                          bool use_inverted_indexes = true) {
  DatabaseOptions opts;
  opts.engine.strategy = strategy;
  opts.engine.use_inverted_indexes = use_inverted_indexes;
  Database db(opts);
  Generate(&db.store(), w);
  Status st = db.Load(rules);
  EXPECT_TRUE(st.ok()) << st;
  st = db.Materialize();
  EXPECT_TRUE(st.ok()) << st;
  if (stats != nullptr) *stats = db.engine_stats();
  std::set<std::string> facts;
  for (uint64_t g = 0; g < db.store().generation(); ++g) {
    facts.insert(FactToString(db.store().FactAt(g), db.store()));
  }
  return facts;
}

struct Case {
  const char* name;
  Workload workload;
  const char* rules;
};

const Case kCases[] = {
    {"desc_chain", Workload::kChain, R"(
       X[desc->>{Y}] <- X[kids->>{Y}].
       X[desc->>{Y}] <- X..desc[kids->>{Y}].
     )"},
    {"desc_tree", Workload::kTree, R"(
       X[desc->>{Y}] <- X[kids->>{Y}].
       X[desc->>{Y}] <- X..desc[kids->>{Y}].
     )"},
    {"desc_dag_leftrec", Workload::kDag, R"(
       X[desc->>{Y}] <- X[kids->>{Y}].
       X[desc->>{Y}] <- X[kids->>{Z}], Z[desc->>{Y}].
     )"},
    {"generic_tc_tree", Workload::kTree, R"(
       X[(M.tc)->>{Y}] <- X[M->>{Y}].
       X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].
     )"},
    {"same_dept_pairs", Workload::kCompany, R"(
       X[colleague->>{Y}] <- X:employee[worksFor->D], Y:employee[worksFor->D].
     )"},
    {"virtual_boss", Workload::kCompany, R"(
       X.deputy[assists->X; inDept->D] <- X:manager, X[worksFor->D].
     )"},
    {"virtual_addresses", Workload::kPeople, R"(
       X.address[street->X.street; city->X.city] <- X:person.
     )"},
    {"stratified_sets", Workload::kChain, R"(
       X[reach->>{Y}] <- X[kids->>{Y}].
       X[reach->>{Y}] <- X..reach[kids->>{Y}].
       X[frontier->>p0..reach] <- X[self->p0].
     )"},
    {"negation_childless", Workload::kTree, R"(
       X[hasKid->1] <- X[kids->>{Y}].
       X[childless->1] <- X:thing, not X[hasKid->1].
       t0 : thing. t1 : thing.
     )"},
    // Bound-target path matching in a rule body: X.boss is matched
    // against the already-bound B, exercising the inverted
    // value→receiver route (and its enumerate-and-compare fallback).
    {"inverted_reports", Workload::kCompany, R"(
       B[reports->>{X}] <- B[self->X.boss].
     )"},
    // Same for the member→receiver route: V is bound when the second
    // literal runs, so the owner X is found through the inverted
    // member index of `vehicles` (or a group scan without indexes).
    {"inverted_ownership", Workload::kCompany, R"(
       V[ownedBy->>{X}] <- V:automobile, X[vehicles->>{V}].
     )"},
};

class StrategyDifferentialTest : public ::testing::TestWithParam<Case> {};

TEST_P(StrategyDifferentialTest, AllStrategiesAgree) {
  const Case& c = GetParam();
  EngineStats naive_stats, rules_stats, delta_stats;
  std::set<std::string> naive =
      RunProgram(c.workload, c.rules, EvalStrategy::kNaive, &naive_stats);
  std::set<std::string> rule_level =
      RunProgram(c.workload, c.rules, EvalStrategy::kSemiNaiveRules, &rules_stats);
  std::set<std::string> delta =
      RunProgram(c.workload, c.rules, EvalStrategy::kSemiNaiveDelta, &delta_stats);
  EXPECT_EQ(naive, rule_level);
  EXPECT_EQ(naive, delta);
  // Semi-naive never does more rule evaluations than naive.
  EXPECT_LE(rules_stats.rule_evaluations, naive_stats.rule_evaluations);
  EXPECT_LE(delta_stats.rule_evaluations, naive_stats.rule_evaluations);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, StrategyDifferentialTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return param_info.param.name;
    });

class IndexDifferentialTest : public ::testing::TestWithParam<Case> {};

TEST_P(IndexDifferentialTest, InvertedIndexesChangeNoAnswers) {
  // The inverted value→receiver / member→receiver probes are a pure
  // access-path change: under every strategy, the materialised fact
  // set with indexes enabled must equal the enumerate-and-compare run.
  const Case& c = GetParam();
  for (EvalStrategy s :
       {EvalStrategy::kNaive, EvalStrategy::kSemiNaiveRules,
        EvalStrategy::kSemiNaiveDelta}) {
    std::set<std::string> indexed =
        RunProgram(c.workload, c.rules, s, nullptr, true);
    std::set<std::string> scanned =
        RunProgram(c.workload, c.rules, s, nullptr, false);
    EXPECT_EQ(indexed, scanned)
        << c.name << " strategy " << static_cast<int>(s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, IndexDifferentialTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return param_info.param.name;
    });

class PlannerStatsDifferentialTest : public ::testing::TestWithParam<Case> {};

TEST_P(PlannerStatsDifferentialTest, SkewStatisticsChangeNoAnswers) {
  // The skew-aware runtime-bound estimator (PlannerStatsMode, threaded
  // through EngineOptions into rule-body planning and queries) is a
  // pure plan change: under every strategy, materialised facts and
  // query answers with skew-aware statistics must equal the skew-blind
  // run. use_analysis_hints routes rule bodies through the cost
  // planner, so the toggle is exercised on rules, not just queries.
  const Case& c = GetParam();
  for (EvalStrategy s :
       {EvalStrategy::kNaive, EvalStrategy::kSemiNaiveRules,
        EvalStrategy::kSemiNaiveDelta}) {
    std::set<std::string> facts[2];
    std::string answers[2];
    for (int skew_aware = 0; skew_aware < 2; ++skew_aware) {
      DatabaseOptions opts;
      opts.engine.strategy = s;
      opts.engine.planner_stats = skew_aware == 1
                                      ? PlannerStatsMode::kSkewAware
                                      : PlannerStatsMode::kAverageBucket;
      opts.use_analysis_hints = true;
      Database db(opts);
      Generate(&db.store(), c.workload);
      Status st = db.Load(c.rules);
      ASSERT_TRUE(st.ok()) << st;
      st = db.Materialize();
      ASSERT_TRUE(st.ok()) << st;
      for (uint64_t g = 0; g < db.store().generation(); ++g) {
        facts[skew_aware].insert(FactToString(db.store().FactAt(g),
                                              db.store()));
      }
      // A query with a runtime-bound scalar value and one with a
      // runtime-bound set member: the branches the estimator changes.
      for (const char* q :
           {"?- X[kids->>{Y}].", "?- A[age->N], B[age->N].",
            "?- A[kids->>{K}], B[kids->>{K}]."}) {
        Result<ResultSet> rs = db.Query(q);
        ASSERT_TRUE(rs.ok()) << q << ": " << rs.status();
        answers[skew_aware] += rs->ToString(db.store());
      }
    }
    EXPECT_EQ(facts[0], facts[1]) << c.name << " strategy "
                                  << static_cast<int>(s);
    EXPECT_EQ(answers[0], answers[1]) << c.name << " strategy "
                                      << static_cast<int>(s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, PlannerStatsDifferentialTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return param_info.param.name;
    });

class ObsDifferentialTest : public ::testing::TestWithParam<Case> {};

TEST_P(ObsDifferentialTest, ObservabilityChangesNoAnswers) {
  // Observability is pure measurement: with every sink attached
  // (metrics, tracer, profiler) the materialised fact set and the
  // query answers must equal the unobserved run, for all strategies.
  const Case& c = GetParam();
  for (EvalStrategy s :
       {EvalStrategy::kNaive, EvalStrategy::kSemiNaiveRules,
        EvalStrategy::kSemiNaiveDelta}) {
    MetricsRegistry metrics;
    Tracer tracer;
    Profiler profiler;
    std::set<std::string> facts[2];
    std::string answers[2];
    for (int observed = 0; observed < 2; ++observed) {
      DatabaseOptions opts;
      opts.engine.strategy = s;
      if (observed == 1) {
        opts.engine.obs.metrics = &metrics;
        opts.engine.obs.tracer = &tracer;
        opts.engine.obs.profiler = &profiler;
        opts.triggers.obs = opts.engine.obs;
      }
      Database db(opts);
      Generate(&db.store(), c.workload);
      Status st = db.Load(c.rules);
      ASSERT_TRUE(st.ok()) << st;
      st = db.Materialize();
      ASSERT_TRUE(st.ok()) << st;
      for (uint64_t g = 0; g < db.store().generation(); ++g) {
        facts[observed].insert(FactToString(db.store().FactAt(g),
                                            db.store()));
      }
      Result<ResultSet> rs = db.Query("?- X[kids->>{Y}].");
      ASSERT_TRUE(rs.ok()) << rs.status();
      answers[observed] = rs->ToString(db.store());
    }
    EXPECT_EQ(facts[0], facts[1]) << c.name << " strategy "
                                  << static_cast<int>(s);
    EXPECT_EQ(answers[0], answers[1]) << c.name << " strategy "
                                      << static_cast<int>(s);
    EXPECT_EQ(tracer.open_spans(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, ObsDifferentialTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return param_info.param.name;
    });

TEST(DeltaSemiNaiveTest, DeltaPassesHappenAndShrinkDerivations) {
  EngineStats naive_stats, delta_stats;
  const char* rules = R"(
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Y}] <- X..desc[kids->>{Y}].
  )";
  RunProgram(Workload::kChain, rules, EvalStrategy::kNaive, &naive_stats);
  RunProgram(Workload::kChain, rules, EvalStrategy::kSemiNaiveDelta, &delta_stats);
  EXPECT_GT(delta_stats.delta_passes, 0u);
  EXPECT_EQ(naive_stats.delta_passes, 0u);
  // Naive re-derives the full closure every round; delta only touches
  // derivations involving new facts. On a 60-chain the gap is large.
  EXPECT_LT(delta_stats.derivations, naive_stats.derivations / 4);
}

TEST(DeltaSemiNaiveTest, HeadReadFallbackStaysCorrect) {
  // boss(X) is derived by one rule and consumed by another rule's head
  // value path: the delta strategy must fall back to full evaluation
  // for the consumer when boss changes.
  DatabaseOptions opts;
  opts.engine.strategy = EvalStrategy::kSemiNaiveDelta;
  Database db(opts);
  Status st = db.Load(R"(
    e1 : employee[worksFor->cs1].
    m1 : manager.
    X[boss->m1] <- X:employee[worksFor->cs1].
    X[bossCopy->X.boss] <- X:employee.
  )");
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_TRUE(db.Materialize().ok());
  Result<bool> holds = db.Holds("e1[bossCopy->m1]");
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
}

TEST(DeltaSemiNaiveTest, MultiLiteralJoinRecursionAgrees) {
  // Nonlinear recursion: desc(X,Y) <- desc(X,Z), desc(Z,Y) — two
  // recursive literals in one body, the classic semi-naive stress.
  const char* rules = R"(
    X[d->>{Y}] <- X[kids->>{Y}].
    X[d->>{Y}] <- X[d->>{Z}], Z[d->>{Y}].
  )";
  std::set<std::string> naive =
      RunProgram(Workload::kDag, rules, EvalStrategy::kNaive, nullptr);
  std::set<std::string> delta =
      RunProgram(Workload::kDag, rules, EvalStrategy::kSemiNaiveDelta, nullptr);
  EXPECT_EQ(naive, delta);
}

}  // namespace
}  // namespace pathlog
