// Tests for the deductive engine: fixpoints, virtual objects, generic
// methods, strategies, guards.

#include "eval/engine.h"

#include <gtest/gtest.h>

#include "base/strings.h"
#include "eval/ref_eval.h"
#include "parser/parser.h"
#include "semantics/structure.h"
#include "workload/kinship.h"

namespace pathlog {
namespace {

Status LoadFactsAndRules(ObjectStore* store, Engine* engine,
                         std::string_view text) {
  Result<Program> p = ParseProgram(text);
  if (!p.ok()) return p.status();
  HeadAsserter asserter(store, HeadValueMode::kRequireDefined);
  for (const Rule& r : p->rules) {
    PATHLOG_RETURN_IF_ERROR(CheckRuleWellFormed(r));
    if (r.IsFact()) {
      Bindings b;
      PATHLOG_RETURN_IF_ERROR(asserter.Assert(*r.head, &b));
    } else {
      PATHLOG_RETURN_IF_ERROR(engine->AddRule(r));
    }
  }
  return Status::OK();
}

std::set<std::string> EvalNames(const ObjectStore& store,
                                std::string_view ref_text) {
  Result<RefPtr> r = ParseRef(ref_text);
  EXPECT_TRUE(r.ok()) << r.status();
  SemanticStructure I(store);
  RefEvaluator eval(I);
  Bindings b;
  std::set<std::string> out;
  Result<bool> res = eval.Enumerate(**r, &b, [&](Oid o) -> Result<bool> {
    out.insert(store.DisplayName(o));
    return true;
  });
  EXPECT_TRUE(res.ok()) << res.status();
  return out;
}

TEST(EngineTest, TransitiveClosureDesc) {
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    peter[kids->>{tim,mary}].
    tim[kids->>{sally}].
    mary[kids->>{tom,paul}].
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Y}] <- X..desc[kids->>{Y}].
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(EvalNames(store, "peter..desc"),
            (std::set<std::string>{"tim", "mary", "sally", "tom", "paul"}));
  EXPECT_EQ(EvalNames(store, "tim..desc"), (std::set<std::string>{"sally"}));
}

TEST(EngineTest, GenericTcMatchesThePaper) {
  // "applying kids.tc to peter yields {tim, mary, sally, tom, paul}".
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    peter[kids->>{tim,mary}].
    tim[kids->>{sally}].
    mary[kids->>{tom,paul}].
    X[(M.tc)->>{Y}] <- X[M->>{Y}].
    X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(EvalNames(store, "peter..(kids.tc)"),
            (std::set<std::string>{"tim", "mary", "sally", "tom", "paul"}));
}

TEST(EngineTest, GenericTcEqualsSpecializedDesc) {
  ObjectStore s1, s2;
  s1.InternSymbol(kSelfMethodName);
  s2.InternSymbol(kSelfMethodName);
  GenerateRandomDag(&s1, 60, 2.0, 3);
  GenerateRandomDag(&s2, 60, 2.0, 3);

  Engine e1(&s1);
  ASSERT_TRUE(LoadFactsAndRules(&s1, &e1, R"(
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Y}] <- X..desc[kids->>{Y}].
  )").ok());
  ASSERT_TRUE(e1.Run().ok());

  Engine e2(&s2);
  ASSERT_TRUE(LoadFactsAndRules(&s2, &e2, R"(
    X[(M.tc)->>{Y}] <- X[M->>{Y}].
    X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].
  )").ok());
  ASSERT_TRUE(e2.Run().ok());

  for (int i = 0; i < 60; ++i) {
    std::string p = StrCat("d", i);
    EXPECT_EQ(EvalNames(s1, StrCat(p, "..desc")),
              EvalNames(s2, StrCat(p, "..(kids.tc)")))
        << p;
  }
}

TEST(EngineTest, VirtualBossObjectsCreated) {
  // Paper rule (6.1): every employee gets a (possibly virtual) boss in
  // the same department.
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    p1 : employee.
    p1[worksFor->cs1].
    X.boss[worksFor->D] <- X:employee[worksFor->D].
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.stats().skolems_created, 1u);
  // The virtual boss is referenced by the path p1.boss and works for cs1.
  EXPECT_EQ(EvalNames(store, "p1.boss[worksFor->cs1]"),
            (std::set<std::string>{"_boss(p1)"}));
}

TEST(EngineTest, Rule62OnlyPropagatesToExistingBosses) {
  // Paper rule (6.2): no virtual objects; p1 has no boss, so nothing.
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    p1 : employee.
    p1[worksFor->cs1].
    p2 : employee.
    p2[worksFor->cs2].
    p2[boss->b2].
    Z[worksFor->D] <- X:employee[worksFor->D].boss[Z].
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.stats().skolems_created, 0u);
  EXPECT_EQ(EvalNames(store, "b2.worksFor"), (std::set<std::string>{"cs2"}));
  EXPECT_EQ(EvalNames(store, "p1.boss"), (std::set<std::string>{}));
}

TEST(EngineTest, SkolemIsDeterministicAcrossRederivation) {
  // Two rules deriving through X.address must reference one object.
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    p : person.
    p[street->main; city->ny].
    X.address[street->X.street] <- X:person.
    X.address[city->X.city] <- X:person.
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.stats().skolems_created, 1u);
  EXPECT_EQ(EvalNames(store, "p.address[street->main; city->ny]"),
            (std::set<std::string>{"_address(p)"}));
}

TEST(EngineTest, IntensionalMethodOnExistingObjects) {
  // Paper: X[power->Y] <- X:automobile.engine[power->Y].
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    a1 : automobile.
    a1[engine->e1].
    e1[power->200].
    X[power->Y] <- X:automobile.engine[power->Y].
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.stats().skolems_created, 0u);
  EXPECT_EQ(EvalNames(store, "a1.power"), (std::set<std::string>{"200"}));
}

TEST(EngineTest, HeadSetRefFilterCopiesMembers) {
  // (4.4) as a fact: p2[friends->>p1..assistants].
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    p1[assistants->>{a1,a2}].
    p2[friends->>p1..assistants].
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(EvalNames(store, "p2..friends"),
            (std::set<std::string>{"a1", "a2"}));
}

TEST(EngineTest, StratifiedSetRefBodyWaitsForCompletion) {
  // friends defined from the *complete* set of assistants, where
  // assistants is itself derived.
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    p1[helpers->>{a1,a2}].
    X[assistants->>{Y}] <- X[helpers->>{Y}].
    X[friends->>p1..assistants] <- X:person.
    bob : person.
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_GE(engine.stats().num_strata, 2);
  EXPECT_EQ(EvalNames(store, "bob..friends"),
            (std::set<std::string>{"a1", "a2"}));
}

TEST(EngineTest, UnstratifiableProgramRejected) {
  // assistants feeding its own completion test.
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    p1[assistants->>{a1}].
    X[assistants->>p1..assistants] <- X:person.
    p1 : person.
  )").ok());
  Status st = engine.Run();
  EXPECT_EQ(st.code(), StatusCode::kNotStratifiable);
}

TEST(EngineTest, NegationIsStratified) {
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    p1 : employee.
    p2 : employee.
    p1[boss->p2].
    X[top->1] <- X:employee, not X[boss->Y].
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(EvalNames(store, "X:employee[top->1]"),
            (std::set<std::string>{"p2"}));
}

TEST(EngineTest, NegationThroughRecursionRejected) {
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    X[odd->1] <- X:thing, not X[odd->1].
    t : thing.
  )").ok());
  EXPECT_EQ(engine.Run().code(), StatusCode::kNotStratifiable);
}

TEST(EngineTest, NaiveAndSemiNaiveAgree) {
  for (EvalStrategy strategy :
       {EvalStrategy::kNaive, EvalStrategy::kSemiNaiveRules}) {
    ObjectStore store;
    store.InternSymbol(kSelfMethodName);
    GenerateChain(&store, 30);
    EngineOptions opts;
    opts.strategy = strategy;
    Engine engine(&store, opts);
    ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
      X[desc->>{Y}] <- X[kids->>{Y}].
      X[desc->>{Y}] <- X..desc[kids->>{Y}].
    )").ok());
    ASSERT_TRUE(engine.Run().ok());
    // Chain of 30: p0's descendants are p1..p29.
    EXPECT_EQ(EvalNames(store, "p0..desc").size(), 29u);
    EXPECT_EQ(EvalNames(store, "p28..desc"), (std::set<std::string>{"p29"}));
  }
}

TEST(EngineTest, SemiNaiveSkipsUnaffectedRules) {
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  GenerateChain(&store, 40);
  // An unrelated rule should not be re-evaluated every round.
  EngineOptions semi;
  semi.strategy = EvalStrategy::kSemiNaiveRules;
  Engine engine(&store, semi);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Y}] <- X..desc[kids->>{Y}].
    X[hasKid->1] <- X[kids->>{Y}].
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  uint64_t semi_evals = engine.stats().rule_evaluations;

  ObjectStore store2;
  store2.InternSymbol(kSelfMethodName);
  GenerateChain(&store2, 40);
  EngineOptions naive;
  naive.strategy = EvalStrategy::kNaive;
  Engine engine2(&store2, naive);
  ASSERT_TRUE(LoadFactsAndRules(&store2, &engine2, R"(
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Y}] <- X..desc[kids->>{Y}].
    X[hasKid->1] <- X[kids->>{Y}].
  )").ok());
  ASSERT_TRUE(engine2.Run().ok());
  EXPECT_LT(semi_evals, engine2.stats().rule_evaluations);
}

TEST(EngineTest, RunawayVirtualCreationHitsGuard) {
  // Every object gets a virtual successor with the same property: the
  // program never terminates; the guard must trip.
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  EngineOptions opts;
  opts.max_facts = 2000;
  opts.max_objects = 2000;
  Engine engine(&store, opts);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    z[count->1].
    X.succ[count->1] <- X[count->1].
  )").ok());
  EXPECT_EQ(engine.Run().code(), StatusCode::kResourceExhausted);
}

TEST(EngineTest, WallClockBudgetTripsAsDeadlineExceeded) {
  // The same never-terminating program, but with the count guards out
  // of reach: only the wall-clock budget can stop it. Any finite
  // budget is eventually exceeded, so this is deterministic.
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  EngineOptions opts;
  opts.max_wall_ms = 50;
  Engine engine(&store, opts);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    z[count->1].
    X.succ[count->1] <- X[count->1].
  )").ok());
  EXPECT_EQ(engine.Run().code(), StatusCode::kDeadlineExceeded);
}

TEST(EngineTest, DeadlineRecordsElapsedTimeAndCulprit) {
  // A kDeadlineExceeded return must be diagnosable: the stats carry
  // the wall time spent and the stratum/rule active when the budget
  // tripped, and the error message names them.
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  EngineOptions opts;
  opts.max_wall_ms = 50;
  Engine engine(&store, opts);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    z[count->1].
    X.succ[count->1] <- X[count->1].
  )").ok());
  Status st = engine.Run();
  ASSERT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  const EngineStats& stats = engine.stats();
  EXPECT_GE(stats.elapsed_ms, 50.0);
  EXPECT_EQ(stats.limit_stratum, 0);
  EXPECT_EQ(stats.limit_rule, "X.succ[count->1] <- X[count->1].");
  EXPECT_NE(st.message().find("in stratum 0"), std::string::npos) << st;
  EXPECT_NE(st.message().find("X.succ[count->1]"), std::string::npos) << st;
}

TEST(EngineTest, SuccessfulRunRecordsElapsedAndStratumIterations) {
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    a[kids->>{b}]. b[kids->>{c}].
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Z}] <- X[kids->>{Y}], Y[desc->>{Z}].
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  const EngineStats& stats = engine.stats();
  EXPECT_GE(stats.elapsed_ms, 0.0);
  EXPECT_EQ(stats.limit_stratum, -1);
  EXPECT_TRUE(stats.limit_rule.empty());
  ASSERT_EQ(stats.stratum_iterations.size(),
            static_cast<size_t>(stats.num_strata));
  uint64_t total = 0;
  for (uint64_t n : stats.stratum_iterations) total += n;
  EXPECT_EQ(total, stats.iterations);
}

TEST(EngineTest, WallClockBudgetOffByDefault) {
  // max_wall_ms = 0 must mean "no deadline", not "deadline now".
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    a[kids->>{b}]. b[kids->>{c}].
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Z}] <- X[kids->>{Y}], Y[desc->>{Z}].
  )").ok());
  EXPECT_TRUE(engine.Run().ok());
}

TEST(EngineTest, ScalarConflictFromRulesReported) {
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    a[left->1].
    a[right->2].
    X[pick->Y] <- X[left->Y].
    X[pick->Y] <- X[right->Y].
  )").ok());
  EXPECT_EQ(engine.Run().code(), StatusCode::kScalarConflict);
}

TEST(EngineTest, UnsafeHeadVariableRejected) {
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  Result<Rule> rule = ParseRule("X[a->Z] <- X:thing.");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(engine.AddRule(*rule).code(), StatusCode::kUnsafeRule);
}

TEST(EngineTest, BodyReorderedForSetRefSafety) {
  // The ->> filter result mentions P, bound only by the second literal;
  // the planner must move that literal first.
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    p1[assistants->>{a1}].
    p1[marker->1].
    X[friends->>P..assistants] <- X[self->P], P[marker->1].
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(EvalNames(store, "p1..friends"), (std::set<std::string>{"a1"}));
}

TEST(EngineTest, HeadValueModeRequireDefinedSkips) {
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);  // default kRequireDefined
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    p : person.
    p[city->ny].
    q : person.
    X.address[street->X.street; city->X.city] <- X:person.
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  // Neither p (no street) nor q (nothing) gets an address instance.
  EXPECT_EQ(EvalNames(store, "p.address"), (std::set<std::string>{}));
  EXPECT_EQ(EvalNames(store, "q.address"), (std::set<std::string>{}));
}

TEST(EngineTest, HeadValueModeSkolemizeInvents) {
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  EngineOptions opts;
  opts.head_value_mode = HeadValueMode::kSkolemize;
  Engine engine(&store, opts);
  ASSERT_TRUE(LoadFactsAndRules(&store, &engine, R"(
    p : person.
    p[city->ny].
    X.address[street->X.street; city->X.city] <- X:person.
  )").ok());
  ASSERT_TRUE(engine.Run().ok());
  // The address exists, its street is itself a virtual object.
  EXPECT_EQ(EvalNames(store, "p.address.city"), (std::set<std::string>{"ny"}));
  EXPECT_EQ(EvalNames(store, "p.address.street"),
            (std::set<std::string>{"_street(p)"}));
  EXPECT_EQ(engine.stats().skolems_created, 2u);
}

TEST(EngineTest, FactsOnlyProgramTerminatesImmediately) {
  ObjectStore store;
  store.InternSymbol(kSelfMethodName);
  Engine engine(&store);
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.stats().derivations, 0u);
}

}  // namespace
}  // namespace pathlog
