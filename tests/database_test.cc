// End-to-end tests of the Database front end.

#include "query/database.h"

#include <gtest/gtest.h>

namespace pathlog {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Load(R"(
      manager :: employee.
      automobile :: vehicle.
      mary : employee[age->30; city->newYork].
      john : manager[age->40; city->detroit].
      mary[vehicles->>{car1,bike1}].
      john[vehicles->>{car2}].
      car1 : automobile[cylinders->4; color->red].
      car2 : automobile[cylinders->8; color->blue].
      bike1 : vehicle[color->red].
    )").ok());
  }

  std::vector<std::string> EvalNames(std::string_view ref) {
    Result<std::vector<Oid>> r = db_.Eval(ref);
    EXPECT_TRUE(r.ok()) << ref << ": " << r.status();
    std::vector<std::string> names;
    if (r.ok()) {
      for (Oid o : *r) names.push_back(db_.DisplayName(o));
      std::sort(names.begin(), names.end());
    }
    return names;
  }

  Database db_;
};

TEST_F(DatabaseTest, EvalGroundPath) {
  EXPECT_EQ(EvalNames("car1.color"), (std::vector<std::string>{"red"}));
  EXPECT_EQ(EvalNames("mary..vehicles"),
            (std::vector<std::string>{"bike1", "car1"}));
}

TEST_F(DatabaseTest, EvalTwoDimensionalPath) {
  EXPECT_EQ(EvalNames("mary..vehicles:automobile[cylinders->4].color"),
            (std::vector<std::string>{"red"}));
}

TEST_F(DatabaseTest, HoldsChecksEntailment) {
  Result<bool> yes = db_.Holds("mary[age->30]");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  Result<bool> no = db_.Holds("mary[age->31]");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
  // Subclass membership through `::`.
  Result<bool> isa = db_.Holds("john:employee");
  ASSERT_TRUE(isa.ok());
  EXPECT_TRUE(*isa);
}

TEST_F(DatabaseTest, QueryBindsAllVariables) {
  Result<ResultSet> rs = db_.Query("?- X:employee[age->A].");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->vars(), (std::vector<std::string>{"A", "X"}));
  EXPECT_EQ(rs->size(), 2u);
  EXPECT_TRUE(rs->ContainsRow({{"X", "mary"}, {"A", "30"}}, db_.store()));
  EXPECT_TRUE(rs->ContainsRow({{"X", "john"}, {"A", "40"}}, db_.store()));
}

TEST_F(DatabaseTest, QueryConjunction) {
  Result<ResultSet> rs = db_.Query(
      "?- X:employee, X[vehicles->>{V:automobile[color->red]}].");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->size(), 1u);
  EXPECT_TRUE(rs->ContainsRow({{"X", "mary"}, {"V", "car1"}}, db_.store()));
}

TEST_F(DatabaseTest, QueryWithNegation) {
  // NOTE: under the paper's single hierarchy relation, `manager ::
  // employee` puts the class object `manager` itself into employee's
  // extent, so it answers X:employee alongside mary and john.
  Result<ResultSet> rs =
      db_.Query("?- X:employee, not X[vehicles->>{V:automobile}].");
  ASSERT_TRUE(rs.ok()) << rs.status();
  // Both human employees own automobiles; only the extent-member
  // `manager` (the class object, which owns nothing) qualifies.
  EXPECT_EQ(rs->Column("X", db_.store()),
            (std::vector<std::string>{"manager"}));

  Result<ResultSet> rs2 =
      db_.Query("?- X:employee, not X[city->detroit].");
  ASSERT_TRUE(rs2.ok()) << rs2.status();
  EXPECT_EQ(rs2->Column("X", db_.store()),
            (std::vector<std::string>{"manager", "mary"}));
}

TEST_F(DatabaseTest, RulesMaterializeLazily) {
  ASSERT_TRUE(db_.Load(R"(
    X[redOwner->1] <- X:employee..vehicles[color->red].
  )").ok());
  Result<ResultSet> rs = db_.Query("?- X[redOwner->1].");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->Column("X", db_.store()), (std::vector<std::string>{"mary"}));
  EXPECT_GE(db_.engine_stats().derivations, 1u);
}

TEST_F(DatabaseTest, IncrementalLoadRetriggersMaterialization) {
  ASSERT_TRUE(db_.Load(
      "X[redOwner->1] <- X:employee..vehicles[color->red].").ok());
  ASSERT_TRUE(db_.Query("?- X[redOwner->1].").ok());
  // A new red vehicle for john arrives later.
  ASSERT_TRUE(db_.Load(
      "john[vehicles->>{car3}]. car3 : automobile[color->red].").ok());
  Result<ResultSet> rs = db_.Query("?- X[redOwner->1].");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->Column("X", db_.store()),
            (std::vector<std::string>{"john", "mary"}));
}

TEST_F(DatabaseTest, QueriesInLoadedTextRejected) {
  Status st = db_.Load("?- X:employee.");
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(DatabaseTest, ParseErrorsSurfaceWithPosition) {
  Status st = db_.Load("mary[age->).");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("line 1"), std::string::npos);
}

TEST_F(DatabaseTest, UnknownNamesInQueriesAreInterned) {
  // `ghost` was never mentioned; the query must not error, just answer
  // emptily.
  Result<ResultSet> rs = db_.Query("?- ghost[age->A].");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_TRUE(rs->empty());
}

TEST_F(DatabaseTest, EvalRejectsIllFormed) {
  Result<std::vector<Oid>> r = db_.Eval("p2[boss->p1..assistants]");
  EXPECT_EQ(r.status().code(), StatusCode::kIllFormed);
}

TEST_F(DatabaseTest, ResultSetRendering) {
  Result<ResultSet> rs = db_.Query("?- X:manager.");
  ASSERT_TRUE(rs.ok());
  std::string text = rs->ToString(db_.store());
  EXPECT_NE(text.find("X"), std::string::npos);
  EXPECT_NE(text.find("john"), std::string::npos);

  Result<ResultSet> empty = db_.Query("?- X:nothing.");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->ToString(db_.store()), "no answers.\n");
}

TEST_F(DatabaseTest, GroundQueryYieldsOneEmptyRow) {
  Result<ResultSet> rs = db_.Query("?- mary[age->30].");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->size(), 1u);
  EXPECT_TRUE(rs->vars().empty());

  Result<ResultSet> no = db_.Query("?- mary[age->99].");
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(no->empty());
}

TEST(DatabaseOptionsTest, TypeCheckAfterMaterializeRejectsBadDerivation) {
  DatabaseOptions opts;
  opts.type_check_after_materialize = true;
  Database db(opts);
  ASSERT_TRUE(db.Load(R"(
    person[age => integer].
    mary : person.
    mary[nick->molly].
    X[age->X.nick] <- X:person.
  )").ok());
  Status st = db.Materialize();
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST(DatabaseScalarConflictTest, ConflictingFactsRejectedAtLoad) {
  Database db;
  ASSERT_TRUE(db.Load("mary[age->30].").ok());
  Status st = db.Load("mary[age->31].");
  EXPECT_EQ(st.code(), StatusCode::kScalarConflict);
}

}  // namespace
}  // namespace pathlog
